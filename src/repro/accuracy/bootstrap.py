"""Statistical bootstrapping over exact-match correctness (paper §6.4).

The paper resamples rows with replacement 10 000 times and reports the
distribution of accuracy plus the difference of medians between GGR and
original orderings. For binary correctness vectors, the bootstrap
distribution of the mean is exactly ``Binomial(n, p_hat) / n``, which lets
us draw all resamples in one vectorized call instead of materializing a
10 000 x n index matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.bench.reporting import percentile
from repro.errors import ReproError


def bootstrap_accuracy(
    correct: Sequence[bool],
    n_boot: int = 10_000,
    seed: int = 0,
) -> np.ndarray:
    """Bootstrap distribution of exact-match accuracy.

    Returns ``n_boot`` resampled accuracies. Uses the binomial shortcut
    (exact for i.i.d. resampling of binary outcomes).
    """
    arr = np.asarray(list(correct), dtype=bool)
    n = arr.size
    if n == 0:
        raise ReproError("cannot bootstrap an empty correctness vector")
    if n_boot < 1:
        raise ReproError("n_boot must be >= 1")
    p_hat = arr.mean()
    rng = np.random.default_rng(seed)
    return rng.binomial(n, p_hat, size=n_boot) / n


@dataclass
class OrderingComparison:
    """Result of comparing two orderings' accuracy distributions."""

    median_a: float
    median_b: float
    ci_a: Tuple[float, float]
    ci_b: Tuple[float, float]
    n_boot: int

    @property
    def median_diff(self) -> float:
        """median(B) - median(A): positive means B (GGR) is better."""
        return self.median_b - self.median_a


def compare_orderings(
    correct_a: Sequence[bool],
    correct_b: Sequence[bool],
    n_boot: int = 10_000,
    seed: int = 0,
    ci: float = 0.95,
) -> OrderingComparison:
    """Bootstrap both orderings and compare their median accuracies
    (A = original, B = GGR in the paper's Fig. 6)."""
    if not 0 < ci < 1:
        raise ReproError("ci must be in (0, 1)")
    dist_a = bootstrap_accuracy(correct_a, n_boot=n_boot, seed=seed)
    dist_b = bootstrap_accuracy(correct_b, n_boot=n_boot, seed=seed + 1)
    lo = (1 - ci) / 2 * 100
    hi = 100 - lo
    # Nearest-rank percentiles (shared helper with the serving-latency
    # reports): every bound is an accuracy the bootstrap actually produced.
    return OrderingComparison(
        median_a=percentile(dist_a, 50),
        median_b=percentile(dist_b, 50),
        ci_a=(percentile(dist_a, lo), percentile(dist_a, hi)),
        ci_b=(percentile(dist_b, lo), percentile(dist_b, hi)),
        n_boot=n_boot,
    )
