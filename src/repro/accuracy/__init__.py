"""Accuracy evaluation substrate (paper §6.4, Fig. 6).

``judge`` models order-sensitive LLM answer behaviour (real models are not
available offline — see DESIGN.md S4/S8); ``bootstrap`` implements the
statistical bootstrapping the paper uses to compare the accuracy of
original vs GGR orderings over 10 000 resamples.
"""

from repro.accuracy.bootstrap import bootstrap_accuracy, compare_orderings
from repro.accuracy.judge import JUDGES, JudgeSpec, SimulatedJudge

__all__ = [
    "JudgeSpec",
    "SimulatedJudge",
    "JUDGES",
    "bootstrap_accuracy",
    "compare_orderings",
]
