"""Order-sensitive simulated judges (the paper's Llama/GPT-4o stand-ins).

A judge answers a classification prompt with probability
``p = base_accuracy + position_bias * position_factor`` of being correct,
where ``position_factor`` is +0.5 when the dataset's *key field* (the one
carrying the label signal) sits at the very end of the prompt and -0.5 at
the very beginning.

This reproduces the paper's Fig. 6 finding: the small Llama-3-8B prefers
the FEVER ``claim`` field *late* in the prompt (GGR's reordering moved it
there, gaining +14.2% accuracy), while the larger models are robust
(|delta| < 5%) — so their bias terms are small.

Correctness draws are deterministic per (judge, dataset, row, key-field
position bucket), so re-running an ordering reproduces its answers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from repro.core.table import Cell


@dataclass(frozen=True)
class JudgeSpec:
    """Behavioural constants for one simulated model."""

    name: str
    base_accuracy: Dict[str, float]
    position_bias: Dict[str, float]
    default_accuracy: float = 0.8
    default_bias: float = 0.0

    def accuracy_for(self, dataset: str) -> float:
        return self.base_accuracy.get(dataset.lower(), self.default_accuracy)

    def bias_for(self, dataset: str) -> float:
        return self.position_bias.get(dataset.lower(), self.default_bias)


# Bias magnitudes are calibrated so that bias x (key-field position shift
# under GGR) lands near the paper's Fig. 6 median deltas: GGR moves
# duplicated key fields (movieinfo, Body) toward the front (shift ~ -0.3
# to -0.7) and unique key fields (text, claim) to the back (shift ~ +1.0).

#: Llama-3-8B: decent accuracy, strong recency preference on FEVER
#: (paper: +14.2% when the claim moves to the end), mild elsewhere.
LLAMA3_8B_JUDGE = JudgeSpec(
    name="Meta-Llama-3-8B-Instruct",
    base_accuracy={
        "movies": 0.80, "products": 0.78, "bird": 0.75,
        "pdmx": 0.72, "beer": 0.76, "fever": 0.62,
    },
    position_bias={
        "movies": -0.08, "products": -0.01, "bird": 0.00,
        "pdmx": 0.01, "beer": 0.20, "fever": 0.142,
    },
)

#: Llama-3-70B: higher accuracy, robust to ordering (|delta| < 5%).
LLAMA3_70B_JUDGE = JudgeSpec(
    name="Meta-Llama-3-70B-Instruct",
    base_accuracy={
        "movies": 0.88, "products": 0.87, "bird": 0.86,
        "pdmx": 0.84, "beer": 0.85, "fever": 0.80,
    },
    position_bias={
        "movies": -0.11, "products": 0.01, "bird": -0.015,
        "pdmx": -0.01, "beer": 0.10, "fever": 0.017,
    },
)

#: GPT-4o: highest accuracy, small (slightly negative) order sensitivity.
GPT4O_JUDGE = JudgeSpec(
    name="OpenAI GPT-4o",
    base_accuracy={
        "movies": 0.92, "products": 0.91, "bird": 0.90,
        "pdmx": 0.89, "beer": 0.90, "fever": 0.86,
    },
    position_bias={
        "movies": 0.08, "products": -0.02, "bird": 0.015,
        "pdmx": 0.04, "beer": 0.10, "fever": -0.024,
    },
)

JUDGES: Dict[str, JudgeSpec] = {
    "llama3-8b": LLAMA3_8B_JUDGE,
    "llama3-70b": LLAMA3_70B_JUDGE,
    "gpt-4o": GPT4O_JUDGE,
}


def _uniform(*key) -> float:
    digest = hashlib.blake2b(repr(key).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little") / 2**64


class SimulatedJudge:
    """Answers prompts for one (judge, dataset) pair.

    ``answerer(query, cells, row_id)`` plugs straight into
    :class:`~repro.relational.llm_functions.LLMRuntime`.
    """

    def __init__(
        self,
        spec: JudgeSpec,
        dataset_name: str,
        labels: Sequence[str],
        label_domain: Sequence[str],
        key_field: str,
        seed: int = 0,
    ):
        self.spec = spec
        self.dataset = dataset_name.lower()
        self.labels = list(labels)
        self.domain = list(label_domain)
        self.key_field = key_field
        self.seed = seed

    def position_factor(self, cells: Tuple[Cell, ...]) -> float:
        """-0.5 (key field first) .. +0.5 (key field last)."""
        names = [c.field for c in cells]
        if self.key_field not in names or len(names) < 2:
            return 0.0
        pos = names.index(self.key_field)
        return pos / (len(names) - 1) - 0.5

    def correct_probability(self, cells: Tuple[Cell, ...]) -> float:
        base = self.spec.accuracy_for(self.dataset)
        bias = self.spec.bias_for(self.dataset)
        p = base + bias * self.position_factor(cells)
        return min(0.99, max(0.01, p))

    def answerer(self, query: str, cells: Tuple[Cell, ...], row_id: int) -> str:
        truth = self.labels[row_id]
        p = self.correct_probability(cells)
        # Common random numbers: one draw per row shared by every ordering,
        # so comparisons between orderings are paired — the position effect
        # shows up at its expected size instead of being drowned in
        # independent sampling noise at small n.
        draw = _uniform(self.spec.name, self.dataset, self.seed, row_id)
        if draw < p:
            return truth
        if len(self.domain) > 1:
            wrong = [d for d in self.domain if d != truth]
            return wrong[int(draw * 1e6) % len(wrong)]
        return truth + " maybe"  # open-ended: near-miss answer

    def grade(self, answers: Sequence[str]) -> list:
        """Exact-match correctness vector against the ground truth."""
        return [a == t for a, t in zip(answers, self.labels)]
