"""Exception hierarchy shared across the package.

Every error raised by :mod:`repro` derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SchemaError(ReproError):
    """A table, schema, or field reference is malformed or inconsistent."""


class SolverError(ReproError):
    """A reordering solver was invoked with invalid inputs or limits."""


class SQLError(ReproError):
    """A SQL string could not be lexed, parsed, or planned."""


class ServingError(ReproError):
    """The serving simulator was driven into an invalid state."""


class CapacityError(ServingError):
    """A request cannot fit in the simulated device memory at all."""


class PricingError(ReproError):
    """A pricing model was asked to cost an invalid usage record."""


class DataGenError(ReproError):
    """A synthetic dataset generator received invalid parameters."""
