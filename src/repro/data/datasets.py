"""The seven benchmark datasets (paper Table 1 / Appendix B), synthesized.

Each ``make_*`` builder returns a :class:`Dataset`: the relational table
with the exact Appendix-B field names, the declared functional
dependencies, per-row ground-truth labels for the filter/RAG accuracy
study, the field carrying the label signal (``key_field``, used by the
order-sensitive judges), and the Table-1 output-length profile per query
type.

``scale`` multiplies the paper's row counts (``scale=1.0`` reproduces the
full sizes; tests use much smaller scales). All randomness is derived from
``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.fd import FunctionalDependencies
from repro.data.textgen import TextGenerator
from repro.errors import DataGenError
from repro.relational.table import Table


@dataclass
class Dataset:
    """One benchmark dataset plus the metadata the harness needs."""

    name: str
    table: Table
    fds: FunctionalDependencies
    labels: List[str]
    label_domain: Tuple[str, ...]
    key_field: str
    output_tokens: Dict[str, int]
    paper_rows: int
    paper_fields: int
    paper_input_avg: int
    corpus: Optional[List[str]] = None
    questions: Optional[List[str]] = None

    @property
    def n_rows(self) -> int:
        return self.table.n_rows


def _n_rows(paper_rows: int, scale: float) -> int:
    if scale <= 0:
        raise DataGenError(f"scale must be positive, got {scale}")
    return max(30, int(paper_rows * scale))


# --------------------------------------------------------------------- Movies
KID_GENRES = ("Animation", "Family", "Adventure")
ALL_GENRES = KID_GENRES + (
    "Horror", "Thriller", "Drama", "Comedy", "Romance", "Sci-Fi", "Crime",
)


def make_movies(scale: float = 1.0, seed: int = 0) -> Dataset:
    """Rotten Tomatoes reviews joined with movie metadata.

    The join repeats ``movieinfo``/``movietitle``/``rottentomatoeslink``
    (a declared FD group) across each movie's reviews while
    ``reviewcontent`` stays unique — exactly the structure §6.2 credits for
    GGR's gains on review datasets.
    """
    n = _n_rows(15000, scale)
    tg = TextGenerator(seed=seed, domain="movies")
    n_movies = max(4, n // 12)
    companies = [tg.name(tg.rng("comp", i)) + " Pictures" for i in range(20)]

    movies = []
    for m in range(n_movies):
        rng = tg.rng("movie", m)
        title = tg.name(rng, 2)
        kid = rng.random() < 0.4
        genre = rng.choice(KID_GENRES if kid else ALL_GENRES[3:])
        movies.append(
            {
                "movietitle": title,
                "movieinfo": tg.paragraph(rng, 105),
                "rottentomatoeslink": "rt.com/m/" + title.lower().replace(" ", "_"),
                "genres": genre + "|" + rng.choice(ALL_GENRES),
                "productioncompany": rng.choice(companies),
                "kid": kid,
            }
        )

    rows, labels = [], []
    for i in range(n):
        rng = tg.rng("review", i)
        movie = movies[tg.zipf_index(rng, n_movies)]
        # Default column order starts with the per-review (distinct) text,
        # matching the paper's observation that joined review tables "often
        # begin with a review content field" (§6.2) — the worst case for a
        # fixed ordering.
        rows.append(
            {
                "reviewcontent": tg.paragraph(rng, 55),
                "reviewtype": rng.choice(("Fresh", "Rotten")),
                "genres": movie["genres"],
                "movieinfo": movie["movieinfo"],
                "movietitle": movie["movietitle"],
                "productioncompany": movie["productioncompany"],
                "rottentomatoeslink": movie["rottentomatoeslink"],
                "topcritic": rng.random() < 0.3,
            }
        )
        labels.append("Yes" if movie["kid"] else "No")

    return Dataset(
        name="Movies",
        table=Table.from_records(rows, name="movies"),
        fds=FunctionalDependencies.from_groups(
            [["movieinfo", "movietitle", "rottentomatoeslink"]]
        ),
        labels=labels,
        label_domain=("Yes", "No"),
        key_field="movieinfo",
        output_tokens={"T1": 2, "T2": 29, "T3": 16, "T4": 2},
        paper_rows=15000,
        paper_fields=8,
        paper_input_avg=276,
    )


# ------------------------------------------------------------------- Products
def make_products(scale: float = 1.0, seed: int = 0) -> Dataset:
    """Amazon product reviews joined with product metadata."""
    n = _n_rows(14890, scale)
    tg = TextGenerator(seed=seed, domain="products")
    n_products = max(4, n // 15)

    products = []
    for p in range(n_products):
        rng = tg.rng("product", p)
        products.append(
            {
                "parent_asin": f"B{p:08d}",
                "product_title": tg.name(rng, 3),
                "description": tg.paragraph(rng, 170),
            }
        )

    rows, labels = [], []
    for i in range(n):
        rng = tg.rng("review", i)
        prod = products[tg.zipf_index(rng, n_products)]
        sentiment_draw = rng.random()
        if sentiment_draw < 0.55:
            label, rating = "POSITIVE", rng.choice((4, 5))
        elif sentiment_draw < 0.8:
            label, rating = "NEGATIVE", rng.choice((1, 2))
        else:
            label, rating = "NEUTRAL", 3
        # Review text and unique id lead the default order (see Movies).
        rows.append(
            {
                "text": tg.paragraph(rng, 110),
                "review_title": tg.sentence(rng, 4),
                "id": f"R{i:09d}",
                "rating": rating,
                "verified_purchase": rng.random() < 0.8,
                "description": prod["description"],
                "parent_asin": prod["parent_asin"],
                "product_title": prod["product_title"],
            }
        )
        labels.append(label)

    return Dataset(
        name="Products",
        table=Table.from_records(rows, name="products"),
        fds=FunctionalDependencies.from_groups([["parent_asin", "product_title"]]),
        labels=labels,
        label_domain=("POSITIVE", "NEGATIVE", "NEUTRAL"),
        key_field="text",
        output_tokens={"T1": 3, "T2": 107, "T3": 62, "T4": 2},
        paper_rows=14890,
        paper_fields=8,
        paper_input_avg=377,
    )


# ----------------------------------------------------------------------- BIRD
def make_bird(scale: float = 1.0, seed: int = 0) -> Dataset:
    """BIRD Posts x Comments joined by PostId (the paper's footnote 1)."""
    n = _n_rows(14920, scale)
    tg = TextGenerator(seed=seed, domain="bird")
    n_posts = max(4, n // 8)

    posts = []
    for p in range(n_posts):
        rng = tg.rng("post", p)
        stats = rng.random() < 0.5
        posts.append(
            {
                "PostId": str(100000 + p),
                "Body": tg.paragraph(rng, 420),
                "PostDate": f"2023-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
                "stats": stats,
            }
        )

    rows, labels = [], []
    for i in range(n):
        rng = tg.rng("comment", i)
        post = posts[tg.zipf_index(rng, n_posts)]
        # The per-comment Text leads the default order (distinct values
        # first — the joined BIRD Posts x Comments shape, original PHR ~10%).
        rows.append(
            {
                "Text": tg.paragraph(rng, 240),
                "PostDate": post["PostDate"],
                "Body": post["Body"],
                "PostId": post["PostId"],
            }
        )
        labels.append("YES" if post["stats"] else "NO")

    return Dataset(
        name="BIRD",
        table=Table.from_records(rows, name="bird"),
        fds=FunctionalDependencies.from_groups([["Body", "PostId"]]),
        labels=labels,
        label_domain=("YES", "NO"),
        key_field="Body",
        output_tokens={"T1": 2, "T2": 43},
        paper_rows=14920,
        paper_fields=4,
        paper_input_avg=765,
    )


# ----------------------------------------------------------------------- PDMX
_PDMX_EXTRA_BOOLS = (
    "hascustomaudio", "hascustomvideo", "haslyrics", "haspaywall",
    "isbestarrangement", "isbestpath", "isbestuniquearrangement",
    "isoriginal", "isuserpro", "isuserstaff",
    "subsetdeduplicated", "subsetrated", "subsetrateddeduplicated",
)
_PDMX_COUNTS = (
    "nannotations", "ncomments", "nfavorites", "nlyrics", "notesperbar",
    "nnotes", "nratings", "ntracks", "ntokens", "nviews",
)


def make_pdmx(scale: float = 1.0, seed: int = 0) -> Dataset:
    """Public Domain MusicXML: 57 mostly-short fields, long unique text.

    Two Appendix-B FD groups hold exactly by construction:
    ``[metadata, path]`` (both derive from the song id) and the boolean
    group ``[hasannotations, hasmetadata, isdraft, isofficial,
    isuserpublisher, subsetall]`` (all bijective images of one latent flag).

    Songs belong to latent *families* (same arranger community / genre):
    the structural fields — genre, complexity, consistency scores, track
    layout, flags — repeat within a family, the way real MusicXML corpora
    repeat arrangement metadata. That correlated mass is what GGR's
    reordering recovers (the paper lifts PDMX from 12% to 57% PHR); the
    long per-song ``text`` stays unique, which is why PDMX's hit rate
    stays the lowest of all datasets.
    """
    n = _n_rows(10000, scale)
    tg = TextGenerator(seed=seed, domain="pdmx")
    artists = [tg.name(tg.rng("artist", i)) for i in range(max(3, n // 25))]
    composers = [tg.name(tg.rng("composer", i)) for i in range(max(3, n // 40))]
    genres = [tg.name(tg.rng("genre", i), 1) for i in range(15)]
    licenses = ["CC0", "CC-BY", "CC-BY-SA", "PD"]

    n_families = max(3, n // 50)
    families = []
    for f in range(n_families):
        rng = tg.rng("family", f)
        flag = rng.random() < 0.5
        lic = rng.choice(licenses)
        fam = {
            "artistname": artists[tg.zipf_index(rng, len(artists))],
            "bestarrangement": str(rng.random() < 0.5).lower(),
            "bestpath": f"/best/{rng.randint(0, 6)}",
            "bestuniquearrangement": str(rng.random() < 0.5).lower(),
            "composername": composers[tg.zipf_index(rng, len(composers))],
            "complexity": rng.randint(1, 5),
            "genre": rng.choice(genres),
            "grooveconsistency": round(rng.random(), 3),
            "groups": f"g{rng.randint(0, 8)}",
            "hasannotations": str(flag).lower(),
            "hasmetadata": str(flag).lower(),
            "isdraft": str(not flag).lower(),
            "isofficial": str(flag).lower(),
            "isuserpublisher": str(flag).lower(),
            "license": lic,
            "licenseurl": (
                f"https://creativecommons.example.org/licenses/{lic.lower()}"
                "/4.0/legalcode.en"
            ),
            "pitchclassentropy": round(rng.random() * 4, 3),
            "publisher": artists[tg.zipf_index(rng, len(artists))],
            "scaleconsistency": round(rng.random(), 3),
            "subsetall": str(flag).lower(),
            "tags": ",".join(sorted(rng.choice(genres) for _ in range(3))),
            "tracks": f"t{rng.randint(1, 6)}",
            "version": f"v{rng.randint(1, 4)}",
        }
        for name in _PDMX_EXTRA_BOOLS:
            fam[name] = str(rng.random() < 0.5).lower()
        families.append(fam)

    rows, labels = [], []
    for i in range(n):
        rng = tg.rng("song", i)
        fam = families[tg.zipf_index(rng, n_families)]
        person = rng.random() < 0.4
        title = tg.name(rng, 3)
        text = tg.paragraph(rng, 110)
        if person:
            text = f"Dedicated to {tg.name(rng, 2)}. " + text
        # Long unique text and unique id lead the default order (PDMX's
        # "many unique, lengthy text entries", original PHR ~12%).
        row = {
            "text": text,
            "id": f"pdmx-{i:07d}",
            "title": title,
            "metadata": f"meta-{i:07d}",
            "path": f"/scores/{i:07d}.xml",
            "postdate": f"2022-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
            "postid": str(50000 + i),
            "rating": round(rng.random() * 5, 1),
            "songlength": rng.randint(30, 600),
            "songlengthbars": rng.randint(8, 200),
            "songlengthbeats": rng.randint(32, 800),
            "songlengthseconds": rng.randint(30, 600),
            "songname": title,
            "subtitle": tg.sentence(rng, 3),
        }
        row.update(fam)
        for name in _PDMX_COUNTS:
            # Heavily skewed counts: most songs have few views/comments,
            # so small values repeat across rows (shareable mass).
            row[name] = int(500 * rng.random() ** 4)
        rows.append(row)
        labels.append("YES" if person else "NO")

    return Dataset(
        name="PDMX",
        table=Table.from_records(rows, name="pdmx"),
        fds=FunctionalDependencies.from_groups(
            [
                ["metadata", "path"],
                ["hasannotations", "hasmetadata", "isdraft", "isofficial",
                 "isuserpublisher", "subsetall"],
            ]
        ),
        labels=labels,
        label_domain=("YES", "NO"),
        key_field="text",
        output_tokens={"T1": 2, "T2": 72},
        paper_rows=10000,
        paper_fields=57,
        paper_input_avg=738,
    )


# ----------------------------------------------------------------------- Beer
EURO_STYLES = ("Pilsner", "Dubbel", "Tripel", "Saison", "Hefeweizen", "Lambic")
OTHER_STYLES = ("IPA", "Pale Ale", "Stout", "Porter", "Amber", "Cream Ale")


def make_beer(scale: float = 1.0, seed: int = 0) -> Dataset:
    """RateBeer reviews: short fields, heavy natural duplication.

    Reviews arrive in short per-user bursts so the *original* ordering
    already repeats ``review/profileName``/beer fields across neighbours —
    reproducing the ~50% original hit rate the paper reports for Beer.
    """
    n = _n_rows(28479, scale)
    tg = TextGenerator(seed=seed, domain="beer")
    n_beers = max(4, n // 40)
    beers = []
    for b in range(n_beers):
        rng = tg.rng("beer", b)
        euro = rng.random() < 0.45
        beers.append(
            {
                "beer/beerId": str(7000 + b),
                "beer/name": tg.name(rng, 2) + " " + rng.choice(
                    EURO_STYLES if euro else OTHER_STYLES
                ),
                "beer/style": rng.choice(EURO_STYLES if euro else OTHER_STYLES),
                "euro": euro,
            }
        )
    users = [tg.name(tg.rng("user", u), 1) + str(u) for u in range(max(3, n // 60))]

    rows, labels = [], []
    i = 0
    while len(rows) < n:
        rng = tg.rng("burst", i)
        i += 1
        user = users[tg.zipf_index(rng, len(users))]
        beer = beers[tg.zipf_index(rng, n_beers)]
        for _ in range(rng.randint(2, 5)):
            if len(rows) >= n:
                break
            # Within a burst the reviewer sometimes moves to another beer,
            # which caps the *original* ordering's adjacency (the paper
            # reports ~50% original hit rate for Beer, not more).
            if rng.random() > 0.55:
                beer = beers[tg.zipf_index(rng, n_beers)]
            # Column order follows the raw RateBeer dump: the (unique)
            # timestamp sits between the duplicated beer/user fields and
            # the ratings, capping the original ordering's prefix at the
            # early duplicated fields (§6.2 reports ~50% original PHR);
            # GGR recovers the ratings by moving the timestamp last.
            rows.append(
                {
                    "beer/beerId": beer["beer/beerId"],
                    "beer/name": beer["beer/name"],
                    "beer/style": beer["beer/style"],
                    "review/profileName": user,
                    "review/time": str(1300000000 + rng.randint(0, 10**8)),
                    "review/appearance": f"{rng.randint(2, 10) / 2:.1f}",
                    "review/overall": f"{rng.randint(2, 10) / 2:.1f}",
                    "review/palate": f"{rng.randint(2, 10) / 2:.1f}",
                    "review/taste": f"{rng.randint(2, 10) / 2:.1f}",
                }
            )
            labels.append("YES" if beer["euro"] else "NO")

    return Dataset(
        name="Beer",
        table=Table.from_records(rows, name="beer"),
        fds=FunctionalDependencies.from_groups([["beer/beerId", "beer/name"]]),
        labels=labels,
        label_domain=("YES", "NO"),
        # The judge keys on the reviewer field: GGR pulls it toward the
        # front (it is heavily duplicated), which models the paper's small
        # accuracy drop on Beer.
        key_field="review/profileName",
        output_tokens={"T1": 2, "T2": 38},
        paper_rows=28479,
        paper_fields=8,
        paper_input_avg=156,
    )


# ------------------------------------------------------------------ RAG bases
def _make_rag_dataset(
    name: str,
    paper_rows: int,
    scale: float,
    seed: int,
    n_contexts: int,
    context_tokens: int,
    question_field: str,
    context_prefix: str,
    label_domain: Tuple[str, ...],
    output_tokens: Dict[str, int],
    paper_fields: int,
    paper_input_avg: int,
) -> Dataset:
    from repro.rag.retriever import Retriever  # local import: substrate layering

    n = _n_rows(paper_rows, scale)
    tg = TextGenerator(seed=seed, domain=name.lower())
    n_passages = max(n_contexts + 1, n // 12)
    # Passages cluster into topics (entities/pages in the real corpora):
    # passages of one topic share a topical vocabulary, so questions about
    # that topic retrieve a consistent evidence neighborhood — the sharing
    # GGR exploits in the paper's RAG experiments (§6.2).
    passages_per_topic = max(n_contexts + 2, 8)
    n_topics = max(1, n_passages // passages_per_topic)
    topic_vocab = {
        t: [tg.vocab[i % len(tg.vocab)] for i in range(t * 37, t * 37 + 40)]
        for t in range(n_topics)
    }
    corpus, topics = [], []
    for p in range(n_passages):
        rng = tg.rng("passage", p)
        topic = p % n_topics
        within = p // n_topics
        words = topic_vocab[topic]
        n_words = max(8, int(context_tokens / 1.35))
        # Topicality decays with the passage's rank inside its topic, so
        # every topic has a stable "most relevant" subset: questions about
        # the topic retrieve (mostly) the same top-k evidence set, which is
        # the repetition structure the paper's RAG queries exhibit.
        topical_fraction = max(0.25, 0.9 - 0.14 * within)
        body = " ".join(
            rng.choice(words) if rng.random() < topical_fraction else rng.choice(tg.vocab)
            for _ in range(n_words)
        )
        corpus.append(body)
        topics.append(topic)

    questions, labels = [], []
    for i in range(n):
        rng = tg.rng("question", i)
        src = tg.zipf_index(rng, n_passages)
        # Quote topical words so hashing retrieval finds the neighborhood.
        snippet = " ".join(rng.choice(topic_vocab[topics[src]]) for _ in range(16))
        questions.append(f"{tg.sentence(rng, 3)} {snippet}?")
        labels.append(label_domain[rng.randrange(len(label_domain))])

    retriever = Retriever(corpus)
    table = retriever.retrieve_table(
        questions, k=n_contexts,
        question_field=question_field, context_prefix=context_prefix,
    )
    return Dataset(
        name=name,
        table=table,
        fds=FunctionalDependencies.empty(),
        labels=labels,
        label_domain=label_domain,
        key_field=question_field,
        output_tokens=output_tokens,
        paper_rows=paper_rows,
        paper_fields=paper_fields,
        paper_input_avg=paper_input_avg,
        corpus=corpus,
        questions=questions,
    )


def make_fever(scale: float = 1.0, seed: int = 0) -> Dataset:
    """FEVER fact verification: claim + 4 retrieved evidence passages."""
    return _make_rag_dataset(
        name="FEVER",
        paper_rows=19929,
        scale=scale,
        seed=seed,
        n_contexts=4,
        context_tokens=300,
        question_field="claim",
        context_prefix="evidence",
        label_domain=("SUPPORTS", "REFUTES", "NOT ENOUGH INFO"),
        output_tokens={"T5": 3},
        paper_fields=5,
        paper_input_avg=1302,
    )


def make_squad(scale: float = 1.0, seed: int = 0) -> Dataset:
    """SQuAD QA: question + 5 retrieved contexts (open-ended answers)."""
    ds = _make_rag_dataset(
        name="SQuAD",
        paper_rows=22665,
        scale=scale,
        seed=seed,
        n_contexts=5,
        context_tokens=190,
        question_field="question",
        context_prefix="context",
        label_domain=("span",),
        output_tokens={"T5": 11},
        paper_fields=5,
        paper_input_avg=1047,
    )
    # Open-ended answers: synthesize short answer spans as labels.
    tg = TextGenerator(seed=seed, domain="squad-answers")
    ds.labels = [tg.words(tg.rng("ans", i), 3) for i in range(ds.n_rows)]
    ds.label_domain = ()
    return ds


DATASET_BUILDERS: Dict[str, Callable[..., Dataset]] = {
    "movies": make_movies,
    "products": make_products,
    "bird": make_bird,
    "pdmx": make_pdmx,
    "beer": make_beer,
    "fever": make_fever,
    "squad": make_squad,
}


def build_dataset(name: str, scale: float = 1.0, seed: int = 0) -> Dataset:
    """Build one dataset by (case-insensitive) name."""
    try:
        builder = DATASET_BUILDERS[name.lower()]
    except KeyError:
        raise DataGenError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_BUILDERS)}"
        ) from None
    return builder(scale=scale, seed=seed)
