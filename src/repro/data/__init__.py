"""Synthetic versions of the paper's seven benchmark datasets.

The real corpora (Rotten Tomatoes, Amazon Reviews, BIRD, PDMX, RateBeer,
SQuAD, FEVER) are not shippable offline; these generators reproduce the
properties the reordering algorithms exploit and the evaluation measures:

* exact schemas and functional dependencies from Appendix B;
* join-induced duplication (reviews x metadata) and low-cardinality fields;
* row counts, field counts, and average input/output token lengths scaled
  from Table 1;
* per-row ground-truth labels for the filter-accuracy study (Fig. 6);
* for the RAG datasets, a passage corpus plus question set so the full
  retrieval stack (embed -> KNN -> context table) is exercised.

Everything is seeded and deterministic.
"""

from repro.data.datasets import DATASET_BUILDERS, Dataset, build_dataset
from repro.data.textgen import TextGenerator

__all__ = ["Dataset", "DATASET_BUILDERS", "build_dataset", "TextGenerator"]
