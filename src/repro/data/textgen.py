"""Deterministic synthetic text with controllable token length.

Text is assembled from a seeded pseudo-word vocabulary. With the package
tokenizer, one word plus its following space costs ~2 tokens, so
``paragraph(target_tokens)`` emits roughly ``target_tokens / 2`` words —
close enough to steer dataset input lengths toward the paper's Table 1
averages (the table-1 experiment measures the achieved values).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

_SYLLABLES = (
    "ba be bi bo bu da de di do du ka ke ki ko ku la le li lo lu "
    "ma me mi mo mu na ne ni no nu ra re ri ro ru sa se si so su "
    "ta te ti to tu va ve vi vo vu cha sho zen mar per tal gor win"
).split()

#: Tokens per word for this package's tokenizer (space fuses into the word
#: piece, BPE-style; punctuation adds a little — measured ~1.35).
TOKENS_PER_WORD = 1.35


def make_word(rng: random.Random, min_syll: int = 1, max_syll: int = 3) -> str:
    n = rng.randint(min_syll, max_syll)
    return "".join(rng.choice(_SYLLABLES) for _ in range(n))


class TextGenerator:
    """Seeded generator with a fixed vocabulary per instance."""

    def __init__(self, seed: int = 0, vocab_size: int = 600, domain: str = ""):
        self._rng = random.Random((seed, vocab_size, domain).__repr__())
        self.seed = seed
        self.domain = domain
        seen = set()
        vocab: List[str] = []
        while len(vocab) < vocab_size:
            w = make_word(self._rng)
            if domain:
                w = w  # domain only seeds the RNG; words stay plain
            if w not in seen:
                seen.add(w)
                vocab.append(w)
        self.vocab = vocab

    def rng(self, *key) -> random.Random:
        """Derived deterministic RNG for a sub-stream."""
        return random.Random((self.seed, self.domain, *key).__repr__())

    def words(self, rng: random.Random, n: int) -> str:
        return " ".join(rng.choice(self.vocab) for _ in range(max(0, n)))

    def sentence(self, rng: random.Random, n_words: int) -> str:
        body = self.words(rng, n_words)
        return (body[:1].upper() + body[1:] + ".") if body else ""

    def paragraph(self, rng: random.Random, target_tokens: int) -> str:
        """~``target_tokens`` tokens of prose (sentences of 6-14 words)."""
        n_words = max(1, int(target_tokens / TOKENS_PER_WORD))
        out: List[str] = []
        left = n_words
        while left > 0:
            take = min(left, rng.randint(6, 14))
            out.append(self.sentence(rng, take))
            left -= take
        return " ".join(out)

    def name(self, rng: random.Random, n_words: int = 2) -> str:
        return " ".join(make_word(rng, 1, 2).capitalize() for _ in range(n_words))

    def choice(self, rng: random.Random, options: Sequence[str]) -> str:
        return rng.choice(list(options))

    def zipf_index(self, rng: random.Random, n: int, skew: float = 1.1) -> int:
        """Zipf-ish popularity: low indices are picked far more often —
        models 'referencing popular items' (§1)."""
        if n <= 1:
            return 0
        u = rng.random()
        # Inverse-CDF of a truncated power law.
        idx = int(n * (u ** skew))
        return min(idx, n - 1)
