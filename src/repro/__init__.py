"""Reproduction of *Optimizing LLM Queries in Relational Data Analytics
Workloads* (Liu, Biswal, et al., MLSys 2025).

The package implements the paper's request-reordering algorithms (OPHR and
GGR) together with every substrate the evaluation depends on: a relational
engine with an ``LLM()`` SQL operator, an LLM serving simulator with
radix-tree prefix caching and paged KV memory, synthetic versions of the
seven benchmark datasets, a RAG stack, proprietary-API pricing models, and a
benchmark harness that regenerates every table and figure in the paper.

Quickstart::

    from repro import reorder, phc
    from repro.core.table import ReorderTable

    table = ReorderTable(
        fields=("city", "id", "tier"),
        rows=[("sf", "a1", "gold"), ("sf", "a2", "gold"), ("la", "b1", "gold")],
    )
    result = reorder(table, policy="ggr")
    print(result.exact_phc, ">=", phc(result.schedule))
"""

from repro._version import __version__
from repro.core.phc import phc, phr, prefix_hit_tokens
from repro.core.reorder import ReorderResult, reorder
from repro.core.table import ReorderTable

__all__ = [
    "__version__",
    "ReorderTable",
    "ReorderResult",
    "reorder",
    "phc",
    "phr",
    "prefix_hit_tokens",
]
