"""Feature-hashing bag-of-words embedder (stand-in for gte-base).

Each token hashes to a dimension with a deterministic sign; vectors are
L2-normalized so cosine similarity is an inner product. No learned weights
— similarity is purely lexical overlap, which matches how the synthetic
questions are generated (they quote words from their source passage).
"""

from __future__ import annotations

import hashlib
import re
from typing import List, Sequence

import numpy as np

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def _hash(token: str, salt: str) -> int:
    digest = hashlib.blake2b(f"{salt}:{token}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class HashingEmbedder:
    """Map texts to unit vectors in ``dim`` dimensions."""

    def __init__(self, dim: int = 256):
        if dim < 8:
            raise ValueError("dim must be >= 8")
        self.dim = dim

    def embed_one(self, text: str) -> np.ndarray:
        vec = np.zeros(self.dim, dtype=np.float64)
        for token in _TOKEN_RE.findall(text.lower()):
            h = _hash(token, "idx")
            sign = 1.0 if _hash(token, "sign") & 1 else -1.0
            vec[h % self.dim] += sign
        norm = np.linalg.norm(vec)
        if norm > 0:
            vec /= norm
        return vec

    def embed(self, texts: Sequence[str]) -> np.ndarray:
        """(n, dim) matrix of unit rows (zero rows for empty texts)."""
        if not texts:
            return np.zeros((0, self.dim), dtype=np.float64)
        return np.stack([self.embed_one(t) for t in texts])
