"""Exact KNN vector index (stand-in for FAISS).

Brute-force cosine search via one matmul — exact, deterministic, and fast
enough for the corpus sizes the benchmark uses (thousands of passages).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError


class VectorIndex:
    """Append-only dense index over unit vectors."""

    def __init__(self, dim: int):
        self.dim = dim
        self._chunks: List[np.ndarray] = []
        self._ids: List[int] = []
        self._matrix: Optional[np.ndarray] = None

    def add(self, ids: Sequence[int], vectors: np.ndarray) -> None:
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ReproError(
                f"expected (n, {self.dim}) vectors, got {vectors.shape}"
            )
        if len(ids) != vectors.shape[0]:
            raise ReproError("ids and vectors must align")
        self._chunks.append(np.asarray(vectors, dtype=np.float64))
        self._ids.extend(int(i) for i in ids)
        self._matrix = None

    def __len__(self) -> int:
        return len(self._ids)

    def _mat(self) -> np.ndarray:
        if self._matrix is None:
            if not self._chunks:
                self._matrix = np.zeros((0, self.dim), dtype=np.float64)
            else:
                self._matrix = np.vstack(self._chunks)
        return self._matrix

    def search(self, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(ids, scores)`` of shape (nq, k), cosine-descending.

        Ties break by insertion order for determinism. If the index holds
        fewer than ``k`` items, results are padded with id -1 / score -inf.
        """
        mat = self._mat()
        nq = queries.shape[0]
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise ReproError(f"expected (nq, {self.dim}) queries, got {queries.shape}")
        ids_arr = np.asarray(self._ids)
        n = mat.shape[0]
        out_ids = np.full((nq, k), -1, dtype=np.int64)
        out_scores = np.full((nq, k), -np.inf, dtype=np.float64)
        if n == 0 or nq == 0:
            return out_ids, out_scores
        scores = queries @ mat.T  # (nq, n)
        take = min(k, n)
        # argsort on (-score, insertion index) for stable deterministic ties.
        order = np.lexsort((np.arange(n)[None, :].repeat(nq, 0), -scores), axis=1)
        top = order[:, :take]
        rows = np.arange(nq)[:, None]
        out_ids[:, :take] = ids_arr[top]
        out_scores[:, :take] = scores[rows, top]
        return out_ids, out_scores
