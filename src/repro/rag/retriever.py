"""Retriever: corpus -> per-question context table (the T5 input).

The paper embeds all supporting contexts into a vector index and fetches
the top-k per question; the resulting (question, context1..k) table is what
GGR reorders — "multiple questions might share similar contexts, and
Cache (GGR) can rearrange contexts to maximize prefix reuse" (§6.2 RAG).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ReproError
from repro.rag.embedding import HashingEmbedder
from repro.rag.vectorstore import VectorIndex
from repro.relational.table import Table


class Retriever:
    """Embeds a corpus once, then answers KNN context queries."""

    def __init__(self, corpus: Sequence[str], embedder: Optional[HashingEmbedder] = None):
        if not corpus:
            raise ReproError("retriever needs a non-empty corpus")
        self.corpus = list(corpus)
        self.embedder = embedder or HashingEmbedder()
        self.index = VectorIndex(self.embedder.dim)
        self.index.add(range(len(self.corpus)), self.embedder.embed(self.corpus))

    def retrieve(self, questions: Sequence[str], k: int) -> List[List[str]]:
        """Top-``k`` passages per question, most-similar first."""
        if k < 1:
            raise ReproError("k must be >= 1")
        qvecs = self.embedder.embed(questions)
        ids, _ = self.index.search(qvecs, k)
        out: List[List[str]] = []
        for row in ids:
            out.append([self.corpus[i] if i >= 0 else "" for i in row])
        return out

    def retrieve_table(
        self,
        questions: Sequence[str],
        k: int,
        question_field: str = "question",
        context_prefix: str = "context",
    ) -> Table:
        """Build the (question, context1..k) table the T5 queries run over.

        Column order matches the paper's Appendix B listings: the question/
        claim field first, contexts after it.
        """
        contexts = self.retrieve(questions, k)
        cols = {question_field: list(questions)}
        for j in range(k):
            cols[f"{context_prefix}{j + 1}"] = [ctx[j] for ctx in contexts]
        return Table(cols, name="rag")
