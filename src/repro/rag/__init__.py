"""RAG substrate: deterministic embeddings + brute-force vector search.

Substitutes the paper's gte-base-en-v1.5 embedder and FAISS index (S6 in
DESIGN.md): a feature-hashing bag-of-words embedder and an exact cosine
KNN index. Retrieval quality only needs to be *good enough to retrieve
topically related passages* — the evaluation measures cache behaviour of
the resulting context tables, and questions generated from a passage share
its vocabulary, so hashing embeddings retrieve the right neighborhoods.
"""

from repro.rag.embedding import HashingEmbedder
from repro.rag.retriever import Retriever
from repro.rag.vectorstore import VectorIndex

__all__ = ["HashingEmbedder", "VectorIndex", "Retriever"]
