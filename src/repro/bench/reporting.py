"""ASCII reporting: every experiment renders the same rows the paper
prints, with a paper-reported column next to the measured one."""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


def _nearest_rank(sorted_vals: Sequence[float], q: float) -> float:
    """Nearest-rank pick from an already-sorted, non-empty series."""
    if q == 0:
        return sorted_vals[0]
    return sorted_vals[math.ceil(q / 100.0 * len(sorted_vals)) - 1]


def percentile(values: Sequence[float], q: float) -> float:
    """Exact nearest-rank percentile of ``values`` (``q`` in [0, 100]).

    The nearest-rank definition always returns an actual observation —
    the right choice for latency SLOs (a reported p99 is a latency some
    request really saw) and for bootstrap confidence bounds. Empty input
    returns 0.0 (empty-safe for zero-request traces), out-of-range ``q``
    raises.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    vals = sorted(float(v) for v in values)
    if not vals:
        return 0.0
    return _nearest_rank(vals, q)


def latency_percentiles(values: Sequence[float]) -> Tuple[float, float, float]:
    """(p50, p95, p99) of one latency series, sorting it once — the
    triple every serving report prints. Empty-safe like
    :func:`percentile`."""
    vals = sorted(float(v) for v in values)
    if not vals:
        return (0.0, 0.0, 0.0)
    return (
        _nearest_rank(vals, 50),
        _nearest_rank(vals, 95),
        _nearest_rank(vals, 99),
    )


def fmt_speedup(baseline_seconds: float, new_seconds: float) -> str:
    """'2.5x' formatting used throughout the figures."""
    if new_seconds <= 0:
        return "inf"
    return f"{baseline_seconds / new_seconds:.1f}x"


def fmt_pct(x: float, digits: int = 1) -> str:
    return f"{100 * x:.{digits}f}%"


def fmt_tokens(n: float) -> str:
    """Compact token-count formatting ('842', '1.2k', '5.4M') used by the
    optimizer's EXPLAIN annotations and the SQL micro-benchmarks."""
    n = float(n)
    if n >= 1e6:
        return f"{n / 1e6:.1f}M"
    if n >= 1e3:
        return f"{n / 1e3:.1f}k"
    return f"{n:.0f}"


def fmt_seconds(s: float) -> str:
    if s >= 100:
        return f"{s:.0f}s"
    if s >= 1:
        return f"{s:.1f}s"
    return f"{s * 1000:.0f}ms"


class ResultTable:
    """A fixed-width text table."""

    def __init__(self, title: str, headers: Sequence[str]):
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
        out = [self.title, sep, line(self.headers), sep]
        out.extend(line(r) for r in self.rows)
        out.append(sep)
        return "\n".join(out)


@dataclass
class ExperimentOutput:
    """Everything an experiment produces: tables, free-text notes, and a
    flat metrics dict for assertions/EXPERIMENTS.md."""

    name: str
    tables: List[ResultTable] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        parts = [f"== {self.name} =="]
        for t in self.tables:
            parts.append(t.render())
        for n in self.notes:
            parts.append(f"note: {n}")
        return "\n\n".join(parts)


def default_scale(fallback: float = 0.05) -> float:
    """Experiment scale: REPRO_SCALE env var or a bench-friendly default.

    ``scale=1.0`` reproduces the paper's full dataset sizes; the default
    keeps a full harness run in CI-sized time budgets.
    """
    raw = os.environ.get("REPRO_SCALE", "")
    if not raw:
        return fallback
    value = float(raw)
    if value <= 0:
        raise ValueError(f"REPRO_SCALE must be positive, got {raw!r}")
    return value


def default_seed(fallback: int = 0) -> int:
    raw = os.environ.get("REPRO_SEED", "")
    return int(raw) if raw else fallback
