"""The 16-query benchmark suite (§6.1.2, Appendix A and C).

Five query types over seven datasets:

* T1 LLM filter (x5): Movies, Products, BIRD, PDMX, Beer
* T2 LLM projection (x5): same datasets
* T3 multi-LLM invocation (x2): Movies, Products — sentiment filter, then
  projection over the selected rows
* T4 LLM aggregation (x2): Movies, Products — AVG of numeric scores
* T5 RAG (x2): FEVER, SQuAD

User prompts are the Appendix C texts (lightly trimmed). ``fields``
follows Appendix A where it enumerates them, else ``*``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class BenchmarkQuery:
    """One benchmark query.

    ``output_type`` selects the dataset's Table-1 output-length profile.
    For T3, ``stage1_prompt``/``stage1_fields`` describe the initial filter
    invocation; the main prompt/fields describe the second (projection)
    invocation over the filtered rows.
    """

    query_id: str
    dataset: str
    qtype: str
    prompt: str
    fields: Tuple[str, ...]
    output_type: str
    stage1_prompt: Optional[str] = None
    stage1_fields: Optional[Tuple[str, ...]] = None
    stage1_keep: Optional[str] = None  # answer value selected by the filter


FILTER_PROMPTS: Dict[str, str] = {
    "movies": (
        "Given the following fields, answer in one word, 'Yes' or 'No', "
        "whether the movie would be suitable for kids. Answer with ONLY "
        "'Yes' or 'No'."
    ),
    "products": (
        "Given the following fields determine if the review speaks "
        "positively ('POSITIVE'), negatively ('NEGATIVE'), or neutral "
        "('NEUTRAL') about the product. Answer only 'POSITIVE', "
        "'NEGATIVE', or 'NEUTRAL', nothing else."
    ),
    "bird": (
        "Given the following fields related to posts in an online codebase "
        "community, answer whether the post is related to statistics. "
        "Answer with only 'YES' or 'NO'."
    ),
    "pdmx": (
        "Based on following fields, answer 'YES' or 'NO' if any of the "
        "song information references a specific individual. Answer only "
        "'YES' or 'NO', nothing else."
    ),
    "beer": (
        "Based on the beer descriptions, does this beer have European "
        "origin? Answer 'YES' if it does or 'NO' if it doesn't."
    ),
}

PROJECTION_PROMPTS: Dict[str, str] = {
    "movies": (
        "Given information including movie descriptions and critic "
        "reviews, summarize the good qualities in this movie that led to "
        "a favorable rating."
    ),
    "products": (
        "Given the following fields related to amazon products, summarize "
        "the product, then answer whether the product description is "
        "consistent with the quality expressed in the review."
    ),
    "bird": (
        "Given the following fields related to posts in an online codebase "
        "community, summarize how the comment Text related to the post body."
    ),
    "pdmx": (
        "Given the following fields, provide an overview on the music "
        "type, and analyze the given scores. Give exactly 50 words of "
        "summary."
    ),
    "beer": (
        "Given the following fields, provide an high-level overview on the "
        "beer and review in a 20 words paragraph."
    ),
}

SENTIMENT_PROMPT = (
    "Given the following review, answer whether the sentiment associated "
    "is 'POSITIVE' or 'NEGATIVE'. Answer in all caps with ONLY 'POSITIVE' "
    "or 'NEGATIVE':"
)

AGGREGATION_PROMPTS: Dict[str, str] = {
    "movies": (
        "Given the following fields of a movie description and a user "
        "review, assign a sentiment score for the review out of 5. Answer "
        "with ONLY a single integer between 1 (bad) and 5 (good)."
    ),
    "products": (
        "Given the following fields of a product description and a user "
        "review, assign a sentiment score for the review out of 5. Answer "
        "with ONLY a single integer between 1 (bad) and 5 (good)."
    ),
}

RAG_PROMPTS: Dict[str, str] = {
    "fever": (
        "You are given 4 pieces of evidence and a claim. Answer SUPPORTS "
        "if the pieces of evidence support the given claim, REFUTES if the "
        "evidence refutes the given claim, or NOT ENOUGH INFO if there is "
        "not enough information to answer. Your answer should just be "
        "SUPPORTS, REFUTES, or NOT ENOUGH INFO and nothing else."
    ),
    "squad": "Given a question and supporting contexts, answer the provided question.",
}


def _build_queries() -> List[BenchmarkQuery]:
    queries: List[BenchmarkQuery] = []
    # T1: filters. Fields are passed as `*`: the operator receives them in
    # the table's stored order, which is what the Cache (Original) baseline
    # serializes (Appendix A's SELECT enumerates fields, but §6.2 describes
    # the default order as starting with the distinct review text).
    for ds, prompt in FILTER_PROMPTS.items():
        queries.append(
            BenchmarkQuery(
                query_id=f"{ds}-T1",
                dataset=ds,
                qtype="T1",
                prompt=prompt,
                fields=("*",),
                output_type="T1",
            )
        )
    # T2: projections. Field lists follow the tables' stored order (the
    # Original baseline serializes fields as given).
    t2_fields = {
        "movies": ("reviewcontent", "movieinfo"),
        "bird": ("Text", "Body"),
    }
    for ds, prompt in PROJECTION_PROMPTS.items():
        queries.append(
            BenchmarkQuery(
                query_id=f"{ds}-T2",
                dataset=ds,
                qtype="T2",
                prompt=prompt,
                fields=t2_fields.get(ds, ("*",)),
                output_type="T2",
            )
        )
    # T3: multi-LLM invocation (filter on the distinct review text, then a
    # projection over the rows the filter kept).
    for ds in ("movies", "products"):
        review_field = "reviewcontent" if ds == "movies" else "text"
        stage2_fields = (
            ("reviewtype", "reviewcontent", "movieinfo", "genres")
            if ds == "movies"
            else ("*",)
        )
        queries.append(
            BenchmarkQuery(
                query_id=f"{ds}-T3",
                dataset=ds,
                qtype="T3",
                prompt=PROJECTION_PROMPTS[ds],
                fields=stage2_fields,
                output_type="T3",
                stage1_prompt=SENTIMENT_PROMPT,
                stage1_fields=(review_field,),
                stage1_keep="NEGATIVE",
            )
        )
    # T4: aggregations.
    t4_fields = {
        "movies": ("reviewcontent", "movieinfo"),
        "products": ("text", "description"),
    }
    for ds, prompt in AGGREGATION_PROMPTS.items():
        queries.append(
            BenchmarkQuery(
                query_id=f"{ds}-T4",
                dataset=ds,
                qtype="T4",
                prompt=prompt,
                fields=t4_fields[ds],
                output_type="T4",
            )
        )
    # T5: RAG.
    for ds, prompt in RAG_PROMPTS.items():
        queries.append(
            BenchmarkQuery(
                query_id=f"{ds}-T5",
                dataset=ds,
                qtype="T5",
                prompt=prompt,
                fields=("*",),
                output_type="T5",
            )
        )
    return queries


ALL_QUERIES: Tuple[BenchmarkQuery, ...] = tuple(_build_queries())

assert len(ALL_QUERIES) == 16, "the paper's suite has exactly 16 queries"


def queries_by_type(qtype: str) -> List[BenchmarkQuery]:
    return [q for q in ALL_QUERIES if q.qtype == qtype]


def get_query(query_id: str) -> BenchmarkQuery:
    for q in ALL_QUERIES:
        if q.query_id == query_id:
            return q
    raise KeyError(query_id)
