"""Execute one benchmark query under one policy on the serving simulator."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.policies import Policy
from repro.bench.queries import BenchmarkQuery
from repro.core.ggr import GGRConfig
from repro.core.table import Cell
from repro.data.datasets import Dataset
from repro.data.textgen import TextGenerator
from repro.errors import ReproError
from repro.llm.client import SimulatedLLMClient
from repro.llm.engine import EngineConfig
from repro.llm.hardware import CLUSTER_1XL4, Cluster
from repro.llm.scheduler import compute_slo
from repro.llm.models import LLAMA3_8B, ModelSpec
from repro.llm.tokenizer import HashTokenizer
from repro.relational.expressions import LLMExpr
from repro.relational.llm_functions import LLMRuntime
from repro.relational.table import Table


def _uniform(*key) -> float:
    digest = hashlib.blake2b(repr(key).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little") / 2**64


class WorkloadAnswerer:
    """Deterministic simulated model outputs with Table-1 lengths.

    Answers depend only on (query, row id), never on the ordering policy,
    so every policy runs the semantically identical workload. Output text
    length follows the dataset's per-type profile with ±20% jitter.
    """

    def __init__(self, dataset: Dataset, query: BenchmarkQuery, seed: int = 0):
        self.dataset = dataset
        self.query = query
        self.seed = seed
        self._tg = TextGenerator(seed=seed, domain=f"answers-{dataset.name}")
        self._out_tokens = dataset.output_tokens.get(query.output_type, 8)

    def sentiment(self, row_id: int) -> str:
        return "NEGATIVE" if _uniform("sent", self.seed, row_id) < 0.45 else "POSITIVE"

    def __call__(self, query: str, cells: Tuple[Cell, ...], row_id: int) -> str:
        if query == self.query.stage1_prompt:
            return self.sentiment(row_id)
        qtype = self.query.qtype
        if qtype == "T1":
            return self.dataset.labels[row_id]
        if qtype == "T4":
            return str(1 + int(_uniform("score", self.seed, row_id) * 5))
        if qtype == "T5":
            if self.dataset.label_domain:  # classification RAG (FEVER)
                return self.dataset.labels[row_id]
            rng = self._tg.rng("ans", row_id)
            return self._tg.words(rng, max(2, self._out_tokens // 2))
        # T2 / T3 second stage: free-form text of the target length.
        rng = self._tg.rng("text", row_id)
        jitter = 0.8 + 0.4 * rng.random()
        return self._tg.paragraph(rng, max(2, int(self._out_tokens * jitter)))


@dataclass
class RunResult:
    """Measured outcome of one (query, policy) execution."""

    query_id: str
    dataset: str
    policy: str
    model: str
    engine_seconds: float
    solver_seconds: float
    phr: float
    schedule_phr: float
    exact_phc: int
    prompt_tokens: int
    cached_tokens: int
    prefill_tokens: int
    decode_tokens: int
    n_rows: int
    n_llm_calls: int
    peak_kv_tokens: int = 0
    max_batch_seen: int = 0
    #: Paged-KV admission metrics (zero under the token-sum oracle): block
    #: size, the largest per-stage peak of physical blocks charged, and the
    #: internal fragmentation at that peak.
    kv_accounting: str = "tokens"
    block_tokens: int = 0
    peak_kv_blocks: int = 0
    fragmentation_tokens: int = 0
    #: SQL-optimizer telemetry: rows actually solved/served after dedup and
    #: memo lookups (== every row the LLM calls saw when dedup is off),
    #: prompt tokens the duplicates would have cost, and rows answered from
    #: the cross-call memo (the latter two are zero with REPRO_SQL_OPT=0).
    n_distinct_llm_rows: int = 0
    dedup_saved_prompt_tokens: int = 0
    memo_hits: int = 0
    #: SLO accounting over every request the query's engine calls served
    #: (arrival-relative nearest-rank percentiles; offline runs stamp the
    #: whole batch as arriving at call submission, so these are plain
    #: latency percentiles there). Zero for engine-less (solver-only) runs.
    queueing_p95_s: float = 0.0
    ttft_p95_s: float = 0.0
    e2e_p95_s: float = 0.0

    @property
    def dedup_savings(self) -> float:
        """Fraction of the would-be prompt volume removed by input dedup."""
        total = self.prompt_tokens + self.dedup_saved_prompt_tokens
        return self.dedup_saved_prompt_tokens / total if total else 0.0

    @property
    def end_to_end_seconds(self) -> float:
        """Engine time plus solver overhead (the paper's JCT metric)."""
        return self.engine_seconds + self.solver_seconds

    @property
    def fragmentation(self) -> float:
        """Fraction of peak block memory lost to internal fragmentation
        (0.0 under the token-sum oracle)."""
        denom = self.peak_kv_blocks * self.block_tokens
        return self.fragmentation_tokens / denom if denom else 0.0


def scaled_kv_capacity(
    model: ModelSpec,
    cluster: Cluster,
    scale: float,
    prompt_tokens_estimate: int,
    max_batch_size: int = 64,
    block_tokens: int = 16,
) -> int:
    """KV capacity (in tokens) for a scale-``s`` replica of a full-size
    workload.

    At full scale the paper's cache holds only a small fraction of the
    streamed prompt tokens (e.g. ~110k tokens vs ~5.4M for Movies), so LRU
    eviction — and with it the benefit of GGR's row grouping — is central
    to the measured hit rates. A scaled-down dataset against a full-size
    cache would hide that effect entirely; this helper shrinks capacity
    proportionally, floored at what one full batch needs to make progress.

    The result is always at least one ``block_tokens`` block, so paged
    admission (which floors capacity to whole blocks) never sees a
    zero-block pool: ``prompt_tokens_estimate=0`` at tiny scales used to
    yield a 0-token capacity that surfaced as a deep ``ServingError`` from
    ``BlockManager.__init__``. Nonsensical inputs raise :class:`ReproError`
    up front instead.
    """
    from repro.llm.costmodel import CostModel

    if scale <= 0:
        raise ReproError(f"scale must be positive, got {scale}")
    if prompt_tokens_estimate < 0:
        raise ReproError(
            f"prompt_tokens_estimate must be >= 0, got {prompt_tokens_estimate}"
        )
    if max_batch_size <= 0:
        raise ReproError(f"max_batch_size must be positive, got {max_batch_size}")
    if block_tokens <= 0:
        raise ReproError(f"block_tokens must be positive, got {block_tokens}")

    cap_full = CostModel(model, cluster).kv_capacity_tokens
    # With prefix caching the running batch shares most prompt KV, so the
    # floor only needs a fraction of batch x prompt to keep admission going.
    batch_floor = int(max_batch_size * prompt_tokens_estimate * 0.75)
    scaled = int(cap_full * min(1.0, scale))
    return max(min(cap_full, max(batch_floor, scaled)), block_tokens)


def run_query(
    query: BenchmarkQuery,
    dataset: Dataset,
    policy: Policy,
    model: ModelSpec = LLAMA3_8B,
    cluster: Cluster = CLUSTER_1XL4,
    ggr_config: Optional[GGRConfig] = None,
    answerer: Optional[Callable] = None,
    seed: int = 0,
    max_batch_size: int = 64,
    kv_capacity_tokens: Optional[int] = None,
    kv_accounting: str = "auto",
    block_tokens: int = 16,
    tokenizer: Optional[HashTokenizer] = None,
) -> RunResult:
    """Run ``query`` over ``dataset`` under ``policy``; returns metrics.

    A fresh engine (empty prefix cache) is created per run, matching the
    paper's per-query measurement methodology. Multi-stage (T3) queries
    share one engine across stages, like a long-lived server would.
    ``kv_accounting``/``block_tokens`` select the engine's admission model
    (paged block-granular by default; see :class:`repro.llm.engine.EngineConfig`).
    ``tokenizer`` lets callers share one tokenizer — and with it the
    tokenizer-level encode cache — across runs; prompts are then encoded
    once per sweep instead of once per run. Metrics are unaffected: the
    hash tokenizer's text split is vocabulary-independent, so a shared
    (warm) vocabulary yields different ids but identical token counts and
    prefix structure.
    """
    if query.dataset != dataset.name.lower():
        raise ReproError(
            f"query {query.query_id} expects dataset {query.dataset!r}, got {dataset.name!r}"
        )
    client = SimulatedLLMClient(
        model=model,
        cluster=cluster,
        engine_config=EngineConfig(
            enable_prefix_cache=policy.cache_enabled,
            max_batch_size=max_batch_size,
            kv_capacity_tokens=kv_capacity_tokens,
            kv_accounting=kv_accounting,
            block_tokens=block_tokens,
        ),
        tokenizer=tokenizer,
    )
    runtime = LLMRuntime(
        client=client,
        policy=policy.reorder_policy,
        fds=dataset.fds,
        ggr_config=ggr_config,
        answerer=answerer or WorkloadAnswerer(dataset, query, seed=seed),
    )

    table = dataset.table
    if query.qtype == "T3":
        assert query.stage1_prompt and query.stage1_fields
        stage1 = runtime.execute(table, LLMExpr(query.stage1_prompt, query.stage1_fields))
        mask = [a == query.stage1_keep for a in stage1]
        table = table.filter(mask)
    runtime.execute(table, LLMExpr(query.prompt, query.fields))

    prompt_tokens = cached_tokens = prefill_tokens = decode_tokens = 0
    peak = batch = peak_blocks = frag = blk = 0
    acct = "tokens"
    sched_num = sched_den = 0.0
    request_metrics = []
    for call in runtime.calls:
        er = call.engine_result
        if er is not None:
            request_metrics.extend(er.request_metrics)
            prompt_tokens += er.prompt_tokens
            cached_tokens += er.cached_tokens
            prefill_tokens += er.prefill_tokens
            decode_tokens += er.decode_tokens
            peak = max(peak, er.peak_kv_tokens)
            batch = max(batch, er.max_batch_seen)
            if er.peak_kv_blocks > peak_blocks:
                peak_blocks = er.peak_kv_blocks
                frag = er.fragmentation_tokens
            acct = er.kv_accounting
            blk = max(blk, er.block_tokens)
        # Weight each stage's schedule-level PHR by its prompt volume (the
        # runtime's scheduled-token estimate when the stage issued no
        # engine calls), so a multi-stage T3 query reports a whole-query
        # figure instead of only the last stage's — and an empty stage
        # contributes nothing rather than an IndexError.
        weight = er.prompt_tokens if er is not None else call.scheduled_prompt_tokens
        sched_num += call.schedule_phr * weight
        sched_den += weight
    slo = compute_slo(request_metrics, by_tenant=False)
    return RunResult(
        query_id=query.query_id,
        dataset=dataset.name,
        policy=policy.name,
        model=model.name,
        engine_seconds=runtime.total_engine_seconds,
        solver_seconds=runtime.total_solver_seconds,
        phr=(cached_tokens / prompt_tokens) if prompt_tokens else 0.0,
        schedule_phr=(sched_num / sched_den) if sched_den else 0.0,
        exact_phc=sum(c.exact_phc for c in runtime.calls),
        prompt_tokens=prompt_tokens,
        cached_tokens=cached_tokens,
        prefill_tokens=prefill_tokens,
        decode_tokens=decode_tokens,
        n_rows=dataset.n_rows,
        n_llm_calls=len(runtime.calls),
        peak_kv_tokens=peak,
        max_batch_seen=batch,
        kv_accounting=acct,
        block_tokens=blk,
        peak_kv_blocks=peak_blocks,
        fragmentation_tokens=frag,
        n_distinct_llm_rows=sum(c.n_distinct for c in runtime.calls),
        dedup_saved_prompt_tokens=runtime.total_dedup_saved_prompt_tokens,
        memo_hits=runtime.total_memo_hits,
        queueing_p95_s=slo.queueing.p95,
        ttft_p95_s=slo.ttft.p95,
        e2e_p95_s=slo.e2e.p95,
    )


def run_policies(
    query: BenchmarkQuery,
    dataset: Dataset,
    policies: Optional[Sequence[Policy]] = None,
    **kwargs,
) -> Dict[str, RunResult]:
    """Run one query under several policies (fresh engine each).

    All policies share one tokenizer (unless the caller passes their own),
    so each distinct prompt in the sweep is encoded and packed once — the
    per-policy engines stay fresh, only the encode cache is warm."""
    from repro.bench.policies import DEFAULT_POLICIES

    kwargs.setdefault("tokenizer", HashTokenizer())
    out: Dict[str, RunResult] = {}
    for policy in policies or DEFAULT_POLICIES:
        out[policy.name] = run_query(query, dataset, policy, **kwargs)
    return out


def emit_perf_records(
    results: Dict[str, RunResult],
    area: str = "bench",
    system: str = "Cache (GGR)",
    baseline: str = "No Cache",
    min_speedup: float = 1.0,
    directory: Optional[str] = None,
) -> Dict[str, dict]:
    """Emit perf-trajectory records for one ``run_policies`` sweep.

    Writes two records per (query, dataset) into ``BENCH_<area>.json``
    (see :mod:`repro.bench.perf`): the system policy's simulated JCT
    speedup over the baseline policy, and the system's prefix hit rate.
    Both are ratios of *simulated* quantities — fully deterministic, so
    the regression tolerance guards modeling changes, not machine noise.
    """
    from repro.bench import perf

    sys_res = results[system]
    base_res = results[baseline]
    prefix = f"{sys_res.query_id}_{sys_res.dataset}".lower()
    speedup = (
        base_res.end_to_end_seconds / sys_res.end_to_end_seconds
        if sys_res.end_to_end_seconds
        else 0.0
    )
    return {
        "speedup": perf.record(
            area,
            f"{prefix}_jct_speedup",
            speedup,
            f">= {min_speedup}",
            directory=directory,
        ),
        "phr": perf.record(
            area,
            f"{prefix}_phr",
            sys_res.phr,
            ">= 0.0",
            directory=directory,
        ),
    }
