"""Table 6 (Appendix D.1): GGR vs the OPHR oracle on small table prefixes.

The paper runs OPHR on the first 10-200 rows of each dataset (PDMX cut to
10 columns) with a 2-hour timeout; GGR lands within ~2% of the optimal
prefix hit rate while being orders of magnitude faster.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bench.experiments.base import dataset
from repro.bench.reporting import ExperimentOutput, ResultTable, default_scale, fmt_pct
from repro.core.ggr import GGRConfig
from repro.core.reorder import reorder
from repro.errors import SolverError

PAPER_TABLE6 = {
    # dataset: (paper rows, OPHR PHR %, GGR PHR %, OPHR seconds, GGR seconds)
    "movies": (50, 0.806, 0.806, 2556.0, 0.05),
    "products": (25, 0.197, 0.185, 357.0, 0.06),
    "bird": (50, 0.775, 0.762, 0.43, 0.05),
    "pdmx": (25, 0.294, 0.286, 822.0, 0.05),
    "fever": (50, 0.073, 0.069, 110.0, 0.23),
    "beer": (10, 0.257, 0.256, 1269.0, 0.08),
    "squad": (10, 0.340, 0.340, 1.6, 0.05),
}

#: Default prefix sizes keep OPHR tractable in a benchmark run; raise
#: ``rows`` (and the time limit) to approach the paper's sizes.
DEFAULT_ROWS = {
    "movies": 12, "products": 10, "bird": 16, "pdmx": 8,
    "fever": 10, "beer": 8, "squad": 8,
}

PDMX_COLUMNS = 10


def run(
    scale: Optional[float] = None,
    seed: int = 0,
    rows: Optional[Dict[str, int]] = None,
    time_limit_s: float = 60.0,
) -> ExperimentOutput:
    scale = scale if scale is not None else default_scale()
    rows = rows or DEFAULT_ROWS
    out = ExperimentOutput(name="Table 6 (D.1): GGR vs OPHR")
    table = ResultTable(
        "Prefix hit rate and solver runtime on dataset prefixes",
        ["Dataset-rows", "OPHR PHR", "GGR PHR", "Diff", "OPHR (s)", "GGR (s)", "Paper diff"],
    )
    deep = GGRConfig(max_row_depth=64, max_col_depth=64)
    for name, n in rows.items():
        ds = dataset(name, scale, seed)
        sub = ds.table.to_reorder_table()
        if name == "pdmx":
            sub = sub.select_fields(list(sub.fields[:PDMX_COLUMNS]))
        sub = sub.head(n)
        ggr_res = reorder(sub, policy="ggr", fds=ds.fds.restrict(sub.fields), config=deep)
        paper_rows, p_ophr, p_ggr, *_ = PAPER_TABLE6[name]
        try:
            ophr_res = reorder(sub, policy="ophr")
            diff = ggr_res.exact_phr - ophr_res.exact_phr
            assert ggr_res.exact_phc <= ophr_res.exact_phc, "OPHR must dominate"
            table.add_row(
                f"{ds.name}-{n}",
                fmt_pct(ophr_res.exact_phr),
                fmt_pct(ggr_res.exact_phr),
                f"{100 * diff:+.1f}pp",
                f"{ophr_res.solver_seconds:.2f}",
                f"{ggr_res.solver_seconds:.3f}",
                f"{100 * (p_ggr - p_ophr):+.1f}pp (at {paper_rows} rows)",
            )
            out.metrics[f"{name}.ophr_phr"] = ophr_res.exact_phr
            out.metrics[f"{name}.ggr_phr"] = ggr_res.exact_phr
            out.metrics[f"{name}.ophr_seconds"] = ophr_res.solver_seconds
            out.metrics[f"{name}.ggr_seconds"] = ggr_res.solver_seconds
        except SolverError as exc:
            table.add_row(
                f"{ds.name}-{n}", "timeout", fmt_pct(ggr_res.exact_phr), "-",
                f">{time_limit_s:.0f}", f"{ggr_res.solver_seconds:.3f}", str(exc)[:24],
            )
            out.metrics[f"{name}.ggr_phr"] = ggr_res.exact_phr
    out.tables.append(table)
    out.notes.append(
        "GGR tracks the oracle within a couple of percentage points while "
        "running orders of magnitude faster (paper: hours vs <0.25 s)."
    )
    return out
