"""Table 7 (Appendix D.2): filter queries with Llama-3.2-1B on one L4.

The paper finds similar prefix hit rates to the 8B runs but smaller
runtime gains (1.2-1.5x): the 1B model leaves so much free GPU memory
that large batches are possible even without sharing, so caching's
memory-relief benefit shrinks.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments.base import FILTER_DATASETS, run_query_policies
from repro.bench.policies import CACHE_GGR, CACHE_ORIGINAL
from repro.bench.reporting import ExperimentOutput, ResultTable, default_scale, fmt_pct
from repro.llm.models import LLAMA3_1B

PAPER_TABLE7 = {
    # dataset: (runtime ratio orig/GGR, orig PHR, GGR PHR)
    "bird": (1.5, 0.104, 0.840),
    "movies": (1.3, 0.293, 0.821),
    "pdmx": (1.3, 0.120, 0.560),
    "products": (1.4, 0.241, 0.821),
    "beer": (1.2, 0.480, 0.739),
}


def run(scale: Optional[float] = None, seed: int = 0) -> ExperimentOutput:
    scale = scale if scale is not None else default_scale()
    out = ExperimentOutput(name="Table 7 (D.2): Llama-3.2-1B filter queries")
    table = ResultTable(
        f"Original vs GGR at scale={scale} (paper values in parentheses)",
        ["Dataset", "Runtime orig/GGR (paper)", "Orig PHR (paper)", "GGR PHR (paper)"],
    )
    for ds_name in FILTER_DATASETS:
        p_ratio, p_orig, p_ggr = PAPER_TABLE7[ds_name]
        _, res = run_query_policies(
            f"{ds_name}-T1", scale, seed,
            policies=(CACHE_ORIGINAL, CACHE_GGR),
            model=LLAMA3_1B,
        )
        orig = res["Cache (Original)"]
        ggr = res["Cache (GGR)"]
        ratio = orig.engine_seconds / ggr.engine_seconds if ggr.engine_seconds else 0.0
        table.add_row(
            ds_name,
            f"{ratio:.1f}x ({p_ratio}x)",
            f"{fmt_pct(orig.phr)} ({fmt_pct(p_orig)})",
            f"{fmt_pct(ggr.phr)} ({fmt_pct(p_ggr)})",
        )
        out.metrics[f"{ds_name}.ratio"] = ratio
        out.metrics[f"{ds_name}.orig_phr"] = orig.phr
        out.metrics[f"{ds_name}.ggr_phr"] = ggr.phr
    out.tables.append(table)
    out.notes.append(
        "PHRs match the 8B runs (reordering is model-independent); runtime "
        "gains shrink because the 1B model is less compute/memory bound."
    )
    return out
