"""Fig. 6: accuracy of original vs GGR orderings, 3 judges x 6 datasets,
10 000-run statistical bootstrap (§6.4).

The reproduction claim: all deltas within ±5% except FEVER on the 8B
judge, where GGR's move of the ``claim`` field to the end of the prompt
*helps* by ~14%.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.accuracy.bootstrap import compare_orderings
from repro.accuracy.judge import JUDGES, SimulatedJudge
from repro.bench.experiments.base import dataset
from repro.bench.queries import FILTER_PROMPTS, RAG_PROMPTS
from repro.bench.reporting import ExperimentOutput, ResultTable, default_scale
from repro.relational.expressions import LLMExpr
from repro.relational.llm_functions import LLMRuntime

#: Paper Fig. 6 median accuracy deltas (GGR - original), in percent.
PAPER_FIG6 = {
    "llama3-8b": {"movies": 3, "products": -1, "bird": 0, "pdmx": 1, "beer": -6, "fever": 14.2},
    "llama3-70b": {"movies": 4, "products": 1, "bird": 1, "pdmx": -1, "beer": -3, "fever": 1.7},
    "gpt-4o": {"movies": -3, "products": -2, "bird": -1, "pdmx": 4, "beer": -3, "fever": -2.4},
}

DATASETS = ("movies", "products", "bird", "pdmx", "beer", "fever")


def run(
    scale: Optional[float] = None,
    seed: int = 0,
    n_boot: int = 10_000,
) -> ExperimentOutput:
    scale = scale if scale is not None else default_scale()
    out = ExperimentOutput(name="Fig 6: accuracy, original vs GGR ordering")
    for judge_key, spec in JUDGES.items():
        table = ResultTable(
            f"{spec.name}: bootstrap medians over {n_boot} resamples",
            ["Dataset", "Original", "GGR", "Delta (paper)"],
        )
        for ds_name in DATASETS:
            ds = dataset(ds_name, scale, seed)
            judge = SimulatedJudge(
                spec, ds.name, ds.labels, ds.label_domain, ds.key_field, seed=seed
            )
            prompt = (
                RAG_PROMPTS[ds_name] if ds_name in RAG_PROMPTS else FILTER_PROMPTS[ds_name]
            )
            correctness: Dict[str, list] = {}
            for policy in ("original", "ggr"):
                runtime = LLMRuntime(policy=policy, fds=ds.fds, answerer=judge.answerer)
                answers = runtime.execute(ds.table, LLMExpr(prompt, ("*",)))
                correctness[policy] = judge.grade(answers)
            cmp = compare_orderings(
                correctness["original"], correctness["ggr"], n_boot=n_boot, seed=seed
            )
            paper_delta = PAPER_FIG6[judge_key][ds_name]
            table.add_row(
                ds.name,
                f"{100 * cmp.median_a:.1f}%",
                f"{100 * cmp.median_b:.1f}%",
                f"{100 * cmp.median_diff:+.1f}% ({paper_delta:+.1f}%)",
            )
            out.metrics[f"{judge_key}.{ds_name}.delta"] = cmp.median_diff
            out.metrics[f"{judge_key}.{ds_name}.original"] = cmp.median_a
            out.metrics[f"{judge_key}.{ds_name}.ggr"] = cmp.median_b
        out.tables.append(table)
    out.notes.append(
        "Claim reproduced when every |delta| <= ~5% except llama3-8b on "
        "FEVER, which improves by >10% (claim moved to the prompt's end)."
    )
    return out
