"""Fig. 5: filter queries on Llama-3-70B (8xL4, tensor parallel).

The paper compares Cache (Original) vs Cache (GGR) only at this size.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments.base import FILTER_DATASETS, run_query_policies
from repro.bench.policies import CACHE_GGR, CACHE_ORIGINAL
from repro.bench.reporting import (
    ExperimentOutput,
    ResultTable,
    default_scale,
    fmt_seconds,
    fmt_speedup,
)
from repro.llm.hardware import CLUSTER_8XL4
from repro.llm.models import LLAMA3_70B

PAPER_FIG5 = {"movies": 3.2, "products": 3.3, "bird": 2.6, "pdmx": 1.9, "beer": 2.2}


def run(scale: Optional[float] = None, seed: int = 0) -> ExperimentOutput:
    scale = scale if scale is not None else default_scale()
    out = ExperimentOutput(name="Fig 5: filter queries on Llama-3-70B (8xL4)")
    table = ResultTable(
        f"Runtime at scale={scale} (simulated seconds)",
        ["Query", "Cache (Original)", "Cache (GGR)", "Speedup (paper)"],
    )
    for ds_name in FILTER_DATASETS:
        qid = f"{ds_name}-T1"
        _, res = run_query_policies(
            qid, scale, seed,
            policies=(CACHE_ORIGINAL, CACHE_GGR),
            model=LLAMA3_70B,
            cluster=CLUSTER_8XL4,
        )
        orig = res["Cache (Original)"].engine_seconds
        ggr = res["Cache (GGR)"].engine_seconds
        table.add_row(
            qid,
            fmt_seconds(orig),
            fmt_seconds(ggr),
            f"{fmt_speedup(orig, ggr)} ({PAPER_FIG5[ds_name]}x)",
        )
        out.metrics[f"{qid}.speedup"] = orig / ggr if ggr else 0.0
    out.tables.append(table)
    out.notes.append(
        "Trend matches the 8B runs (Fig 3a): same hit rates, similar "
        "relative gains at 70B scale."
    )
    return out
