"""Table 4: estimated cost savings from measured PHRs under both pricing
models, assuming caching at arbitrary token lengths (§6.3)."""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments.table2 import measure_phr
from repro.bench.reporting import ExperimentOutput, ResultTable, default_scale, fmt_pct
from repro.llm.pricing import anthropic_claude35_sonnet, estimated_savings, openai_gpt4o_mini

PAPER_TABLE4 = {
    # dataset: (orig PHR, GGR PHR, OpenAI savings, Anthropic savings)
    "movies": (0.346, 0.857, 0.31, 0.73),
    "products": (0.267, 0.833, 0.33, 0.73),
    "bird": (0.104, 0.848, 0.39, 0.79),
    "pdmx": (0.118, 0.566, 0.24, 0.48),
    "beer": (0.499, 0.801, 0.20, 0.55),
    "fever": (0.112, 0.674, 0.30, 0.60),
    "squad": (0.110, 0.697, 0.31, 0.63),
}


def run(scale: Optional[float] = None, seed: int = 0) -> ExperimentOutput:
    scale = scale if scale is not None else default_scale()
    out = ExperimentOutput(name="Table 4: estimated savings from measured PHR")
    openai = openai_gpt4o_mini()
    anthropic = anthropic_claude35_sonnet()
    table = ResultTable(
        f"PHR measured at scale={scale}; savings = 1 - cost(GGR)/cost(Original)",
        ["Dataset", "PHR orig (paper)", "PHR GGR (paper)",
         "OpenAI savings (paper)", "Anthropic savings (paper)"],
    )
    for ds_name, (orig, ggr) in measure_phr(scale, seed).items():
        p_orig, p_ggr, p_oa, p_an = PAPER_TABLE4[ds_name]
        s_oa = estimated_savings(orig, ggr, openai)
        s_an = estimated_savings(orig, ggr, anthropic)
        table.add_row(
            ds_name,
            f"{fmt_pct(orig)} ({fmt_pct(p_orig)})",
            f"{fmt_pct(ggr)} ({fmt_pct(p_ggr)})",
            f"{fmt_pct(s_oa)} ({fmt_pct(p_oa)})",
            f"{fmt_pct(s_an)} ({fmt_pct(p_an)})",
        )
        out.metrics[f"{ds_name}.openai_savings"] = s_oa
        out.metrics[f"{ds_name}.anthropic_savings"] = s_an
    out.tables.append(table)
    out.notes.append(
        "Closed form: cost(phr) = (1-phr) + phr*cached_ratio per input "
        "token; Anthropic's 10% read rate explains its larger savings."
    )
    return out
