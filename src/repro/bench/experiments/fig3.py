"""Fig. 3: end-to-end runtimes for filter (3a) and projection + RAG (3b)
queries under No Cache / Cache (Original) / Cache (GGR) on Llama-3-8B."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bench.experiments.base import FILTER_DATASETS, RAG_DATASETS, run_query_policies
from repro.bench.reporting import (
    ExperimentOutput,
    ResultTable,
    default_scale,
    fmt_seconds,
    fmt_speedup,
)

#: Paper speedups of Cache (GGR): (over No Cache, over Cache (Original)).
PAPER_FIG3A = {
    "movies": (3.8, 3.0), "products": (2.5, 2.7), "bird": (3.8, 2.6),
    "pdmx": (2.1, 1.8), "beer": (3.8, 2.0),
}
PAPER_FIG3B = {
    "movies": (3.3, 2.4), "products": (2.6, 2.4), "bird": (3.7, 3.4),
    "pdmx": (1.9, 1.9), "beer": (2.4, 1.5), "fever": (1.9, 1.8),
    "squad": (1.8, 1.7),
}


def _run(
    name: str,
    query_ids: Sequence[str],
    paper: dict,
    scale: float,
    seed: int,
) -> ExperimentOutput:
    out = ExperimentOutput(name=name)
    table = ResultTable(
        f"Runtime by policy at scale={scale} (simulated seconds)",
        ["Query", "No Cache", "Cache (Original)", "Cache (GGR)",
         "GGR vs NoCache (paper)", "GGR vs Original (paper)"],
    )
    for qid in query_ids:
        ds_name = qid.split("-")[0]
        _, res = run_query_policies(qid, scale, seed)
        nc = res["No Cache"].engine_seconds
        orig = res["Cache (Original)"].engine_seconds
        ggr = res["Cache (GGR)"].engine_seconds
        p_nc, p_orig = paper.get(ds_name, (None, None))
        table.add_row(
            qid,
            fmt_seconds(nc),
            fmt_seconds(orig),
            fmt_seconds(ggr),
            f"{fmt_speedup(nc, ggr)} ({p_nc}x)",
            f"{fmt_speedup(orig, ggr)} ({p_orig}x)",
        )
        out.metrics[f"{qid}.no_cache_s"] = nc
        out.metrics[f"{qid}.original_s"] = orig
        out.metrics[f"{qid}.ggr_s"] = ggr
        out.metrics[f"{qid}.speedup_vs_nocache"] = nc / ggr if ggr else 0.0
        out.metrics[f"{qid}.speedup_vs_original"] = orig / ggr if ggr else 0.0
    out.tables.append(table)
    out.notes.append(
        "Absolute seconds come from the serving simulator; the reproduction "
        "targets are the policy ordering and the speedup bands."
    )
    return out


def run_fig3a(scale: Optional[float] = None, seed: int = 0) -> ExperimentOutput:
    scale = scale if scale is not None else default_scale()
    return _run(
        "Fig 3a: LLM filter queries (Llama-3-8B, 1xL4)",
        [f"{d}-T1" for d in FILTER_DATASETS],
        PAPER_FIG3A,
        scale,
        seed,
    )


def run_fig3b(scale: Optional[float] = None, seed: int = 0) -> ExperimentOutput:
    scale = scale if scale is not None else default_scale()
    return _run(
        "Fig 3b: LLM projection + RAG queries (Llama-3-8B, 1xL4)",
        [f"{d}-T2" for d in FILTER_DATASETS] + [f"{d}-T5" for d in RAG_DATASETS],
        PAPER_FIG3B,
        scale,
        seed,
    )
