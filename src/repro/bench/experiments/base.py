"""Shared helpers for the experiment drivers."""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional, Sequence, Tuple

from repro.bench.policies import CACHE_GGR, CACHE_ORIGINAL, NO_CACHE, Policy
from repro.bench.queries import BenchmarkQuery, get_query
from repro.bench.runner import RunResult, run_query, scaled_kv_capacity
from repro.data.datasets import Dataset, build_dataset
from repro.llm.hardware import CLUSTER_1XL4, Cluster
from repro.llm.models import LLAMA3_8B, ModelSpec

#: Datasets used by the filter-query figures, in the paper's plot order.
FILTER_DATASETS = ("movies", "products", "bird", "pdmx", "beer")
RAG_DATASETS = ("fever", "squad")


@lru_cache(maxsize=32)
def dataset(name: str, scale: float, seed: int) -> Dataset:
    """Datasets are deterministic in (name, scale, seed); cache per process
    so successive experiments reuse them."""
    return build_dataset(name, scale=scale, seed=seed)


def run_query_policies(
    query_id: str,
    scale: float,
    seed: int,
    policies: Sequence[Policy] = (NO_CACHE, CACHE_ORIGINAL, CACHE_GGR),
    model: ModelSpec = LLAMA3_8B,
    cluster: Cluster = CLUSTER_1XL4,
    **kwargs,
) -> Tuple[Dataset, Dict[str, RunResult]]:
    """Run one benchmark query under each policy with memory scaled to the
    dataset scale (see :func:`repro.bench.runner.scaled_kv_capacity`)."""
    query = get_query(query_id)
    ds = dataset(query.dataset, scale, seed)
    cap = scaled_kv_capacity(model, cluster, scale, ds.paper_input_avg)
    results = {}
    for policy in policies:
        results[policy.name] = run_query(
            query, ds, policy, model=model, cluster=cluster,
            kv_capacity_tokens=cap, seed=seed, **kwargs,
        )
    return ds, results
