"""Extension studies beyond the paper's exhibits.

* ``run_partitioned`` — Spark-style partition-parallel GGR: PHC retained
  vs the whole-table solve as partition count grows, for naive and
  clustered partitioning (the deployment question §5 leaves open).
* ``run_refine`` — hill-climbing post-pass on GGR schedules: how much PHC
  the greedy leaves on the table (§4.2.3's tie-breaking discussion).
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments.base import dataset
from repro.bench.reporting import ExperimentOutput, ResultTable, default_scale, fmt_pct
from repro.core.partitioned import partitioned_reorder
from repro.core.refine import refine
from repro.core.reorder import reorder


def run_partitioned(scale: Optional[float] = None, seed: int = 0) -> ExperimentOutput:
    scale = scale if scale is not None else default_scale()
    out = ExperimentOutput(name="Extension: partition-parallel GGR")
    for name in ("movies", "beer"):
        ds = dataset(name, scale, seed)
        rt = ds.table.to_reorder_table()
        whole = reorder(rt, "ggr", fds=ds.fds)
        table = ResultTable(
            f"{ds.name}: PHC retention vs whole-table solve "
            f"(whole PHC={whole.exact_phc})",
            ["Partitions", "Mode", "PHC", "Retained", "Critical path (s)"],
        )
        for k in (2, 4, 8):
            for mode in ("round_robin", "clustered"):
                res = partitioned_reorder(rt, k, mode=mode, fds=ds.fds)
                retained = res.exact_phc / whole.exact_phc if whole.exact_phc else 1.0
                table.add_row(
                    k, mode, res.exact_phc, fmt_pct(retained),
                    f"{res.critical_path_seconds:.3f}",
                )
                out.metrics[f"{name}.{mode}@{k}"] = retained
        out.tables.append(table)
    out.notes.append(
        "Clustered partitioning retains nearly all PHC at 8-way parallelism; "
        "round-robin scatters the value groups and pays for it."
    )
    return out


def run_refine(scale: Optional[float] = None, seed: int = 0) -> ExperimentOutput:
    scale = scale if scale is not None else default_scale()
    out = ExperimentOutput(name="Extension: local-search refinement of GGR")
    table = ResultTable(
        f"Hill climbing on GGR schedules at scale={scale}",
        ["Dataset", "GGR PHC", "Refined PHC", "Gain", "Moves", "Realignments", "Seconds"],
    )
    for name in ("movies", "pdmx", "beer"):
        ds = dataset(name, scale, seed)
        rt = ds.table.to_reorder_table()
        base = reorder(rt, "ggr", fds=ds.fds)
        res = refine(base.schedule, table=rt, time_limit_s=3.0)
        gain = res.improvement / base.exact_phc if base.exact_phc else 0.0
        table.add_row(
            ds.name, base.exact_phc, res.phc_after, fmt_pct(gain),
            res.row_moves, res.field_realignments, f"{res.seconds:.2f}",
        )
        out.metrics[f"{name}.gain"] = gain
        out.metrics[f"{name}.phc_after"] = res.phc_after
        out.metrics[f"{name}.phc_before"] = res.phc_before
    out.tables.append(table)
    out.notes.append(
        "Gains are small (GGR is near-greedy-optimal on these tables) but "
        "never negative — the refiner only accepts improving moves."
    )
    return out
