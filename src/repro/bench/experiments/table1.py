"""Table 1: dataset statistics (rows, fields, avg input/output tokens)."""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments.base import dataset
from repro.bench.queries import FILTER_PROMPTS, RAG_PROMPTS
from repro.bench.reporting import ExperimentOutput, ResultTable, default_scale
from repro.core.table import Cell
from repro.llm.prompts import build_prompt
from repro.llm.tokenizer import HashTokenizer

PAPER = {
    "Movies": (15000, 8, 276),
    "Products": (14890, 8, 377),
    "BIRD": (14920, 4, 765),
    "PDMX": (10000, 57, 738),
    "Beer": (28479, 8, 156),
    "SQuAD": (22665, 5, 1047),
    "FEVER": (19929, 5, 1302),
}

_ORDER = ("movies", "products", "bird", "pdmx", "beer", "squad", "fever")


def measure_input_tokens(ds, sample_rows: int = 50) -> int:
    """Average tokenized prompt length over a row sample (the Table 1
    ``input_avg`` metric)."""
    tok = HashTokenizer()
    prompt = FILTER_PROMPTS.get(ds.name.lower()) or RAG_PROMPTS.get(ds.name.lower(), "q")
    table = ds.table
    n = min(sample_rows, table.n_rows)
    total = 0
    for i in range(n):
        row = table.row(i)
        cells = tuple(Cell(f, "" if v is None else str(v)) for f, v in row.items())
        total += tok.count(build_prompt(prompt, cells))
    return total // max(1, n)


def run(scale: Optional[float] = None, seed: int = 0) -> ExperimentOutput:
    scale = scale if scale is not None else default_scale()
    out = ExperimentOutput(name="Table 1: dataset statistics")
    t = ResultTable(
        f"Datasets at scale={scale} (paper columns in parentheses)",
        ["Dataset", "n_rows (paper)", "n_fields (paper)", "input_avg (paper)", "output_avg per type"],
    )
    for name in _ORDER:
        ds = dataset(name, scale, seed)
        paper_rows, paper_fields, paper_in = PAPER[ds.name]
        measured_in = measure_input_tokens(ds)
        outs = ", ".join(f"{k}:{v}" for k, v in sorted(ds.output_tokens.items()))
        t.add_row(
            ds.name,
            f"{ds.n_rows} ({paper_rows})",
            f"{len(ds.table.fields)} ({paper_fields})",
            f"{measured_in} ({paper_in})",
            outs,
        )
        out.metrics[f"{name}.rows"] = ds.n_rows
        out.metrics[f"{name}.fields"] = len(ds.table.fields)
        out.metrics[f"{name}.input_avg"] = measured_in
        out.metrics[f"{name}.paper_input_avg"] = paper_in
    out.tables.append(t)
    out.notes.append(
        "Row counts scale with --scale; field counts and token-length "
        "profiles are the reproduction targets."
    )
    return out
