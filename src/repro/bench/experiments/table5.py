"""Table 5: GGR solver time per dataset (§6.5).

The paper reports < 15 s per dataset at full size with row recursion
depth 4 and column recursion depth 2 — under 0.01% of query runtime.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments.base import dataset
from repro.bench.reporting import ExperimentOutput, ResultTable, default_scale
from repro.core.reorder import reorder

PAPER_TABLE5 = {
    "movies": 3.3, "products": 4.5, "bird": 1.2, "pdmx": 12.6,
    "beer": 8.0, "fever": 5.6, "squad": 4.5,
}


def run(scale: Optional[float] = None, seed: int = 0) -> ExperimentOutput:
    scale = scale if scale is not None else default_scale()
    out = ExperimentOutput(name="Table 5: GGR solver time")
    table = ResultTable(
        f"Solver wall-clock at scale={scale} (paper seconds at full scale)",
        ["Dataset", "Rows", "Fields", "Solver (s)", "Paper full-scale (s)"],
    )
    for name, paper_s in PAPER_TABLE5.items():
        ds = dataset(name, scale, seed)
        result = reorder(ds.table.to_reorder_table(), policy="ggr", fds=ds.fds)
        table.add_row(
            ds.name, ds.n_rows, len(ds.table.fields),
            f"{result.solver_seconds:.2f}", paper_s,
        )
        out.metrics[f"{name}.solver_seconds"] = result.solver_seconds
        out.metrics[f"{name}.rows"] = ds.n_rows
    out.tables.append(table)
    out.notes.append(
        "Run with REPRO_SCALE=1.0 for full-size datasets; solver time must "
        "stay far below the query's serving time."
    )
    return out
