"""Fig. 1: the two fixed-field-ordering worst cases from §3.2.

Fig 1a: first field unique, remaining m-1 fields constant — the default
order scores PHC 0, the optimized order scores (n-1)(m-1)w².
Fig 1b: m non-overlapping groups of x identical values, one per field —
any fixed order captures one group (x-1)w², per-row ordering captures all
m of them: an m-fold gap.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.reporting import ExperimentOutput, ResultTable
from repro.core.fixed import best_fixed_field_schedule
from repro.core.ggr import GGRConfig, ggr
from repro.core.ordering import RequestSchedule
from repro.core.phc import phc
from repro.core.table import ReorderTable


def fig1a_table(n: int, m: int, value_len: int = 4) -> ReorderTable:
    shared = "s" * value_len
    fields = [f"f{i}" for i in range(m)]
    rows = [tuple([f"id{r:04d}"] + [shared] * (m - 1)) for r in range(n)]
    return ReorderTable(fields, rows)


def fig1b_table(x: int, m: int, value_len: int = 4) -> ReorderTable:
    fields = [f"f{i}" for i in range(m)]
    rows, uid = [], 0
    for g in range(m):
        for _ in range(x):
            row = []
            for c in range(m):
                if c == g:
                    row.append(f"G{g}".ljust(value_len, "g"))
                else:
                    row.append(f"u{uid:05d}".ljust(value_len, "u"))
                    uid += 1
            rows.append(tuple(row))
    return ReorderTable(fields, rows)


def run(scale: Optional[float] = None, seed: int = 0, n: int = 24, m: int = 6, x: int = 8) -> ExperimentOutput:
    out = ExperimentOutput(name="Fig 1: fixed field ordering case study")

    # --- Fig 1a -----------------------------------------------------------
    ta = fig1a_table(n, m)
    w = len("s" * 4) ** 2
    identity_phc = phc(RequestSchedule.identity(ta))
    _, ggr_sched, _ = ggr(ta)
    ggr_phc = phc(ggr_sched)
    theory_a = (n - 1) * (m - 1) * w
    t1 = ResultTable(
        f"Fig 1a: unique first field (n={n}, m={m})",
        ["Ordering", "PHC", "Theory"],
    )
    t1.add_row("Fixed (default)", identity_phc, 0)
    t1.add_row("Per-row (GGR)", ggr_phc, theory_a)
    out.tables.append(t1)
    out.metrics["fig1a.identity"] = identity_phc
    out.metrics["fig1a.ggr"] = ggr_phc
    out.metrics["fig1a.theory"] = theory_a

    # --- Fig 1b -----------------------------------------------------------
    tb = fig1b_table(x, 3)
    group_w = len("G0".ljust(4, "g")) ** 2
    best_fixed_phc, _ = best_fixed_field_schedule(tb)
    cfg = GGRConfig(max_row_depth=16, max_col_depth=16)
    _, sched_b, _ = ggr(tb, config=cfg)
    ggr_phc_b = phc(sched_b)
    theory_fixed = (x - 1) * group_w
    theory_perrow = 3 * (x - 1) * group_w
    t2 = ResultTable(
        f"Fig 1b: non-overlapping groups (x={x}, m=3)",
        ["Ordering", "PHC", "Theory"],
    )
    t2.add_row("Best fixed order", best_fixed_phc, theory_fixed)
    t2.add_row("Per-row (GGR)", ggr_phc_b, theory_perrow)
    out.tables.append(t2)
    out.metrics["fig1b.fixed"] = best_fixed_phc
    out.metrics["fig1b.ggr"] = ggr_phc_b
    out.metrics["fig1b.gap"] = ggr_phc_b / max(1, best_fixed_phc)
    out.notes.append(
        "Fig 1b gap equals m (=3): per-row reordering is m times better "
        "than any fixed field order on this structure."
    )
    return out
