"""Ablations for the design choices DESIGN.md calls out.

* ``run_fd`` — functional-dependency pruning on/off (PHC and solver time);
* ``run_early_stop`` — recursion-depth sweep (solution quality vs time);
* ``run_fixed_orders`` — the fixed-order family vs per-row GGR;
* ``run_memory`` — KV-capacity sweep: how cache pressure changes the
  GGR-vs-original speedup (the regime argument behind Table 7).
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments.base import dataset, run_query_policies
from repro.bench.policies import CACHE_FIXED_STATS, CACHE_GGR, CACHE_ORIGINAL
from repro.bench.reporting import ExperimentOutput, ResultTable, default_scale, fmt_pct
from repro.bench.runner import scaled_kv_capacity
from repro.core.ggr import GGRConfig
from repro.core.reorder import reorder
from repro.llm.hardware import CLUSTER_1XL4
from repro.llm.models import LLAMA3_8B


def run_fd(scale: Optional[float] = None, seed: int = 0) -> ExperimentOutput:
    scale = scale if scale is not None else default_scale()
    out = ExperimentOutput(name="Ablation: functional-dependency pruning")
    table = ResultTable(
        f"GGR with and without FDs at scale={scale}",
        ["Dataset", "PHC with FDs", "PHC without", "Solver w/ (s)", "Solver w/o (s)"],
    )
    for name in ("movies", "products", "bird", "pdmx", "beer"):
        ds = dataset(name, scale, seed)
        rt = ds.table.to_reorder_table()
        with_fd = reorder(rt, "ggr", fds=ds.fds)
        cfg = GGRConfig(use_fds=False)
        without = reorder(rt, "ggr", fds=ds.fds, config=cfg)
        table.add_row(
            ds.name, with_fd.exact_phc, without.exact_phc,
            f"{with_fd.solver_seconds:.2f}", f"{without.solver_seconds:.2f}",
        )
        out.metrics[f"{name}.phc_with"] = with_fd.exact_phc
        out.metrics[f"{name}.phc_without"] = without.exact_phc
    out.tables.append(table)
    out.notes.append("FDs lift PHC on FD-rich tables (Movies, Beer) at no cost.")
    return out


def run_early_stop(scale: Optional[float] = None, seed: int = 0) -> ExperimentOutput:
    scale = scale if scale is not None else default_scale()
    out = ExperimentOutput(name="Ablation: early-stopping depth sweep")
    depths = [(0, 0), (2, 1), (4, 2), (8, 4), (16, 8)]
    for name in ("movies", "pdmx"):
        ds = dataset(name, scale, seed)
        rt = ds.table.to_reorder_table()
        table = ResultTable(
            f"{ds.name}: (row depth, col depth) vs quality and time",
            ["Depths", "PHC", "Schedule PHR", "Solver (s)", "Fallback rows"],
        )
        for rd, cd in depths:
            cfg = GGRConfig(max_row_depth=rd, max_col_depth=cd)
            res = reorder(rt, "ggr", fds=ds.fds, config=cfg)
            report = res.ggr_report
            table.add_row(
                f"({rd},{cd})", res.exact_phc, fmt_pct(res.exact_phr),
                f"{res.solver_seconds:.2f}",
                report.fallback_rows if report else 0,
            )
            out.metrics[f"{name}.phc@{rd},{cd}"] = res.exact_phc
        out.tables.append(table)
    out.notes.append(
        "The paper's (4,2) captures nearly all of the deep-recursion PHC "
        "at a fraction of the solver time."
    )
    return out


def run_fixed_orders(scale: Optional[float] = None, seed: int = 0) -> ExperimentOutput:
    scale = scale if scale is not None else default_scale()
    out = ExperimentOutput(name="Ablation: fixed field orders vs per-row GGR")
    table = ResultTable(
        f"PHC by policy at scale={scale}",
        ["Dataset", "Original", "Sorted rows", "Fixed (stats)", "GGR"],
    )
    for name in ("movies", "products", "beer"):
        ds = dataset(name, scale, seed)
        rt = ds.table.to_reorder_table()
        scores = {
            p: reorder(rt, p, fds=ds.fds).exact_phc
            for p in ("original", "sorted", "fixed_stats", "ggr")
        }
        table.add_row(ds.name, scores["original"], scores["sorted"],
                      scores["fixed_stats"], scores["ggr"])
        for p, v in scores.items():
            out.metrics[f"{name}.{p}"] = v
    out.tables.append(table)
    out.notes.append(
        "Each step of sophistication helps: row sorting < fixed stats "
        "order < per-row GGR (the paper's m-fold argument in practice)."
    )
    return out


def run_memory(scale: Optional[float] = None, seed: int = 0) -> ExperimentOutput:
    """KV-capacity sweep on beer-T1, the cache-pressure-sensitive query:
    its short repeated fields (beer ids, rating values) chain-match only
    while their combination lattice fits in memory."""
    scale = scale if scale is not None else default_scale()
    out = ExperimentOutput(name="Ablation: KV-capacity sweep (beer-T1)")
    ds = dataset("beer", scale, seed)
    base_cap = scaled_kv_capacity(LLAMA3_8B, CLUSTER_1XL4, scale, ds.paper_input_avg)
    table = ResultTable(
        "GGR-vs-Original as the cache grows",
        ["Capacity (tokens)", "Orig PHR", "GGR PHR", "Speedup"],
    )
    from repro.bench.queries import get_query
    from repro.bench.runner import run_query

    q = get_query("beer-T1")
    for mult in (0.25, 0.5, 1.0, 2.0, 4.0):
        cap = int(base_cap * mult)
        orig = run_query(q, ds, CACHE_ORIGINAL, kv_capacity_tokens=cap, seed=seed)
        ggr = run_query(q, ds, CACHE_GGR, kv_capacity_tokens=cap, seed=seed)
        speed = orig.engine_seconds / ggr.engine_seconds if ggr.engine_seconds else 0.0
        table.add_row(cap, fmt_pct(orig.phr), fmt_pct(ggr.phr), f"{speed:.2f}x")
        out.metrics[f"speedup@{mult}"] = speed
        out.metrics[f"orig_phr@{mult}"] = orig.phr
        out.metrics[f"ggr_phr@{mult}"] = ggr.phr
    out.tables.append(table)
    out.notes.append(
        "GGR's grouped schedule keeps its hits from *adjacency* and barely "
        "needs cache capacity; the unordered baseline's hits come from "
        "resident cache state and grow with memory."
    )
    return out
