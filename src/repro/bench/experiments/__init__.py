"""One experiment module per paper exhibit (see DESIGN.md experiment index).

Every module exposes ``run(scale=None, seed=0, **kwargs) -> ExperimentOutput``.
``EXPERIMENTS`` maps CLI names to those callables.
"""

from repro.bench.experiments import (
    ablations,
    extensions,
    fig1,
    fig3,
    fig4,
    fig5,
    fig6,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)

EXPERIMENTS = {
    "table1": table1.run,
    "fig1": fig1.run,
    "fig3a": fig3.run_fig3a,
    "fig3b": fig3.run_fig3b,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "table7": table7.run,
    "ablation-fd": ablations.run_fd,
    "ablation-early-stop": ablations.run_early_stop,
    "ablation-fixed-orders": ablations.run_fixed_orders,
    "ablation-memory": ablations.run_memory,
    "ext-partitioned": extensions.run_partitioned,
    "ext-refine": extensions.run_refine,
}

__all__ = ["EXPERIMENTS"]
