"""Table 2: prefix hit rate (%) of filter and RAG queries, Original vs GGR."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.bench.experiments.base import FILTER_DATASETS, RAG_DATASETS, run_query_policies
from repro.bench.policies import CACHE_GGR, CACHE_ORIGINAL
from repro.bench.reporting import ExperimentOutput, ResultTable, default_scale, fmt_pct

PAPER_TABLE2 = {
    "movies": (0.35, 0.86), "products": (0.27, 0.83), "bird": (0.10, 0.85),
    "pdmx": (0.12, 0.57), "beer": (0.50, 0.80), "fever": (0.11, 0.67),
    "squad": (0.11, 0.70),
}


def measure_phr(scale: float, seed: int) -> Dict[str, Tuple[float, float]]:
    """Engine-measured PHR (original, GGR) per dataset's T1/T5 query."""
    out: Dict[str, Tuple[float, float]] = {}
    for ds_name in FILTER_DATASETS + RAG_DATASETS:
        qtype = "T5" if ds_name in RAG_DATASETS else "T1"
        _, res = run_query_policies(
            f"{ds_name}-{qtype}", scale, seed,
            policies=(CACHE_ORIGINAL, CACHE_GGR),
        )
        out[ds_name] = (res["Cache (Original)"].phr, res["Cache (GGR)"].phr)
    return out


def run(scale: Optional[float] = None, seed: int = 0) -> ExperimentOutput:
    scale = scale if scale is not None else default_scale()
    out = ExperimentOutput(name="Table 2: prefix hit rates, Original vs GGR")
    table = ResultTable(
        f"Engine-measured PHR at scale={scale} (paper values in parentheses)",
        ["Dataset", "Original (paper)", "GGR (paper)", "Uplift"],
    )
    for ds_name, (orig, ggr) in measure_phr(scale, seed).items():
        p_orig, p_ggr = PAPER_TABLE2[ds_name]
        table.add_row(
            ds_name,
            f"{fmt_pct(orig)} ({fmt_pct(p_orig)})",
            f"{fmt_pct(ggr)} ({fmt_pct(p_ggr)})",
            f"+{fmt_pct(ggr - orig)}",
        )
        out.metrics[f"{ds_name}.original_phr"] = orig
        out.metrics[f"{ds_name}.ggr_phr"] = ggr
    out.tables.append(table)
    out.notes.append("Paper reports 30-75 pp uplifts; GGR must dominate everywhere.")
    return out
