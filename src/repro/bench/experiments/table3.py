"""Table 3: real-API cost experiment on FEVER (§6.3).

Methodology mirrors the paper: 1 000 FEVER rows, each field value
duplicated five times so prompts clear the providers' 1 024-token caching
minimum; the same table is submitted once in original order and once in
GGR order; OpenAI bills cached reads at 50%, Anthropic writes at +25% and
reads at 10% with an explicit breakpoint on the first 1 024 tokens.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.bench.experiments.base import dataset
from repro.bench.queries import RAG_PROMPTS
from repro.bench.reporting import ExperimentOutput, ResultTable, default_scale, fmt_pct
from repro.core.reorder import reorder
from repro.core.table import ReorderTable
from repro.llm.pricing import (
    APICacheSimulator,
    anthropic_claude35_sonnet,
    cost_of,
    openai_gpt4o_mini,
)
from repro.llm.prompts import build_prompt
from repro.llm.tokenizer import HashTokenizer

PAPER_TABLE3 = {
    # (PHR %, savings %) for the GGR ordering.
    "GPT-4o-mini": (0.622, 0.32),
    "Claude 3.5 Sonnet": (0.306, 0.21),
}

DUPLICATION = 5
N_ROWS = 1000


def _duplicated_fever(scale: float, seed: int) -> ReorderTable:
    ds = dataset("fever", scale, seed)
    n = min(N_ROWS, ds.n_rows)
    rows = []
    for i in range(n):
        row = ds.table.row(i)
        rows.append(tuple((" ".join([str(v)] * DUPLICATION)) for v in row.values()))
    return ReorderTable(ds.table.fields, rows)


def _prompt_tokens(table: ReorderTable, policy: str, tok: HashTokenizer) -> List[List[int]]:
    result = reorder(table, policy=policy)
    prompt = RAG_PROMPTS["fever"]
    return [tok.encode(build_prompt(prompt, row.cells)) for row in result.schedule.rows]


def run(scale: Optional[float] = None, seed: int = 0) -> ExperimentOutput:
    scale = scale if scale is not None else default_scale()
    out = ExperimentOutput(name="Table 3: OpenAI / Anthropic API costs on FEVER")
    table = _duplicated_fever(scale, seed)
    tok = HashTokenizer()
    prompts = {p: _prompt_tokens(table, p, tok) for p in ("original", "ggr")}
    output_tokens = [3] * len(table.rows)

    report = ResultTable(
        f"FEVER x{DUPLICATION} duplication, {len(table.rows)} rows",
        ["Model", "Method", "PHR", "Cost ($)", "Savings (paper)"],
    )
    for pricing in (openai_gpt4o_mini(), anthropic_claude35_sonnet()):
        costs = {}
        phrs = {}
        for policy, toks in prompts.items():
            sim = APICacheSimulator(pricing)
            usages = sim.run(toks, output_tokens)
            costs[policy] = cost_of(usages, pricing).total
            total = sum(u.prompt_tokens for u in usages)
            phrs[policy] = sum(u.cached_tokens for u in usages) / total if total else 0.0
        savings = 1.0 - costs["ggr"] / costs["original"] if costs["original"] else 0.0
        p_phr, p_savings = PAPER_TABLE3[pricing.name]
        report.add_row(pricing.name, "Original", fmt_pct(phrs["original"]),
                       f"{costs['original']:.4f}", "-")
        report.add_row(pricing.name, "GGR", f"{fmt_pct(phrs['ggr'])} ({fmt_pct(p_phr)})",
                       f"{costs['ggr']:.4f}", f"{fmt_pct(savings)} ({fmt_pct(p_savings)})")
        key = pricing.provider
        out.metrics[f"{key}.original_cost"] = costs["original"]
        out.metrics[f"{key}.ggr_cost"] = costs["ggr"]
        out.metrics[f"{key}.savings"] = savings
        out.metrics[f"{key}.ggr_phr"] = phrs["ggr"]
        out.metrics[f"{key}.original_phr"] = phrs["original"]
    out.tables.append(report)
    out.notes.append(
        "Original ordering gets ~0% cache hits: without reordering no "
        "shared prefix clears the 1024-token minimum (paper §6.3)."
    )
    return out
