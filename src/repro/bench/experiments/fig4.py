"""Fig. 4: multi-LLM invocation (T3) and aggregation (T4) runtimes."""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments.base import run_query_policies
from repro.bench.reporting import (
    ExperimentOutput,
    ResultTable,
    default_scale,
    fmt_seconds,
    fmt_speedup,
)

#: Paper speedups (over No Cache, over Cache (Original)).
PAPER_FIG4 = {
    "movies-T3": (2.7, 1.7),
    "products-T3": (2.8, 2.2),
    "movies-T4": (3.5, 2.5),
    "products-T4": (3.7, 2.8),
}


def run(scale: Optional[float] = None, seed: int = 0) -> ExperimentOutput:
    scale = scale if scale is not None else default_scale()
    out = ExperimentOutput(name="Fig 4: multi-LLM invocation + aggregation")
    table = ResultTable(
        f"Runtime by policy at scale={scale} (simulated seconds)",
        ["Query", "No Cache", "Cache (Original)", "Cache (GGR)",
         "GGR vs NoCache (paper)", "GGR vs Original (paper)"],
    )
    for qid, (p_nc, p_orig) in PAPER_FIG4.items():
        _, res = run_query_policies(qid, scale, seed)
        nc = res["No Cache"].engine_seconds
        orig = res["Cache (Original)"].engine_seconds
        ggr = res["Cache (GGR)"].engine_seconds
        table.add_row(
            qid,
            fmt_seconds(nc),
            fmt_seconds(orig),
            fmt_seconds(ggr),
            f"{fmt_speedup(nc, ggr)} ({p_nc}x)",
            f"{fmt_speedup(orig, ggr)} ({p_orig}x)",
        )
        out.metrics[f"{qid}.speedup_vs_nocache"] = nc / ggr if ggr else 0.0
        out.metrics[f"{qid}.speedup_vs_original"] = orig / ggr if ggr else 0.0
        out.metrics[f"{qid}.n_llm_calls"] = res["Cache (GGR)"].n_llm_calls
    out.tables.append(table)
    out.notes.append(
        "T3's first invocation runs over distinct review text, so Original "
        "and GGR start even there (paper §6.2) — the gap comes from the "
        "second, metadata-heavy invocation."
    )
    return out
