"""Perf-trajectory records: machine-readable benchmark history per PR.

Benchmarks record headline metrics into ``BENCH_<area>.json`` files —
one record per benchmark: ``{benchmark, value, criterion, commit}`` (plus
an optional per-record ``tolerance``). A committed baseline lives in
``benchmarks/baselines/``; CI reruns the benchmarks, writes fresh files,
and ``python -m repro.bench.perf compare`` fails the build when a fresh
value regresses beyond the tolerance band or stops satisfying its own
criterion.

Records should prefer **ratio-valued** metrics (speedup of fast path over
its in-repo oracle, measured in the same process) over raw seconds: ratios
cancel machine speed, so one tolerance band works on a laptop and a noisy
CI runner alike.

``criterion`` is a string ``"<op> <number>"`` with ``op`` one of ``>=`` or
``<=``; it states both the acceptance bound and the metric's direction
(``>=`` means bigger is better). Example record::

    {"benchmark": "engine_replay_vector_speedup", "value": 2.31,
     "criterion": ">= 2.0", "commit": "6dc5e44"}
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError

#: Default relative regression band: a fresh value may be up to this much
#: worse than the committed baseline before CI fails. Wide enough for
#: shared-runner noise on ratio metrics; per-record ``tolerance`` overrides.
DEFAULT_TOLERANCE = 0.25


def current_commit() -> str:
    """Short git commit hash of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def _parse_criterion(criterion: str) -> Tuple[str, float]:
    parts = criterion.split()
    if len(parts) != 2 or parts[0] not in (">=", "<="):
        raise ReproError(
            f"criterion must be '>= <number>' or '<= <number>', got {criterion!r}"
        )
    return parts[0], float(parts[1])


def satisfies(value: float, criterion: str) -> bool:
    op, bound = _parse_criterion(criterion)
    return value >= bound if op == ">=" else value <= bound


def bench_path(area: str, directory: Optional[str] = None) -> str:
    """``BENCH_<area>.json`` in ``directory`` (default: ``REPRO_BENCH_DIR``
    env var, else the current working directory)."""
    directory = directory or os.environ.get("REPRO_BENCH_DIR") or "."
    return os.path.join(directory, f"BENCH_{area}.json")


def load(path: str) -> Dict[str, dict]:
    """Records of one ``BENCH_*.json`` file keyed by benchmark name."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    records = data.get("records", []) if isinstance(data, dict) else data
    return {r["benchmark"]: r for r in records}


def record(
    area: str,
    benchmark: str,
    value: float,
    criterion: str,
    tolerance: Optional[float] = None,
    directory: Optional[str] = None,
    commit: Optional[str] = None,
) -> dict:
    """Merge one record into ``BENCH_<area>.json`` (upsert by benchmark
    name) and return it. The file keeps a sorted ``records`` list so diffs
    between PRs stay readable."""
    _parse_criterion(criterion)  # validate up front
    path = bench_path(area, directory)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    try:
        existing = load(path)
    except (OSError, ValueError):
        existing = {}
    rec = {
        "benchmark": benchmark,
        "value": round(float(value), 4),
        "criterion": criterion,
        "commit": commit if commit is not None else current_commit(),
    }
    if tolerance is not None:
        rec["tolerance"] = tolerance
    existing[benchmark] = rec
    payload = {"records": [existing[k] for k in sorted(existing)]}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return rec


def compare(
    fresh: Dict[str, dict],
    baseline: Dict[str, dict],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Regressions of ``fresh`` against ``baseline``; empty list == pass.

    For every benchmark present in the baseline:

    * missing from the fresh run -> regression (a silently dropped
      benchmark must not look like a pass);
    * fresh value no longer satisfies the *fresh* criterion -> regression;
    * fresh value worse than baseline beyond the tolerance band (the
      record's own ``tolerance`` when present) -> regression. "Worse"
      follows the criterion's direction.

    Benchmarks only present in the fresh file are new — reported by the
    CLI as info, never a failure.
    """
    problems: List[str] = []
    for name, base in sorted(baseline.items()):
        rec = fresh.get(name)
        if rec is None:
            problems.append(f"{name}: present in baseline but not in fresh run")
            continue
        crit = rec.get("criterion", base.get("criterion"))
        value = float(rec["value"])
        if crit is not None and not satisfies(value, crit):
            problems.append(
                f"{name}: value {value} no longer satisfies criterion {crit!r}"
            )
        op, _ = _parse_criterion(crit) if crit else (">=", 0.0)
        band = base.get("tolerance", tolerance)
        base_value = float(base["value"])
        if op == ">=":
            floor = base_value * (1.0 - band)
            if value < floor:
                problems.append(
                    f"{name}: value {value} regressed below baseline "
                    f"{base_value} - {band:.0%} tolerance (floor {floor:.4f})"
                )
        else:
            ceil = base_value * (1.0 + band)
            if value > ceil:
                problems.append(
                    f"{name}: value {value} regressed above baseline "
                    f"{base_value} + {band:.0%} tolerance (ceiling {ceil:.4f})"
                )
    return problems


def _area_of(path: str) -> str:
    """Area slug from a ``BENCH_<area>.json`` filename (the whole basename
    when the file does not follow the convention)."""
    name = os.path.basename(path)
    if name.startswith("BENCH_") and name.endswith(".json"):
        return name[len("BENCH_") : -len(".json")]
    return name


def show(paths: List[str]) -> Tuple[List[str], List[str]]:
    """Render the per-area perf trajectory as fixed-width table lines.

    Returns ``(lines, errors)``: one table section per readable file
    (benchmark, value, criterion, commit — plus OK/FAIL against the
    record's own criterion), and one error string per unreadable path.
    """
    lines: List[str] = []
    errors: List[str] = []
    for path in paths:
        try:
            records = load(path)
        except FileNotFoundError:
            errors.append(f"missing file {path}")
            continue
        except (OSError, ValueError, KeyError, TypeError) as exc:
            errors.append(f"unreadable file {path} ({exc})")
            continue
        if lines:
            lines.append("")
        lines.append(f"area: {_area_of(path)}  ({path})")
        width = max(
            [len("benchmark")] + [len(name) for name in records]
        )
        lines.append(
            f"{'benchmark':<{width}}  {'value':>10}  {'criterion':<12}"
            f"  {'commit':<8}  status"
        )
        for name in sorted(records):
            rec = records[name]
            value = float(rec["value"])
            crit = rec.get("criterion")
            status = (
                ("OK" if satisfies(value, crit) else "FAIL") if crit else "-"
            )
            lines.append(
                f"{name:<{width}}  {value:>10.4f}  {str(crit or '-'):<12}"
                f"  {str(rec.get('commit', '-')):<8}  {status}"
            )
    return lines, errors


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.perf",
        description="Compare fresh BENCH_*.json records against a baseline, "
        "or render the committed trajectory.",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)
    cmp_p = sub.add_parser("compare", help="diff fresh records vs baseline")
    cmp_p.add_argument("--fresh", required=True, help="fresh BENCH_*.json")
    cmp_p.add_argument("--baseline", required=True, help="committed baseline")
    cmp_p.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"relative regression band (default {DEFAULT_TOLERANCE})",
    )
    show_p = sub.add_parser(
        "show", help="render BENCH_*.json records as per-area tables"
    )
    show_p.add_argument(
        "paths",
        nargs="*",
        help="BENCH_*.json files (default: benchmarks/baselines/BENCH_*.json)",
    )
    args = parser.parse_args(argv)

    if args.cmd == "show":
        paths = args.paths
        if not paths:
            import glob as _glob

            paths = sorted(_glob.glob("benchmarks/baselines/BENCH_*.json"))
        if not paths:
            print(
                "show failed: no BENCH_*.json files found "
                "(pass paths or run from the repo root)",
                file=sys.stderr,
            )
            return 2
        lines, errors = show(paths)
        for line in lines:
            print(line)
        if errors:
            print(f"show failed: {'; '.join(errors)}", file=sys.stderr)
            return 2
        return 0

    # A missing or unreadable record file is an operator error (wrong
    # path, bench step skipped, baseline never committed) — name every
    # offender on one line and exit 2, distinct from a perf regression's
    # exit 1 and never a traceback.
    bad: List[str] = []
    fresh: Dict[str, dict] = {}
    baseline: Dict[str, dict] = {}
    for role, path in (("fresh", args.fresh), ("baseline", args.baseline)):
        try:
            records = load(path)
        except FileNotFoundError:
            bad.append(f"missing {role} file {path}")
            continue
        except (OSError, ValueError, KeyError, TypeError) as exc:
            bad.append(f"unreadable {role} file {path} ({exc})")
            continue
        if role == "fresh":
            fresh = records
        else:
            baseline = records
    if bad:
        print(f"compare failed: {'; '.join(bad)}", file=sys.stderr)
        return 2
    problems = compare(fresh, baseline, tolerance=args.tolerance)
    for name in sorted(set(fresh) - set(baseline)):
        print(f"new benchmark (no baseline yet): {name} = {fresh[name]['value']}")
    for name, rec in sorted(fresh.items()):
        if name in baseline:
            print(
                f"{name}: {baseline[name]['value']} -> {rec['value']} "
                f"(criterion {rec.get('criterion')})"
            )
    if problems:
        print(f"\n{len(problems)} perf regression(s):", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    print("\nno perf regressions")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    raise SystemExit(main())
