"""The serving policies compared throughout the evaluation (§6.1.3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Policy:
    """A (request ordering, prefix cache on/off) pair.

    ``reorder_policy`` names a :data:`repro.core.reorder.POLICIES` entry.
    """

    name: str
    reorder_policy: str
    cache_enabled: bool


#: vLLM without automatic prefix caching, original order.
NO_CACHE = Policy(name="No Cache", reorder_policy="original", cache_enabled=False)

#: Prefix caching on, data in its stored order — the strongest off-the-shelf
#: baseline (what you get by just pointing an engine at the table).
CACHE_ORIGINAL = Policy(name="Cache (Original)", reorder_policy="original", cache_enabled=True)

#: The paper's system: prefix caching plus GGR row/field reordering.
CACHE_GGR = Policy(name="Cache (GGR)", reorder_policy="ggr", cache_enabled=True)

#: Extra ablation baseline: best statistics-driven *fixed* field order.
CACHE_FIXED_STATS = Policy(name="Cache (FixedStats)", reorder_policy="fixed_stats", cache_enabled=True)

DEFAULT_POLICIES: Tuple[Policy, ...] = (NO_CACHE, CACHE_ORIGINAL, CACHE_GGR)
