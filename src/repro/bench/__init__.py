"""Benchmark harness: the 16-query suite and one driver per paper exhibit.

``queries`` defines the benchmark suite (§6.1.2, Appendix A/C), ``policies``
the three serving policies of §6.1.3 (No Cache / Cache (Original) /
Cache (GGR)), ``runner`` executes a query under a policy on the serving
simulator, and ``experiments`` contains one module per table/figure (see
the experiment index in DESIGN.md). Every experiment is reachable from the
CLI (``python -m repro <name>``) and from ``benchmarks/``.
"""

from repro.bench.policies import (
    CACHE_FIXED_STATS,
    CACHE_GGR,
    CACHE_ORIGINAL,
    DEFAULT_POLICIES,
    NO_CACHE,
    Policy,
)
from repro.bench.queries import ALL_QUERIES, BenchmarkQuery, queries_by_type
from repro.bench.runner import RunResult, run_query
from repro.bench.reporting import ExperimentOutput, ResultTable, fmt_speedup

__all__ = [
    "Policy",
    "NO_CACHE",
    "CACHE_ORIGINAL",
    "CACHE_GGR",
    "CACHE_FIXED_STATS",
    "DEFAULT_POLICIES",
    "BenchmarkQuery",
    "ALL_QUERIES",
    "queries_by_type",
    "RunResult",
    "run_query",
    "ResultTable",
    "ExperimentOutput",
    "fmt_speedup",
]
