"""Request schedules: the output format of every reordering solver.

A :class:`RequestSchedule` is the paper's "list of tuples L" (§3.1): a row
order together with a per-row field order. It must be a *permutation* of the
input table — same multiset of rows, each row a permutation of its own cells
— so reordering never changes query semantics, only cache behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.core.table import Cell, OrderedRow, ReorderTable
from repro.errors import SolverError


@dataclass
class RequestSchedule:
    """An ordered list of rows, each with its own field order.

    Attributes
    ----------
    rows:
        :class:`~repro.core.table.OrderedRow` objects in submission order.
        ``rows[i].row_id`` is the index of that row in the source table, so
        LLM outputs can be scattered back to the original row order.
    source_fields:
        The field names of the source table (used for validation).
    """

    rows: List[OrderedRow]
    source_fields: Tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __getstate__(self):
        # Drop the lazily-built metric encoding (see repro.core.phc): it
        # is a pure cache and may hold large numpy matrices.
        state = self.__dict__.copy()
        state.pop("_phc_encoding_cache", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    def row_ids(self) -> List[int]:
        return [r.row_id for r in self.rows]

    def cell_rows(self) -> List[Tuple[Cell, ...]]:
        return [r.cells for r in self.rows]

    def inverse_permutation(self) -> List[int]:
        """``inv[original_row_id] = position in schedule`` for scatter-back."""
        inv = [-1] * len(self.rows)
        for pos, row in enumerate(self.rows):
            if not 0 <= row.row_id < len(self.rows) or inv[row.row_id] != -1:
                raise SolverError(f"schedule is not a row permutation: {self.row_ids()}")
            inv[row.row_id] = pos
        return inv

    def validate_against(self, table: ReorderTable) -> None:
        """Raise :class:`SolverError` unless this schedule is a permutation
        of ``table`` (row-level and within each row)."""
        if len(self.rows) != table.n_rows:
            raise SolverError(
                f"schedule has {len(self.rows)} rows, table has {table.n_rows}"
            )
        seen = set()
        for row in self.rows:
            if row.row_id in seen:
                raise SolverError(f"duplicate row_id {row.row_id} in schedule")
            seen.add(row.row_id)
            if not 0 <= row.row_id < table.n_rows:
                raise SolverError(f"row_id {row.row_id} out of range")
            original = sorted(zip(table.fields, table.rows[row.row_id]))
            scheduled = sorted((c.field, c.value) for c in row.cells)
            if original != scheduled:
                raise SolverError(
                    f"row {row.row_id} is not a permutation of its source cells"
                )

    @staticmethod
    def identity(table: ReorderTable) -> "RequestSchedule":
        """The untouched ordering: original rows, original field order.

        This is the paper's *Cache (Original)* policy (and, with caching
        disabled in the engine, the *No Cache* policy).
        """
        rows = [
            OrderedRow(
                row_id=i,
                cells=tuple(Cell(f, v) for f, v in zip(table.fields, table.rows[i])),
            )
            for i in range(table.n_rows)
        ]
        return RequestSchedule(rows=rows, source_fields=table.fields)

    @staticmethod
    def from_orders(
        table: ReorderTable,
        row_order: Sequence[int],
        field_orders: Iterable[Sequence[int]],
    ) -> "RequestSchedule":
        """Build a schedule from explicit index permutations.

        ``row_order[k]`` is the source row shown at position ``k``;
        ``field_orders`` gives, per *scheduled position*, the column index
        permutation applied to that row.
        """
        rows = []
        for row_id, forder in zip(row_order, field_orders):
            src = table.rows[row_id]
            cells = tuple(Cell(table.fields[c], src[c]) for c in forder)
            rows.append(OrderedRow(row_id=row_id, cells=cells))
        sched = RequestSchedule(rows=rows, source_fields=table.fields)
        sched.validate_against(table)
        return sched
