"""Greedy Group Recursion — paper §4.2, Algorithm 1.

GGR approximates OPHR by committing, at every recursion step, to the single
(value, field) group with the largest estimated hit count instead of trying
them all. Three paper mechanisms are implemented:

* **Functional dependencies** (§4.2.1): fields determined by the chosen
  field ride along in the group prefix and are removed from the recursion.
* **Early stopping + statistics fallback** (§4.2.2): recursion halts at
  configurable row/column depths or when the best group's hit count falls
  below a threshold; the residual sub-table gets a statistics-driven fixed
  field order with lexicographic row sorting.
* **Greedy group selection** (lines 17-23): per-column distinct-value
  grouping with the FD-aware HITCOUNT score of lines 3-8.

Two errata in the printed Algorithm 1 are corrected (and flagged in
DESIGN.md): line 29 prefixes the chosen value onto the wrong sub-layout
(``L_A`` — the rows *without* the value — instead of ``L_B``), and line 6
sums raw FD-inferred cell lengths although PHC is defined over squared
lengths. ``GGRConfig.square_fd_lengths=False`` restores the printed
(non-squared) score for ablation.

Two interchangeable engines implement the identical algorithm:

``"compiled"``
    The default when numpy is available. Runs on the dictionary-encoded
    columnar form from :mod:`repro.core.compiled`: grouping is
    ``np.bincount`` over int32 value codes, HITCOUNT scoring is vectorized
    over whole columns, and the fallback's lexicographic sort is a stable
    ``np.lexsort`` over codes. Tie-breaking replicates the reference
    bit-for-bit (first column in scan order, then first-appearing value),
    so both engines return **identical schedules and scores** — the
    equivalence suite asserts this on randomized tables.
``"python"``
    The original string-path reference, kept as the oracle and as the
    fallback when numpy is missing or ``REPRO_CORE_FASTPATH=0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import compiled as _compiled
from repro.core.compiled import compile_table, fastpath_enabled, schedule_from_layout
from repro.core.fd import FunctionalDependencies
from repro.core.ordering import RequestSchedule
from repro.core.table import ReorderTable
from repro.errors import SolverError

Layout = List[Tuple[int, Tuple[int, ...]]]

ENGINES = ("auto", "compiled", "python")


@dataclass
class GGRConfig:
    """Tunables for GGR.

    Defaults match the configuration the paper reports in Table 5: row
    recursion depth 4, column recursion depth 2. ``hitcount_threshold`` is
    the alternative early-stop trigger (the paper quotes 0.1M for its full
    datasets); 0 disables it. ``engine`` selects the implementation:
    ``"auto"`` uses the compiled columnar fast path when numpy is
    available, ``"python"`` forces the string-path reference oracle.
    """

    max_row_depth: int = 4
    max_col_depth: int = 2
    hitcount_threshold: float = 0.0
    use_fds: bool = True
    square_fd_lengths: bool = True
    stats_score_mode: str = "expected"
    engine: str = "auto"

    def validate(self) -> None:
        if self.max_row_depth < 0 or self.max_col_depth < 0:
            raise SolverError("recursion depth limits must be non-negative")
        if self.hitcount_threshold < 0:
            raise SolverError("hitcount_threshold must be non-negative")
        if self.engine not in ENGINES:
            raise SolverError(f"engine must be one of {ENGINES}, got {self.engine!r}")


@dataclass
class GGRReport:
    """Diagnostics from one GGR run."""

    estimated_phc: float = 0.0
    recursion_steps: int = 0
    fallback_blocks: int = 0
    fallback_rows: int = 0
    groups_chosen: List[Tuple[str, str, int]] = field(default_factory=list)
    """(field, value-preview, group size) per committed greedy choice."""


def _fd_closure(
    table: ReorderTable, fds: FunctionalDependencies
) -> List[Tuple[int, ...]]:
    """FD closure per column index (restricted to this table's fields)."""
    fields = table.fields
    name_to_idx = {f: i for i, f in enumerate(fields)}
    closure: List[Tuple[int, ...]] = []
    for f in fields:
        determined = fds.determined(f)
        closure.append(
            tuple(sorted(name_to_idx[d] for d in determined if d in name_to_idx))
        )
    return closure


def ggr(
    table: ReorderTable,
    fds: Optional[FunctionalDependencies] = None,
    config: Optional[GGRConfig] = None,
) -> Tuple[float, RequestSchedule, GGRReport]:
    """Run GGR; returns ``(estimated_phc, schedule, report)``.

    ``estimated_phc`` equals the exact PHC of the returned schedule whenever
    the supplied FDs hold exactly (the facade in :mod:`repro.core.reorder`
    always recomputes the exact value; tests assert the equality).
    """
    cfg = config or GGRConfig()
    cfg.validate()
    fds = fds if (fds is not None and cfg.use_fds) else FunctionalDependencies.empty()
    report = GGRReport()

    if table.n_rows == 0:
        return 0.0, RequestSchedule(rows=[], source_fields=table.fields), report

    engine = cfg.engine
    if engine == "auto":
        engine = "compiled" if fastpath_enabled() else "python"
    elif engine == "compiled" and not _compiled.HAVE_NUMPY:
        raise SolverError("engine='compiled' requires numpy")

    if engine == "compiled":
        ct = compile_table(table)
        total, layout = _solve_compiled(ct, _fd_closure(table, fds), cfg, report)
        report.estimated_phc = total
        schedule = schedule_from_layout(ct, layout)
        return total, schedule, report

    total, layout = _solve_python(table, _fd_closure(table, fds), cfg, report)
    report.estimated_phc = total
    schedule = RequestSchedule.from_orders(
        table,
        row_order=[rid for rid, _ in layout],
        field_orders=[order for _, order in layout],
    )
    return total, schedule, report


# --------------------------------------------------------------------------
# Reference engine: the original pure-Python string path (equivalence
# oracle — keep semantics frozen).
# --------------------------------------------------------------------------


def _solve_python(
    table: ReorderTable,
    closure: List[Tuple[int, ...]],
    cfg: GGRConfig,
    report: GGRReport,
) -> Tuple[float, Layout]:
    n, m = table.n_rows, table.n_fields
    data = table.rows
    fields = table.fields
    # Precompute cell lengths once; the recursion only slices index lists.
    lengths: List[Tuple[int, ...]] = [tuple(len(v) for v in row) for row in data]

    def column_score(rows: Sequence[int], c: int) -> float:
        """Expected-contribution score of column ``c`` over ``rows`` (§4.2.2)."""
        total_len = 0
        distinct = set()
        for r in rows:
            total_len += lengths[r][c]
            distinct.add(data[r][c])
        k = len(rows)
        if k == 0:
            return 0.0
        avg = total_len / k
        base = avg * avg
        if cfg.stats_score_mode == "paper":
            return base
        return base * (k - len(distinct)) / k

    def fallback(rows: List[int], cols: List[int]) -> Tuple[float, Layout]:
        """Statistics-driven fixed order + lexicographic row sort."""
        report.fallback_blocks += 1
        report.fallback_rows += len(rows)
        order = sorted(cols, key=lambda c: (-column_score(rows, c), c))
        sorted_rows = sorted(rows, key=lambda r: tuple(data[r][c] for c in order))
        # Exact PHC of this block layout (cheap: one linear scan).
        score = 0
        for i in range(1, len(sorted_rows)):
            prev, cur = sorted_rows[i - 1], sorted_rows[i]
            for c in order:
                if data[prev][c] != data[cur][c]:
                    break
                score += lengths[cur][c] ** 2
        ordert = tuple(order)
        return float(score), [(r, ordert) for r in sorted_rows]

    def best_group(
        rows: List[int], cols: List[int]
    ) -> Tuple[float, Optional[str], int, List[int], List[int]]:
        """Lines 17-23: the (value, column) group maximizing HITCOUNT.

        Returns ``(score, value, column, group_rows, prefix_cols)``.
        """
        live = set(cols)
        best_score = -1.0
        best_v: Optional[str] = None
        best_c = -1
        best_rows: List[int] = []
        best_prefix: List[int] = []
        for c in cols:
            groups: Dict[str, List[int]] = {}
            for r in rows:
                groups.setdefault(data[r][c], []).append(r)
            inferred = [x for x in closure[c] if x in live and x != c]
            for v, group_rows in groups.items():
                k = len(group_rows)
                if k < 2:
                    continue
                unit = float(len(v)) ** 2
                for ic in inferred:
                    s = 0
                    for r in group_rows:
                        L = lengths[r][ic]
                        s += L * L if cfg.square_fd_lengths else L
                    unit += s / k
                score = unit * (k - 1)
                if score > best_score:
                    best_score = score
                    best_v, best_c, best_rows = v, c, group_rows
                    best_prefix = [c] + sorted(
                        inferred,
                        key=lambda ic: (-sum(lengths[r][ic] for r in group_rows), ic),
                    )
        return best_score, best_v, best_c, best_rows, best_prefix

    def solve(
        rows: List[int], cols: List[int], row_depth: int, col_depth: int
    ) -> Tuple[float, Layout]:
        report.recursion_steps += 1
        if not rows:
            return 0.0, []
        if not cols:
            return 0.0, [(r, ()) for r in rows]
        if len(rows) == 1:
            order = tuple(sorted(cols, key=lambda c: (-column_score(rows, c), c)))
            return 0.0, [(rows[0], order)]
        if len(cols) == 1:
            c = cols[0]
            groups: Dict[str, List[int]] = {}
            for r in rows:
                groups.setdefault(data[r][c], []).append(r)
            score = sum(float(len(v)) ** 2 * (len(rs) - 1) for v, rs in groups.items())
            layout = [(r, (c,)) for v in sorted(groups) for r in groups[v]]
            return score, layout
        if row_depth > cfg.max_row_depth or col_depth > cfg.max_col_depth:
            return fallback(rows, cols)

        score, v, c, group_rows, prefix_cols = best_group(rows, cols)
        if v is None or score <= 0 or score < cfg.hitcount_threshold:
            # No repeating value worth grouping on (or below threshold):
            # the statistics fallback is both cheaper and at least as good
            # as splitting off singleton rows one at a time.
            return fallback(rows, cols)

        report.groups_chosen.append((fields[c], v[:24], len(group_rows)))
        group_set = set(group_rows)
        rest = [r for r in rows if r not in group_set]
        rest_cols = [x for x in cols if x not in set(prefix_cols)]

        b_score, b_layout = solve(group_rows, rest_cols, row_depth, col_depth + 1)
        a_score, a_layout = solve(rest, cols, row_depth + 1, col_depth)

        prefix = tuple(prefix_cols)
        layout = [(rid, prefix + order) for rid, order in b_layout] + a_layout
        return score + a_score + b_score, layout

    return solve(list(range(n)), list(range(m)), 0, 0)


# --------------------------------------------------------------------------
# Compiled engine: identical recursion over int32 dictionary codes.
# --------------------------------------------------------------------------


def _solve_compiled(
    ct: "_compiled.CompiledTable",
    closure: List[Tuple[int, ...]],
    cfg: GGRConfig,
    report: GGRReport,
) -> Tuple[float, Layout]:
    import numpy as np

    codes = ct.codes
    lengths = ct.lengths
    sq_lengths = ct.sq_lengths
    code_sq = ct.code_sq
    values = ct.values
    fields = ct.table.fields
    n, m = ct.n_rows, ct.n_fields
    n_codes = [len(v) for v in values]
    fd_weight = lengths if not cfg.square_fd_lengths else sq_lengths

    def column_score(rows: "np.ndarray", c: int) -> float:
        # Same arithmetic, in the same order, as the reference — the
        # resulting floats key sorts, so they must match exactly.
        k = len(rows)
        if k == 0:
            return 0.0
        total_len = int(lengths[rows, c].sum())
        avg = total_len / k
        base = avg * avg
        if cfg.stats_score_mode == "paper":
            return base
        distinct = int(np.unique(codes[rows, c]).size)
        return base * (k - distinct) / k

    def field_order(rows: "np.ndarray", cols: List[int]) -> List[int]:
        return sorted(cols, key=lambda c: (-column_score(rows, c), c))

    def fallback(rows: "np.ndarray", cols: List[int]) -> Tuple[float, Layout]:
        report.fallback_blocks += 1
        report.fallback_rows += len(rows)
        order = field_order(rows, cols)
        # Stable lexsort over codes == stable Python sort over value
        # tuples, because codes are assigned in sorted value order.
        keys = tuple(codes[rows, c] for c in reversed(order))
        sorted_rows = rows[np.lexsort(keys)]
        score = 0
        if len(sorted_rows) > 1:
            prev, cur = sorted_rows[:-1], sorted_rows[1:]
            alive = np.ones(len(cur), dtype=bool)
            for c in order:
                alive &= codes[prev, c] == codes[cur, c]
                if not alive.any():
                    break
                score += int(sq_lengths[cur, c][alive].sum())
        ordert = tuple(order)
        return float(score), [(r, ordert) for r in sorted_rows.tolist()]

    def best_group(rows: "np.ndarray", cols: List[int]):
        live = set(cols)
        best_score = -1.0
        best_code = -1
        best_c = -1
        best_rows: Optional["np.ndarray"] = None
        best_prefix: List[int] = []
        for c in cols:
            sub = codes[rows, c]
            counts = np.bincount(sub, minlength=n_codes[c])
            if int(counts.max(initial=0)) < 2:
                continue
            unit = code_sq[c].astype(np.float64)
            inferred = [x for x in closure[c] if x in live and x != c]
            if inferred:
                kf = counts.astype(np.float64)
                kf[kf == 0] = 1.0  # avoid 0/0; masked out below anyway
                for ic in inferred:
                    s = np.bincount(
                        sub,
                        weights=fd_weight[rows, ic].astype(np.float64),
                        minlength=n_codes[c],
                    )
                    unit = unit + s / kf
            score_arr = unit * (counts - 1.0)
            score_arr[counts < 2] = -np.inf
            col_best = float(score_arr.max())
            if col_best > best_score:
                # Among tied codes the reference keeps the group whose
                # value appears first in the row subset (dict insertion
                # order); replicate that tie-break.
                cand = np.flatnonzero(score_arr == col_best)
                if len(cand) == 1:
                    code = int(cand[0])
                else:
                    code = int(sub[np.argmax(np.isin(sub, cand))])
                group_rows = rows[sub == code]
                best_score = col_best
                best_code, best_c, best_rows = code, c, group_rows
                if inferred:
                    sums = {
                        ic: int(lengths[group_rows, ic].sum()) for ic in inferred
                    }
                    best_prefix = [c] + sorted(
                        inferred, key=lambda ic: (-sums[ic], ic)
                    )
                else:
                    best_prefix = [c]
        return best_score, best_code, best_c, best_rows, best_prefix

    def solve(
        rows: "np.ndarray", cols: List[int], row_depth: int, col_depth: int
    ) -> Tuple[float, Layout]:
        report.recursion_steps += 1
        if len(rows) == 0:
            return 0.0, []
        if not cols:
            return 0.0, [(r, ()) for r in rows.tolist()]
        if len(rows) == 1:
            order = tuple(field_order(rows, cols))
            return 0.0, [(int(rows[0]), order)]
        if len(cols) == 1:
            c = cols[0]
            sub = codes[rows, c]
            counts = np.bincount(sub, minlength=n_codes[c])
            score = float(
                (code_sq[c] * np.maximum(counts - 1, 0)).sum()
            )
            # Stable sort by code == groups in sorted value order, rows
            # inside each group in subset order (reference dict behaviour).
            sorted_rows = rows[np.argsort(sub, kind="stable")]
            return score, [(r, (c,)) for r in sorted_rows.tolist()]
        if row_depth > cfg.max_row_depth or col_depth > cfg.max_col_depth:
            return fallback(rows, cols)

        score, code, c, group_rows, prefix_cols = best_group(rows, cols)
        if group_rows is None or score <= 0 or score < cfg.hitcount_threshold:
            return fallback(rows, cols)

        v = values[c][code]
        report.groups_chosen.append((fields[c], v[:24], len(group_rows)))
        rest = rows[codes[rows, c] != code]
        prefix_set = set(prefix_cols)
        rest_cols = [x for x in cols if x not in prefix_set]

        b_score, b_layout = solve(group_rows, rest_cols, row_depth, col_depth + 1)
        a_score, a_layout = solve(rest, cols, row_depth + 1, col_depth)

        prefix = tuple(prefix_cols)
        layout = [(rid, prefix + order) for rid, order in b_layout] + a_layout
        return score + a_score + b_score, layout

    rows0 = np.arange(n, dtype=np.int64)
    return solve(rows0, list(range(m)), 0, 0)
