"""Optimal Prefix Hit Recursion (paper §4.1) and a brute-force oracle.

OPHR finds the PHC-maximizing schedule by recursively trying every
(field, distinct value) split of the table: the rows carrying the chosen
value become a contiguous group whose prefix is that cell, and the two
residual sub-tables (other rows with all fields; group rows without the
chosen field) are solved recursively. Memoization over (row-set, column-set)
keeps repeated sub-problems from being re-solved, but the algorithm remains
exponential — the paper reports minutes for a 10-row table, and we only run
it on the small prefixes used by the Appendix D.1 study.

:func:`brute_force_optimal` enumerates *all* ``n! * (m!)^n`` schedules and is
the ground truth the property tests check OPHR against on tiny tables.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.compiled import compile_table, fastpath_enabled
from repro.core.ordering import RequestSchedule
from repro.core.phc import phc
from repro.core.table import ReorderTable
from repro.errors import SolverError

# A layout is solver-internal: per scheduled row, the source row id and the
# column-index order for that row (indices into the original table fields).
Layout = List[Tuple[int, Tuple[int, ...]]]


def _layout_to_schedule(table: ReorderTable, layout: Layout) -> RequestSchedule:
    return RequestSchedule.from_orders(
        table,
        row_order=[rid for rid, _ in layout],
        field_orders=[order for _, order in layout],
    )


def ophr(
    table: ReorderTable,
    max_rows: int = 64,
    max_fields: int = 16,
    time_limit_s: Optional[float] = None,
) -> Tuple[int, RequestSchedule]:
    """Solve a table exactly; returns ``(optimal_phc, schedule)``.

    Raises :class:`SolverError` if the table exceeds the safety limits or if
    ``time_limit_s`` elapses — OPHR on even mid-sized tables can run for
    hours (paper Table 6), so limits are mandatory.
    """
    if table.n_rows > max_rows or table.n_fields > max_fields:
        raise SolverError(
            f"OPHR refused: table is {table.n_rows}x{table.n_fields}, limits are "
            f"{max_rows}x{max_fields} (exponential algorithm; raise limits explicitly)"
        )
    deadline = time.monotonic() + time_limit_s if time_limit_s else None

    rows0 = tuple(range(table.n_rows))
    cols0 = tuple(range(table.n_fields))
    # Reuse the dictionary encoding when available: grouping and value
    # ordering run on small ints instead of full strings. Codes are
    # assigned in sorted value order, so ``sorted(groups)`` and value
    # weights are unchanged and the emitted schedule is identical.
    if fastpath_enabled():
        ct = compile_table(table)
        data: Sequence[Sequence[int]] = [
            tuple(int(c) for c in ct.codes[i]) for i in range(table.n_rows)
        ]
        sq = [tuple(int(w) for w in col_sq) for col_sq in ct.code_sq]

        def weight(c: int, v) -> int:
            return sq[c][v]

    else:
        data = table.rows

        def weight(c: int, v) -> int:
            return len(v) ** 2

    memo: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], Tuple[int, Layout]] = {}

    def solve(rows: Tuple[int, ...], cols: Tuple[int, ...]) -> Tuple[int, Layout]:
        if deadline is not None and time.monotonic() > deadline:
            raise SolverError("OPHR time limit exceeded")
        if not rows:
            return 0, []
        if not cols:
            return 0, [(r, ()) for r in rows]
        key = (rows, cols)
        cached = memo.get(key)
        if cached is not None:
            return cached
        if len(rows) == 1:
            result = (0, [(rows[0], cols)])
            memo[key] = result
            return result
        if len(cols) == 1:
            c = cols[0]
            groups: Dict = {}
            for r in rows:
                groups.setdefault(data[r][c], []).append(r)
            score = sum(
                weight(c, v) * (len(rs) - 1) for v, rs in groups.items()
            )
            layout: Layout = [
                (r, (c,))
                for v in sorted(groups)
                for r in groups[v]
            ]
            result = (score, layout)
            memo[key] = result
            return result

        best_score = -1
        best_layout: Layout = []
        for c in cols:
            groups = {}
            for r in rows:
                groups.setdefault(data[r][c], []).append(r)
            rest_cols = tuple(x for x in cols if x != c)
            for v, group_rows in groups.items():
                contribution = weight(c, v) * (len(group_rows) - 1)
                other_rows = tuple(r for r in rows if data[r][c] != v)
                score_a, layout_a = solve(other_rows, cols)
                score_b, layout_b = solve(tuple(group_rows), rest_cols)
                total = contribution + score_a + score_b
                if total > best_score:
                    # Group rows (value cell first) precede the residual rows.
                    # Paper Alg. 1 line 29 prints the subscripts swapped; the
                    # prefix belongs on the rows that *contain* the value.
                    best_layout = [
                        (rid, (c,) + order) for rid, order in layout_b
                    ] + layout_a
                    best_score = total
        memo[key] = (best_score, best_layout)
        return best_score, best_layout

    score, layout = solve(rows0, cols0)
    schedule = _layout_to_schedule(table, layout)
    achieved = phc(schedule)
    if achieved < score:
        raise SolverError(
            f"OPHR internal inconsistency: reported {score}, schedule achieves {achieved}"
        )
    # Accidental cross-boundary matches can only add hits, never remove them;
    # report what the emitted schedule actually achieves.
    return achieved, schedule


def brute_force_optimal(
    table: ReorderTable, max_schedules: int = 2_000_000
) -> Tuple[int, RequestSchedule]:
    """Enumerate every schedule; ground truth for tiny tables only.

    The count is ``n! * (m!)^n``; anything beyond ~4x3 explodes, hence the
    ``max_schedules`` guard.
    """
    n, m = table.n_rows, table.n_fields
    total = 1
    for i in range(2, n + 1):
        total *= i
    perms_per_row = 1
    for i in range(2, m + 1):
        perms_per_row *= i
    total *= perms_per_row ** max(n, 1)
    if total > max_schedules:
        raise SolverError(
            f"brute force refused: {total} schedules exceeds limit {max_schedules}"
        )

    col_perms = list(itertools.permutations(range(m)))
    best_score = -1
    best: Optional[RequestSchedule] = None
    for row_order in itertools.permutations(range(n)):
        for field_choice in itertools.product(col_perms, repeat=n):
            sched = RequestSchedule.from_orders(table, row_order, field_choice)
            score = phc(sched)
            if score > best_score:
                best_score = score
                best = sched
    if best is None:
        return 0, RequestSchedule.identity(table)
    return best_score, best
