"""Local-search refinement of request schedules.

GGR is greedy and OPHR is exponential; in between sits plain hill climbing
on an existing schedule. Two move types, both semantics-preserving:

* **row relocation** — move one row next to the position where its prefix
  matches best (fixes rows the greedy stranded between groups);
* **suffix realignment** — re-permute the *non-matching tail* of a row's
  field order to extend its match with the predecessor (the per-row field
  freedom OPHR exploits exhaustively).

The refiner only ever accepts strictly improving moves, so
``refine(schedule).exact_phc >= phc(schedule)`` always holds — asserted by
property tests. It is a practical post-pass (the paper's "achieving optimal
PHC" §4.2.3 discusses where GGR ties break badly; this is the cheap fix).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.ordering import RequestSchedule
from repro.core.phc import hit, matched_prefix_length, phc
from repro.core.table import Cell, OrderedRow, ReorderTable


@dataclass
class RefineResult:
    schedule: RequestSchedule
    phc_before: int
    phc_after: int
    row_moves: int
    field_realignments: int
    seconds: float

    @property
    def improvement(self) -> int:
        return self.phc_after - self.phc_before


def _realign_row(prev: Tuple[Cell, ...], row: OrderedRow) -> Optional[OrderedRow]:
    """Greedily reorder ``row``'s cells to extend its match with ``prev``.

    Walks ``prev``'s cells in order; whenever the row holds an equal cell,
    it is pulled into the matching prefix. Remaining cells keep their
    relative order. Returns the improved row, or None if nothing changed.
    """
    remaining = list(row.cells)
    new_order: List[Cell] = []
    for target in prev:
        found = None
        for i, cell in enumerate(remaining):
            if cell.field == target.field and cell.value == target.value:
                found = i
                break
        if found is None:
            break
        new_order.append(remaining.pop(found))
    if not new_order:
        return None
    candidate = OrderedRow(row_id=row.row_id, cells=tuple(new_order + remaining))
    if hit(prev, candidate.cells) > hit(prev, row.cells):
        return candidate
    return None


def refine(
    schedule: RequestSchedule,
    table: Optional[ReorderTable] = None,
    max_passes: int = 3,
    time_limit_s: float = 5.0,
    enable_row_moves: bool = True,
) -> RefineResult:
    """Hill-climb ``schedule``; returns an improved (or equal) schedule."""
    start = time.perf_counter()
    rows = list(schedule.rows)
    before = phc(rows_cells := [r.cells for r in rows])
    realignments = 0
    row_moves = 0

    def deadline() -> bool:
        return time.perf_counter() - start > time_limit_s

    for _ in range(max_passes):
        changed = False
        # Pass 1: suffix realignment against the predecessor.
        for i in range(1, len(rows)):
            if deadline():
                break
            better = _realign_row(rows[i - 1].cells, rows[i])
            if better is not None:
                rows[i] = better
                realignments += 1
                changed = True

        # Pass 2: relocate stranded rows (zero hit against predecessor)
        # next to their best-matching partner.
        if enable_row_moves and not deadline():
            i = 1
            while i < len(rows):
                if deadline():
                    break
                cur = rows[i]
                gain_here = hit(rows[i - 1].cells, cur.cells)
                if gain_here == 0:
                    best_j, best_gain = -1, 0
                    for j in range(len(rows)):
                        if j == i or j + 1 == i:
                            continue
                        g = hit(rows[j].cells, cur.cells)
                        if g > best_gain:
                            best_gain, best_j = g, j
                    if best_j >= 0:
                        # Verify the move is globally improving before
                        # committing (removal may break an existing chain).
                        trial = rows[:i] + rows[i + 1 :]
                        insert_at = best_j + 1 if best_j < i else best_j
                        trial = trial[:insert_at] + [cur] + trial[insert_at:]
                        if phc([r.cells for r in trial]) > phc([r.cells for r in rows]):
                            rows = trial
                            row_moves += 1
                            changed = True
                            continue
                i += 1
        if not changed or deadline():
            break

    refined = RequestSchedule(rows=rows, source_fields=schedule.source_fields)
    if table is not None:
        refined.validate_against(table)
    after = phc([r.cells for r in rows])
    assert after >= before, "refinement must never lose PHC"
    return RefineResult(
        schedule=refined,
        phc_before=before,
        phc_after=after,
        row_moves=row_moves,
        field_realignments=realignments,
        seconds=time.perf_counter() - start,
    )
