"""Core contribution of the paper: prefix-hit-count maximization.

Modules
-------
``table``
    :class:`~repro.core.table.ReorderTable`, the minimal table view the
    solvers operate on (field names + string cell values).
``compiled``
    Dictionary-encoded columnar form of a table (int32 value codes,
    precomputed length/squared-length arrays, shared cell pool), built
    once per table and cached. All solver hot paths run on it when numpy
    is available; ``REPRO_CORE_FASTPATH=0`` forces the pure-Python
    reference paths, which stay the equivalence oracle.
``phc``
    The prefix hit count objective (paper Eq. 1-2) and derived metrics.
``ordering``
    :class:`~repro.core.ordering.RequestSchedule`, the output of a solver:
    a row order plus a per-row field order.
``fd``
    Functional-dependency sets and single-attribute FD mining.
``stats``
    Per-column table statistics used by GGR's early-stopping fallback.
``ophr``
    Optimal Prefix Hit Recursion (exact, exponential; paper §4.1).
``ggr``
    Greedy Group Recursion (paper §4.2, Algorithm 1).
``fixed``
    Fixed-field-order baselines (paper §3.2 and the Cache(Original) policy).
``reorder``
    One-call facade selecting a policy and validating its output.
"""

from repro.core.compiled import CompiledTable, compile_table, fastpath_enabled
from repro.core.fd import FunctionalDependencies, mine_fds
from repro.core.ggr import GGRConfig, ggr
from repro.core.ophr import brute_force_optimal, ophr
from repro.core.partitioned import PartitionedResult, partitioned_reorder
from repro.core.refine import RefineResult, refine
from repro.core.ordering import RequestSchedule
from repro.core.phc import hit, phc, phr, prefix_hit_tokens
from repro.core.reorder import ReorderResult, reorder
from repro.core.stats import ColumnStats, TableStats
from repro.core.table import ReorderTable

__all__ = [
    "ReorderTable",
    "CompiledTable",
    "compile_table",
    "fastpath_enabled",
    "RequestSchedule",
    "FunctionalDependencies",
    "mine_fds",
    "TableStats",
    "ColumnStats",
    "hit",
    "phc",
    "phr",
    "prefix_hit_tokens",
    "ophr",
    "brute_force_optimal",
    "ggr",
    "GGRConfig",
    "reorder",
    "ReorderResult",
    "partitioned_reorder",
    "PartitionedResult",
    "refine",
    "RefineResult",
]
