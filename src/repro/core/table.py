"""The minimal table view consumed by the reordering solvers.

The solvers do not care where data comes from (the relational engine, a RAG
retriever, a CSV): they only see field names and string cell values. A
:class:`ReorderTable` is that view. All values are strings because that is
what gets serialized into the prompt; callers are responsible for rendering
other dtypes (the relational layer's ``Table.to_reorder_table`` does this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from repro.errors import SchemaError

Row = Tuple[str, ...]


@dataclass(frozen=True)
class ReorderTable:
    """An ``n x m`` table of string cells with named fields.

    Parameters
    ----------
    fields:
        Field (column) names, one per column, all distinct.
    rows:
        Row-major cell values. Every row must have exactly ``len(fields)``
        entries. Values are stored as given; they are compared with ``==``
        by the solvers, so normalization (e.g. stripping) is the caller's
        job.
    """

    fields: Tuple[str, ...]
    rows: Tuple[Row, ...]

    def __init__(self, fields: Sequence[str], rows: Iterable[Sequence[str]]):
        norm_fields = tuple(str(f) for f in fields)
        if len(set(norm_fields)) != len(norm_fields):
            raise SchemaError(f"duplicate field names in {norm_fields!r}")
        norm_rows: List[Row] = []
        for i, row in enumerate(rows):
            tup = tuple(str(v) for v in row)
            if len(tup) != len(norm_fields):
                raise SchemaError(
                    f"row {i} has {len(tup)} cells, expected {len(norm_fields)}"
                )
            norm_rows.append(tup)
        object.__setattr__(self, "fields", norm_fields)
        object.__setattr__(self, "rows", tuple(norm_rows))

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    @property
    def n_fields(self) -> int:
        return len(self.fields)

    def field_index(self, name: str) -> int:
        """Return the column index of ``name`` or raise :class:`SchemaError`."""
        try:
            return self.fields.index(name)
        except ValueError:
            raise SchemaError(f"unknown field {name!r}; have {self.fields!r}") from None

    def column(self, name_or_index) -> Tuple[str, ...]:
        """Return one column as a tuple of cell values."""
        idx = name_or_index if isinstance(name_or_index, int) else self.field_index(name_or_index)
        return tuple(row[idx] for row in self.rows)

    def select_fields(self, names: Sequence[str]) -> "ReorderTable":
        """Project onto a subset (or reordering) of fields."""
        idxs = [self.field_index(n) for n in names]
        return ReorderTable(
            fields=[self.fields[i] for i in idxs],
            rows=[tuple(row[i] for i in idxs) for row in self.rows],
        )

    def head(self, n: int) -> "ReorderTable":
        """Return the first ``n`` rows (used by the D.1 OPHR-vs-GGR study)."""
        return ReorderTable(self.fields, self.rows[:n])

    def __getstate__(self):
        # Drop the cached compiled encoding (see repro.core.compiled):
        # pickled tables — e.g. partition-pool jobs — should carry only
        # the data; the receiver rebuilds its own encoding on demand.
        return {"fields": self.fields, "rows": self.rows}

    def __setstate__(self, state):
        object.__setattr__(self, "fields", state["fields"])
        object.__setattr__(self, "rows", state["rows"])

    def __len__(self) -> int:  # pragma: no cover - trivial
        return self.n_rows


@dataclass(frozen=True)
class Cell:
    """A single (field, value) pair as it appears in a serialized prompt.

    Two cells are interchangeable in the KV cache only if both the field
    name and the value match, because the prompt renders ``"field": value``.
    The dataclass is frozen/hashable so cells can key dictionaries in the
    radix-style analyses.
    """

    field: str
    value: str

    def weight(self) -> int:
        """Squared value length, the PHC unit from paper Eq. 2."""
        return len(self.value) ** 2


@dataclass
class OrderedRow:
    """One row of a request schedule: the original row id plus its cells in
    prompt order."""

    row_id: int
    cells: Tuple[Cell, ...] = field(default_factory=tuple)

    def values(self) -> Tuple[str, ...]:
        return tuple(c.value for c in self.cells)

    def fields(self) -> Tuple[str, ...]:
        return tuple(c.field for c in self.cells)
