"""Per-column table statistics (paper §4.2.2).

GGR's early-stopping fallback orders fields by an expected-contribution
score computed from statistics that databases keep anyway: column
cardinality and value-length distribution. Two scores are provided:

``"paper"``
    ``avg(len(c))^2`` exactly as printed in §4.2.2.
``"expected"`` (default)
    ``avg(len(c))^2 * (n - n_distinct) / n`` — the paper's score weighted by
    the duplication mass of the column. The §4.2.2 prose says the score
    should account "for the average length of the values and their
    frequency"; the printed formula omits the frequency term, which would
    rank a column of long unique strings (never a cache hit) above a short
    low-cardinality column. The weighted form restores the stated intent;
    the ablation benchmark compares both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.compiled import compile_table, fastpath_enabled
from repro.core.table import ReorderTable

SCORE_MODES = ("expected", "paper")


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics for one column."""

    name: str
    n_rows: int
    n_distinct: int
    avg_len: float
    max_len: int
    total_len: int
    top_value: str
    top_count: int

    @property
    def duplication(self) -> float:
        """Fraction of rows that are repeats of an earlier value."""
        if self.n_rows == 0:
            return 0.0
        return (self.n_rows - self.n_distinct) / self.n_rows

    def score(self, mode: str = "expected") -> float:
        """Expected PHC contribution of this column (see module docstring)."""
        if mode not in SCORE_MODES:
            raise ValueError(f"score mode must be one of {SCORE_MODES}, got {mode!r}")
        base = self.avg_len ** 2
        if mode == "paper":
            return base
        return base * self.duplication


@dataclass(frozen=True)
class TableStats:
    """Statistics for every column of a table."""

    n_rows: int
    columns: Tuple[ColumnStats, ...]

    @staticmethod
    def compute(table: ReorderTable) -> "TableStats":
        """Statistics for ``table``.

        Uses the dictionary-encoded columnar form when available (one
        ``bincount`` per column instead of a Python dict pass); falls back
        to the reference string path otherwise. Both produce identical
        results, including the first-appearance tie-break on ``top_value``.
        """
        if fastpath_enabled():
            return TableStats._compute_compiled(table)
        return TableStats._compute_python(table)

    @staticmethod
    def _compute_compiled(table: ReorderTable) -> "TableStats":
        import numpy as np

        ct = compile_table(table)
        n = ct.n_rows
        cols: List[ColumnStats] = []
        for idx, name in enumerate(table.fields):
            lens = ct.code_lens[idx]
            counts = np.bincount(ct.codes[:, idx], minlength=len(lens))
            if n and len(lens):
                top_count = int(counts.max())
                tied = np.flatnonzero(counts == top_count)
                # Reference keeps the first value (in row order) to reach
                # the max count: break ties by first occurrence.
                pick = int(tied[np.argmin(ct.first_pos[idx][tied])])
                top_value = ct.values[idx][pick]
                total_len = int((lens * counts).sum())
                max_len = int(lens.max())
            else:
                top_value, top_count, total_len, max_len = "", 0, 0, 0
            cols.append(
                ColumnStats(
                    name=name,
                    n_rows=n,
                    n_distinct=len(lens),
                    avg_len=(total_len / n) if n else 0.0,
                    max_len=max_len,
                    total_len=total_len,
                    top_value=top_value,
                    top_count=top_count,
                )
            )
        return TableStats(n_rows=n, columns=tuple(cols))

    @staticmethod
    def _compute_python(table: ReorderTable) -> "TableStats":
        """Reference string-path implementation (equivalence oracle)."""
        cols: List[ColumnStats] = []
        for idx, name in enumerate(table.fields):
            values = table.column(idx)
            counts: Dict[str, int] = {}
            total_len = 0
            max_len = 0
            for v in values:
                counts[v] = counts.get(v, 0) + 1
                lv = len(v)
                total_len += lv
                if lv > max_len:
                    max_len = lv
            n = len(values)
            if counts:
                top_value, top_count = max(counts.items(), key=lambda kv: kv[1])
            else:
                top_value, top_count = "", 0
            cols.append(
                ColumnStats(
                    name=name,
                    n_rows=n,
                    n_distinct=len(counts),
                    avg_len=(total_len / n) if n else 0.0,
                    max_len=max_len,
                    total_len=total_len,
                    top_value=top_value,
                    top_count=top_count,
                )
            )
        return TableStats(n_rows=table.n_rows, columns=tuple(cols))

    def column(self, name: str) -> ColumnStats:
        for c in self.columns:
            if c.name == name:
                return c
        raise KeyError(name)

    def field_order_by_score(self, mode: str = "expected") -> List[str]:
        """Field names sorted by descending expected PHC contribution.

        Ties break by name for determinism.
        """
        return [
            c.name
            for c in sorted(self.columns, key=lambda c: (-c.score(mode), c.name))
        ]
