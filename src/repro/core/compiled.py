"""Dictionary-encoded columnar tables: the solvers' compiled fast path.

The reference solvers (:mod:`repro.core.ggr`, :mod:`repro.core.phc`, ...)
operate directly on the string cells of a :class:`~repro.core.table.ReorderTable`
and re-hash / re-compare full values at every recursion step. At paper scale
that makes solver time — not the LLM — the bottleneck (Table 5). This module
compiles a table **once** into a columnar, numpy-backed form the hot paths
can run on:

* ``codes`` — an ``n x m`` int32 matrix of per-column dictionary codes.
  Codes are assigned in **sorted order of the distinct values**, so integer
  comparison and :func:`numpy.lexsort` over codes agree exactly with string
  comparison and lexicographic row sorting. That property is what lets the
  compiled solvers emit **identical schedules** to the string reference.
* ``code_lens[j]`` / ``code_sq[j]`` — per-code value length and squared
  length (the PHC unit of paper Eq. 2), so scores never call ``len`` on a
  string in a loop.
* ``lengths`` / ``sq_lengths`` — the same, scattered to ``n x m`` matrices
  for row-subset scoring via fancy indexing.
* ``first_pos[j]`` — first occurrence row of each code, used to replicate
  the reference implementations' first-appearance tie-breaking.
* a per-column :class:`~repro.core.table.Cell` pool, so schedule
  construction reuses one ``Cell`` object per distinct ``(field, value)``
  pair instead of allocating one per scheduled cell.

Compilation is cached on the ``ReorderTable`` instance (tables are frozen,
so the encoding can never go stale); repeated solves of the same table pay
the encoding cost once. Everything degrades gracefully: if numpy is absent
or ``REPRO_CORE_FASTPATH=0`` is set, :func:`fastpath_enabled` turns the
fast paths off and every consumer falls back to the pure-Python reference
implementation, which stays available as the equivalence-test oracle.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

from repro.core.table import Cell, OrderedRow, ReorderTable
from repro.errors import SolverError

try:  # pragma: no cover - exercised implicitly by every fast-path test
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - environment without numpy
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

#: Attribute name used to cache the compiled form on a ReorderTable.
_CACHE_ATTR = "_compiled_table_cache"


def fastpath_enabled() -> bool:
    """True when the compiled fast paths should be used.

    Requires numpy and honours the ``REPRO_CORE_FASTPATH`` environment
    variable (set to ``0``/``false``/``no`` to force every solver onto the
    pure-Python reference path — the equivalence oracle).
    """
    if not HAVE_NUMPY:
        return False
    flag = os.environ.get("REPRO_CORE_FASTPATH", "1").strip().lower()
    return flag not in ("0", "false", "no", "off")


class CompiledTable:
    """The dictionary-encoded columnar view of one :class:`ReorderTable`.

    Build via :func:`compile_table` (cached), not directly.
    """

    __slots__ = (
        "table",
        "n_rows",
        "n_fields",
        "codes",
        "values",
        "first_pos",
        "code_lens",
        "code_sq",
        "lengths",
        "sq_lengths",
        "_cell_pool",
        "_codes_rows",
    )

    def __init__(self, table: ReorderTable):
        if not HAVE_NUMPY:
            raise SolverError("CompiledTable requires numpy")
        n, m = table.n_rows, table.n_fields
        self.table = table
        self.n_rows = n
        self.n_fields = m
        # Column-major so per-column slices used by the solvers are
        # contiguous.
        self.codes = np.empty((n, m), dtype=np.int32, order="F")
        self.values: List[Tuple[str, ...]] = []
        self.first_pos: List["np.ndarray"] = []
        self.code_lens: List["np.ndarray"] = []
        self.code_sq: List["np.ndarray"] = []
        self.lengths = np.empty((n, m), dtype=np.int64, order="F")
        self.sq_lengths = np.empty((n, m), dtype=np.int64, order="F")
        self._cell_pool: List[Optional[List[Cell]]] = [None] * m
        self._codes_rows: Optional[List[List[int]]] = None

        rows = table.rows
        for j in range(m):
            col = [row[j] for row in rows]
            # Sorted distinct values: code order == lexicographic value
            # order, the invariant every fast path relies on.
            distinct = sorted(set(col))
            index = {v: k for k, v in enumerate(distinct)}
            col_codes = np.fromiter(
                (index[v] for v in col), dtype=np.int32, count=n
            )
            first = np.full(len(distinct), n, dtype=np.int64)
            # minimum.at: first occurrence per code (reference tie-breaks
            # use first-appearance order).
            if n:
                np.minimum.at(first, col_codes, np.arange(n, dtype=np.int64))
            lens = np.fromiter((len(v) for v in distinct), dtype=np.int64,
                               count=len(distinct))
            self.codes[:, j] = col_codes
            self.values.append(tuple(distinct))
            self.first_pos.append(first)
            self.code_lens.append(lens)
            self.code_sq.append(lens * lens)
            self.lengths[:, j] = lens[col_codes]
            self.sq_lengths[:, j] = lens[col_codes] ** 2

    # ---------------------------------------------------------------- cells
    def cell_pool(self, col: int) -> List[Cell]:
        """One shared :class:`Cell` per distinct value of column ``col``."""
        pool = self._cell_pool[col]
        if pool is None:
            name = self.table.fields[col]
            pool = [Cell(name, v) for v in self.values[col]]
            self._cell_pool[col] = pool
        return pool

    def codes_rows(self) -> List[List[int]]:
        """Row-major plain-Python code lists (cached).

        Schedule construction touches every cell once; indexing nested
        Python lists is several times faster than per-element numpy scalar
        access, so the one-time ``tolist`` pays for itself immediately.
        """
        if self._codes_rows is None:
            self._codes_rows = self.codes.tolist()
        return self._codes_rows

    def row_cells(self, row_id: int, col_order: Sequence[int]) -> Tuple[Cell, ...]:
        """The cells of ``row_id`` in ``col_order``, drawn from the pool."""
        crow = self.codes_rows()[row_id]
        return tuple(self.cell_pool(c)[crow[c]] for c in col_order)


def compile_table(table: ReorderTable) -> CompiledTable:
    """Return the cached compiled form of ``table`` (building it once).

    ``ReorderTable`` is frozen, so the encoding can be cached on the
    instance itself: repeated solves/stat computations over the same table
    share one encoding.
    """
    cached = getattr(table, _CACHE_ATTR, None)
    if cached is not None:
        return cached
    ct = CompiledTable(table)
    object.__setattr__(table, _CACHE_ATTR, ct)
    return ct


# --------------------------------------------------------- shared memory
#: Handle to a table exported into a ``multiprocessing.shared_memory``
#: segment: ``(shm name, n_rows, n_fields, codes byte length, metadata byte
#: length)``. The segment layout is ``[codes int32 C-order | pickled
#: (fields, per-column distinct values)]``. A handle is a few dozen bytes —
#: the only thing that crosses a process boundary per worker under spawn.
SharedTableHandle = Tuple[str, int, int, int, int]


def export_shared_table(table: ReorderTable):
    """Export ``table``'s dictionary encoding into one shared-memory
    segment; returns ``(handle, shm)``.

    The int32 code matrix goes in raw (C-order), followed by a pickle of
    the per-column sorted distinct values and the field names — everything
    :func:`attach_shared_table` needs to rebuild an equal table. The caller
    owns the segment: keep ``shm`` alive while workers attach, then
    ``shm.close(); shm.unlink()``.
    """
    import pickle
    from multiprocessing import shared_memory

    if not HAVE_NUMPY:
        raise SolverError("shared-memory table export requires numpy")
    ct = compile_table(table)
    meta = pickle.dumps(
        (table.fields, ct.values), protocol=pickle.HIGHEST_PROTOCOL
    )
    codes = np.ascontiguousarray(ct.codes, dtype=np.int32)
    size = max(1, codes.nbytes + len(meta))
    shm = shared_memory.SharedMemory(create=True, size=size)
    if codes.nbytes:
        np.ndarray(codes.shape, dtype=np.int32, buffer=shm.buf)[:] = codes
    shm.buf[codes.nbytes : codes.nbytes + len(meta)] = meta
    handle: SharedTableHandle = (
        shm.name,
        ct.n_rows,
        ct.n_fields,
        codes.nbytes,
        len(meta),
    )
    return handle, shm


def attach_shared_table(handle: SharedTableHandle) -> ReorderTable:
    """Rebuild the :class:`ReorderTable` behind ``handle`` in this process.

    Decoding interns one python string per distinct ``(column, value)``
    pair (rows share the dictionary's string objects), and the segment is
    closed before returning — the rebuilt table owns no shared state. Cell
    values round-trip exactly, so a solver running on the attached copy
    emits schedules identical to one running on the original.
    """
    import pickle
    from multiprocessing import shared_memory

    if not HAVE_NUMPY:
        raise SolverError("shared-memory table attach requires numpy")
    name, n, m, codes_bytes, meta_len = handle
    # On Python < 3.13 attaching re-registers the segment with the resource
    # tracker. Pool workers share the parent's tracker process, so the
    # duplicate registration is a set-add no-op and the exporter's
    # ``unlink()`` remains the single cleanup; unregistering here would
    # instead corrupt the shared tracker's bookkeeping.
    shm = shared_memory.SharedMemory(name=name)
    try:
        codes = np.ndarray((n, m), dtype=np.int32, buffer=shm.buf)
        fields, values = pickle.loads(
            bytes(shm.buf[codes_bytes : codes_bytes + meta_len])
        )
        code_rows = codes.tolist()
        rows = [
            tuple(values[j][crow[j]] for j in range(m)) for crow in code_rows
        ]
    finally:
        shm.close()
    return ReorderTable(fields, rows)


def validate_layout(
    n: int, m: int, layout: Sequence[Tuple[int, Tuple[int, ...]]]
) -> None:
    """Index-level layout validation shared by every layout materializer.

    Because a layout's cells are drawn from the table itself by (row,
    column) index, checking that the row ids form a permutation and each
    field order is a permutation of the column indices is *sufficient* for
    the resulting schedule to be a permutation of the table — no per-cell
    string sorting needed. Raises :class:`SolverError` on violation.
    """
    if len(layout) != n:
        raise SolverError(f"layout has {len(layout)} rows, table has {n}")
    seen_rows = [False] * n
    all_cols = frozenset(range(m))
    # Layouts reuse the same field-order tuple across whole row blocks;
    # validate each distinct order once.
    valid_orders = set()
    for rid, col_order in layout:
        if not 0 <= rid < n or seen_rows[rid]:
            raise SolverError(f"layout is not a row permutation at row {rid}")
        seen_rows[rid] = True
        if col_order not in valid_orders:
            if len(col_order) != m or set(col_order) != all_cols:
                raise SolverError(
                    f"field order {col_order!r} is not a permutation of columns"
                )
            valid_orders.add(col_order)


def schedule_from_layout(
    ct: CompiledTable,
    layout: Sequence[Tuple[int, Tuple[int, ...]]],
):
    """Build a validated :class:`RequestSchedule` from a solver layout.

    Equivalent to :meth:`RequestSchedule.from_orders` but with the cheap
    index-level validation of :func:`validate_layout` and pooled cells.
    """
    from repro.core.ordering import RequestSchedule  # local: avoid cycle

    import numpy as np

    table = ct.table
    validate_layout(ct.n_rows, ct.n_fields, layout)
    pools = [ct.cell_pool(c) for c in range(ct.n_fields)]
    rows: List[OrderedRow] = []
    getitem = list.__getitem__
    # Solver layouts apply one field order to whole row blocks; process
    # block-wise so the per-block code gather is one vectorized fancy-index
    # and the per-cell pool lookup is a C-level ``map``.
    i = 0
    total = len(layout)
    while i < total:
        col_order = layout[i][1]
        j = i + 1
        while j < total and layout[j][1] == col_order:
            j += 1
        rids = [rid for rid, _ in layout[i:j]]
        block_codes = ct.codes[
            np.fromiter(rids, dtype=np.int64, count=len(rids))
        ][:, list(col_order)].tolist()
        order_pools = [pools[c] for c in col_order]
        rows.extend(
            OrderedRow(row_id=rid, cells=tuple(map(getitem, order_pools, crow)))
            for rid, crow in zip(rids, block_codes)
        )
        i = j
    return RequestSchedule(rows=rows, source_fields=table.fields)
