"""One-call facade over the reordering policies.

Every solver in :mod:`repro.core` emits a :class:`RequestSchedule`; this
module wraps them behind a single ``reorder(table, policy=...)`` entry
point, validates that the schedule is a true permutation of the input
(semantic preservation), and recomputes the exact PHC of the emitted
schedule so callers never depend on a solver's internal estimate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.fd import FunctionalDependencies
from repro.core.fixed import fixed_field_schedule, original_schedule
from repro.core.ggr import GGRConfig, GGRReport, ggr
from repro.core.ophr import ophr
from repro.core.ordering import RequestSchedule
from repro.core.phc import phc, phr
from repro.core.table import ReorderTable
from repro.errors import SolverError

POLICIES = ("original", "sorted", "fixed_stats", "ggr", "ophr")


@dataclass
class ReorderResult:
    """Outcome of :func:`reorder`.

    Attributes
    ----------
    policy:
        The policy that produced the schedule.
    schedule:
        The emitted row/field ordering (validated permutation).
    exact_phc:
        PHC of the schedule recomputed from scratch (paper Eq. 1).
    estimated_phc:
        The solver's own objective value (GGR's greedy estimate, OPHR's
        optimal score); equals ``exact_phc`` for exact solvers.
    exact_phr:
        Linear-token prefix hit rate estimate of the schedule.
    solver_seconds:
        Wall-clock solver time (the paper's Table 5 metric).
    ggr_report:
        Diagnostics when ``policy == "ggr"``.
    """

    policy: str
    schedule: RequestSchedule
    exact_phc: int
    estimated_phc: float
    exact_phr: float
    solver_seconds: float
    ggr_report: Optional[GGRReport] = None


def reorder(
    table: ReorderTable,
    policy: str = "ggr",
    fds: Optional[FunctionalDependencies] = None,
    config: Optional[GGRConfig] = None,
    validate: bool = True,
) -> ReorderResult:
    """Reorder ``table`` under ``policy`` and return a validated result.

    Policies
    --------
    ``"original"``
        Rows and fields untouched (Cache(Original) / No Cache input order).
    ``"sorted"``
        Original field order, rows lexicographically sorted — the cheapest
        row-only optimization.
    ``"fixed_stats"``
        Statistics-driven fixed field order + lexicographic row sort.
    ``"ggr"``
        Greedy Group Recursion (the paper's deployed algorithm).
    ``"ophr"``
        Optimal Prefix Hit Recursion (exponential; small tables only).
    """
    if policy not in POLICIES:
        raise SolverError(f"unknown policy {policy!r}; choose from {POLICIES}")

    report: Optional[GGRReport] = None
    start = time.perf_counter()
    if policy == "original":
        schedule = original_schedule(table)
        estimated = float(phc(schedule))
    elif policy == "sorted":
        schedule = fixed_field_schedule(table, list(table.fields), sort_rows=True)
        estimated = float(phc(schedule))
    elif policy == "fixed_stats":
        schedule = fixed_field_schedule(table, None, sort_rows=True)
        estimated = float(phc(schedule))
    elif policy == "ggr":
        estimated, schedule, report = ggr(table, fds=fds, config=config)
    else:  # ophr
        score, schedule = ophr(table)
        estimated = float(score)
    elapsed = time.perf_counter() - start

    if validate:
        schedule.validate_against(table)
    return ReorderResult(
        policy=policy,
        schedule=schedule,
        exact_phc=phc(schedule),
        estimated_phc=estimated,
        exact_phr=phr(schedule),
        solver_seconds=elapsed,
        ggr_report=report,
    )
