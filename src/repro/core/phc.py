"""The prefix hit count (PHC) objective — paper §3.1, Eq. 1 and Eq. 2.

PHC is the quantity both solvers maximize: for every row after the first,
the cells that match the *previous* row's leading cells contribute the
square of their value length (squared length models quadratic attention
cost during prefill), summed until the first mismatch.

Two matching granularities are supported:

``"cell"`` (default)
    A position matches only if both the field name and the value are equal.
    This is what physically happens in the serialized prompt, where each
    cell renders as ``"field": "value"`` — identical values under different
    field names produce different tokens.
``"value"``
    The paper's formal definition, which compares values only. Useful for
    analysis; the solvers always emit field-aligned groups so the two
    measures coincide on their output.

Besides the squared objective the module provides linear-token variants used
for the *prefix hit rate* (PHR) reported in the paper's Table 2: the fraction
of input characters/tokens covered by prefix hits.

Evaluating a whole :class:`RequestSchedule` has a compiled fast path: the
schedule's cells are dictionary-encoded once into integer id / weight
matrices (cached on the schedule object — schedules are treated as
immutable once built), after which PHC, per-row hits, and the token-level
PHR reduce to vectorized prefix-run computations. The cell-by-cell string
path remains for plain cell-row sequences, for custom ``token_len``
callables, and as the reference oracle when the fast path is disabled
(``REPRO_CORE_FASTPATH=0``).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.core.compiled import HAVE_NUMPY, fastpath_enabled
from repro.core.ordering import RequestSchedule
from repro.core.table import Cell

if HAVE_NUMPY:
    import numpy as np

MatchMode = str
CellRow = Sequence[Cell]

_VALID_MODES = ("cell", "value")
_ENC_ATTR = "_phc_encoding_cache"


def _check_mode(mode: MatchMode) -> None:
    if mode not in _VALID_MODES:
        raise ValueError(f"match mode must be one of {_VALID_MODES}, got {mode!r}")


def _cells_match(a: Cell, b: Cell, mode: MatchMode) -> bool:
    if mode == "cell":
        return a.field == b.field and a.value == b.value
    return a.value == b.value


def matched_prefix_length(prev: CellRow, cur: CellRow, mode: MatchMode = "cell") -> int:
    """Number of leading positions of ``cur`` that match ``prev``."""
    _check_mode(mode)
    n = 0
    for a, b in zip(prev, cur):
        if not _cells_match(a, b, mode):
            break
        n += 1
    return n


def hit(prev: CellRow, cur: CellRow, mode: MatchMode = "cell") -> int:
    """Paper Eq. 2: squared-length hit count of ``cur`` against ``prev``."""
    k = matched_prefix_length(prev, cur, mode)
    return sum(len(cur[i].value) ** 2 for i in range(k))


def _as_cell_rows(schedule: Union[RequestSchedule, Sequence[CellRow]]) -> List[CellRow]:
    if isinstance(schedule, RequestSchedule):
        return [r.cells for r in schedule.rows]
    return list(schedule)


# --------------------------------------------------------------------------
# Compiled fast path: dictionary-encode a schedule's cells once, then
# evaluate PHC / per-row hits / token PHR as vectorized prefix runs.
# --------------------------------------------------------------------------


class _ScheduleEncoding:
    """Integer-code matrices for one schedule, one per match mode.

    ``ids[i, j]`` is the dictionary code of row ``i``'s ``j``-th cell
    (rows shorter than the widest get a per-row negative sentinel so
    padding never matches across rows), ``sq`` the squared value length,
    ``tok`` the default token-length unit of the cell.
    """

    __slots__ = ("ids", "sq", "tok", "row_lens")

    def __init__(self, rows: List[CellRow], mode: MatchMode):
        n = len(rows)
        width = max((len(r) for r in rows), default=0)
        ids = np.empty((n, width), dtype=np.int64)
        sq = np.zeros((n, width), dtype=np.int64)
        tok = np.zeros((n, width), dtype=np.int64)
        codebook: dict = {}
        for i, row in enumerate(rows):
            # Per-row sentinel: padded tails of adjacent rows never match.
            ids[i, len(row):] = -(i + 1)
            for j, cell in enumerate(row):
                key = (cell.field, cell.value) if mode == "cell" else cell.value
                code = codebook.get(key)
                if code is None:
                    code = len(codebook)
                    codebook[key] = code
                ids[i, j] = code
                lv = len(cell.value)
                sq[i, j] = lv * lv
                tok[i, j] = (len(cell.field) + lv + 3) // 4 + 1
        self.ids = ids
        self.sq = sq
        self.tok = tok
        self.row_lens = np.fromiter((len(r) for r in rows), dtype=np.int64, count=n)

    def prefix_run(self) -> "np.ndarray":
        """Boolean (n-1, width) matrix: position still inside the matched
        prefix of row ``i`` against row ``i-1``."""
        if len(self.ids) < 2 or self.ids.shape[1] == 0:
            return np.zeros((max(len(self.ids) - 1, 0), self.ids.shape[1]), dtype=bool)
        eq = self.ids[1:] == self.ids[:-1]
        return np.logical_and.accumulate(eq, axis=1)


def _encoding_for(
    schedule: RequestSchedule, mode: MatchMode
) -> Optional[_ScheduleEncoding]:
    """Cached encoding of a schedule, or None when the fast path is off."""
    if not fastpath_enabled():
        return None
    cache = getattr(schedule, _ENC_ATTR, None)
    if cache is None:
        cache = {}
        setattr(schedule, _ENC_ATTR, cache)
    enc = cache.get(mode)
    if enc is None:
        enc = _ScheduleEncoding([r.cells for r in schedule.rows], mode)
        cache[mode] = enc
    return enc


def phc(schedule: Union[RequestSchedule, Sequence[CellRow]], mode: MatchMode = "cell") -> int:
    """Paper Eq. 1: total prefix hit count of a schedule.

    The first row always contributes 0 (a cold miss).
    """
    _check_mode(mode)
    if isinstance(schedule, RequestSchedule):
        enc = _encoding_for(schedule, mode)
        if enc is not None:
            run = enc.prefix_run()
            return int(enc.sq[1:][run].sum()) if run.size else 0
    rows = _as_cell_rows(schedule)
    total = 0
    for r in range(1, len(rows)):
        total += hit(rows[r - 1], rows[r], mode)
    return total


def per_row_hits(
    schedule: Union[RequestSchedule, Sequence[CellRow]], mode: MatchMode = "cell"
) -> List[int]:
    """Squared hit count per row (index 0 is always 0)."""
    _check_mode(mode)
    if isinstance(schedule, RequestSchedule):
        enc = _encoding_for(schedule, mode)
        if enc is not None:
            n = len(schedule.rows)
            run = enc.prefix_run()
            if not run.size:
                return [0] * n
            return [0] + (enc.sq[1:] * run).sum(axis=1).tolist()
    rows = _as_cell_rows(schedule)
    out = [0] * len(rows)
    for r in range(1, len(rows)):
        out[r] = hit(rows[r - 1], rows[r], mode)
    return out


def prefix_hit_tokens(
    schedule: Union[RequestSchedule, Sequence[CellRow]],
    mode: MatchMode = "cell",
    token_len: Optional[Callable[[Cell], int]] = None,
) -> Tuple[int, int]:
    """Linear-length hit accounting used for prefix hit *rate*.

    Returns ``(hit_units, total_units)`` where a unit is the token length of
    a cell under ``token_len``. The default measure approximates tokens as
    ``ceil((len(field) + len(value)) / 4) + 1``, i.e. one token per ~4
    characters of the rendered ``"field": value`` text plus separator —
    close enough to rank policies; the serving simulator measures the real
    thing with its tokenizer. The fast path only applies under the default
    measure; a custom ``token_len`` always takes the reference path.
    """
    _check_mode(mode)
    if token_len is None and isinstance(schedule, RequestSchedule):
        enc = _encoding_for(schedule, mode)
        if enc is not None:
            total_units = int(enc.tok.sum())
            run = enc.prefix_run()
            hit_units = int(enc.tok[1:][run].sum()) if run.size else 0
            return hit_units, total_units

    if token_len is None:
        def token_len(cell: Cell) -> int:
            return (len(cell.field) + len(cell.value) + 3) // 4 + 1

    rows = _as_cell_rows(schedule)
    hit_units = 0
    total_units = 0
    for r, row in enumerate(rows):
        row_units = [token_len(c) for c in row]
        total_units += sum(row_units)
        if r == 0:
            continue
        k = matched_prefix_length(rows[r - 1], row, mode)
        hit_units += sum(row_units[:k])
    return hit_units, total_units


def phr(
    schedule: Union[RequestSchedule, Sequence[CellRow]],
    mode: MatchMode = "cell",
    token_len: Optional[Callable[[Cell], int]] = None,
) -> float:
    """Prefix hit rate in ``[0, 1]``: hit units / total units (Table 2)."""
    hits, total = prefix_hit_tokens(schedule, mode=mode, token_len=token_len)
    if total == 0:
        return 0.0
    return hits / total
