"""Functional dependencies (paper §4.2.1) and single-attribute FD mining.

GGR uses FDs to shrink its search: once a value in field ``f`` is chosen as
the group prefix, every field functionally determined by ``f`` is appended
to the prefix immediately (those cells are guaranteed — or, for mined *soft*
FDs, very likely — to repeat across the group), and the recursion proceeds
on the remaining fields only.

The paper's Appendix B lists FD *groups* per dataset (sets of mutually
determining fields, e.g. ``movieinfo ↔ movietitle ↔ rottentomatoeslink``),
which is what :meth:`FunctionalDependencies.add_group` models; arbitrary
directed single-attribute dependencies are supported too.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.core.compiled import compile_table, fastpath_enabled
from repro.core.table import ReorderTable


@dataclass
class FunctionalDependencies:
    """A set of single-attribute functional dependencies ``a -> b``.

    ``determined(a)`` returns the *closure* of ``a`` under the stored edges
    (excluding ``a`` itself): every field whose value is pinned once ``a``'s
    value is pinned.
    """

    _edges: Dict[str, Set[str]] = field(default_factory=dict)

    def add(self, determinant: str, dependent: str) -> None:
        """Record ``determinant -> dependent``."""
        if determinant == dependent:
            return
        self._edges.setdefault(determinant, set()).add(dependent)

    def add_group(self, fields: Iterable[str]) -> None:
        """Record mutual dependencies among ``fields`` (paper App. B style)."""
        group = list(dict.fromkeys(fields))
        for a in group:
            for b in group:
                if a != b:
                    self.add(a, b)

    def determined(self, determinant: str) -> FrozenSet[str]:
        """Transitive closure of fields determined by ``determinant``."""
        seen: Set[str] = set()
        frontier = [determinant]
        while frontier:
            cur = frontier.pop()
            for nxt in self._edges.get(cur, ()):
                if nxt not in seen and nxt != determinant:
                    seen.add(nxt)
                    frontier.append(nxt)
        return frozenset(seen)

    def edges(self) -> List[Tuple[str, str]]:
        return sorted((a, b) for a, deps in self._edges.items() for b in deps)

    def restrict(self, fields: Iterable[str]) -> "FunctionalDependencies":
        """Project the FD set onto a subset of fields."""
        keep = set(fields)
        out = FunctionalDependencies()
        for a, b in self.edges():
            if a in keep and b in keep:
                out.add(a, b)
        return out

    def merge(self, other: "FunctionalDependencies") -> "FunctionalDependencies":
        """Union of two FD sets (used when a query touches several tables
        with disjoint field names)."""
        out = FunctionalDependencies()
        for a, b in self.edges() + other.edges():
            out.add(a, b)
        return out

    def __len__(self) -> int:
        return sum(len(v) for v in self._edges.values())

    def __bool__(self) -> bool:
        return len(self) > 0

    @staticmethod
    def empty() -> "FunctionalDependencies":
        return FunctionalDependencies()

    @staticmethod
    def from_groups(groups: Sequence[Sequence[str]]) -> "FunctionalDependencies":
        fds = FunctionalDependencies()
        for g in groups:
            fds.add_group(g)
        return fds


def _holds(
    col_a: Sequence[str], col_b: Sequence[str], rows: Sequence[int], tolerance: float
) -> bool:
    """Does ``a -> b`` hold over ``rows``, allowing a ``tolerance`` fraction
    of violating rows (soft FD)?"""
    mapping: Dict[str, str] = {}
    violations = 0
    budget = int(tolerance * len(rows))
    for i in rows:
        a, b = col_a[i], col_b[i]
        prev = mapping.get(a)
        if prev is None:
            mapping[a] = b
        elif prev != b:
            violations += 1
            if violations > budget:
                return False
    return True


def mine_fds(
    table: ReorderTable,
    sample_rows: int = 2000,
    tolerance: float = 0.0,
    seed: int = 0,
    max_cardinality_ratio: float = 0.98,
) -> FunctionalDependencies:
    """Discover single-attribute FDs ``a -> b`` from data.

    Databases usually *know* their FDs (keys, join columns); this miner
    exists for raw tables. It checks every ordered field pair on a row
    sample, skipping determinant columns that are nearly unique
    (``cardinality/n > max_cardinality_ratio``): such FDs are trivially true
    and useless to GGR because the "groups" they describe have one row.

    ``tolerance > 0`` accepts soft FDs that hold on all but that fraction of
    sampled rows (cf. CORDS-style soft dependencies referenced in §2).
    """
    n = table.n_rows
    if n == 0 or table.n_fields < 2:
        return FunctionalDependencies()
    if 0 < sample_rows < n:
        rng = random.Random(seed)
        rows = sorted(rng.sample(range(n), sample_rows))
    else:
        rows = list(range(n))

    if fastpath_enabled():
        return _mine_fds_compiled(table, rows, tolerance, max_cardinality_ratio)
    return _mine_fds_python(table, rows, tolerance, max_cardinality_ratio)


def _mine_fds_python(
    table: ReorderTable,
    rows: List[int],
    tolerance: float,
    max_cardinality_ratio: float,
) -> FunctionalDependencies:
    """Reference string-path miner (equivalence oracle)."""
    columns = [table.column(i) for i in range(table.n_fields)]
    cardinality = [len({col[i] for i in rows}) for col in columns]

    fds = FunctionalDependencies()
    for ai, a in enumerate(table.fields):
        if cardinality[ai] > max_cardinality_ratio * len(rows):
            continue
        if cardinality[ai] <= 1:
            # Constant column: determines everything vacuously but carries no
            # grouping signal; skip as determinant.
            continue
        for bi, b in enumerate(table.fields):
            if ai == bi:
                continue
            # a -> b can only hold if a has at least as many distinct values
            # (minus the violation budget, for soft FDs).
            if cardinality[ai] + tolerance * len(rows) < cardinality[bi]:
                continue
            if _holds(columns[ai], columns[bi], rows, tolerance):
                fds.add(a, b)
    return fds


def _mine_fds_compiled(
    table: ReorderTable,
    rows: List[int],
    tolerance: float,
    max_cardinality_ratio: float,
) -> FunctionalDependencies:
    """Code-based miner over the compiled columnar form.

    Identical outcome to :func:`_mine_fds_python`: ``a -> b`` holds when
    mapping each ``a``-code to the ``b``-code of its first sampled
    occurrence leaves at most the violation budget of mismatching rows —
    exactly the reference's streaming first-seen-mapping count.
    """
    import numpy as np

    ct = compile_table(table)
    rows_arr = np.asarray(rows, dtype=np.int64)
    sub = ct.codes[rows_arr, :]
    cardinality = [
        int(np.unique(sub[:, j]).size) for j in range(table.n_fields)
    ]
    n_sample = len(rows)
    budget = int(tolerance * n_sample)

    fds = FunctionalDependencies()
    for ai, a in enumerate(table.fields):
        if cardinality[ai] > max_cardinality_ratio * n_sample:
            continue
        if cardinality[ai] <= 1:
            continue
        ca = sub[:, ai]
        _, first_idx, inverse = np.unique(
            ca, return_index=True, return_inverse=True
        )
        for bi, b in enumerate(table.fields):
            if ai == bi:
                continue
            if cardinality[ai] + tolerance * n_sample < cardinality[bi]:
                continue
            cb = sub[:, bi]
            violations = int((cb != cb[first_idx][inverse]).sum())
            if violations <= budget:
                fds.add(a, b)
    return fds
