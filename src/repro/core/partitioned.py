"""Partition-parallel reordering (the paper's Spark deployment, §5).

The paper implements its operator in PySpark, where a table arrives as
partitions. Solving each partition independently is embarrassingly parallel
and keeps per-solver memory at the partition size — at the cost of losing
cross-partition sharing. Two mechanisms recover most of that loss:

* **clustered partitioning** — rows are bucketed by the value of the
  statistics-best column before solving, so rows likely to share prefixes
  land in the same partition (Spark's ``repartition`` by key);
* **partition ordering** — solved partitions are concatenated in
  lexicographic order of their leading prefix, so the boundary rows of
  consecutive partitions have a chance to match too.

``partitioned_reorder`` returns the same validated
:class:`~repro.core.ordering.RequestSchedule` as the whole-table solver, so
everything downstream (engine, pricing, accuracy) is unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.fd import FunctionalDependencies
from repro.core.ggr import GGRConfig, ggr
from repro.core.ordering import RequestSchedule
from repro.core.phc import phc, phr
from repro.core.stats import TableStats
from repro.core.table import ReorderTable
from repro.errors import SolverError

PARTITION_MODES = ("round_robin", "range", "clustered")


@dataclass
class PartitionedResult:
    """Outcome of a partition-parallel solve."""

    schedule: RequestSchedule
    exact_phc: int
    exact_phr: float
    n_partitions: int
    partition_sizes: List[int]
    solver_seconds: float
    per_partition_seconds: List[float] = field(default_factory=list)

    @property
    def critical_path_seconds(self) -> float:
        """Wall-clock with perfect parallelism: the slowest partition."""
        return max(self.per_partition_seconds, default=0.0)


def _assign_partitions(
    table: ReorderTable, n_partitions: int, mode: str
) -> List[List[int]]:
    n = table.n_rows
    if mode == "round_robin":
        parts: List[List[int]] = [[] for _ in range(n_partitions)]
        for i in range(n):
            parts[i % n_partitions].append(i)
        return parts
    if mode == "range":
        size = (n + n_partitions - 1) // n_partitions
        return [list(range(lo, min(lo + size, n))) for lo in range(0, n, size)]
    # clustered: bucket rows by the statistics-best column's value so that
    # shared values co-locate (hash-partition by key, like Spark).
    stats = TableStats.compute(table)
    key_field = stats.field_order_by_score()[0]
    key_idx = table.field_index(key_field)
    buckets: Dict[str, List[int]] = {}
    for i, row in enumerate(table.rows):
        buckets.setdefault(row[key_idx], []).append(i)
    parts = [[] for _ in range(n_partitions)]
    sizes = [0] * n_partitions
    # Greedy bin packing, largest group first, into the emptiest partition:
    # keeps groups whole while balancing row counts.
    for _, rows in sorted(buckets.items(), key=lambda kv: -len(kv[1])):
        target = min(range(n_partitions), key=lambda p: sizes[p])
        parts[target].extend(rows)
        sizes[target] += len(rows)
    return parts


def partitioned_reorder(
    table: ReorderTable,
    n_partitions: int,
    mode: str = "clustered",
    fds: Optional[FunctionalDependencies] = None,
    config: Optional[GGRConfig] = None,
    order_partitions: bool = True,
) -> PartitionedResult:
    """Solve each partition with GGR and stitch the schedules together.

    ``mode`` picks the row→partition assignment (see module docstring).
    ``order_partitions`` sorts the solved partitions by their first row's
    rendered prefix so consecutive partitions may share cache state.
    """
    if mode not in PARTITION_MODES:
        raise SolverError(f"mode must be one of {PARTITION_MODES}, got {mode!r}")
    if n_partitions < 1:
        raise SolverError("n_partitions must be >= 1")
    n_partitions = min(n_partitions, max(1, table.n_rows))

    assignments = [p for p in _assign_partitions(table, n_partitions, mode) if p]
    start = time.perf_counter()
    solved: List[Tuple[Tuple[str, ...], List]] = []
    per_partition: List[float] = []
    for rows in assignments:
        sub = ReorderTable(table.fields, [table.rows[i] for i in rows])
        t0 = time.perf_counter()
        _, sched, _ = ggr(sub, fds=fds, config=config)
        per_partition.append(time.perf_counter() - t0)
        # Remap sub-table row ids back to the parent table.
        remapped = []
        for row in sched.rows:
            remapped.append((rows[row.row_id], row.cells))
        sort_key = tuple(c.value for c in remapped[0][1]) if remapped else ()
        solved.append((sort_key, remapped))
    if order_partitions:
        solved.sort(key=lambda kv: kv[0])
    elapsed = time.perf_counter() - start

    from repro.core.table import OrderedRow

    rows_out = [
        OrderedRow(row_id=rid, cells=cells)
        for _, part in solved
        for rid, cells in part
    ]
    schedule = RequestSchedule(rows=rows_out, source_fields=table.fields)
    schedule.validate_against(table)
    return PartitionedResult(
        schedule=schedule,
        exact_phc=phc(schedule),
        exact_phr=phr(schedule),
        n_partitions=len(assignments),
        partition_sizes=[len(p) for p in assignments],
        solver_seconds=elapsed,
        per_partition_seconds=per_partition,
    )
