"""Partition-parallel reordering (the paper's Spark deployment, §5).

The paper implements its operator in PySpark, where a table arrives as
partitions. Solving each partition independently is embarrassingly parallel
and keeps per-solver memory at the partition size — at the cost of losing
cross-partition sharing. Two mechanisms recover most of that loss:

* **clustered partitioning** — rows are bucketed by the value of the
  statistics-best column before solving, so rows likely to share prefixes
  land in the same partition (Spark's ``repartition`` by key);
* **partition ordering** — solved partitions are concatenated in
  lexicographic order of their leading prefix, so the boundary rows of
  consecutive partitions have a chance to match too.

``partitioned_reorder(parallel=True)`` actually fans the per-partition
solves out over a :class:`concurrent.futures.ProcessPoolExecutor`, so
``solver_seconds`` becomes measured multi-worker wall-clock rather than the
``critical_path_seconds`` simulation. The pool is kept cheap:

* under the ``fork`` start method workers inherit the parent table
  copy-on-write through a module global — jobs carry only row-id lists;
  other start methods fall back to pickling the table once per worker via
  the pool initializer;
* workers return compact index-level layouts (row order + per-row column
  order), not materialized cell objects;
* the parent rebuilds and index-validates the stitched schedule itself, so
  parallel and sequential runs return identical schedules.

Worker count defaults to the CPUs this process may actually use
(``os.sched_getaffinity``), so on a single-core host ``parallel=True``
degrades to the sequential path instead of paying pool overhead for
nothing; pass ``max_workers`` to force a pool.

``partitioned_reorder`` returns the same validated
:class:`~repro.core.ordering.RequestSchedule` as the whole-table solver, so
everything downstream (engine, pricing, accuracy) is unchanged.
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.fd import FunctionalDependencies
from repro.core.ggr import GGRConfig, ggr
from repro.core.ordering import RequestSchedule
from repro.core.phc import phc, phr
from repro.core.stats import TableStats
from repro.core.table import Cell, OrderedRow, ReorderTable
from repro.errors import SolverError

PARTITION_MODES = ("round_robin", "range", "clustered")

logger = logging.getLogger(__name__)

#: One partition's solve result in compact index form:
#: (row order within the sub-table, per-row column orders, solve seconds).
_PartitionSolve = Tuple[List[int], List[Tuple[int, ...]], float]

#: Worker-process state installed by the pool initializer.
_WORKER_STATE: Optional[
    Tuple[ReorderTable, Optional[FunctionalDependencies], Optional[GGRConfig]]
] = None


def _available_cpus() -> int:
    """CPUs this process may use: ``os.sched_getaffinity`` where it exists
    (Linux — respects cgroup/taskset restrictions), else ``os.cpu_count()``
    (macOS/Windows never define the attribute)."""
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0))
        except OSError:  # pragma: no cover - exotic kernels
            pass
    return os.cpu_count() or 1


@dataclass
class PartitionedResult:
    """Outcome of a partition-parallel solve."""

    schedule: RequestSchedule
    exact_phc: int
    exact_phr: float
    n_partitions: int
    partition_sizes: List[int]
    solver_seconds: float
    per_partition_seconds: List[float] = field(default_factory=list)
    n_workers: int = 1
    """Process-pool workers actually used (1 = sequential in-process)."""
    start_method: str = "in-process"
    """Process start method the pool ran under (``fork``/``spawn``/
    ``forkserver``), or ``"in-process"`` for the sequential path — recorded
    so bench runs on different platforms are comparable."""
    worker_transport: str = "in-process"
    """How the table reached the workers: ``"cow-fork"`` (inherited
    copy-on-write), ``"shared-memory"`` (attached from a
    ``multiprocessing.shared_memory`` segment, zero per-worker pickling),
    ``"pickle"`` (serialized once per worker), or ``"in-process"``."""

    @property
    def critical_path_seconds(self) -> float:
        """Wall-clock with perfect parallelism: the slowest partition."""
        return max(self.per_partition_seconds, default=0.0)


def _assign_partitions(
    table: ReorderTable, n_partitions: int, mode: str
) -> List[List[int]]:
    n = table.n_rows
    if mode == "round_robin":
        parts: List[List[int]] = [[] for _ in range(n_partitions)]
        for i in range(n):
            parts[i % n_partitions].append(i)
        return parts
    if mode == "range":
        size = (n + n_partitions - 1) // n_partitions
        return [list(range(lo, min(lo + size, n))) for lo in range(0, n, size)]
    # clustered: bucket rows by the statistics-best column's value so that
    # shared values co-locate (hash-partition by key, like Spark).
    stats = TableStats.compute(table)
    key_field = stats.field_order_by_score()[0]
    key_idx = table.field_index(key_field)
    buckets: Dict[str, List[int]] = {}
    for i, row in enumerate(table.rows):
        buckets.setdefault(row[key_idx], []).append(i)
    parts = [[] for _ in range(n_partitions)]
    sizes = [0] * n_partitions
    # Greedy bin packing, largest group first, into the emptiest partition:
    # keeps groups whole while balancing row counts.
    for _, rows in sorted(buckets.items(), key=lambda kv: -len(kv[1])):
        target = min(range(n_partitions), key=lambda p: sizes[p])
        parts[target].extend(rows)
        sizes[target] += len(rows)
    return parts


def _init_worker(
    table: ReorderTable,
    fds: Optional[FunctionalDependencies],
    config: Optional[GGRConfig],
) -> None:
    """Pool initializer: stash the shared solve inputs in the worker.

    Under ``fork`` the arguments arrive through copy-on-write memory; under
    ``spawn``/``forkserver`` they are pickled once per worker instead of
    once per job.
    """
    global _WORKER_STATE
    _WORKER_STATE = (table, fds, config)


def _solve_rows(
    table: ReorderTable,
    row_ids: Sequence[int],
    fds: Optional[FunctionalDependencies],
    config: Optional[GGRConfig],
) -> _PartitionSolve:
    """Solve one partition; return its layout in sub-table indices."""
    sub = ReorderTable(table.fields, [table.rows[i] for i in row_ids])
    t0 = time.perf_counter()
    _, sched, _ = ggr(sub, fds=fds, config=config)
    seconds = time.perf_counter() - t0
    field_idx = {f: i for i, f in enumerate(table.fields)}
    row_order = [r.row_id for r in sched.rows]
    field_orders = [
        tuple(field_idx[c.field] for c in r.cells) for r in sched.rows
    ]
    return row_order, field_orders, seconds


def _init_worker_shared(
    handle,
    fds: Optional[FunctionalDependencies],
    config: Optional[GGRConfig],
) -> None:
    """Pool initializer for non-fork start methods: rebuild the table from
    the parent's shared-memory segment instead of unpickling it — the only
    bytes pickled per worker are the handle and the (small) solve config."""
    from repro.core.compiled import attach_shared_table

    global _WORKER_STATE
    _WORKER_STATE = (attach_shared_table(handle), fds, config)


def _solve_partition_job(row_ids: List[int]) -> _PartitionSolve:
    """Worker body: one pickled row-id list in, one compact layout out."""
    assert _WORKER_STATE is not None, "pool initializer did not run"
    table, fds, config = _WORKER_STATE
    return _solve_rows(table, row_ids, fds, config)


def partitioned_reorder(
    table: ReorderTable,
    n_partitions: int,
    mode: str = "clustered",
    fds: Optional[FunctionalDependencies] = None,
    config: Optional[GGRConfig] = None,
    order_partitions: bool = True,
    parallel: bool = False,
    max_workers: Optional[int] = None,
    start_method: Optional[str] = None,
) -> PartitionedResult:
    """Solve each partition with GGR and stitch the schedules together.

    ``mode`` picks the row→partition assignment (see module docstring).
    ``order_partitions`` sorts the solved partitions by their first row's
    rendered prefix so consecutive partitions may share cache state.
    ``parallel=True`` fans the per-partition solves out over a process
    pool; ``max_workers`` caps the pool (default: the CPUs available to
    this process, bounded by the partition count). ``start_method`` forces
    the pool's process start method (``"fork"``/``"spawn"``/
    ``"forkserver"``; default: prefer fork where available). Non-fork
    workers attach the table from a shared-memory export of its dictionary
    codes instead of unpickling it. All paths — parallel under any start
    method, and sequential — return identical schedules; the chosen method
    and table transport are recorded on the result.
    """
    if mode not in PARTITION_MODES:
        raise SolverError(f"mode must be one of {PARTITION_MODES}, got {mode!r}")
    if n_partitions < 1:
        raise SolverError("n_partitions must be >= 1")
    n_partitions = min(n_partitions, max(1, table.n_rows))

    assignments = [p for p in _assign_partitions(table, n_partitions, mode) if p]

    start = time.perf_counter()
    chosen_method = "in-process"
    transport = "in-process"
    n_workers = 1
    if parallel and len(assignments) > 1:
        n_workers = min(max_workers or _available_cpus(), len(assignments))
    if n_workers > 1:
        import concurrent.futures
        import multiprocessing as mp

        methods = mp.get_all_start_methods()
        if start_method is not None and start_method not in methods:
            raise SolverError(
                f"start_method must be one of {methods}, got {start_method!r}"
            )
        ctx = mp.get_context(
            start_method or ("fork" if "fork" in methods else None)
        )
        chosen_method = ctx.get_start_method()
        shm = None
        if chosen_method == "fork":
            # Workers inherit the (immutable) table copy-on-write through
            # the initializer args — nothing is pickled but row-id lists.
            transport = "cow-fork"
            initializer, initargs = _init_worker, (table, fds, config)
        else:
            from repro.core.compiled import HAVE_NUMPY, export_shared_table

            if HAVE_NUMPY:
                # Spawn/forkserver: export the dictionary codes once into
                # shared memory; each worker attaches by name and rebuilds
                # the table without the parent re-pickling it per worker.
                transport = "shared-memory"
                handle, shm = export_shared_table(table)
                initializer, initargs = _init_worker_shared, (handle, fds, config)
            else:
                transport = "pickle"
                initializer, initargs = _init_worker, (table, fds, config)
        logger.info(
            "partitioned_reorder pool: %d workers, start method %s, "
            "table transport %s",
            n_workers,
            chosen_method,
            transport,
        )
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=n_workers,
                mp_context=ctx,
                initializer=initializer,
                initargs=initargs,
            ) as pool:
                solves = list(pool.map(_solve_partition_job, assignments))
        except OSError:
            # Process pools can be unavailable (restricted sandboxes);
            # degrade to the in-process sequential path.
            n_workers = 1
            chosen_method = transport = "in-process"
            solves = [_solve_rows(table, p, fds, config) for p in assignments]
        finally:
            if shm is not None:
                shm.close()
                shm.unlink()
    else:
        solves = [_solve_rows(table, p, fds, config) for p in assignments]

    solved: List[Tuple[Tuple[str, ...], List[Tuple[int, Tuple[int, ...]]]]] = []
    per_partition: List[float] = []
    for rows, (row_order, field_orders, seconds) in zip(assignments, solves):
        per_partition.append(seconds)
        remapped = [
            (rows[sub_rid], forder)
            for sub_rid, forder in zip(row_order, field_orders)
        ]
        if remapped:
            first_rid, first_order = remapped[0]
            src = table.rows[first_rid]
            sort_key = tuple(src[c] for c in first_order)
        else:
            sort_key = ()
        solved.append((sort_key, remapped))
    if order_partitions:
        solved.sort(key=lambda kv: kv[0])

    schedule = _schedule_from_global_layout(
        table, [entry for _, part in solved for entry in part]
    )
    elapsed = time.perf_counter() - start
    return PartitionedResult(
        schedule=schedule,
        exact_phc=phc(schedule),
        exact_phr=phr(schedule),
        n_partitions=len(assignments),
        partition_sizes=[len(p) for p in assignments],
        solver_seconds=elapsed,
        per_partition_seconds=per_partition,
        n_workers=n_workers,
        start_method=chosen_method,
        worker_transport=transport,
    )


def _schedule_from_global_layout(
    table: ReorderTable, layout: List[Tuple[int, Tuple[int, ...]]]
) -> RequestSchedule:
    """Materialize and validate a stitched whole-table layout.

    Cells are drawn from the table by (row, column) index, so index-level
    permutation checks are sufficient for schedule validity — no per-cell
    string sorting. Uses the compiled cell pool when available.
    """
    from repro.core.compiled import (
        compile_table,
        fastpath_enabled,
        schedule_from_layout,
        validate_layout,
    )

    if fastpath_enabled():
        return schedule_from_layout(compile_table(table), layout)

    validate_layout(table.n_rows, table.n_fields, layout)
    fields = table.fields
    rows_out: List[OrderedRow] = []
    for rid, forder in layout:
        src = table.rows[rid]
        rows_out.append(
            OrderedRow(
                row_id=rid,
                cells=tuple(Cell(fields[c], src[c]) for c in forder),
            )
        )
    return RequestSchedule(rows=rows_out, source_fields=fields)
