"""Fixed-field-order baselines (paper §3.2 and the Cache(Original) policy).

A fixed ordering applies one field permutation to *every* row. The paper
shows this can be up to ``m`` times worse in PHC than per-row reordering
(Fig. 1); these baselines are what GGR is compared against and also what
GGR itself falls back to when early stopping fires (§4.2.2).
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from repro.core.ordering import RequestSchedule
from repro.core.phc import phc
from repro.core.stats import TableStats
from repro.core.table import ReorderTable
from repro.errors import SolverError


def original_schedule(table: ReorderTable) -> RequestSchedule:
    """Rows and fields exactly as stored: the Cache(Original) policy."""
    return RequestSchedule.identity(table)


def stats_field_order(table: ReorderTable, score_mode: str = "expected") -> List[str]:
    """Field order by descending expected PHC contribution (§4.2.2)."""
    return TableStats.compute(table).field_order_by_score(score_mode)


def fixed_field_schedule(
    table: ReorderTable,
    field_order: Optional[Sequence[str]] = None,
    sort_rows: bool = True,
    score_mode: str = "expected",
) -> RequestSchedule:
    """Apply one field order to all rows, optionally lex-sorting rows.

    ``field_order=None`` uses the statistics-driven order. Lexicographic row
    sorting under the chosen field order makes duplicate prefixes contiguous,
    which is the best a fixed order can do without per-row decisions.
    """
    names = list(field_order) if field_order is not None else stats_field_order(table, score_mode)
    if sorted(names) != sorted(table.fields):
        raise SolverError(
            f"field_order {names!r} is not a permutation of table fields {table.fields!r}"
        )
    col_order = tuple(table.field_index(n) for n in names)
    row_ids = list(range(table.n_rows))
    if sort_rows:
        row_ids.sort(key=lambda r: tuple(table.rows[r][c] for c in col_order))
    return RequestSchedule.from_orders(
        table, row_ids, [col_order] * table.n_rows
    )


def best_fixed_field_schedule(
    table: ReorderTable,
    sort_rows: bool = True,
    max_exhaustive_fields: int = 6,
) -> Tuple[int, RequestSchedule]:
    """The best schedule achievable under a single shared field order.

    For ``m <= max_exhaustive_fields`` every ``m!`` order is tried; beyond
    that a greedy hill climb over adjacent transpositions starts from the
    statistics order. Returns ``(phc, schedule)``. This is the strongest
    member of the fixed-order family and the reference point for the
    "per-row reordering can be m x better" claim (Fig. 1b).
    """
    if table.n_rows == 0:
        return 0, RequestSchedule.identity(table)

    def evaluate(names: Sequence[str]) -> Tuple[int, RequestSchedule]:
        sched = fixed_field_schedule(table, names, sort_rows=sort_rows)
        return phc(sched), sched

    if table.n_fields <= max_exhaustive_fields:
        best_score = -1
        best_sched: Optional[RequestSchedule] = None
        for perm in itertools.permutations(table.fields):
            score, sched = evaluate(perm)
            if score > best_score:
                best_score, best_sched = score, sched
        assert best_sched is not None
        return best_score, best_sched

    names = stats_field_order(table)
    best_score, best_sched = evaluate(names)
    improved = True
    while improved:
        improved = False
        for i in range(len(names) - 1):
            candidate = list(names)
            candidate[i], candidate[i + 1] = candidate[i + 1], candidate[i]
            score, sched = evaluate(candidate)
            if score > best_score:
                best_score, best_sched, names = score, sched, candidate
                improved = True
    return best_score, best_sched
