"""Expression tree evaluated column-at-a-time over a Table.

``LLMExpr`` is the paper's operator: it cannot be evaluated locally — the
execution context routes it through :class:`~repro.relational.llm_functions.LLMRuntime`,
which reorders the touched sub-table, builds prompts, and runs the serving
simulator. Every other node evaluates eagerly in Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Set, Tuple

from repro.errors import SchemaError, SQLError
from repro.relational.table import Table


class Expr:
    """Base expression node."""

    def eval(self, table: Table, ctx: Optional["ExecutionContext"] = None) -> List[Any]:
        raise NotImplementedError

    def referenced_columns(self, table: Table) -> Set[str]:
        return set()


#: Attribute names that hold sub-expressions across every node type
#: (including :class:`~repro.relational.sql.nodes.AggCall`'s ``arg``).
_SUB_EXPR_ATTRS = ("left", "right", "child", "arg")


def iter_sub_expressions(expr: Expr):
    """Yield the direct sub-expressions of ``expr``.

    The generic traversal used by the planner (aggregate detection) and
    the optimizer (LLM detection, predicate ranking) — one place to update
    when a new composite node type is added.
    """
    for attr in _SUB_EXPR_ATTRS:
        sub = getattr(expr, attr, None)
        if isinstance(sub, Expr):
            yield sub


@dataclass(frozen=True)
class Col(Expr):
    """Column reference; ``qualifier.name`` resolves to ``name``."""

    name: str

    def resolve(self, table: Table) -> str:
        if table.has_column(self.name):
            return self.name
        if "." in self.name:
            bare = self.name.split(".", 1)[1]
            if table.has_column(bare):
                return bare
        raise SchemaError(f"unknown column {self.name!r}; table has {table.fields!r}")

    def eval(self, table: Table, ctx=None) -> List[Any]:
        return table.column(self.resolve(table))

    def referenced_columns(self, table: Table) -> Set[str]:
        return {self.resolve(table)}


@dataclass(frozen=True)
class Lit(Expr):
    value: Any

    def eval(self, table: Table, ctx=None) -> List[Any]:
        return [self.value] * table.n_rows


_CMP_OPS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Cmp(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in _CMP_OPS:
            raise SQLError(f"unsupported comparison operator {self.op!r}")

    def eval(self, table: Table, ctx=None) -> List[Any]:
        fn = _CMP_OPS[self.op]
        lv = self.left.eval(table, ctx)
        rv = self.right.eval(table, ctx)
        return [fn(a, b) for a, b in zip(lv, rv)]

    def referenced_columns(self, table: Table) -> Set[str]:
        return self.left.referenced_columns(table) | self.right.referenced_columns(table)


@dataclass(frozen=True)
class And(Expr):
    left: Expr
    right: Expr

    def eval(self, table: Table, ctx=None) -> List[Any]:
        lv = self.left.eval(table, ctx)
        rv = self.right.eval(table, ctx)
        return [bool(a) and bool(b) for a, b in zip(lv, rv)]

    def referenced_columns(self, table: Table) -> Set[str]:
        return self.left.referenced_columns(table) | self.right.referenced_columns(table)


@dataclass(frozen=True)
class Or(Expr):
    left: Expr
    right: Expr

    def eval(self, table: Table, ctx=None) -> List[Any]:
        lv = self.left.eval(table, ctx)
        rv = self.right.eval(table, ctx)
        return [bool(a) or bool(b) for a, b in zip(lv, rv)]

    def referenced_columns(self, table: Table) -> Set[str]:
        return self.left.referenced_columns(table) | self.right.referenced_columns(table)


@dataclass(frozen=True)
class Not(Expr):
    child: Expr

    def eval(self, table: Table, ctx=None) -> List[Any]:
        return [not bool(v) for v in self.child.eval(table, ctx)]

    def referenced_columns(self, table: Table) -> Set[str]:
        return self.child.referenced_columns(table)


@dataclass(frozen=True)
class IsNotNull(Expr):
    """``col <> NULL`` in the paper's first example query."""

    child: Expr

    def eval(self, table: Table, ctx=None) -> List[Any]:
        return [v is not None and v != "" for v in self.child.eval(table, ctx)]

    def referenced_columns(self, table: Table) -> Set[str]:
        return self.child.referenced_columns(table)


@dataclass(frozen=True)
class LLMExpr(Expr):
    """The paper's generic LLM operator (§3.1): a natural-language query
    plus a list of field references (or ``*``) of the current table.

    ``fields=("*",)`` expands to all columns at evaluation time. Evaluation
    requires an :class:`ExecutionContext` carrying an ``llm_runtime``.
    """

    query: str
    fields: Tuple[str, ...] = ("*",)

    def expanded_fields(self, table: Table) -> List[str]:
        out: List[str] = []
        for f in self.fields:
            if f == "*" or f.endswith(".*"):
                out.extend(table.fields)
            else:
                out.append(Col(f).resolve(table))
        # Preserve order, drop duplicates.
        return list(dict.fromkeys(out))

    def eval(self, table: Table, ctx=None) -> List[Any]:
        if ctx is None or ctx.llm_runtime is None:
            raise SQLError("LLM() expression requires an execution context with an LLM runtime")
        return ctx.llm_runtime.execute(table, self, fds=getattr(ctx, "fds", None))

    def referenced_columns(self, table: Table) -> Set[str]:
        return set(self.expanded_fields(table))


@dataclass
class ExecutionContext:
    """Carried through evaluation: catalog access, the LLM runtime, and the
    functional dependencies of the tables the query reads."""

    llm_runtime: Optional["LLMRuntime"] = None  # noqa: F821 - circular at runtime
    catalog: Optional[object] = None
    fds: Optional[object] = None  # FunctionalDependencies of scanned tables
