"""Tokenizer for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import SQLError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "JOIN", "ON", "AS", "AND", "OR", "NOT",
    "GROUP", "BY", "LIMIT", "NULL", "IS",
}

SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ".", "*")


@dataclass(frozen=True)
class Token:
    kind: str  # KEYWORD | IDENT | STRING | NUMBER | SYMBOL | EOF
    value: str
    pos: int


def tokenize(sql: str) -> List[Token]:
    tokens: List[Token] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            j = i + 1
            buf = []
            while j < n:
                if sql[j] == "'" and j + 1 < n and sql[j + 1] == "'":
                    buf.append("'")
                    j += 2
                    continue
                if sql[j] == "'":
                    break
                buf.append(sql[j])
                j += 1
            else:
                raise SQLError(f"unterminated string literal at {i}")
            tokens.append(Token("STRING", "".join(buf), i))
            i = j + 1
            continue
        if ch == '"':
            j = sql.find('"', i + 1)
            if j < 0:
                raise SQLError(f"unterminated quoted identifier at {i}")
            tokens.append(Token("IDENT", sql[i + 1 : j], i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and sql[i + 1].isdigit()):
            j = i + 1
            while j < n and (sql[j].isdigit() or sql[j] == "."):
                j += 1
            tokens.append(Token("NUMBER", sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (sql[j].isalnum() or sql[j] in "_/"):
                j += 1
            word = sql[i:j]
            kind = "KEYWORD" if word.upper() in KEYWORDS else "IDENT"
            value = word.upper() if kind == "KEYWORD" else word
            tokens.append(Token(kind, value, i))
            i = j
            continue
        for sym in SYMBOLS:
            if sql.startswith(sym, i):
                tokens.append(Token("SYMBOL", sym, i))
                i += len(sym)
                break
        else:
            raise SQLError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("EOF", "", n))
    return tokens
