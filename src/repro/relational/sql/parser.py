"""Recursive-descent parser for the SQL subset (see package docstring)."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SQLError
from repro.relational.expressions import (
    And,
    Cmp,
    Col,
    IsNotNull,
    Lit,
    LLMExpr,
    Not,
    Or,
)
from repro.relational.sql.lexer import Token, tokenize
from repro.relational.sql.nodes import (
    AggCall,
    JoinClause,
    SelectItem,
    SelectStmt,
    Star,
    TableRef,
)

_AGG_NAMES = {"AVG", "SUM", "COUNT", "MIN", "MAX"}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.i = 0

    # ------------------------------------------------------------- plumbing
    def peek(self) -> Token:
        return self.tokens[self.i]

    def next(self) -> Token:
        tok = self.tokens[self.i]
        self.i += 1
        return tok

    def at_keyword(self, *words: str) -> bool:
        t = self.peek()
        return t.kind == "KEYWORD" and t.value in words

    def expect_keyword(self, word: str) -> None:
        t = self.next()
        if t.kind != "KEYWORD" or t.value != word:
            raise SQLError(f"expected {word} at position {t.pos}, got {t.value!r}")

    def at_symbol(self, sym: str) -> bool:
        t = self.peek()
        return t.kind == "SYMBOL" and t.value == sym

    def expect_symbol(self, sym: str) -> None:
        t = self.next()
        if t.kind != "SYMBOL" or t.value != sym:
            raise SQLError(f"expected {sym!r} at position {t.pos}, got {t.value!r}")

    def accept_symbol(self, sym: str) -> bool:
        if self.at_symbol(sym):
            self.next()
            return True
        return False

    # ------------------------------------------------------------ statement
    def parse_select(self) -> SelectStmt:
        self.expect_keyword("SELECT")
        items = [self.parse_select_item()]
        while self.accept_symbol(","):
            items.append(self.parse_select_item())
        self.expect_keyword("FROM")
        source = self.parse_table_ref()
        joins: List[JoinClause] = []
        while self.at_keyword("JOIN"):
            self.next()
            ref = self.parse_table_ref()
            self.expect_keyword("ON")
            left = self.parse_column_name()
            self.expect_symbol("=")
            right = self.parse_column_name()
            joins.append(JoinClause(ref=ref, left_col=left, right_col=right))
        where = None
        if self.at_keyword("WHERE"):
            self.next()
            where = self.parse_expr()
        group_by: List[str] = []
        if self.at_keyword("GROUP"):
            self.next()
            self.expect_keyword("BY")
            group_by.append(self.parse_column_name())
            while self.accept_symbol(","):
                group_by.append(self.parse_column_name())
        limit = None
        if self.at_keyword("LIMIT"):
            self.next()
            t = self.next()
            if t.kind != "NUMBER":
                raise SQLError(f"LIMIT expects a number at {t.pos}")
            limit = int(float(t.value))
        return SelectStmt(
            items=items, source=source, joins=joins,
            where=where, group_by=group_by, limit=limit,
        )

    def parse_select_item(self) -> SelectItem:
        expr = self.parse_expr()
        alias = None
        if self.at_keyword("AS"):
            self.next()
            t = self.next()
            if t.kind != "IDENT":
                raise SQLError(f"expected alias identifier at {t.pos}")
            alias = t.value
        return SelectItem(expr=expr, alias=alias)

    def parse_table_ref(self) -> TableRef:
        if self.accept_symbol("("):
            sub = self.parse_select()
            self.expect_symbol(")")
            alias = self.parse_optional_alias()
            return TableRef(subquery=sub, alias=alias)
        t = self.next()
        if t.kind != "IDENT":
            raise SQLError(f"expected table name at {t.pos}, got {t.value!r}")
        return TableRef(name=t.value, alias=self.parse_optional_alias())

    def parse_optional_alias(self) -> Optional[str]:
        if self.at_keyword("AS"):
            self.next()
            t = self.next()
            if t.kind != "IDENT":
                raise SQLError(f"expected alias at {t.pos}")
            return t.value
        if self.peek().kind == "IDENT":
            return self.next().value
        return None

    def parse_column_name(self) -> str:
        t = self.next()
        if t.kind != "IDENT":
            raise SQLError(f"expected column name at {t.pos}, got {t.value!r}")
        name = t.value
        while self.at_symbol("."):
            self.next()
            nxt = self.next()
            if nxt.kind != "IDENT":
                raise SQLError(f"expected identifier after '.' at {nxt.pos}")
            name += "." + nxt.value
        return name

    # ---------------------------------------------------------- expressions
    def parse_expr(self):
        return self.parse_or()

    def parse_or(self):
        left = self.parse_and()
        while self.at_keyword("OR"):
            self.next()
            left = Or(left, self.parse_and())
        return left

    def parse_and(self):
        left = self.parse_not()
        while self.at_keyword("AND"):
            self.next()
            left = And(left, self.parse_not())
        return left

    def parse_not(self):
        if self.at_keyword("NOT"):
            self.next()
            return Not(self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self):
        left = self.parse_primary()
        t = self.peek()
        if t.kind == "SYMBOL" and t.value in ("=", "<>", "!=", "<", "<=", ">", ">="):
            op = self.next().value
            if self.at_keyword("NULL"):
                self.next()
                if op in ("<>", "!="):
                    return IsNotNull(left)
                if op == "=":
                    return Not(IsNotNull(left))
                raise SQLError(f"cannot compare to NULL with {op!r}")
            right = self.parse_primary()
            return Cmp(op, left, right)
        if self.at_keyword("IS"):
            self.next()
            negated = False
            if self.at_keyword("NOT"):
                self.next()
                negated = True
            self.expect_keyword("NULL")
            expr = IsNotNull(left)
            return expr if negated else Not(expr)
        return left

    def parse_primary(self):
        t = self.peek()
        if t.kind == "SYMBOL" and t.value == "(":
            self.next()
            inner = self.parse_expr()
            self.expect_symbol(")")
            return inner
        if t.kind == "STRING":
            self.next()
            return Lit(t.value)
        if t.kind == "NUMBER":
            self.next()
            num = float(t.value)
            return Lit(int(num) if num.is_integer() else num)
        if t.kind == "SYMBOL" and t.value == "*":
            self.next()
            return Star()
        if t.kind == "IDENT":
            return self.parse_ident_expr()
        raise SQLError(f"unexpected token {t.value!r} at position {t.pos}")

    def parse_ident_expr(self):
        name = self.next().value
        # Function call?
        if self.at_symbol("("):
            self.next()
            return self.parse_call(name)
        # Qualified column or table.* reference.
        full = name
        while self.at_symbol("."):
            self.next()
            if self.accept_symbol("*"):
                return Star()  # `t.*` — planner expands to all columns
            nxt = self.next()
            if nxt.kind != "IDENT":
                raise SQLError(f"expected identifier after '.' at {nxt.pos}")
            full += "." + nxt.value
        return Col(full)

    def parse_call(self, name: str):
        upper = name.upper()
        args = []
        if not self.at_symbol(")"):
            args.append(self.parse_expr())
            while self.accept_symbol(","):
                args.append(self.parse_expr())
        self.expect_symbol(")")

        if upper == "LLM":
            if not args or not isinstance(args[0], Lit) or not isinstance(args[0].value, str):
                raise SQLError("LLM() requires a string prompt as its first argument")
            fields = []
            for a in args[1:]:
                if isinstance(a, Star):
                    fields.append("*")
                elif isinstance(a, Col):
                    fields.append(a.name)
                else:
                    raise SQLError("LLM() field arguments must be column references or *")
            if not fields:
                fields = ["*"]
            return LLMExpr(query=args[0].value, fields=tuple(fields))
        if upper in _AGG_NAMES:
            if len(args) != 1:
                raise SQLError(f"{upper}() takes exactly one argument")
            return AggCall(fn=upper, arg=args[0])
        raise SQLError(f"unknown function {name!r}")


def parse_sql(sql: str) -> SelectStmt:
    """Parse one SELECT statement; raises :class:`SQLError` on bad input."""
    parser = _Parser(tokenize(sql))
    stmt = parser.parse_select()
    trailing = parser.peek()
    if trailing.kind != "EOF":
        raise SQLError(f"unexpected trailing input at position {trailing.pos}: {trailing.value!r}")
    return stmt
