"""AST nodes produced by the SQL parser.

Scalar expressions reuse :mod:`repro.relational.expressions` nodes directly;
this module only adds the statement-level shapes plus ``AggCall`` (an
aggregate reference the planner lifts into an Aggregate operator — it is
not evaluable row-wise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.relational.expressions import Expr


@dataclass(frozen=True)
class AggCall(Expr):
    """AVG/SUM/COUNT/MIN/MAX over a scalar expression."""

    fn: str
    arg: Expr

    def eval(self, table, ctx=None):  # pragma: no cover - planner lifts these
        raise NotImplementedError("aggregate calls are handled by the planner")

    def referenced_columns(self, table):
        # The base class returns the empty set; an aggregate reads whatever
        # its argument reads (schema checks and the optimizer rely on this).
        return self.arg.referenced_columns(table)


@dataclass(frozen=True)
class Star(Expr):
    """Bare ``*`` in a SELECT list or LLM argument list."""

    def eval(self, table, ctx=None):  # pragma: no cover - planner expands
        raise NotImplementedError("* is expanded by the planner")


@dataclass
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass
class TableRef:
    """A named table or a parenthesized subquery, optionally aliased."""

    name: Optional[str] = None
    subquery: Optional["SelectStmt"] = None
    alias: Optional[str] = None


@dataclass
class JoinClause:
    ref: TableRef
    left_col: str
    right_col: str


@dataclass
class SelectStmt:
    items: List[SelectItem]
    source: TableRef
    joins: List[JoinClause] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: List[str] = field(default_factory=list)
    limit: Optional[int] = None
