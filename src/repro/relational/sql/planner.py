"""Planner: AST -> physical operator tree.

Planning is deliberately rule-based (no cost model): FROM/JOIN first, then
WHERE, then either Aggregate (if any select item contains an AggCall) or
Project, then LIMIT. ``*`` expands at execution time via a pass-through
projection.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.errors import SchemaError, SQLError
from repro.relational.expressions import Col, Expr, LLMExpr, iter_sub_expressions
from repro.relational.operators import (
    Aggregate,
    CatalogScan,
    Filter,
    Join,
    Limit,
    PlanNode,
    Project,
    TableSource,
)
from repro.relational.sql.nodes import AggCall, SelectItem, SelectStmt, Star
from repro.relational.sql.parser import parse_sql


class _Passthrough(PlanNode):
    """`SELECT *`: forward the child table unchanged."""

    def __init__(self, child: PlanNode):
        self.child = child

    def execute(self, ctx):
        return self.child.execute(ctx)


def _default_alias(expr: Expr, index: int) -> str:
    if isinstance(expr, Col):
        return expr.name.split(".")[-1]
    if isinstance(expr, LLMExpr):
        return f"llm_{index}"
    if isinstance(expr, AggCall):
        return f"{expr.fn.lower()}_{index}"
    return f"col_{index}"


def _contains_agg(expr: Expr) -> bool:
    if isinstance(expr, AggCall):
        return True
    return any(_contains_agg(sub) for sub in iter_sub_expressions(expr))


def _plan_source(stmt: SelectStmt) -> PlanNode:
    ref = stmt.source
    if ref.subquery is not None:
        node: PlanNode = plan_statement(ref.subquery)
    else:
        assert ref.name is not None
        node = CatalogScan(ref.name)
    for join in stmt.joins:
        if join.ref.subquery is not None:
            right: PlanNode = plan_statement(join.ref.subquery)
        else:
            assert join.ref.name is not None
            right = CatalogScan(join.ref.name)
        node = Join(left=node, right=right, left_col=join.left_col, right_col=join.right_col)
    return node


def plan_statement(stmt: SelectStmt) -> PlanNode:
    node = _plan_source(stmt)
    if stmt.where is not None:
        node = Filter(child=node, predicate=stmt.where)

    has_agg = any(_contains_agg(item.expr) for item in stmt.items)
    if has_agg:
        # Group keys and aggregate values become sibling output columns, so
        # name collisions would silently interleave them into a corrupt
        # table at execution time — reject them here, at plan time.
        group_names = set(stmt.group_by) | {g.split(".")[-1] for g in stmt.group_by}
        aggs: List[Tuple[str, Expr, str]] = []
        seen_aliases: set = set()
        for i, item in enumerate(stmt.items):
            expr = item.expr
            if isinstance(expr, AggCall):
                alias = item.alias or _default_alias(expr, i)
                if alias in group_names:
                    raise SchemaError(
                        f"aggregate alias {alias!r} collides with a GROUP BY "
                        "column; pick a different alias"
                    )
                if alias in seen_aliases:
                    raise SchemaError(f"duplicate aggregate alias {alias!r}")
                seen_aliases.add(alias)
                aggs.append((expr.fn, expr.arg, alias))
            elif isinstance(expr, Col) and expr.name in stmt.group_by:
                continue  # group keys come through automatically
            else:
                raise SQLError(
                    "select items in an aggregate query must be aggregates "
                    "or GROUP BY columns"
                )
        node = Aggregate(child=node, aggs=aggs, group_by=list(stmt.group_by))
    else:
        if len(stmt.items) == 1 and isinstance(stmt.items[0].expr, Star):
            node = _Passthrough(node)
        else:
            items: List[Tuple[Expr, str]] = []
            for i, item in enumerate(stmt.items):
                if isinstance(item.expr, Star):
                    raise SQLError("* must be the only select item")
                items.append((item.expr, item.alias or _default_alias(item.expr, i)))
            node = Project(child=node, items=items)

    if stmt.limit is not None:
        node = Limit(child=node, n=stmt.limit)
    return node


def plan_sql(sql: str) -> PlanNode:
    """Parse and plan one SELECT statement."""
    return plan_statement(parse_sql(sql))


def collect_scan_names(plan: PlanNode) -> Set[str]:
    """Names of catalog tables a plan reads (used to gather their FDs)."""
    names: Set[str] = set()
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, CatalogScan):
            names.add(node.name)
        for attr in ("child", "left", "right"):
            sub = getattr(node, attr, None)
            if isinstance(sub, PlanNode):
                stack.append(sub)
    return names
