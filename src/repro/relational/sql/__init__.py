"""SQL-subset front-end for LLM queries.

Covers the paper's example syntax (§1, §3.1, Appendix A):

* ``SELECT`` items with aliases, ``*``, aggregate calls, ``LLM(...)``;
* ``FROM`` a named table, a parenthesized subquery with alias, ``JOIN ..
  ON a = b`` chains;
* ``WHERE`` with comparisons, AND/OR/NOT, ``LLM(...) = '...'``,
  ``col <> NULL`` / ``IS [NOT] NULL``;
* ``GROUP BY`` and ``LIMIT``;
* quoted identifiers (``"beer/beerId"``) for the paper's slash-named
  columns.
"""

from repro.relational.sql.lexer import tokenize
from repro.relational.sql.parser import parse_sql
from repro.relational.sql.planner import collect_scan_names, plan_sql

__all__ = ["tokenize", "parse_sql", "plan_sql", "collect_scan_names"]
