"""Column-oriented table: the engine's only data container.

Columns are plain Python lists (values may be str/int/float/bool/None);
the reordering solvers receive a stringified
:class:`~repro.core.table.ReorderTable` view via :meth:`Table.to_reorder_table`,
mirroring how the paper's operator serializes Spark rows to JSON.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.table import ReorderTable
from repro.errors import SchemaError


def render_value(value: Any) -> str:
    """Stringify a cell for prompt serialization (stable across calls)."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


class Table:
    """An ordered mapping of column name -> list of values."""

    def __init__(self, columns: Mapping[str, Sequence[Any]], name: str = ""):
        self._columns: Dict[str, List[Any]] = {}
        n = None
        for col, values in columns.items():
            values = list(values)
            if n is None:
                n = len(values)
            elif len(values) != n:
                raise SchemaError(
                    f"column {col!r} has {len(values)} rows, expected {n}"
                )
            self._columns[str(col)] = values
        self._n_rows = n or 0
        self.name = name

    # ----------------------------------------------------------- inspection
    @property
    def fields(self) -> Tuple[str, ...]:
        return tuple(self._columns)

    @property
    def n_rows(self) -> int:
        return self._n_rows

    def __len__(self) -> int:
        return self._n_rows

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def column(self, name: str) -> List[Any]:
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; table has {self.fields!r}"
            ) from None

    def row(self, i: int) -> Dict[str, Any]:
        return {c: v[i] for c, v in self._columns.items()}

    def rows(self) -> Iterable[Dict[str, Any]]:
        for i in range(self._n_rows):
            yield self.row(i)

    # --------------------------------------------------------- construction
    @staticmethod
    def from_rows(fields: Sequence[str], rows: Iterable[Sequence[Any]], name: str = "") -> "Table":
        fields = list(fields)
        cols: Dict[str, List[Any]] = {f: [] for f in fields}
        for i, row in enumerate(rows):
            row = list(row)
            if len(row) != len(fields):
                raise SchemaError(f"row {i} has {len(row)} cells, expected {len(fields)}")
            for f, v in zip(fields, row):
                cols[f].append(v)
        return Table(cols, name=name)

    @staticmethod
    def from_records(records: Iterable[Mapping[str, Any]], name: str = "") -> "Table":
        records = list(records)
        if not records:
            return Table({}, name=name)
        fields = list(records[0])
        return Table.from_rows(fields, [[r[f] for f in fields] for r in records], name=name)

    # ------------------------------------------------------------ operators
    def select(self, names: Sequence[str]) -> "Table":
        return Table({n: self.column(n) for n in names}, name=self.name)

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        return Table(
            {mapping.get(c, c): v for c, v in self._columns.items()}, name=self.name
        )

    def with_column(self, name: str, values: Sequence[Any]) -> "Table":
        if len(values) != self._n_rows:
            raise SchemaError(
                f"new column {name!r} has {len(values)} rows, expected {self._n_rows}"
            )
        cols = dict(self._columns)
        cols[name] = list(values)
        return Table(cols, name=self.name)

    def filter(self, mask: Sequence[bool]) -> "Table":
        if len(mask) != self._n_rows:
            raise SchemaError("mask length mismatch")
        keep = [i for i, m in enumerate(mask) if m]
        return self.take(keep)

    def take(self, indices: Sequence[int]) -> "Table":
        return Table(
            {c: [v[i] for i in indices] for c, v in self._columns.items()},
            name=self.name,
        )

    def head(self, n: int) -> "Table":
        return self.take(range(min(n, self._n_rows)))

    def sort_by(self, names: Sequence[str]) -> "Table":
        cols = [self.column(n) for n in names]
        order = sorted(
            range(self._n_rows), key=lambda i: tuple(render_value(c[i]) for c in cols)
        )
        return self.take(order)

    def join(
        self,
        other: "Table",
        left_on: str,
        right_on: str,
        how: str = "inner",
    ) -> "Table":
        """Hash join. Overlapping non-key columns are rejected (qualify or
        rename first); the join key is kept once, under the left name."""
        if how != "inner":
            raise SchemaError(f"only inner joins are supported, got {how!r}")
        overlap = (set(self.fields) & set(other.fields)) - {left_on, right_on}
        if overlap:
            raise SchemaError(
                f"join would duplicate columns {sorted(overlap)}; rename first"
            )
        index: Dict[Any, List[int]] = {}
        for j, key in enumerate(other.column(right_on)):
            index.setdefault(key, []).append(j)
        left_idx: List[int] = []
        right_idx: List[int] = []
        for i, key in enumerate(self.column(left_on)):
            for j in index.get(key, ()):
                left_idx.append(i)
                right_idx.append(j)
        cols: Dict[str, List[Any]] = {
            c: [v[i] for i in left_idx] for c, v in self._columns.items()
        }
        for c, v in other._columns.items():
            if c == right_on:
                continue
            cols[c] = [v[j] for j in right_idx]
        return Table(cols, name=self.name)

    # ------------------------------------------------------------- bridging
    def to_reorder_table(self, fields: Optional[Sequence[str]] = None) -> ReorderTable:
        """Stringified view for the reordering solvers (prompt order of
        ``fields`` is irrelevant — the solver decides)."""
        names = list(fields) if fields is not None else list(self.fields)
        cols = [self.column(n) for n in names]
        rows = [
            tuple(render_value(col[i]) for col in cols) for i in range(self._n_rows)
        ]
        return ReorderTable(names, rows)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.name or 'anon'}: {self._n_rows}x{len(self._columns)} {self.fields})"
