"""Physical operators: a tree of these executes a query bottom-up.

Deliberately minimal — the paper needs scan, filter, project, inner join,
aggregate (for the T4 ``AVG(LLM(...))`` queries), and limit. Aggregate
functions coerce LLM string outputs to floats, matching the paper's usage
of numeric sentiment scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import SchemaError, SQLError
from repro.relational.expressions import Col, ExecutionContext, Expr
from repro.relational.table import Table


class PlanNode:
    def execute(self, ctx: ExecutionContext) -> Table:
        raise NotImplementedError


@dataclass
class TableSource(PlanNode):
    """Scan of an in-memory table."""

    table: Table

    def execute(self, ctx: ExecutionContext) -> Table:
        return self.table


@dataclass
class CatalogScan(PlanNode):
    """Scan of a named table resolved through the catalog."""

    name: str

    def execute(self, ctx: ExecutionContext) -> Table:
        if ctx.catalog is None:
            raise SQLError(f"no catalog available to resolve table {self.name!r}")
        return ctx.catalog.get_table(self.name)


@dataclass
class Filter(PlanNode):
    child: PlanNode
    predicate: Expr

    def execute(self, ctx: ExecutionContext) -> Table:
        table = self.child.execute(ctx)
        mask = [bool(v) for v in self.predicate.eval(table, ctx)]
        return table.filter(mask)


@dataclass
class Project(PlanNode):
    """Evaluate (expr, alias) pairs into output columns."""

    child: PlanNode
    items: List[Tuple[Expr, str]]

    def execute(self, ctx: ExecutionContext) -> Table:
        table = self.child.execute(ctx)
        cols: Dict[str, List[Any]] = {}
        for expr, alias in self.items:
            if alias in cols:
                raise SchemaError(f"duplicate output column {alias!r}")
            cols[alias] = list(expr.eval(table, ctx))
        return Table(cols, name=table.name)


@dataclass
class Join(PlanNode):
    left: PlanNode
    right: PlanNode
    left_col: str
    right_col: str

    def execute(self, ctx: ExecutionContext) -> Table:
        lt = self.left.execute(ctx)
        rt = self.right.execute(ctx)
        lcol = Col(self.left_col).resolve(lt)
        rcol = Col(self.right_col).resolve(rt)
        return lt.join(rt, lcol, rcol)


_AGG_FNS = ("AVG", "SUM", "COUNT", "MIN", "MAX")


def _to_number(value: Any) -> float:
    """Coerce an (often LLM-produced) value to a float; non-numeric answers
    are dropped by the caller."""
    if isinstance(value, bool):
        return float(value)
    return float(str(value).strip())


def _aggregate(fn: str, values: Sequence[Any]) -> Any:
    if fn == "COUNT":
        return len(values)
    nums: List[float] = []
    for v in values:
        try:
            nums.append(_to_number(v))
        except (TypeError, ValueError):
            continue  # skip malformed LLM outputs, as the paper's AVG does
    if not nums:
        return None
    if fn == "AVG":
        return sum(nums) / len(nums)
    if fn == "SUM":
        return sum(nums)
    if fn == "MIN":
        return min(nums)
    if fn == "MAX":
        return max(nums)
    raise SQLError(f"unknown aggregate {fn!r}")


@dataclass
class Aggregate(PlanNode):
    """Aggregates with optional GROUP BY.

    ``aggs`` are (fn, expr, alias); expressions are evaluated once over the
    child table (a single LLM pass), then folded per group.
    """

    child: PlanNode
    aggs: List[Tuple[str, Expr, str]]
    group_by: List[str] = field(default_factory=list)

    def execute(self, ctx: ExecutionContext) -> Table:
        table = self.child.execute(ctx)
        for fn, _, _ in self.aggs:
            if fn not in _AGG_FNS:
                raise SQLError(f"unsupported aggregate function {fn!r}")
        # The planner rejects alias collisions at plan time; hand-built
        # Aggregate nodes get the same guard here — colliding names would
        # silently interleave group keys and aggregate values.
        aliases = [alias for _, _, alias in self.aggs]
        if len(set(aliases)) != len(aliases):
            raise SchemaError(f"duplicate aggregate aliases in {aliases!r}")
        evaluated = [(fn, expr.eval(table, ctx), alias) for fn, expr, alias in self.aggs]

        if not self.group_by:
            cols = {alias: [_aggregate(fn, vals)] for fn, vals, alias in evaluated}
            return Table(cols, name=table.name)

        group_cols = [Col(g).resolve(table) for g in self.group_by]
        collisions = set(group_cols) & set(aliases)
        if collisions:
            raise SchemaError(
                f"aggregate aliases {sorted(collisions)} collide with GROUP BY "
                "columns; pick different aliases"
            )
        keys: Dict[Tuple[Any, ...], List[int]] = {}
        for i in range(table.n_rows):
            key = tuple(table.column(c)[i] for c in group_cols)
            keys.setdefault(key, []).append(i)
        out: Dict[str, List[Any]] = {c: [] for c in group_cols}
        for _, _, alias in evaluated:
            out[alias] = []
        for key, idxs in keys.items():
            for c, v in zip(group_cols, key):
                out[c].append(v)
            for fn, vals, alias in evaluated:
                out[alias].append(_aggregate(fn, [vals[i] for i in idxs]))
        return Table(out, name=table.name)


@dataclass
class Limit(PlanNode):
    child: PlanNode
    n: int

    def execute(self, ctx: ExecutionContext) -> Table:
        return self.child.execute(ctx).head(self.n)
