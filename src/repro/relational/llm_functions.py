"""The LLM operator: where request reordering meets query execution (§5).

``LLMRuntime.execute`` is invoked once per ``LLM(...)`` expression in a
query. It:

1. projects the touched fields into a :class:`ReorderTable`;
2. looks up rows whose ``(query, cells)`` were already answered by an
   earlier call (the cross-call **answer memo** — multi-stage queries that
   re-ask the same rows hit memory instead of the engine);
3. **deduplicates** the remaining rows on their projected cell tuple: a
   model is a function of its prompt, so only distinct inputs are solved
   and served — query cost is proportional to *distinct* LLM inputs, not
   rows (§3's input dedup optimization);
4. runs the configured reordering policy (GGR by default, with the source
   table's functional dependencies) over the distinct rows;
5. serializes one JSON prompt per scheduled row (Appendix C format);
6. obtains the answer text for each row from the ``answerer`` — the
   simulated model behaviour supplied by the dataset/task (or a judge for
   accuracy studies, which sees the *scheduled* cell order, so position
   effects are faithfully modelled);
7. optionally replays the prompt schedule through the serving simulator to
   charge realistic time and measure the achieved prefix hit rate;
8. scatters answers back to the original row order — reordering, dedup,
   and memoization never change query semantics.

Dedup and the memo assume the answerer is a function of the ``(query,
cell values)`` pair — the defined behaviour of a deduplicating system: a
group of identical rows is served by its representative's single prompt.
A *simulated* answerer that is sensitive to the scheduled cell order or
to ``row_id`` (e.g. a position-effect judge in an accuracy study over a
table with duplicate projected rows) can observe the collapse; run such
studies with ``LLMRuntime(dedup=False, memo=False)`` — or
``REPRO_SQL_OPT=0``, which restores the one-call-per-row reference path
everywhere (the equivalence oracle for the optimizer test suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.fd import FunctionalDependencies
from repro.core.ggr import GGRConfig
from repro.core.reorder import ReorderResult, reorder
from repro.core.table import Cell, ReorderTable, Row
from repro.llm.client import SimulatedLLMClient
from repro.llm.costmodel import estimate_tokens
from repro.llm.engine import EngineResult
from repro.llm.prompts import build_prompt
from repro.relational.expressions import LLMExpr
from repro.relational.optimizer import sql_opt_enabled
from repro.relational.table import Table

#: Signature of a simulated model: (query, cells in prompt order, row id) -> text.
Answerer = Callable[[str, Tuple[Cell, ...], int], str]

#: One memo entry: (query, projected field names, projected cell values).
MemoKey = Tuple[str, Tuple[str, ...], Row]


def default_answerer(query: str, cells: Tuple[Cell, ...], row_id: int) -> str:
    """Placeholder model used when a task supplies no behaviour."""
    return "OK"


class AnswerMemoStore:
    """Bounded cross-call LLM answer memo with telemetry.

    One store can back any number of :class:`LLMRuntime`\\ s — a
    :class:`~repro.relational.catalog.Database` owns one per session, so
    repeated queries hit answers cached by *earlier* queries (and by other
    runtimes sharing the database), not just earlier calls of the same
    runtime. FIFO eviction under ``max_entries``; ``hits``/``misses``/
    ``evictions`` count only real lookups (a runtime skips lookups while
    the store is empty, matching the pre-promotion behaviour).
    """

    def __init__(self, max_entries: int = 1 << 16):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._store: Dict[MemoKey, str] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: MemoKey) -> Optional[str]:
        value = self._store.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key: MemoKey, value: str) -> None:
        if key not in self._store and len(self._store) >= self.max_entries:
            self._store.pop(next(iter(self._store)))
            self.evictions += 1
        self._store[key] = value

    def clear(self) -> None:
        self._store.clear()

    def __len__(self) -> int:
        return len(self._store)

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._store),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


@dataclass
class LLMCallStats:
    """Telemetry for one LLM operator invocation."""

    query: str
    n_rows: int
    policy: str
    solver_seconds: float
    exact_phc: int
    schedule_phr: float
    engine_result: Optional[EngineResult] = None
    #: Rows actually solved/served after memo lookups and dedup.
    n_distinct: int = 0
    #: Rows answered from the cross-call memo (no solve, no engine).
    memo_hits: int = 0
    #: Prompt tokens the duplicate rows would have sent without dedup.
    dedup_saved_prompt_tokens: int = 0
    #: Token volume of the prompts actually scheduled (exact counts when a
    #: client is attached, char-based estimates otherwise).
    scheduled_prompt_tokens: int = 0

    @property
    def engine_seconds(self) -> float:
        return self.engine_result.total_seconds if self.engine_result else 0.0

    @property
    def measured_phr(self) -> float:
        """Token-level PHR measured by the serving engine (Table 2)."""
        if self.engine_result is None:
            return self.schedule_phr
        return self.engine_result.prefix_hit_rate


@dataclass
class LLMRuntime:
    """Executes LLM expressions under a reordering policy.

    Parameters
    ----------
    client:
        Serving simulator client; ``None`` skips timing (solver-only runs,
        used by fast tests and the solver-time experiments).
    policy:
        Reordering policy name (see :data:`repro.core.reorder.POLICIES`).
    fds:
        Functional dependencies of the source data (restricted per call to
        the touched fields).
    answerer:
        Simulated model behaviour; see :data:`Answerer`.
    dedup / memo:
        Input dedup and the cross-call answer memo. ``None`` (default)
        follows the ``REPRO_SQL_OPT`` gate; explicit ``True``/``False``
        override it per runtime.
    memo_store:
        The answer memo's backing store. Each runtime gets a private
        bounded store by default; a :class:`~repro.relational.catalog.Database`
        injects its session-scoped store so every query (and every runtime
        attached to that database) shares one memo with one telemetry
        rollup.
    """

    client: Optional[SimulatedLLMClient] = None
    policy: str = "ggr"
    fds: Optional[FunctionalDependencies] = None
    ggr_config: Optional[GGRConfig] = None
    answerer: Answerer = default_answerer
    validate: bool = False
    dedup: Optional[bool] = None
    memo: Optional[bool] = None
    calls: List[LLMCallStats] = field(default_factory=list)
    memo_store: AnswerMemoStore = field(
        default_factory=AnswerMemoStore, repr=False
    )

    @property
    def dedup_enabled(self) -> bool:
        return sql_opt_enabled() if self.dedup is None else self.dedup

    @property
    def memo_enabled(self) -> bool:
        return sql_opt_enabled() if self.memo is None else self.memo

    def _count_tokens(self, text: str) -> int:
        if self.client is not None:
            return self.client.count_tokens(text)
        return estimate_tokens(len(text))

    def execute(
        self,
        table: Table,
        expr: LLMExpr,
        fds: Optional[FunctionalDependencies] = None,
    ) -> List[str]:
        """Run one LLM operator over ``table``; returns answers aligned to
        the table's row order. ``fds`` (from the execution context) is used
        when the runtime has none of its own."""
        fields = expr.expanded_fields(table)
        sub = table.to_reorder_table(fields)
        n_rows = table.n_rows
        answers: List[Optional[str]] = [None] * n_rows

        # 1. Cross-call memo: rows already answered by an earlier call —
        # of this runtime or of any runtime sharing the (Database-scoped)
        # store. Lookups are skipped entirely while the store is empty.
        memo_on = self.memo_enabled
        memo_hits = 0
        pending: List[int] = []
        if memo_on and len(self.memo_store):
            for i, row in enumerate(sub.rows):
                hit = self.memo_store.get((expr.query, sub.fields, row))
                if hit is None:
                    pending.append(i)
                else:
                    answers[i] = hit
                    memo_hits += 1
        else:
            pending = list(range(n_rows))

        # 2. Dedup: group the remaining rows by their projected cell tuple;
        # only group representatives are solved and served.
        groups: List[List[int]]
        reps: List[int]
        if self.dedup_enabled:
            slot_of: Dict[Row, int] = {}
            groups, reps = [], []
            for i in pending:
                row = sub.rows[i]
                slot = slot_of.get(row)
                if slot is None:
                    slot_of[row] = len(groups)
                    groups.append([i])
                    reps.append(i)
                else:
                    groups[slot].append(i)
        else:
            groups = [[i] for i in pending]
            reps = list(pending)

        # 3. Reorder only the distinct pending rows. When nothing was
        # collapsed, solve the original view so the oracle path
        # (dedup/memo off) is byte-identical to the pre-optimizer code.
        if len(reps) == n_rows:
            solve = sub
        else:
            solve = ReorderTable(fields, [sub.rows[i] for i in reps])
        effective_fds = self.fds if self.fds is not None else fds
        fds = effective_fds.restrict(fields) if effective_fds is not None else None
        result: ReorderResult = reorder(
            solve,
            policy=self.policy,
            fds=fds,
            config=self.ggr_config,
            validate=self.validate,
        )

        prompts: List[str] = []
        answers_scheduled: List[str] = []
        for row in result.schedule.rows:
            prompts.append(build_prompt(expr.query, row.cells))
            answers_scheduled.append(
                self.answerer(expr.query, row.cells, reps[row.row_id])
            )

        engine_result = None
        if self.client is not None and prompts:
            batch = self.client.generate(prompts, outputs=answers_scheduled)
            engine_result = batch.engine_result

        # 4. Scatter each distinct answer to every row of its group and
        # remember it for later calls.
        scheduled_tokens = 0
        dedup_saved = 0
        for row, prompt, text in zip(result.schedule.rows, prompts, answers_scheduled):
            group = groups[row.row_id]
            for i in group:
                answers[i] = text
            n_tokens = self._count_tokens(prompt)
            scheduled_tokens += n_tokens
            dedup_saved += (len(group) - 1) * n_tokens
            if memo_on:
                self.memo_store.put((expr.query, sub.fields, sub.rows[group[0]]), text)

        self.calls.append(
            LLMCallStats(
                query=expr.query,
                n_rows=n_rows,
                policy=self.policy,
                solver_seconds=result.solver_seconds,
                exact_phc=result.exact_phc,
                schedule_phr=result.exact_phr,
                engine_result=engine_result,
                n_distinct=len(reps),
                memo_hits=memo_hits,
                dedup_saved_prompt_tokens=dedup_saved,
                scheduled_prompt_tokens=scheduled_tokens,
            )
        )
        return answers  # type: ignore[return-value]  # every slot is filled above

    # ------------------------------------------------------------- rollups
    @property
    def total_engine_seconds(self) -> float:
        return sum(c.engine_seconds for c in self.calls)

    @property
    def total_solver_seconds(self) -> float:
        return sum(c.solver_seconds for c in self.calls)

    @property
    def total_dedup_saved_prompt_tokens(self) -> int:
        return sum(c.dedup_saved_prompt_tokens for c in self.calls)

    @property
    def total_memo_hits(self) -> int:
        return sum(c.memo_hits for c in self.calls)

    @property
    def overall_phr(self) -> float:
        """Prompt-token-weighted PHR across all calls.

        Calls that ran through the serving engine contribute their measured
        token-level figures; calls without an engine (solver-only runs)
        fall back to the schedule-level PHR weighted by their scheduled
        prompt-token volume, so the rollup is meaningful either way instead
        of silently dropping engine-less calls.
        """
        num = den = 0.0
        for c in self.calls:
            if c.engine_result is not None:
                num += c.engine_result.cached_tokens
                den += c.engine_result.prompt_tokens
            else:
                num += c.schedule_phr * c.scheduled_prompt_tokens
                den += c.scheduled_prompt_tokens
        return num / den if den else 0.0
