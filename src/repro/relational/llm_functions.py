"""The LLM operator: where request reordering meets query execution (§5).

``LLMRuntime.execute`` is invoked once per ``LLM(...)`` expression in a
query. It:

1. projects the touched fields into a :class:`ReorderTable`;
2. runs the configured reordering policy (GGR by default, with the source
   table's functional dependencies);
3. serializes one JSON prompt per scheduled row (Appendix C format);
4. obtains the answer text for each row from the ``answerer`` — the
   simulated model behaviour supplied by the dataset/task (or a judge for
   accuracy studies, which sees the *scheduled* cell order, so position
   effects are faithfully modelled);
5. optionally replays the prompt schedule through the serving simulator to
   charge realistic time and measure the achieved prefix hit rate;
6. scatters answers back to the original row order — reordering never
   changes query semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.fd import FunctionalDependencies
from repro.core.ggr import GGRConfig
from repro.core.reorder import ReorderResult, reorder
from repro.core.table import Cell
from repro.llm.client import SimulatedLLMClient
from repro.llm.engine import EngineResult
from repro.llm.prompts import build_prompt
from repro.relational.expressions import LLMExpr
from repro.relational.table import Table

#: Signature of a simulated model: (query, cells in prompt order, row id) -> text.
Answerer = Callable[[str, Tuple[Cell, ...], int], str]


def default_answerer(query: str, cells: Tuple[Cell, ...], row_id: int) -> str:
    """Placeholder model used when a task supplies no behaviour."""
    return "OK"


@dataclass
class LLMCallStats:
    """Telemetry for one LLM operator invocation."""

    query: str
    n_rows: int
    policy: str
    solver_seconds: float
    exact_phc: int
    schedule_phr: float
    engine_result: Optional[EngineResult] = None

    @property
    def engine_seconds(self) -> float:
        return self.engine_result.total_seconds if self.engine_result else 0.0

    @property
    def measured_phr(self) -> float:
        """Token-level PHR measured by the serving engine (Table 2)."""
        if self.engine_result is None:
            return self.schedule_phr
        return self.engine_result.prefix_hit_rate


@dataclass
class LLMRuntime:
    """Executes LLM expressions under a reordering policy.

    Parameters
    ----------
    client:
        Serving simulator client; ``None`` skips timing (solver-only runs,
        used by fast tests and the solver-time experiments).
    policy:
        Reordering policy name (see :data:`repro.core.reorder.POLICIES`).
    fds:
        Functional dependencies of the source data (restricted per call to
        the touched fields).
    answerer:
        Simulated model behaviour; see :data:`Answerer`.
    """

    client: Optional[SimulatedLLMClient] = None
    policy: str = "ggr"
    fds: Optional[FunctionalDependencies] = None
    ggr_config: Optional[GGRConfig] = None
    answerer: Answerer = default_answerer
    validate: bool = False
    calls: List[LLMCallStats] = field(default_factory=list)

    def execute(
        self,
        table: Table,
        expr: LLMExpr,
        fds: Optional[FunctionalDependencies] = None,
    ) -> List[str]:
        """Run one LLM operator over ``table``; returns answers aligned to
        the table's row order. ``fds`` (from the execution context) is used
        when the runtime has none of its own."""
        fields = expr.expanded_fields(table)
        sub = table.to_reorder_table(fields)
        effective_fds = self.fds if self.fds is not None else fds
        fds = effective_fds.restrict(fields) if effective_fds is not None else None
        result: ReorderResult = reorder(
            sub,
            policy=self.policy,
            fds=fds,
            config=self.ggr_config,
            validate=self.validate,
        )

        prompts: List[str] = []
        answers_scheduled: List[str] = []
        for row in result.schedule.rows:
            prompts.append(build_prompt(expr.query, row.cells))
            answers_scheduled.append(self.answerer(expr.query, row.cells, row.row_id))

        engine_result = None
        if self.client is not None and prompts:
            batch = self.client.generate(prompts, outputs=answers_scheduled)
            engine_result = batch.engine_result

        self.calls.append(
            LLMCallStats(
                query=expr.query,
                n_rows=table.n_rows,
                policy=self.policy,
                solver_seconds=result.solver_seconds,
                exact_phc=result.exact_phc,
                schedule_phr=result.exact_phr,
                engine_result=engine_result,
            )
        )

        answers = [""] * table.n_rows
        for row, text in zip(result.schedule.rows, answers_scheduled):
            answers[row.row_id] = text
        return answers

    # ------------------------------------------------------------- rollups
    @property
    def total_engine_seconds(self) -> float:
        return sum(c.engine_seconds for c in self.calls)

    @property
    def total_solver_seconds(self) -> float:
        return sum(c.solver_seconds for c in self.calls)

    @property
    def overall_phr(self) -> float:
        """Prompt-token-weighted PHR across all calls."""
        num = den = 0
        for c in self.calls:
            if c.engine_result is not None:
                num += c.engine_result.cached_tokens
                den += c.engine_result.prompt_tokens
        return num / den if den else 0.0
