"""Mini relational engine hosting the paper's ``LLM()`` operator.

The paper implements its operator as a PySpark UDF; this package provides
the equivalent substrate: a column-oriented :class:`~repro.relational.table.Table`,
expression evaluation, physical operators (scan/filter/project/join/
aggregate/limit), a catalog with FDs and statistics, an SQL-subset
front-end able to parse the paper's example queries, and the LLM operator
itself — which is where request reordering plugs into query execution.
"""

from repro.relational.catalog import Catalog, Database
from repro.relational.expressions import (
    And,
    Cmp,
    Col,
    Lit,
    LLMExpr,
    Not,
    Or,
)
from repro.relational.llm_functions import AnswerMemoStore, LLMCallStats, LLMRuntime
from repro.relational.optimizer import (
    OptimizerConfig,
    OptimizedPlan,
    explain_plan,
    explain_sql,
    optimize_plan,
    sql_opt_enabled,
)
from repro.relational.table import Table

__all__ = [
    "Table",
    "Catalog",
    "Database",
    "Col",
    "Lit",
    "Cmp",
    "And",
    "Or",
    "Not",
    "LLMExpr",
    "LLMRuntime",
    "LLMCallStats",
    "AnswerMemoStore",
    "OptimizerConfig",
    "OptimizedPlan",
    "optimize_plan",
    "explain_plan",
    "explain_sql",
    "sql_opt_enabled",
]
