"""Catalog (named tables + their FDs/stats) and the Database facade.

The catalog is the bridge the paper assumes: "functional dependencies
(such as primary and foreign key relationships from the data schema) and
table statistics ... are readily available in many databases" (§1). The
:class:`Database` facade wires catalog + SQL front-end + LLM runtime into
one entry point:

    db = Database(runtime=LLMRuntime(client=...))
    db.register("movies", movies_table, fds=movies_fds)
    result = db.sql("SELECT movietitle FROM movies WHERE LLM('...', ...) = 'Yes'")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.fd import FunctionalDependencies
from repro.core.stats import TableStats
from repro.errors import SchemaError
from repro.relational.expressions import ExecutionContext
from repro.relational.llm_functions import AnswerMemoStore, LLMRuntime
from repro.relational.optimizer import (
    DEFAULT_OPTIMIZER_CONFIG,
    OptimizerConfig,
    explain_plan,
    optimize_plan,
)
from repro.relational.table import Table


@dataclass
class CatalogEntry:
    table: Table
    fds: FunctionalDependencies
    stats: TableStats


class Catalog:
    """Named tables with attached metadata."""

    def __init__(self):
        self._entries: Dict[str, CatalogEntry] = {}

    def register(
        self,
        name: str,
        table: Table,
        fds: Optional[FunctionalDependencies] = None,
    ) -> None:
        self._entries[name.lower()] = CatalogEntry(
            table=table,
            fds=fds or FunctionalDependencies.empty(),
            stats=TableStats.compute(table.to_reorder_table()),
        )

    def _entry(self, name: str) -> CatalogEntry:
        try:
            return self._entries[name.lower()]
        except KeyError:
            raise SchemaError(
                f"unknown table {name!r}; registered: {sorted(self._entries)}"
            ) from None

    def get_table(self, name: str) -> Table:
        return self._entry(name).table

    def get_fds(self, name: str) -> FunctionalDependencies:
        return self._entry(name).fds

    def get_stats(self, name: str) -> TableStats:
        return self._entry(name).stats

    def tables(self) -> Tuple[str, ...]:
        return tuple(sorted(self._entries))


class Database:
    """SQL-facing facade over the catalog, an LLM runtime, and the SQL
    optimizer (``optimizer_config`` defaults to the ``REPRO_SQL_OPT``-gated
    rewrites; pass ``OptimizerConfig(enabled=False)`` for the unoptimized
    reference plans).

    The cross-call LLM answer memo is **database-scoped**: the session
    owns one bounded :class:`AnswerMemoStore` (``answer_memo``), adopted
    by / from the runtime, so every query in the session — and any other
    runtime the caller attaches to this store — shares cached answers and
    one telemetry rollup (:attr:`memo_stats`).
    """

    def __init__(
        self,
        runtime: Optional[LLMRuntime] = None,
        optimizer_config: OptimizerConfig = DEFAULT_OPTIMIZER_CONFIG,
        answer_memo: Optional[AnswerMemoStore] = None,
    ):
        self.catalog = Catalog()
        self.runtime = runtime or LLMRuntime()
        if answer_memo is not None:
            # An explicit store wins: the runtime joins the session scope.
            self.answer_memo = answer_memo
            self.runtime.memo_store = answer_memo
        else:
            # Adopt the runtime's store as the session store, so a caller
            # who pre-built a runtime keeps any answers it already cached.
            self.answer_memo = self.runtime.memo_store
        self.optimizer_config = optimizer_config

    @property
    def memo_stats(self) -> Dict[str, int]:
        """Session-level answer-memo telemetry (entries, hits, misses,
        evictions)."""
        return self.answer_memo.stats

    def register(
        self,
        name: str,
        table: Table,
        fds: Optional[FunctionalDependencies] = None,
    ) -> None:
        self.catalog.register(name, table, fds=fds)

    def context(self, fds: Optional[FunctionalDependencies] = None) -> ExecutionContext:
        return ExecutionContext(
            llm_runtime=self.runtime, catalog=self.catalog, fds=fds
        )

    def sql(self, query: str) -> Table:
        """Parse, plan, optimize, and execute a SQL string.

        The FDs of every catalog table the plan scans are merged and made
        available to LLM operators via the execution context (the runtime's
        own ``fds``, if set, take precedence)."""
        from repro.relational.sql import collect_scan_names, plan_sql

        plan = plan_sql(query)
        merged = FunctionalDependencies.empty()
        for name in collect_scan_names(plan):
            merged = merged.merge(self.catalog.get_fds(name))
        plan = optimize_plan(
            plan, catalog=self.catalog, config=self.optimizer_config
        ).plan
        return plan.execute(self.context(fds=merged if len(merged) else None))

    def explain(self, query: str) -> str:
        """Render the optimized plan for ``query`` without executing it:
        the tree, the rewrites that fired, and the estimated LLM prompt
        tokens per operator. Unknown tables raise
        :class:`~repro.errors.SchemaError` up front, exactly as execution
        would — an EXPLAIN of an unresolvable plan is meaningless."""
        from repro.relational.sql import collect_scan_names, plan_sql

        plan = plan_sql(query)
        for name in collect_scan_names(plan):
            self.catalog.get_table(name)  # raises SchemaError when unknown
        return explain_plan(
            plan, catalog=self.catalog, config=self.optimizer_config
        )
