"""LLM-aware SQL optimizer: plan rewrites between planner and execution.

The planner (:mod:`repro.relational.sql.planner`) is deliberately
rule-based and order-preserving; this module is where the paper's
SQL-level optimizations (§3/§5) live. All rewrites are
semantics-preserving — they change *which rows reach an LLM operator and
in what order LLM predicates run*, never the query result:

``split_where_conjuncts``
    ``Filter(a AND b AND ...)`` becomes a chain of single-conjunct
    filters, so each predicate can be placed independently.
``pushdown_non_llm_filters``
    Conjuncts that touch no ``LLM(...)`` expression are evaluated first
    (below every LLM filter): cheap relational predicates shrink the
    table before any model call is issued.
``reorder_llm_predicates``
    Multiple LLM conjuncts run cheapest-expected-cost first, ranked by
    ``estimated prompt tokens per row x estimated selectivity`` (stats
    from the catalog when available; stable ties keep query order).
``push_limit_below_project``
    ``LIMIT`` moves below a row-wise ``Project`` so
    ``SELECT LLM(...) ... LIMIT n`` only calls the model on the ``n``
    surviving rows. (Every Project is deterministic row-wise here:
    aggregates are lifted into ``Aggregate`` by the planner.)

The unoptimized plan is kept as the equivalence oracle: ``REPRO_SQL_OPT=0``
(or ``OptimizerConfig(enabled=False)``) disables every rewrite *and* the
runtime-level input dedup / answer memo in
:class:`~repro.relational.llm_functions.LLMRuntime`, mirroring the
``REPRO_CORE_FASTPATH`` / ``REPRO_SERVING_FASTPATH`` pattern.

``explain_plan`` / ``Database.explain`` render the optimized tree with
the rewrites that fired and the estimated LLM prompt tokens per operator.
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.stats import TableStats
from repro.llm.costmodel import estimate_tokens
from repro.llm.prompts import SYSTEM_TEMPLATE
from repro.relational.expressions import (
    And,
    Cmp,
    Col,
    Expr,
    IsNotNull,
    Lit,
    LLMExpr,
    Not,
    Or,
    iter_sub_expressions,
)
from repro.relational.operators import (
    Aggregate,
    CatalogScan,
    Filter,
    Join,
    Limit,
    PlanNode,
    Project,
    TableSource,
)

#: JSON punctuation per serialized cell: quotes, colon, comma, spaces.
_CELL_OVERHEAD_CHARS = 8.0


def sql_opt_enabled() -> bool:
    """True when the SQL optimizer (and the runtime dedup/memo) is on.

    ``REPRO_SQL_OPT=0``/``false``/``no``/``off`` forces the unoptimized
    reference path everywhere — the equivalence oracle.
    """
    flag = os.environ.get("REPRO_SQL_OPT", "1").strip().lower()
    return flag not in ("0", "false", "no", "off")


@dataclass(frozen=True)
class OptimizerConfig:
    """Switches and estimation constants for the optimizer.

    ``enabled=None`` defers to :func:`sql_opt_enabled` (the env gate);
    ``True``/``False`` override it per database. The selectivity defaults
    are deliberately neutral (0.5): without per-predicate feedback the
    ranking degenerates to cheapest-tokens-first, which is the safe
    ordering when every LLM predicate is equally likely to pass rows.
    """

    enabled: Optional[bool] = None
    split_conjuncts: bool = True
    pushdown_non_llm: bool = True
    reorder_llm_predicates: bool = True
    limit_pushdown: bool = True
    #: Estimated fraction of rows an LLM predicate keeps.
    llm_selectivity: float = 0.5
    #: Estimated fraction of rows a non-LLM predicate keeps.
    non_llm_selectivity: float = 0.5
    #: Fallback average cell width when no column statistics are known.
    default_cell_chars: float = 48.0
    #: Fallback field count for ``LLM(..., *)`` with no known schema.
    default_n_fields: int = 6

    def resolve_enabled(self) -> bool:
        return sql_opt_enabled() if self.enabled is None else self.enabled


DEFAULT_OPTIMIZER_CONFIG = OptimizerConfig()


# --------------------------------------------------------------- expression utils
def contains_llm(expr: Expr) -> bool:
    """True when ``expr`` contains an ``LLM(...)`` call anywhere."""
    if isinstance(expr, LLMExpr):
        return True
    return any(contains_llm(sub) for sub in iter_sub_expressions(expr))


def find_llm_exprs(expr: Expr) -> List[LLMExpr]:
    """All ``LLM(...)`` calls inside ``expr``, in traversal order."""
    if isinstance(expr, LLMExpr):
        return [expr]
    out: List[LLMExpr] = []
    for sub in iter_sub_expressions(expr):
        out.extend(find_llm_exprs(sub))
    return out


def split_conjuncts(expr: Expr) -> List[Expr]:
    """Flatten an ``And`` tree into its conjuncts, left to right."""
    if isinstance(expr, And):
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def format_expr(expr: Expr) -> str:
    """SQL-ish one-line rendering of an expression for explain output."""
    if isinstance(expr, Col):
        return expr.name
    if isinstance(expr, Lit):
        return f"'{expr.value}'" if isinstance(expr.value, str) else str(expr.value)
    if isinstance(expr, LLMExpr):
        q = expr.query if len(expr.query) <= 40 else expr.query[:37] + "..."
        return f"LLM('{q}', {', '.join(expr.fields)})"
    if isinstance(expr, Cmp):
        return f"{format_expr(expr.left)} {expr.op} {format_expr(expr.right)}"
    if isinstance(expr, And):
        return f"({format_expr(expr.left)} AND {format_expr(expr.right)})"
    if isinstance(expr, Or):
        return f"({format_expr(expr.left)} OR {format_expr(expr.right)})"
    if isinstance(expr, Not):
        return f"NOT {format_expr(expr.child)}"
    if isinstance(expr, IsNotNull):
        return f"{format_expr(expr.child)} IS NOT NULL"
    fn = getattr(expr, "fn", None)
    arg = getattr(expr, "arg", None)
    if fn is not None and isinstance(arg, Expr):  # AggCall without importing sql.nodes
        return f"{fn}({format_expr(arg)})"
    return expr.__class__.__name__


# --------------------------------------------------------------- cost estimation
def _collect_source_stats(
    node: PlanNode, catalog: Optional[Any]
) -> Tuple[Optional[int], Dict[str, float]]:
    """(row estimate, field -> avg chars) gathered from the scans below
    ``node``. Catalog stats are precomputed at ``register`` time; bare
    :class:`TableSource` nodes are measured on the spot. Joins of several
    scans keep the per-field maxima and the larger row count — a coarse
    but monotone estimate (inner-join fanout is unknowable here)."""
    rows: Optional[int] = None
    avg: Dict[str, float] = {}
    stack: List[PlanNode] = [node]
    while stack:
        cur = stack.pop()
        stats: Optional[TableStats] = None
        if isinstance(cur, CatalogScan) and catalog is not None:
            get_stats = getattr(catalog, "get_stats", None)
            if get_stats is not None:
                try:
                    stats = get_stats(cur.name)
                except Exception:
                    stats = None
        elif isinstance(cur, TableSource):
            stats = TableStats.compute(cur.table.to_reorder_table())
        if stats is not None:
            rows = stats.n_rows if rows is None else max(rows, stats.n_rows)
            for col in stats.columns:
                avg[col.name] = max(avg.get(col.name, 0.0), col.avg_len)
        for attr in ("child", "left", "right"):
            sub = getattr(cur, attr, None)
            if isinstance(sub, PlanNode):
                stack.append(sub)
    return rows, avg


def estimate_llm_tokens_per_row(
    expr: LLMExpr,
    field_avg_chars: Optional[Dict[str, float]] = None,
    config: OptimizerConfig = DEFAULT_OPTIMIZER_CONFIG,
) -> float:
    """Estimated prompt tokens for one row of ``expr``.

    Prompt = fixed header (system template + query) + one JSON cell per
    touched field; cell width comes from column statistics when known,
    else ``config.default_cell_chars``. Chars convert to tokens via
    :func:`repro.llm.costmodel.estimate_tokens`.
    """
    avg = field_avg_chars or {}
    chars = float(len(SYSTEM_TEMPLATE.format(query=expr.query)))
    named = [f for f in expr.fields if f != "*" and not f.endswith(".*")]
    has_star = len(named) < len(expr.fields)
    if has_star:
        if avg:
            named = list(dict.fromkeys(list(avg) + named))
        else:
            chars += config.default_n_fields * (
                config.default_cell_chars + _CELL_OVERHEAD_CHARS
            )
    for f in dict.fromkeys(named):
        bare = f.split(".", 1)[1] if "." in f else f
        width = avg.get(f, avg.get(bare, config.default_cell_chars))
        chars += width + len(bare) + _CELL_OVERHEAD_CHARS
    return float(estimate_tokens(chars))


def predicate_rank(
    pred: Expr,
    field_avg_chars: Optional[Dict[str, float]] = None,
    config: OptimizerConfig = DEFAULT_OPTIMIZER_CONFIG,
) -> float:
    """Ordering key for an LLM conjunct: estimated prompt tokens per row
    (summed over the LLM calls it contains) x estimated selectivity.
    Lower rank runs first."""
    tokens = sum(
        estimate_llm_tokens_per_row(e, field_avg_chars, config)
        for e in find_llm_exprs(pred)
    )
    return tokens * config.llm_selectivity


# ------------------------------------------------------------------- optimizer
@dataclass
class OptimizedPlan:
    """The rewritten tree plus what the optimizer did to it.

    ``node_notes`` is keyed by ``id(node)`` — valid for the lifetime of
    ``plan`` (this object keeps the tree alive).
    """

    plan: PlanNode
    fired: List[str] = field(default_factory=list)
    node_notes: Dict[int, str] = field(default_factory=dict)
    enabled: bool = True

    def note(self, node: PlanNode) -> Optional[str]:
        return self.node_notes.get(id(node))


def _with_child(node: PlanNode, **replacements: PlanNode) -> PlanNode:
    """Shallow-copy ``node`` with some children swapped (works for plain
    classes like the planner's ``_Passthrough`` as well as dataclasses)."""
    new = copy.copy(node)
    for attr, sub in replacements.items():
        setattr(new, attr, sub)
    return new


def optimize_plan(
    plan: PlanNode,
    catalog: Optional[Any] = None,
    config: OptimizerConfig = DEFAULT_OPTIMIZER_CONFIG,
) -> OptimizedPlan:
    """Apply the enabled rewrites to ``plan`` (the input tree is not
    mutated). Returns the rewritten tree and a report of what fired."""
    if not config.resolve_enabled():
        return OptimizedPlan(plan=plan, enabled=False)
    out = OptimizedPlan(plan=plan)
    out.plan = _rewrite(plan, catalog, config, out)
    out.fired = list(dict.fromkeys(out.fired))
    return out


def _rewrite(
    node: PlanNode, catalog: Optional[Any], config: OptimizerConfig, out: OptimizedPlan
) -> PlanNode:
    if isinstance(node, Filter):
        return _rewrite_filter_chain(node, catalog, config, out)
    if isinstance(node, Limit):
        child = _rewrite(node.child, catalog, config, out)
        if config.limit_pushdown and isinstance(child, Project):
            inner = Limit(child=child.child, n=node.n)
            new_project = _with_child(child, child=inner)
            out.fired.append("push_limit_below_project")
            note = "LIMIT pushed below row-wise Project"
            if any(contains_llm(e) for e, _ in new_project.items):
                note += f" (LLM projection now evaluates <= {node.n} rows)"
            out.node_notes[id(inner)] = note
            return new_project
        return _with_child(node, child=child)
    rewritten = {}
    for attr in ("child", "left", "right"):
        sub = getattr(node, attr, None)
        if isinstance(sub, PlanNode):
            rewritten[attr] = _rewrite(sub, catalog, config, out)
    return _with_child(node, **rewritten) if rewritten else node


def _rewrite_filter_chain(
    top: Filter, catalog: Optional[Any], config: OptimizerConfig, out: OptimizedPlan
) -> PlanNode:
    # Gather the maximal run of stacked filters; ``preds`` is top-down, so
    # execution order is ``reversed(preds)``.
    preds: List[Expr] = []
    cur: PlanNode = top
    while isinstance(cur, Filter):
        preds.append(cur.predicate)
        cur = cur.child
    base = _rewrite(cur, catalog, config, out)

    exec_order: List[Expr] = []
    for pred in reversed(preds):
        conjuncts = split_conjuncts(pred) if config.split_conjuncts else [pred]
        if len(conjuncts) > 1:
            out.fired.append("split_where_conjuncts")
        exec_order.extend(conjuncts)

    if not config.pushdown_non_llm:
        # Keep the original interleaving: rebuild the (possibly
        # conjunct-split) chain bottom-up and stop here.
        node: PlanNode = base
        for c in exec_order:
            node = Filter(child=node, predicate=c)
        return node

    non_llm = [c for c in exec_order if not contains_llm(c)]
    llm = [c for c in exec_order if contains_llm(c)]

    pushed_down = False
    if non_llm and llm:
        # Fired only if some non-LLM conjunct originally ran after an LLM one.
        seen_llm = False
        for c in exec_order:
            if contains_llm(c):
                seen_llm = True
            elif seen_llm:
                pushed_down = True
                break
        if pushed_down:
            out.fired.append("pushdown_non_llm_filters")

    _, field_avg = _collect_source_stats(base, catalog)
    ranks = {id(c): predicate_rank(c, field_avg, config) for c in llm}
    llm_sorted = llm
    if config.reorder_llm_predicates and len(llm) > 1:
        llm_sorted = sorted(llm, key=lambda c: ranks[id(c)])  # stable
        if [id(c) for c in llm_sorted] != [id(c) for c in llm]:
            out.fired.append("reorder_llm_predicates")

    node: PlanNode = base
    for c in non_llm:
        node = Filter(child=node, predicate=c)
        if pushed_down:
            out.node_notes[id(node)] = "non-LLM predicate, evaluated before LLM filters"
    for c in llm_sorted:
        node = Filter(child=node, predicate=c)
        tokens = sum(
            estimate_llm_tokens_per_row(e, field_avg, config) for e in find_llm_exprs(c)
        )
        out.node_notes[id(node)] = (
            f"LLM predicate: ~{tokens:.0f} est tok/row, "
            f"sel~{config.llm_selectivity:g}, rank={ranks[id(c)]:.1f}"
        )
    return node


# ---------------------------------------------------------------------- explain
def explain_plan(
    plan: PlanNode,
    catalog: Optional[Any] = None,
    config: OptimizerConfig = DEFAULT_OPTIMIZER_CONFIG,
) -> str:
    """Optimize ``plan`` and render the resulting tree, top-down, with the
    rewrites that fired and per-operator LLM token estimates."""
    optimized = optimize_plan(plan, catalog=catalog, config=config)
    if optimized.enabled:
        header = (
            "rewrites: " + ", ".join(optimized.fired)
            if optimized.fired
            else "rewrites: (none applied)"
        )
    else:
        header = "optimizer disabled (REPRO_SQL_OPT=0); unoptimized plan"
    lines: List[str] = [header]
    # Source statistics are collected once for the whole tree (a join's
    # per-field maxima): token annotations are coarse estimates anyway, and
    # this keeps explain at one stats pass even for bare TableSource plans.
    _, field_avg = _collect_source_stats(optimized.plan, catalog)
    _render_node(optimized.plan, 0, catalog, config, optimized, field_avg, lines)
    return "\n".join(lines)


def explain_sql(
    sql: str,
    catalog: Optional[Any] = None,
    config: OptimizerConfig = DEFAULT_OPTIMIZER_CONFIG,
) -> str:
    """Parse, plan, optimize, and render one SELECT statement."""
    from repro.relational.sql import plan_sql

    return explain_plan(plan_sql(sql), catalog=catalog, config=config)


def _fmt_rows(rows: Optional[float]) -> str:
    return "?" if rows is None else f"{rows:.0f}"


def _render_node(
    node: PlanNode,
    depth: int,
    catalog: Optional[Any],
    config: OptimizerConfig,
    optimized: OptimizedPlan,
    field_avg: Dict[str, float],
    lines: List[str],
) -> Optional[float]:
    """Append this subtree's lines (parent first) and return its estimated
    output row count (``None`` when unknown)."""
    from repro.bench.reporting import fmt_tokens  # local: avoids an import cycle

    indent = "  " * depth
    slot = len(lines)
    lines.append("")  # placeholder; children render below it

    rows_out: Optional[float]
    if isinstance(node, TableSource):
        rows_out = float(node.table.n_rows)
        desc = f"TableSource  ~{_fmt_rows(rows_out)} rows"
    elif isinstance(node, CatalogScan):
        rows, _ = _collect_source_stats(node, catalog)
        rows_out = float(rows) if rows is not None else None
        desc = f"CatalogScan({node.name})  ~{_fmt_rows(rows_out)} rows"
    elif isinstance(node, Filter):
        rows_in = _render_node(node.child, depth + 1, catalog, config, optimized, field_avg, lines)
        llm_exprs = find_llm_exprs(node.predicate)
        if llm_exprs:
            per_row = sum(
                estimate_llm_tokens_per_row(e, field_avg, config) for e in llm_exprs
            )
            total = (
                f", ~{fmt_tokens(per_row * rows_in)} est LLM tok"
                if rows_in is not None
                else ""
            )
            desc = (
                f"Filter[LLM] {format_expr(node.predicate)}  "
                f"[~{_fmt_rows(rows_in)} rows in{total}]"
            )
            rows_out = None if rows_in is None else rows_in * config.llm_selectivity
        else:
            desc = (
                f"Filter {format_expr(node.predicate)}  [~{_fmt_rows(rows_in)} rows in]"
            )
            rows_out = None if rows_in is None else rows_in * config.non_llm_selectivity
    elif isinstance(node, Project):
        rows_in = _render_node(node.child, depth + 1, catalog, config, optimized, field_avg, lines)
        llm_items = [(e, a) for e, a in node.items if contains_llm(e)]
        desc = f"Project[{', '.join(a for _, a in node.items)}]"
        if llm_items:
            per_row = sum(
                estimate_llm_tokens_per_row(e, field_avg, config)
                for expr, _ in llm_items
                for e in find_llm_exprs(expr)
            )
            if rows_in is not None:
                desc += (
                    f"  [~{_fmt_rows(rows_in)} rows in, "
                    f"~{fmt_tokens(per_row * rows_in)} est LLM tok]"
                )
            else:
                desc += f"  [~{per_row:.0f} est LLM tok/row]"
        rows_out = rows_in
    elif isinstance(node, Join):
        left = _render_node(node.left, depth + 1, catalog, config, optimized, field_avg, lines)
        right = _render_node(node.right, depth + 1, catalog, config, optimized, field_avg, lines)
        rows_out = max(r for r in (left, right) if r is not None) if (
            left is not None or right is not None
        ) else None
        desc = f"Join({node.left_col} = {node.right_col})"
    elif isinstance(node, Aggregate):
        rows_in = _render_node(node.child, depth + 1, catalog, config, optimized, field_avg, lines)
        fns = ", ".join(f"{fn}({format_expr(e)}) AS {a}" for fn, e, a in node.aggs)
        group = f" GROUP BY {', '.join(node.group_by)}" if node.group_by else ""
        llm_args = [e for _, expr, _ in node.aggs for e in find_llm_exprs(expr)]
        desc = f"Aggregate[{fns}]{group}"
        if llm_args:
            per_row = sum(
                estimate_llm_tokens_per_row(e, field_avg, config) for e in llm_args
            )
            if rows_in is not None:
                desc += (
                    f"  [~{_fmt_rows(rows_in)} rows in, "
                    f"~{fmt_tokens(per_row * rows_in)} est LLM tok]"
                )
        rows_out = 1.0 if not node.group_by else rows_in
    elif isinstance(node, Limit):
        rows_in = _render_node(node.child, depth + 1, catalog, config, optimized, field_avg, lines)
        rows_out = float(node.n) if rows_in is None else min(float(node.n), rows_in)
        desc = f"Limit({node.n})"
    else:
        child = getattr(node, "child", None)
        rows_out = (
            _render_node(child, depth + 1, catalog, config, optimized, field_avg, lines)
            if isinstance(child, PlanNode)
            else None
        )
        name = node.__class__.__name__
        desc = "Project[*]" if name == "_Passthrough" else name

    note = optimized.note(node)
    lines[slot] = f"{indent}{desc}" + (f"  -- {note}" if note else "")
    return rows_out
