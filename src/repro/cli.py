"""Command-line entry point: ``python -m repro <experiment>``.

``repro list`` shows every experiment; ``repro all`` runs the full set.
``--scale`` replays the paper's dataset sizes proportionally
(``--scale 1.0`` = full size); it defaults to ``REPRO_SCALE`` or 0.05.

``repro explain [--sql "SELECT ..."]`` renders the LLM-aware optimizer's
plan for a query over the Movies demo catalog: the rewrites that fired
(non-LLM filters pushed below LLM filters, LLM predicates reordered by
estimated tokens x selectivity, LIMIT pushed below projections) and the
estimated LLM prompt tokens per operator.

``repro serve-trace`` demos the online serving layer: it synthesizes (or
loads, ``--trace``) a 3-tenant arrival-timed workload over the benchmark
query suite and replays it under every scheduling policy (``--policy``
narrows the set), printing prefix hit rate, p50/p95/p99 TTFT and goodput
per policy plus a per-tenant SLO table and the shared encode cache's
hit/miss telemetry.

``repro serve-cluster`` replays the same workload across a replica fleet
(``--replicas``, default 4) under every routing policy (``--routing``
narrows the set; ``--backend spawn`` runs replicas in real processes),
printing aggregate PHR, goodput, load skew and makespan per policy plus
the winning policy's per-replica table.

Both serving demos accept the continuous-batching knobs: ``--preemption
{off,recompute,swap}`` lets the scheduler evict decoding victims for
late-arriving urgent work, ``--chunk N`` splits long prefills into
N-token segments interleaved with decode, and ``--deadline-policy S``
sets the ``deadline`` EDF scheduler's default per-request deadline.

Both also accept ``--emit-trace FILE``: tracing is forced on and the
replay's execution trace — per-request lifecycle spans, preemption /
eviction / shed instants, and scheduler gauge timelines — is written as
Chrome trace-event JSON (load in Perfetto or chrome://tracing; one track
per policy for serve-trace, one per routing/replica for serve-cluster)
or compact JSONL with a ``.jsonl`` extension. ``repro trace-report FILE``
prints the per-track, per-tenant phase breakdown (queue / prefill /
decode / swap-stall %) of such a file.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.bench.experiments import EXPERIMENTS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction harness for 'Optimizing LLM Queries in Relational "
            "Data Analytics Workloads' (MLSys 2025)."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'all', 'list', 'explain', 'serve-trace', "
             "'serve-cluster', or 'trace-report'",
    )
    parser.add_argument(
        "path", nargs="?", default=None,
        help="trace file for 'repro trace-report' (Chrome JSON or JSONL, "
             "as written by --emit-trace)",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="dataset scale factor (1.0 = paper size)")
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument("--out", type=str, default=None,
                        help="also write the report to this file")
    parser.add_argument("--sql", type=str, default=None,
                        help="SQL for 'repro explain' (default: a demo "
                             "multi-predicate LLM query over Movies)")
    parser.add_argument("--policy", type=str, default=None,
                        help="comma-separated scheduler policies for "
                             "'repro serve-trace' (default: all)")
    parser.add_argument("--trace", type=str, default=None,
                        help="JSON workload trace file for 'repro "
                             "serve-trace' (default: synthesize a 3-tenant "
                             "mix over the query suite)")
    parser.add_argument("--requests", type=int, default=90,
                        help="synthesized trace length for 'repro "
                             "serve-trace'")
    parser.add_argument("--rate", type=float, default=None,
                        help="arrival rate (requests/s) for the "
                             "synthesized trace")
    parser.add_argument("--arrivals", type=str, default="poisson",
                        help="arrival process for the synthesized trace: "
                             "poisson, bursty, or diurnal")
    parser.add_argument("--deadline", type=float, default=None,
                        help="per-request E2E deadline (s) for goodput "
                             "accounting in 'repro serve-trace'")
    parser.add_argument("--save-trace", type=str, default=None,
                        help="also write the synthesized trace JSON here")
    parser.add_argument("--replicas", type=int, default=4,
                        help="replica count for 'repro serve-cluster'")
    parser.add_argument("--routing", type=str, default=None,
                        help="comma-separated routing policies for "
                             "'repro serve-cluster' (default: all)")
    parser.add_argument("--backend", type=str, default="inline",
                        help="cluster execution backend for 'repro "
                             "serve-cluster': inline or spawn")
    parser.add_argument("--preemption", type=str, default="off",
                        choices=["off", "recompute", "swap"],
                        help="decode preemption mode for the serving "
                             "demos: victims are evicted for re-prefill "
                             "(recompute) or parked in host memory (swap)")
    parser.add_argument("--chunk", type=int, default=None,
                        help="chunked-prefill segment size in tokens for "
                             "the serving demos (default: monolithic "
                             "prefill)")
    parser.add_argument("--deadline-policy", type=float, default=None,
                        help="default per-request deadline (s) for the "
                             "'deadline' EDF scheduler in the serving "
                             "demos (requests without their own "
                             "deadline_s use it)")
    parser.add_argument("--emit-trace", type=str, default=None,
                        help="write the serving demos' execution trace "
                             "here (forces tracing on): Chrome trace-event "
                             "JSON for Perfetto/chrome://tracing, or "
                             "compact JSONL with a .jsonl extension; "
                             "inspect with 'repro trace-report FILE'")
    return parser


#: Demo query for ``repro explain``: one cheap relational predicate plus
#: two LLM predicates of very different per-row cost, and a LIMIT — every
#: optimizer rewrite fires on it.
EXPLAIN_DEMO_SQL = (
    "SELECT movietitle FROM movies "
    "WHERE LLM('Given the movie information and review, answer Yes or No: "
    "is this movie suitable for kids?', movieinfo, reviewcontent) = 'Yes' "
    "AND reviewtype = 'Fresh' "
    "AND LLM('Is this title catchy? Yes or No.', movietitle) = 'Yes' "
    "LIMIT 5"
)


def run_explain(sql: Optional[str], scale: Optional[float], seed: int) -> str:
    """Build the Movies demo catalog and render the optimized plan."""
    from repro.bench.reporting import default_scale
    from repro.data import build_dataset
    from repro.relational import Database

    ds = build_dataset("movies", scale=scale or default_scale(0.01), seed=seed)
    db = Database()
    db.register("movies", ds.table, fds=ds.fds)
    return db.explain(sql or EXPLAIN_DEMO_SQL)


def _serve_trace_from_args(args):
    """The workload for the serving demos: the ``--trace`` file when
    given, else a synthesized 3-tenant mix over the benchmark query
    suite (optionally teed to ``--save-trace``)."""
    from repro.bench.reporting import default_scale
    from repro.llm.workload import (
        TenantSpec,
        WorkloadTrace,
        make_arrivals,
        synthesize_tenant_trace,
    )

    if args.trace:
        trace = WorkloadTrace.load(args.trace)
    else:
        # Three tenants over real suite queries: two unordered streams that
        # interleave against each other plus one GGR-reordered stream —
        # the cross-tenant cache-interference shape the policies differ on.
        scale = args.scale or default_scale(0.01)
        tenants = [
            TenantSpec("analytics", "movies-T1", policy="original", weight=1.0),
            TenantSpec("reviews", "products-T1", policy="original", weight=1.0),
            TenantSpec("curated", "movies-T2", policy="ggr", weight=0.5),
        ]
        rate = 40.0 if args.rate is None else args.rate
        arrivals = make_arrivals(
            args.arrivals, args.requests, rate, seed=args.seed
        )
        trace = synthesize_tenant_trace(
            tenants, arrivals, scale=scale, seed=args.seed
        )
    if args.save_trace:
        trace.save(args.save_trace)
    return trace


def _trace_header(trace, suffix: str = "") -> str:
    return (
        f"trace {trace.name!r}: {trace.n_requests} requests, "
        f"{len(trace.tenants)} tenants "
        f"({', '.join(trace.tenants)}), "
        f"{trace.duration_s:.2f}s span, "
        f"~{trace.offered_rate_rps():.1f} req/s offered" + suffix
    )


def run_serve_trace(args) -> str:
    """Replay an arrival-timed trace under each scheduling policy and
    render the policy comparison + per-tenant SLO tables."""
    from repro.llm.client import SimulatedLLMClient
    from repro.llm.engine import EngineConfig
    from repro.llm.scheduler import SCHEDULER_POLICIES, serving_online_enabled
    from repro.llm.tokenizer import HashTokenizer

    policies = (
        [p.strip() for p in args.policy.split(",") if p.strip()]
        if args.policy
        else list(SCHEDULER_POLICIES)
    )
    trace = _serve_trace_from_args(args)

    lines = [
        _trace_header(
            trace,
            "" if serving_online_enabled() else "  [REPRO_SERVING_ONLINE=0: "
            "offline replay, fcfs only]",
        ),
        "",
        "policy            phr     p50_ttft  p95_ttft  p99_ttft  e2e_p95"
        "   goodput    makespan  npre",
    ]
    # One tokenizer across the per-policy clients: each distinct prompt is
    # encoded once for the whole sweep, and the shared encode cache's
    # telemetry below shows the cross-policy reuse.
    tokenizer = HashTokenizer()
    last = None
    tracks = []
    for policy in policies:
        client = SimulatedLLMClient(
            engine_config=EngineConfig(
                scheduler=policy,
                max_batch_size=16,
                preemption=args.preemption,
                prefill_chunk_tokens=args.chunk,
                scheduler_deadline_s=args.deadline_policy,
                trace="on" if args.emit_trace else "auto",
            ),
            tokenizer=tokenizer,
        )
        res = client.generate_trace(trace, deadline_s=args.deadline)
        if res.engine_result.trace is not None:
            tracks.append((res.scheduler, res.engine_result.trace))
        s = res.slo
        lines.append(
            f"{res.scheduler:<16} {100 * res.prefix_hit_rate:5.1f}%  "
            f"{s.ttft.p50:7.3f}s  {s.ttft.p95:7.3f}s  {s.ttft.p99:7.3f}s  "
            f"{s.e2e.p95:7.3f}s  {100 * s.attainment:6.1f}%  "
            f"{res.total_seconds:8.2f}s  {res.engine_result.n_preemptions:>4}"
        )
        last = res
        ec_stats = client.encode_cache_stats()
        rx_stats = client.radix_stats()
    if last is not None:
        ec_lookups = ec_stats["hits"] + ec_stats["misses"]
        ec_rate = ec_stats["hits"] / ec_lookups if ec_lookups else 0.0
        lines.append(
            f"encode cache: {ec_stats['hits']} hits / "
            f"{ec_stats['misses']} misses ({100 * ec_rate:.1f}%), "
            f"{ec_stats['entries']} entries, "
            f"{ec_stats['evictions']} evictions"
        )
        lines.append(
            f"radix cache: backend={rx_stats['backend']}, "
            f"{rx_stats['nodes']} nodes, "
            f"{rx_stats['token_store_bytes']} store bytes, "
            f"{rx_stats['evicted_nodes']} nodes / "
            f"{rx_stats['evicted_tokens']} tok evicted"
        )
        lines.append("")
        lines.append(last.slo.render(f"per-tenant SLO ({last.scheduler})"))
    if args.emit_trace:
        from repro.llm.tracing import write_trace

        write_trace(tracks, args.emit_trace)
        lines.append("")
        lines.append(
            f"trace: wrote {len(tracks)} track(s) to {args.emit_trace} "
            f"(inspect with 'repro trace-report {args.emit_trace}' or "
            f"load in Perfetto)"
        )
    return "\n".join(lines)


def run_serve_cluster(args) -> str:
    """Replay an arrival-timed trace across a replica fleet under each
    routing policy and render the comparison + the last policy's
    per-replica table."""
    from repro.llm.cluster import (
        ROUTING_POLICIES,
        ClusterConfig,
        ClusterEngine,
        serving_cluster_enabled,
    )
    from repro.llm.engine import EngineConfig
    from repro.llm.tokenizer import HashTokenizer

    routings = (
        [r.strip() for r in args.routing.split(",") if r.strip()]
        if args.routing
        else list(ROUTING_POLICIES)
    )
    trace = _serve_trace_from_args(args)

    lines = [
        _trace_header(
            trace,
            "" if serving_cluster_enabled() else "  [REPRO_SERVING_CLUSTER=0: "
            "single-replica reference]",
        ),
        "",
        "routing            replicas  phr     goodput   skew    makespan"
        "  backend",
    ]
    tokenizer = HashTokenizer()
    last = None
    last_engine = None
    tracks = []
    for routing in routings:
        engine = ClusterEngine(
            config=ClusterConfig(
                n_replicas=args.replicas,
                routing=routing,
                backend=args.backend,
                engine=EngineConfig(
                    max_batch_size=16,
                    preemption=args.preemption,
                    prefill_chunk_tokens=args.chunk,
                    scheduler_deadline_s=args.deadline_policy,
                    trace="on" if args.emit_trace else "auto",
                ),
            ),
            tokenizer=tokenizer,
        )
        res = engine.run_trace(trace, deadline_s=args.deadline)
        tracks.extend(
            (f"{res.routing}/{label}", tr) for label, tr in res.trace_tracks()
        )
        lines.append(
            f"{res.routing:<18} {res.n_replicas:>8}  "
            f"{100 * res.prefix_hit_rate:5.1f}%  "
            f"{100 * res.goodput_attainment:6.1f}%  {res.load_skew:5.3f}  "
            f"{res.total_seconds:8.2f}s  {res.backend}"
            f"[{res.worker_transport}]"
        )
        last = res
        last_engine = engine
    if last is not None:
        # The encode cache rides the tokenizer, shared by every engine in
        # the sweep — one fleet-wide line, matching serve-trace's.
        ec = last_engine.encode_cache_stats()
        ec_lookups = ec["hits"] + ec["misses"]
        ec_rate = ec["hits"] / ec_lookups if ec_lookups else 0.0
        lines.append(
            f"encode cache: {ec['hits']} hits / "
            f"{ec['misses']} misses ({100 * ec_rate:.1f}%), "
            f"{ec['entries']} entries, {ec['evictions']} evictions"
        )
        lines.append("")
        lines.append(last.render_replicas())
        lines.append("")
        lines.append(
            last.slo.render(
                f"per-tenant SLO ({last.routing}, {last.n_replicas} replicas)"
            )
        )
    if args.emit_trace:
        from repro.llm.tracing import write_trace

        write_trace(tracks, args.emit_trace)
        lines.append("")
        lines.append(
            f"trace: wrote {len(tracks)} track(s) to {args.emit_trace} "
            f"(inspect with 'repro trace-report {args.emit_trace}' or "
            f"load in Perfetto)"
        )
    return "\n".join(lines)


def run_trace_report(path: Optional[str]) -> str:
    """Per-phase time breakdown of an ``--emit-trace`` file."""
    from repro.errors import ReproError
    from repro.llm.tracing import trace_report

    if not path:
        raise ReproError(
            "trace-report needs a trace file: repro trace-report TRACE.json"
        )
    return trace_report(path)


def _run_subcommand(name: str, runner, out: Optional[str]) -> int:
    """Shared subcommand epilogue: user errors (malformed SQL, unknown
    tables, bad trace files) become one line on stderr and a nonzero
    exit — never a traceback; success prints and optionally tees to
    ``out``."""
    from repro.errors import ReproError

    try:
        text = runner()
        print(text)
        if out:
            with open(out, "w") as fh:
                fh.write(text + "\n")
    except (ReproError, OSError) as exc:
        print(f"{name} failed: {exc}", file=sys.stderr)
        return 2
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    if args.experiment == "explain":
        return _run_subcommand(
            "explain",
            lambda: run_explain(args.sql, args.scale, args.seed),
            args.out,
        )

    if args.experiment == "serve-trace":
        return _run_subcommand(
            "serve-trace", lambda: run_serve_trace(args), args.out
        )

    if args.experiment == "serve-cluster":
        return _run_subcommand(
            "serve-cluster", lambda: run_serve_cluster(args), args.out
        )

    if args.experiment == "trace-report":
        return _run_subcommand(
            "trace-report", lambda: run_trace_report(args.path), args.out
        )

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'repro list'", file=sys.stderr)
        return 2

    reports = []
    for name in names:
        start = time.perf_counter()
        output = EXPERIMENTS[name](scale=args.scale, seed=args.seed)
        elapsed = time.perf_counter() - start
        text = output.render() + f"\n\n(wall time: {elapsed:.1f}s)"
        print(text)
        print()
        reports.append(text)

    if args.out:
        with open(args.out, "w") as fh:
            fh.write("\n\n".join(reports) + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
