"""Command-line entry point: ``python -m repro <experiment>``.

``repro list`` shows every experiment; ``repro all`` runs the full set.
``--scale`` replays the paper's dataset sizes proportionally
(``--scale 1.0`` = full size); it defaults to ``REPRO_SCALE`` or 0.05.

``repro explain [--sql "SELECT ..."]`` renders the LLM-aware optimizer's
plan for a query over the Movies demo catalog: the rewrites that fired
(non-LLM filters pushed below LLM filters, LLM predicates reordered by
estimated tokens x selectivity, LIMIT pushed below projections) and the
estimated LLM prompt tokens per operator.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.bench.experiments import EXPERIMENTS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction harness for 'Optimizing LLM Queries in Relational "
            "Data Analytics Workloads' (MLSys 2025)."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'all', 'list', or 'explain'",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="dataset scale factor (1.0 = paper size)")
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument("--out", type=str, default=None,
                        help="also write the report to this file")
    parser.add_argument("--sql", type=str, default=None,
                        help="SQL for 'repro explain' (default: a demo "
                             "multi-predicate LLM query over Movies)")
    return parser


#: Demo query for ``repro explain``: one cheap relational predicate plus
#: two LLM predicates of very different per-row cost, and a LIMIT — every
#: optimizer rewrite fires on it.
EXPLAIN_DEMO_SQL = (
    "SELECT movietitle FROM movies "
    "WHERE LLM('Given the movie information and review, answer Yes or No: "
    "is this movie suitable for kids?', movieinfo, reviewcontent) = 'Yes' "
    "AND reviewtype = 'Fresh' "
    "AND LLM('Is this title catchy? Yes or No.', movietitle) = 'Yes' "
    "LIMIT 5"
)


def run_explain(sql: Optional[str], scale: Optional[float], seed: int) -> str:
    """Build the Movies demo catalog and render the optimized plan."""
    from repro.bench.reporting import default_scale
    from repro.data import build_dataset
    from repro.relational import Database

    ds = build_dataset("movies", scale=scale or default_scale(0.01), seed=seed)
    db = Database()
    db.register("movies", ds.table, fds=ds.fds)
    return db.explain(sql or EXPLAIN_DEMO_SQL)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    if args.experiment == "explain":
        text = run_explain(args.sql, args.scale, args.seed)
        print(text)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text + "\n")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'repro list'", file=sys.stderr)
        return 2

    reports = []
    for name in names:
        start = time.perf_counter()
        output = EXPERIMENTS[name](scale=args.scale, seed=args.seed)
        elapsed = time.perf_counter() - start
        text = output.render() + f"\n\n(wall time: {elapsed:.1f}s)"
        print(text)
        print()
        reports.append(text)

    if args.out:
        with open(args.out, "w") as fh:
            fh.write("\n\n".join(reports) + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
