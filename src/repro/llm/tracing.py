"""Request-lifecycle span tracing and gauge timelines for the serving stack.

The engine's end-of-run scalars (counters, percentiles) say *how much*
time a workload took; this module records *where it went*: per-request
lifecycle spans — queued → admitted (prefill / prefill-chunk[i]) →
decode stint(s) → preempted(recompute/swap) → readmitted → finished —
plus instant events for radix evictions, deadline sheds, and tenant
quota rejections, and gauge timelines (batch size, waiting depth, KV
block charge, radix footprint, per-tenant quota charge) sampled at every
admission wave. Everything is stamped on the *simulated* clock.

The canonical clock
-------------------
The three replay modes do not share a bit-identical engine clock: the
stepwise oracle accumulates :meth:`CostModel.decode_step_time` per token
while the event modes jump whole decode runs with the closed-form
:meth:`CostModel.decode_run_time` — equal only up to float rounding.
Spans, however, must compare ``==`` across modes (span equality is an
equivalence axis alongside the metric checks), so the recorder keeps its
*own* canonical clock rebuilt from mode-invariant inputs:

* every discrete charge (prefill wave, per-request overhead, swap
  traffic) is reported as the exact float ``dt`` the engine added to its
  clock — those deltas are computed from mode-invariant integer wave
  entries through the same cost-model calls, so they are bitwise equal
  across modes;
* decode time is reported as ``(context_sum, batch, steps)`` advances
  (one per step in stepwise, one per closed-form run in the event
  modes).  Consecutive compatible advances — same batch, context sum
  continuing the arithmetic series — are *merged*, and the merged run is
  priced with a single ``decode_run_time`` call whenever any stamp,
  instant, gauge, or non-decode charge needs the clock.  Merge
  boundaries are exactly the points where the batch composition changes
  or an event is recorded, and those are mode-invariant, so every mode
  prices the identical sequence of merged runs and the canonical clocks
  agree bit for bit.

The canonical clock therefore equals each engine clock only up to float
rounding (like the engine clocks among themselves), but is *identical*
across modes — which is the property span equality needs.

Exports: Chrome trace-event JSON (``chrome://tracing`` / Perfetto; one
process row per track — policy, replica — and one thread per engine
batch slot) and compact JSONL.  ``trace_report`` renders a per-phase
time breakdown (queue / prefill / decode / swap-stall %) per track and
per tenant from either format.

Tracing is **off by default**: the engine keeps ``tracer = None`` and
every hook site is gated with one attribute test, so the replay loops
pay nothing.  ``REPRO_SERVING_TRACE=1`` (or ``EngineConfig.trace="on"``)
enables it; tracing ON leaves every ``EngineResult`` metric bit-identical
(the recorder only observes) and replay speed within the perf-recorded
``tracing_overhead_ratio >= 0.9`` guard (``benchmarks/
bench_tracing_micro.py``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import ReproError


def serving_trace_enabled() -> bool:
    """Whether lifecycle tracing is enabled by default (``EngineConfig.
    trace="auto"``). Inverted polarity vs the other serving gates:
    tracing is an opt-in observer, so the default is **off** and
    ``REPRO_SERVING_TRACE=1`` turns it on."""
    flag = os.environ.get("REPRO_SERVING_TRACE", "0").strip().lower()
    return flag in ("1", "true", "on", "yes")


# --------------------------------------------------------------------------
# Trace records
# --------------------------------------------------------------------------
#: Slot index used for spans that occupy no engine batch slot (queued,
#: preempted/parked intervals). Exported on a shared "waiting" thread row.
WAITING_SLOT = -1


class TraceSpan(NamedTuple):
    """One closed lifecycle interval on the canonical simulated clock.

    ``end_s`` may undershoot ``start_s`` by float rounding for queued
    spans (the arrival stamp is an engine-clock float, the close stamp a
    canonical-clock one); exporters clamp the duration at zero. ``args``
    is a sorted tuple of ``(key, value)`` pairs so spans stay hashable
    and compare ``==`` across replay modes. A NamedTuple rather than a
    frozen dataclass: span construction sits on the traced replay's hot
    path, and the tuple build keeps the tracing-overhead guard honest."""

    name: str
    request_id: int
    tenant: str
    slot: int
    start_s: float
    end_s: float
    args: Tuple[Tuple[str, object], ...] = ()


class TraceInstant(NamedTuple):
    """A zero-duration event (eviction, shed, quota rejection, preempt)."""

    name: str
    ts_s: float
    args: Tuple[Tuple[str, object], ...] = ()


class TraceGauge(NamedTuple):
    """One gauge sample: every tracked counter at one admission wave."""

    ts_s: float
    values: Tuple[Tuple[str, object], ...] = ()


@dataclass
class EngineTrace:
    """One run's trace: spans, instants, gauge samples, and run metadata
    (scheduler / preemption / replay mode). Plain picklable dataclasses —
    cluster workers ship these back through the spawn pipe."""

    spans: List[TraceSpan] = field(default_factory=list)
    instants: List[TraceInstant] = field(default_factory=list)
    gauges: List[TraceGauge] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)


def _pairs(d: Dict[str, object]) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted(d.items()))


# --------------------------------------------------------------------------
# Recorder
# --------------------------------------------------------------------------
class TraceRecorder:
    """Canonical-clock trace recorder driven by engine hook calls.

    The engine owns exactly one recorder for its lifetime (``None`` when
    tracing is off) and calls the hooks below at its clock-mutation and
    lifecycle points; see the module docstring for why the recorder's
    clock is rebuilt from deltas instead of copied from the engine.

    Hook contract (all stamps land on the canonical clock *after* any
    pending merged decode run is priced): ``queued`` at submit;
    ``popped`` when the policy commits an admission; ``advance`` for
    every discrete clock charge; ``decode`` for every decode advance;
    ``idle`` for idle-engine jumps; ``wave_end`` closes an admission
    wave (finalizes pops, samples a gauge); ``chunk_wave`` closes one
    chunked-prefill wave; ``preempt`` / ``finished`` close decode
    stints; ``instant`` records point events.
    """

    def __init__(self, cost):
        self._cost = cost
        self.clock = 0.0
        # Pending merged decode run (see module docstring).
        self._run_c0 = 0
        self._run_batch = 0
        self._run_steps = 0
        self._run_next_c = 0
        # Recorded events, append-only across runs; collect() slices.
        self.spans: List[TraceSpan] = []
        self.instants: List[TraceInstant] = []
        self.gauges: List[TraceGauge] = []
        # Open per-request state.
        self._queued: Dict[int, Tuple[float, str]] = {}  # rid -> (arrival, tenant)
        self._parked: Dict[int, Tuple[str, float]] = {}  # rid -> (span name, start)
        self._stints: Dict[int, float] = {}  # rid -> decode-stint start
        self._tenant: Dict[int, str] = {}  # rid -> tenant (while in-flight)
        self._chunk_idx: Dict[int, int] = {}  # rid -> next prefill-chunk index
        # Engine batch-slot assignment: min free slot at pop, freed at
        # finish/preempt — pop and release order are mode-invariant, so
        # slot numbers are too.
        self._slot_of: Dict[int, int] = {}
        self._free_slots: List[int] = []
        self._next_slot = 0
        # Pops awaiting the admission wave's end:
        # (rid, kind, pop clock, sorted args pairs).
        self._pending_pops: List[
            Tuple[int, str, float, Tuple[Tuple[str, object], ...]]
        ] = []

    # ------------------------------------------------------- canonical clock
    def _flush(self) -> None:
        """Price the pending merged decode run into the canonical clock."""
        if self._run_steps:
            self.clock += self._cost.decode_run_time(
                self._run_c0, self._run_batch, self._run_steps
            )
            self._run_steps = 0

    def decode(self, context_sum: int, batch: int, steps: int) -> None:
        """One decode advance: ``steps`` steps over a fixed batch whose
        context lengths sum to ``context_sum`` at the start. Consecutive
        compatible advances merge into one run."""
        if (
            self._run_steps
            and batch == self._run_batch
            and context_sum == self._run_next_c
        ):
            self._run_steps += steps
        else:
            if self._run_steps:
                self._flush()
            self._run_c0 = context_sum
            self._run_batch = batch
            self._run_steps = steps
        self._run_next_c = context_sum + batch * steps

    def advance(self, dt: float) -> None:
        """A discrete clock charge (prefill wave, overhead, swap traffic)
        — the exact float delta the engine added to its own clock."""
        if dt:
            if self._run_steps:
                self._flush()
            self.clock += dt

    def idle(self, arrival_s: float) -> None:
        """Idle-engine jump to the next arrival."""
        if self._run_steps:
            self._flush()
        if arrival_s > self.clock:
            self.clock = arrival_s

    # ----------------------------------------------------------- lifecycle
    def queued(self, request) -> None:
        """A request entered the waiting pool (engine submit)."""
        self._queued[request.request_id] = (request.arrival_s, request.tenant)
        self._tenant[request.request_id] = request.tenant

    def popped(
        self,
        request_id: int,
        kind: str,
        args: Tuple[Tuple[str, object], ...] = (),
    ) -> None:
        """The policy committed an admission. ``kind`` is ``"fresh"``
        (first admission, monolithic prefill), ``"chunk"`` (first
        admission, chunked prefill — only chunk 0 rides this wave), or
        ``"readmit"`` (a preempted member returning). ``args`` is the
        span's extra args as a *key-sorted* pairs tuple (keys sorting
        after ``"chunk"``) — pre-built by the caller so this hot hook
        never touches a dict. Closes the queued or parked interval and
        assigns a batch slot; the prefill span itself is finalized by
        :meth:`wave_end`, when the wave's merged prefill charge has
        landed."""
        if self._run_steps:
            self._flush()
        now = self.clock
        parked = self._parked.pop(request_id, None)
        if parked is not None:
            self.spans.append(
                TraceSpan(
                    parked[0],
                    request_id,
                    self._tenant.get(request_id, ""),
                    WAITING_SLOT,
                    parked[1],
                    now,
                )
            )
        else:
            queued = self._queued.pop(request_id, None)
            if queued is not None:
                self.spans.append(
                    TraceSpan(
                        "queued",
                        request_id,
                        queued[1],
                        WAITING_SLOT,
                        queued[0],
                        now,
                    )
                )
        if self._free_slots:
            slot = heappop(self._free_slots)
        else:
            slot = self._next_slot
            self._next_slot += 1
        self._slot_of[request_id] = slot
        self._pending_pops.append((request_id, kind, now, args))

    def wave_end(
        self, gauge: Optional[Tuple[Tuple[str, object], ...]] = None
    ) -> None:
        """The admission wave's charges are on the clock: finalize every
        pending pop into its prefill span, open decode stints for
        non-chunked entrants, and sample a gauge (``gauge`` is already
        the key-sorted pairs tuple :class:`TraceGauge` stores)."""
        if self._run_steps:
            self._flush()
        now = self.clock
        for request_id, kind, pop_t, args in self._pending_pops:
            tenant = self._tenant.get(request_id, "")
            slot = self._slot_of[request_id]
            if kind == "chunk":
                self._chunk_idx[request_id] = 1
                self.spans.append(
                    TraceSpan(
                        "prefill-chunk",
                        request_id,
                        tenant,
                        slot,
                        pop_t,
                        now,
                        # stays sorted: popped() requires arg keys > "chunk"
                        (("chunk", 0),) + args,
                    )
                )
                continue  # decodes only once the last chunk settles
            self.spans.append(
                TraceSpan(
                    "prefill", request_id, tenant, slot, pop_t, now, args
                )
            )
            self._stints[request_id] = now
        self._pending_pops.clear()
        if gauge is not None:
            self.gauges.append(TraceGauge(now, gauge))

    def chunk_wave(self, dt: float, members: Sequence[Tuple[int, bool]]) -> None:
        """One chunked-prefill wave advanced every mid-prefill member by
        a chunk, charging ``dt`` in one merged pass. ``members`` is
        ``(request_id, prefill_complete)`` in wave order; completed
        members open their decode stint at the post-wave clock (their
        post-prefill admission stamp)."""
        if self._run_steps:
            self._flush()
        start = self.clock
        self.clock = start + dt
        now = self.clock
        for request_id, done in members:
            idx = self._chunk_idx.get(request_id, 0)
            self._chunk_idx[request_id] = idx + 1
            self.spans.append(
                TraceSpan(
                    "prefill-chunk",
                    request_id,
                    self._tenant.get(request_id, ""),
                    self._slot_of.get(request_id, WAITING_SLOT),
                    start,
                    now,
                    (("chunk", idx),),
                )
            )
            if done:
                self._stints[request_id] = now
                self._chunk_idx.pop(request_id, None)

    def preempt(
        self, request_id: int, mode: str, kv_tokens: int, swap_dt: float
    ) -> None:
        """A decoding member was evicted from the batch: close its decode
        stint, record the preemption instant, charge the swap-out span
        (``swap`` mode), and open the parked interval the re-admission
        will close."""
        if self._run_steps:
            self._flush()
        now = self.clock
        tenant = self._tenant.get(request_id, "")
        slot = self._slot_of.pop(request_id, WAITING_SLOT)
        start = self._stints.pop(request_id, None)
        if start is not None:
            self.spans.append(
                TraceSpan("decode", request_id, tenant, slot, start, now)
            )
        self.instants.append(
            TraceInstant(
                "preempt",
                now,
                (
                    ("kv_tokens", kv_tokens),
                    ("mode", mode),
                    ("request_id", request_id),
                ),
            )
        )
        if swap_dt:
            self.clock = now + swap_dt
            self.spans.append(
                TraceSpan(
                    "swap-out", request_id, tenant, slot, now, self.clock
                )
            )
        if slot != WAITING_SLOT:
            heappush(self._free_slots, slot)
        self._parked[request_id] = (
            "preempted:swap" if mode == "swap" else "preempted:recompute",
            self.clock,
        )

    def finished(self, request_id: int) -> None:
        """A member completed: close its decode stint and free its slot."""
        if self._run_steps:
            self._flush()
        now = self.clock
        slot = self._slot_of.pop(request_id, WAITING_SLOT)
        start = self._stints.pop(request_id, None)
        if start is not None:
            self.spans.append(
                TraceSpan(
                    "decode",
                    request_id,
                    self._tenant.get(request_id, ""),
                    slot,
                    start,
                    now,
                )
            )
        if slot != WAITING_SLOT:
            heappush(self._free_slots, slot)
        self._tenant.pop(request_id, None)

    def dropped(self, request_id: int) -> None:
        """A queued-but-unadmitted request was withdrawn (failed-job
        cleanup): discard its open state without emitting a span."""
        self._queued.pop(request_id, None)
        self._parked.pop(request_id, None)
        self._tenant.pop(request_id, None)

    def instant(self, name: str, **args) -> None:
        """A point event (``evict``, ``quota-reject``, ``shed``) at the
        canonical clock."""
        if self._run_steps:
            self._flush()
        self.instants.append(TraceInstant(name, self.clock, _pairs(args)))

    # ------------------------------------------------------------- slicing
    def mark(self) -> Tuple[int, int, int]:
        """Watermark for :meth:`collect` — taken at the start of a run so
        a long-lived engine's successive runs slice their own events."""
        return (len(self.spans), len(self.instants), len(self.gauges))

    def collect(
        self, mark: Tuple[int, int, int], meta: Optional[Dict[str, object]] = None
    ) -> EngineTrace:
        """The events recorded since ``mark``, as one :class:`EngineTrace`."""
        s, i, g = mark
        return EngineTrace(
            spans=self.spans[s:],
            instants=self.instants[i:],
            gauges=self.gauges[g:],
            meta=dict(meta or {}),
        )


# --------------------------------------------------------------------------
# Export
# --------------------------------------------------------------------------
_US = 1_000_000  # Chrome trace-event timestamps are microseconds


def _chrome_events(pid: int, name: str, trace: EngineTrace) -> List[dict]:
    events: List[dict] = [
        {
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "name": "process_name",
            "args": {"name": name},
        },
        {
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "name": "thread_name",
            "args": {"name": "waiting"},
        },
    ]
    seen_slots = set()
    for span in trace.spans:
        tid = 0 if span.slot == WAITING_SLOT else span.slot + 1
        if tid and tid not in seen_slots:
            seen_slots.add(tid)
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": f"slot {span.slot}"},
                }
            )
        args = {"request_id": span.request_id}
        if span.tenant:
            args["tenant"] = span.tenant
        args.update(span.args)
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "name": span.name,
                "cat": "lifecycle",
                "ts": span.start_s * _US,
                "dur": max(0.0, (span.end_s - span.start_s) * _US),
                "args": args,
            }
        )
    for inst in trace.instants:
        events.append(
            {
                "ph": "i",
                "pid": pid,
                "tid": 0,
                "name": inst.name,
                "cat": "lifecycle",
                "ts": inst.ts_s * _US,
                "s": "p",
                "args": dict(inst.args),
            }
        )
    for gauge in trace.gauges:
        values = dict(gauge.values)
        counters = {
            "batch": {
                k: values[k] for k in ("running", "waiting", "prefilling")
                if k in values
            },
            "kv": {
                k: values[k]
                for k in (
                    "kv_used_tokens",
                    "kv_blocks_charged",
                    "kv_blocks_free",
                    "kv_parked_tokens",
                )
                if k in values
            },
            "radix": {
                k: values[k]
                for k in ("radix_nodes", "radix_store_bytes")
                if k in values
            },
        }
        tenant_charge = values.get("tenant_kv_blocks")
        if tenant_charge:
            counters["tenant-kv-blocks"] = dict(tenant_charge)
        for cname, series in counters.items():
            if not series:
                continue
            events.append(
                {
                    "ph": "C",
                    "pid": pid,
                    "tid": 0,
                    "name": cname,
                    "ts": gauge.ts_s * _US,
                    "args": series,
                }
            )
    return events


def export_chrome(
    tracks: Sequence[Tuple[str, EngineTrace]], path: str
) -> None:
    """Write ``tracks`` — named (policy, replica, ...) traces already on
    one global simulated clock — as a Chrome trace-event JSON file that
    ``chrome://tracing`` and Perfetto load directly: one process row per
    track, one thread per engine batch slot plus a shared ``waiting``
    row, counters for the gauge timelines."""
    events: List[dict] = []
    for pid, (name, trace) in enumerate(tracks):
        events.extend(_chrome_events(pid, name, trace))
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w") as fh:
        json.dump(payload, fh)


def export_jsonl(
    tracks: Sequence[Tuple[str, EngineTrace]], path: str
) -> None:
    """Compact line-oriented export: one JSON object per span, instant,
    and gauge sample, each tagged with its track name."""
    with open(path, "w") as fh:
        for name, trace in tracks:
            for span in trace.spans:
                fh.write(
                    json.dumps(
                        {
                            "type": "span",
                            "track": name,
                            "name": span.name,
                            "request_id": span.request_id,
                            "tenant": span.tenant,
                            "slot": span.slot,
                            "start_s": span.start_s,
                            "end_s": span.end_s,
                            "args": dict(span.args),
                        }
                    )
                    + "\n"
                )
            for inst in trace.instants:
                fh.write(
                    json.dumps(
                        {
                            "type": "instant",
                            "track": name,
                            "name": inst.name,
                            "ts_s": inst.ts_s,
                            "args": dict(inst.args),
                        }
                    )
                    + "\n"
                )
            for gauge in trace.gauges:
                fh.write(
                    json.dumps(
                        {
                            "type": "gauge",
                            "track": name,
                            "ts_s": gauge.ts_s,
                            "values": dict(gauge.values),
                        }
                    )
                    + "\n"
                )


def write_trace(tracks: Sequence[Tuple[str, EngineTrace]], path: str) -> None:
    """Export ``tracks`` to ``path`` — JSONL when the extension is
    ``.jsonl``, Chrome trace-event JSON otherwise."""
    if path.endswith(".jsonl"):
        export_jsonl(tracks, path)
    else:
        export_chrome(tracks, path)


# --------------------------------------------------------------------------
# trace-report
# --------------------------------------------------------------------------
#: Phase attribution of span names for the breakdown table. Queue time is
#: waiting to run (initial queueing plus recompute-preempted parking);
#: swap-stall is time lost to PCIe traffic (swap-out transfers plus
#: swap-parked intervals, which end with the swap-in).
_PHASES = (
    ("queue", ("queued", "preempted:recompute")),
    ("prefill", ("prefill", "prefill-chunk")),
    ("decode", ("decode",)),
    ("swap-stall", ("preempted:swap", "swap-out")),
)
_PHASE_OF = {name: phase for phase, names in _PHASES for name in names}


def _load_spans(path: str) -> List[Tuple[str, str, str, float]]:
    """Parse a trace file (Chrome JSON or JSONL) into
    ``(track, span name, tenant, duration_s)`` rows; raises
    :class:`ReproError` on malformed or truncated input."""
    try:
        with open(path, "r") as fh:
            text = fh.read()
    except OSError:
        raise  # the CLI convention already maps OSError to exit 2
    rows: List[Tuple[str, str, str, float]] = []
    try:
        payload = json.loads(text)
    except ValueError:
        payload = None
    if isinstance(payload, dict) and "traceEvents" in payload:
        events = payload["traceEvents"]
        if not isinstance(events, list):
            raise ReproError(f"{path}: 'traceEvents' is not a list")
        names: Dict[object, str] = {}
        for ev in events:
            if not isinstance(ev, dict):
                raise ReproError(f"{path}: malformed trace event {ev!r}")
            if ev.get("ph") == "M" and ev.get("name") == "process_name":
                names[ev.get("pid")] = str(ev.get("args", {}).get("name", ""))
        for ev in events:
            if ev.get("ph") != "X":
                continue
            try:
                dur = float(ev["dur"]) / _US
                track = names.get(ev.get("pid"), str(ev.get("pid")))
                tenant = str(ev.get("args", {}).get("tenant", ""))
                rows.append((track, str(ev["name"]), tenant, dur))
            except (KeyError, TypeError, ValueError):
                raise ReproError(f"{path}: malformed span event {ev!r}")
        return rows
    if payload is not None and not (
        isinstance(payload, dict) and payload.get("type")
    ):
        # One well-formed JSON document, but neither a Chrome trace nor a
        # single-record JSONL file.
        raise ReproError(
            f"{path} is not a trace file (no 'traceEvents' object and no "
            "JSONL trace records)"
        )
    # Not one JSON document (or a one-line JSONL file): line per record.
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except ValueError:
            raise ReproError(
                f"{path}: line {lineno} is not valid JSON "
                "(malformed or truncated trace)"
            )
        if not isinstance(rec, dict):
            raise ReproError(f"{path}: line {lineno} is not a JSON object")
        if rec.get("type") != "span":
            continue
        try:
            dur = max(0.0, float(rec["end_s"]) - float(rec["start_s"]))
            rows.append(
                (
                    str(rec.get("track", "")),
                    str(rec["name"]),
                    str(rec.get("tenant", "")),
                    dur,
                )
            )
        except (KeyError, TypeError, ValueError):
            raise ReproError(f"{path}: line {lineno} is missing span fields")
    return rows


def trace_report(path: str) -> str:
    """Per-phase time breakdown of a trace file: for every track (policy,
    replica) and every tenant within it, the share of recorded span time
    spent queued / prefilling / decoding / swap-stalled. Empty traces
    render a header-only table (no division by zero)."""
    rows = _load_spans(path)
    # (track, tenant) -> phase -> seconds; tenant "" aggregates the track.
    totals: Dict[Tuple[str, str], Dict[str, float]] = {}

    def bucket(track: str, tenant: str, phase: str, dur: float) -> None:
        phases = totals.setdefault((track, tenant), dict.fromkeys(
            (p for p, _ in _PHASES), 0.0
        ))
        phases[phase] += dur

    for track, name, tenant, dur in rows:
        phase = _PHASE_OF.get(name)
        if phase is None:
            continue
        bucket(track, "", phase, dur)
        if tenant:
            bucket(track, tenant, phase, dur)

    lines = [
        f"trace report: {path}",
        "track                                spans_s   queue%  prefill%"
        "  decode%   swap%",
    ]
    if not totals:
        lines.append("(no spans)")
        return "\n".join(lines)

    def row(label: str, phases: Dict[str, float]) -> str:
        total = sum(phases.values())
        pct = {
            p: (100.0 * v / total if total > 0 else 0.0)
            for p, v in phases.items()
        }
        return (
            f"{label:<34} {total:9.3f}  {pct['queue']:6.1f}%  "
            f"{pct['prefill']:7.1f}%  {pct['decode']:6.1f}%  "
            f"{pct['swap-stall']:5.1f}%"
        )

    for track in sorted({t for t, _ in totals}):
        lines.append(row(track, totals[(track, "")]))
        tenants = sorted(
            tenant for tk, tenant in totals if tk == track and tenant
        )
        for tenant in tenants:
            lines.append(row(f"  {track}/{tenant}", totals[(track, tenant)]))
    return "\n".join(lines)
