"""Batch inference server facade: the deployment-shaped API.

Where :class:`~repro.llm.client.SimulatedLLMClient` is one call = one batch,
the server models a long-lived endpoint: jobs are submitted by name, share
the engine's prefix cache across jobs (or not, per job), and the server
keeps per-job and lifetime statistics — the view an operator of the paper's
system would monitor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ServingError
from repro.llm.client import BatchResult, SimulatedLLMClient, TraceResult
from repro.llm.cluster import ClusterConfig, ClusterEngine, ClusterResult
from repro.llm.engine import EngineConfig
from repro.llm.hardware import CLUSTER_1XL4, Cluster
from repro.llm.models import LLAMA3_8B, ModelSpec
from repro.llm.scheduler import SLOReport
from repro.llm.tracing import write_trace
from repro.llm.workload import WorkloadTrace


@dataclass
class JobStats:
    """Per-job accounting kept by the server."""

    job_id: str
    n_requests: int
    prompt_tokens: int
    cached_tokens: int
    output_tokens: int
    seconds: float
    #: Paged-KV admission metrics (zero under the token-sum oracle).
    block_tokens: int = 0
    peak_kv_blocks: int = 0
    fragmentation_tokens: int = 0
    #: Distinct prompt strings in the job — the dedup headroom an
    #: LLM-aware SQL layer would exploit (== n_requests when all differ).
    n_distinct_prompts: int = 0
    #: Online-serving accounting: the scheduling policy the job ran under
    #: and its SLO rollup (arrival-relative latency percentiles, per-tenant
    #: breakdown, goodput). Batch jobs get the same rollup with every
    #: arrival at submission time.
    scheduler: str = "fcfs"
    slo: Optional[SLOReport] = None
    #: Continuous-batching accounting (all zero with ``preemption="off"``
    #: and monolithic prefill — the one-shot admit-and-forget shape).
    preemption: str = "off"
    n_preemptions: int = 0
    preempted_tokens_recomputed: int = 0
    preempted_tokens_swapped: int = 0
    n_prefill_chunks: int = 0
    #: Lifecycle trace(s) of the job, as named export tracks — one
    #: ``(label, EngineTrace)`` per engine (single-engine jobs) or per
    #: replica (cluster jobs). Empty unless tracing was enabled.
    trace_tracks: List = field(default_factory=list)

    @property
    def p95_ttft_s(self) -> float:
        return self.slo.ttft.p95 if self.slo else 0.0

    @property
    def p99_e2e_s(self) -> float:
        return self.slo.e2e.p99 if self.slo else 0.0

    @property
    def slo_attainment(self) -> float:
        return self.slo.attainment if self.slo else 1.0

    @property
    def hit_rate(self) -> float:
        return self.cached_tokens / self.prompt_tokens if self.prompt_tokens else 0.0

    @property
    def fragmentation(self) -> float:
        """Fraction of peak block memory lost to internal fragmentation
        (0.0 under the token-sum oracle)."""
        denom = self.peak_kv_blocks * self.block_tokens
        return self.fragmentation_tokens / denom if denom else 0.0


@dataclass
class ServerStats:
    """Lifetime rollup."""

    jobs: List[JobStats] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(j.seconds for j in self.jobs)

    @property
    def lifetime_hit_rate(self) -> float:
        p = sum(j.prompt_tokens for j in self.jobs)
        c = sum(j.cached_tokens for j in self.jobs)
        return c / p if p else 0.0


class BatchInferenceServer:
    """A persistent simulated serving endpoint.

    >>> server = BatchInferenceServer()
    >>> result = server.submit_job("nightly-etl", prompts, output_lens=[2]*len(prompts))
    >>> server.stats.lifetime_hit_rate
    """

    def __init__(
        self,
        model: ModelSpec = LLAMA3_8B,
        cluster: Cluster = CLUSTER_1XL4,
        engine_config: Optional[EngineConfig] = None,
    ):
        self.client = SimulatedLLMClient(
            model=model, cluster=cluster, engine_config=engine_config
        )
        self.stats = ServerStats()
        self._job_ids: set = set()

    def submit_job(
        self,
        job_id: str,
        prompts: Sequence[str],
        outputs: Optional[Sequence[str]] = None,
        output_lens: Optional[Sequence[int]] = None,
        fresh_cache: bool = False,
    ) -> BatchResult:
        """Run one batch job; the prefix cache persists across jobs unless
        ``fresh_cache`` is set (tenant isolation / fair measurement).

        The job id is registered only once the job has actually run: a job
        that dies (e.g. a :class:`~repro.errors.CapacityError` from an
        oversized request) leaves its id free, so the caller can fix the
        workload and retry under the same name instead of hitting a
        spurious "duplicate job id".
        """
        if job_id in self._job_ids:
            raise ServingError(f"duplicate job id {job_id!r}")
        if not prompts:
            raise ServingError("job has no prompts")
        if fresh_cache:
            self.client.reset_cache()
        try:
            result = self.client.generate(
                prompts, outputs=outputs, output_lens=output_lens
            )
        except Exception:
            # Leave no queued leftovers behind: the retry must not trip
            # over the failed job's requests.
            self.client.cancel_pending()
            raise
        self._job_ids.add(job_id)
        er = result.engine_result
        self.stats.jobs.append(
            JobStats(
                job_id=job_id,
                n_requests=len(prompts),
                prompt_tokens=er.prompt_tokens,
                cached_tokens=er.cached_tokens,
                output_tokens=er.decode_tokens,
                seconds=er.total_seconds,
                block_tokens=er.block_tokens,
                peak_kv_blocks=er.peak_kv_blocks,
                fragmentation_tokens=er.fragmentation_tokens,
                n_distinct_prompts=len(set(prompts)),
                scheduler=er.scheduler,
                slo=er.slo(),
                preemption=er.preemption,
                n_preemptions=er.n_preemptions,
                preempted_tokens_recomputed=er.preempted_tokens_recomputed,
                preempted_tokens_swapped=er.preempted_tokens_swapped,
                n_prefill_chunks=er.n_prefill_chunks,
                trace_tracks=(
                    [(job_id, er.trace)] if er.trace is not None else []
                ),
            )
        )
        return result

    def submit_trace(
        self,
        job_id: str,
        trace: WorkloadTrace,
        deadline_s: Optional[float] = None,
        fresh_cache: bool = False,
    ) -> TraceResult:
        """Run one arrival-timed trace job under the engine's scheduling
        policy. Same job-id contract as :meth:`submit_job` (registered only
        on success, retryable after a failure); ``deadline_s`` feeds the
        goodput accounting of the job's SLO report."""
        if job_id in self._job_ids:
            raise ServingError(f"duplicate job id {job_id!r}")
        if not trace.n_requests:
            raise ServingError("trace has no requests")
        if fresh_cache:
            self.client.reset_cache()
        try:
            result = self.client.generate_trace(trace, deadline_s=deadline_s)
        except Exception:
            self.client.cancel_pending()
            raise
        self._job_ids.add(job_id)
        er = result.engine_result
        self.stats.jobs.append(
            JobStats(
                job_id=job_id,
                n_requests=trace.n_requests,
                prompt_tokens=er.prompt_tokens,
                cached_tokens=er.cached_tokens,
                output_tokens=er.decode_tokens,
                seconds=er.total_seconds,
                block_tokens=er.block_tokens,
                peak_kv_blocks=er.peak_kv_blocks,
                fragmentation_tokens=er.fragmentation_tokens,
                n_distinct_prompts=len({r.prompt for r in trace.requests}),
                scheduler=er.scheduler,
                slo=result.slo,
                preemption=er.preemption,
                n_preemptions=er.n_preemptions,
                preempted_tokens_recomputed=er.preempted_tokens_recomputed,
                preempted_tokens_swapped=er.preempted_tokens_swapped,
                n_prefill_chunks=er.n_prefill_chunks,
                trace_tracks=(
                    [(job_id, er.trace)] if er.trace is not None else []
                ),
            )
        )
        return result

    def submit_cluster_trace(
        self,
        job_id: str,
        trace: WorkloadTrace,
        cluster_config: Optional[ClusterConfig] = None,
        deadline_s: Optional[float] = None,
    ) -> ClusterResult:
        """Run one arrival-timed trace across a replica fleet
        (:class:`~repro.llm.cluster.ClusterEngine`) instead of the
        server's single engine. The cluster shares the server's tokenizer
        — and therefore its encode cache — but replays on fresh replica
        engines each call; the single-engine jobs' radix cache is
        untouched. Same job-id contract as :meth:`submit_job`; the job's
        stats aggregate over replicas (peak KV blocks and fragmentation
        are fleet sums)."""
        if job_id in self._job_ids:
            raise ServingError(f"duplicate job id {job_id!r}")
        if not trace.n_requests:
            raise ServingError("trace has no requests")
        engine = ClusterEngine(
            config=cluster_config,
            model=self.client.model,
            cluster=self.client.cluster,
            tokenizer=self.client.tokenizer,
        )
        result = engine.run_trace(trace, deadline_s=deadline_s)
        self._job_ids.add(job_id)
        ers = result.engine_results
        self.stats.jobs.append(
            JobStats(
                job_id=job_id,
                n_requests=trace.n_requests,
                prompt_tokens=result.prompt_tokens,
                cached_tokens=result.cached_tokens,
                output_tokens=result.decode_tokens,
                seconds=result.total_seconds,
                block_tokens=ers[0].block_tokens if ers else 0,
                peak_kv_blocks=sum(e.peak_kv_blocks for e in ers),
                fragmentation_tokens=sum(e.fragmentation_tokens for e in ers),
                n_distinct_prompts=len({r.prompt for r in trace.requests}),
                scheduler=f"{result.routing}@{result.n_replicas}r",
                slo=result.slo,
                preemption=result.preemption,
                n_preemptions=result.n_preemptions,
                preempted_tokens_recomputed=result.preempted_tokens_recomputed,
                preempted_tokens_swapped=result.preempted_tokens_swapped,
                n_prefill_chunks=result.n_prefill_chunks,
                trace_tracks=[
                    (f"{job_id}/{label}", tr)
                    for label, tr in result.trace_tracks()
                ],
            )
        )
        return result

    def export_trace(self, job_id: str, path: str) -> None:
        """Write one job's lifecycle trace (Chrome trace-event JSON, or
        JSONL for a ``.jsonl`` path). Raises :class:`ServingError` when
        the job recorded no trace (tracing off)."""
        job = self.job(job_id)
        if not job.trace_tracks:
            raise ServingError(
                f"job {job_id!r} has no trace — enable tracing "
                f"(EngineConfig.trace='on' or REPRO_SERVING_TRACE=1)"
            )
        write_trace(job.trace_tracks, path)

    def slo_report(self, job_id: str) -> str:
        """Per-tenant SLO table for one job (trace or batch)."""
        job = self.job(job_id)
        if job.slo is None:
            raise ServingError(f"job {job_id!r} has no SLO accounting")
        return job.slo.render(
            f"job {job_id} · scheduler={job.scheduler} · "
            f"{job.n_requests} requests"
        )

    def job(self, job_id: str) -> JobStats:
        for j in self.stats.jobs:
            if j.job_id == job_id:
                return j
        raise ServingError(f"unknown job {job_id!r}")

    def report(self) -> str:
        """Operator-style text report."""
        lines = [
            "job            reqs  distinct   prompt_tok  hit%    out_tok   seconds"
            "  kv_blocks  frag_tok  sched            p95_ttft  npre"
        ]
        for j in self.stats.jobs:
            lines.append(
                f"{j.job_id:<14} {j.n_requests:>5}  {j.n_distinct_prompts:>8}  "
                f"{j.prompt_tokens:>10}  "
                f"{100 * j.hit_rate:5.1f}%  {j.output_tokens:>7}  {j.seconds:8.2f}"
                f"  {j.peak_kv_blocks:>9}  {j.fragmentation_tokens:>8}"
                f"  {j.scheduler:<15} {j.p95_ttft_s:8.3f}s  {j.n_preemptions:>4}"
            )
        lines.append(
            f"lifetime hit rate {100 * self.stats.lifetime_hit_rate:.1f}% over "
            f"{len(self.stats.jobs)} jobs, {self.stats.total_seconds:.2f}s simulated"
        )
        ec = self.client.encode_cache_stats()
        lookups = ec["hits"] + ec["misses"]
        rate = ec["hits"] / lookups if lookups else 0.0
        lines.append(
            f"encode cache: {ec['hits']} hits / {ec['misses']} misses "
            f"({100 * rate:.1f}%), {ec['entries']} entries, "
            f"{ec['evictions']} evictions"
        )
        rx = self.client.radix_stats()
        lines.append(
            f"radix cache: backend={rx['backend']}, {rx['nodes']} nodes, "
            f"{rx['token_store_bytes']} store bytes, "
            f"{rx['evicted_nodes']} nodes / {rx['evicted_tokens']} tok evicted"
        )
        return "\n".join(lines)
