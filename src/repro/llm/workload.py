"""Arrival-timed workload traces for online serving.

A :class:`WorkloadTrace` is a sorted list of :class:`TraceRequest`\\ s —
arrival-stamped prompts with tenant/job tags — serializable to JSON so a
trace can be generated once and replayed across policies, engines and
sessions. Three arrival processes cover the shapes the serving literature
cares about:

:func:`poisson_arrivals`
    Memoryless open-loop traffic at a fixed rate — the M/·/· baseline.
:func:`bursty_arrivals`
    MMPP-style on-off modulation: exponential ON/OFF holding times with a
    high ON rate (and optionally a trickle OFF rate). Bursts are where
    queueing delay and cache contention actually happen.
:func:`diurnal_arrivals`
    Nonhomogeneous Poisson with a sinusoidal rate (thinning), the
    day/night envelope of analytics traffic.

Tenant-mix synthesis (:func:`synthesize_tenant_trace`) draws prompts from
the paper's 16-query benchmark suite (:mod:`repro.bench.queries`): each
tenant is one (query, dataset, reorder-policy) triple, its rows are
serialized to real operator prompts (Appendix C JSON format) in either the
stored order or the GGR schedule order — so traces carry the *actual
prefix structure* the scheduling policies compete over, not synthetic
token soup.

Everything is seeded and deterministic: the same inputs always produce
the same trace, byte for byte.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ServingError

#: Arrival-process registry for :func:`make_arrivals`.
ARRIVAL_PROCESSES = ("poisson", "bursty", "diurnal")


@dataclass(frozen=True)
class TraceRequest:
    """One arrival-stamped generation request.

    ``output_text`` is the simulated model's answer (its token count sets
    the decode length); when empty, ``output_len`` gives the decode length
    directly (``None`` falls back to the client default).

    ``deadline_s`` is the request's SLO deadline relative to its arrival
    (None = no per-request deadline; the ``deadline`` scheduler falls back
    to its policy-wide default and goodput accounting to the run-level
    deadline).
    """

    arrival_s: float
    prompt: str
    tenant: str = "default"
    job: str = ""
    output_text: str = ""
    output_len: Optional[int] = None
    deadline_s: Optional[float] = None

    def __post_init__(self):
        if not self.arrival_s >= 0.0 or self.arrival_s == float("inf"):
            raise ServingError("arrival_s must be a finite time >= 0")
        if not self.prompt:
            raise ServingError("trace request has an empty prompt")
        if self.output_len is not None and (
            not isinstance(self.output_len, int)
            or isinstance(self.output_len, bool)
            or self.output_len < 0
        ):
            # Validated here (not deep in the engine) so a hand-edited
            # trace JSON fails with a clean ServingError at load time.
            raise ServingError("output_len must be an integer >= 0")
        if self.deadline_s is not None and not self.deadline_s > 0.0:
            raise ServingError("deadline_s must be positive when set")

    def to_dict(self) -> Dict:
        d: Dict = {
            "arrival_s": self.arrival_s,
            "prompt": self.prompt,
            "tenant": self.tenant,
        }
        if self.job:
            d["job"] = self.job
        if self.output_text:
            d["output_text"] = self.output_text
        if self.output_len is not None:
            d["output_len"] = self.output_len
        if self.deadline_s is not None:
            d["deadline_s"] = self.deadline_s
        return d

    @staticmethod
    def from_dict(d: Dict) -> "TraceRequest":
        return TraceRequest(
            arrival_s=float(d["arrival_s"]),
            prompt=d["prompt"],
            tenant=d.get("tenant", "default"),
            job=d.get("job", ""),
            output_text=d.get("output_text", ""),
            output_len=d.get("output_len"),
            deadline_s=d.get("deadline_s"),
        )


@dataclass
class WorkloadTrace:
    """An arrival-ordered request stream (kept sorted by arrival time;
    submission order breaks ties, so construction order is preserved for
    simultaneous arrivals)."""

    requests: List[TraceRequest] = field(default_factory=list)
    name: str = "trace"
    metadata: Dict = field(default_factory=dict)

    def __post_init__(self):
        self.requests = sorted(
            self.requests, key=lambda r: r.arrival_s
        )  # stable: ties keep list order

    # -------------------------------------------------------------- basics
    @property
    def n_requests(self) -> int:
        return len(self.requests)

    @property
    def duration_s(self) -> float:
        """Span from t=0 to the last arrival."""
        return self.requests[-1].arrival_s if self.requests else 0.0

    @property
    def tenants(self) -> Tuple[str, ...]:
        return tuple(sorted({r.tenant for r in self.requests}))

    def offered_rate_rps(self) -> float:
        """Mean arrival rate over the trace span (0 for degenerate spans)."""
        if self.n_requests < 2 or self.duration_s <= 0:
            return 0.0
        return self.n_requests / self.duration_s

    def at_time_zero(self) -> "WorkloadTrace":
        """The trace with every arrival stamp dropped to t=0 (arrival order
        preserved) — the offline-batch shape of the same workload."""
        return WorkloadTrace(
            requests=[
                TraceRequest(
                    arrival_s=0.0,
                    prompt=r.prompt,
                    tenant=r.tenant,
                    job=r.job,
                    output_text=r.output_text,
                    output_len=r.output_len,
                    deadline_s=r.deadline_s,
                )
                for r in self.requests
            ],
            name=self.name,
            metadata=dict(self.metadata),
        )

    # ---------------------------------------------------------------- JSON
    #: Schema version stamped into every saved trace. Bump when the JSON
    #: shape changes; :meth:`from_json` refuses payloads from the future
    #: so a trace written by a newer build fails loudly, not subtly.
    FORMAT_VERSION = 1

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": self.FORMAT_VERSION,
                "name": self.name,
                "metadata": self.metadata,
                "requests": [r.to_dict() for r in self.requests],
            },
            indent=2,
        )

    @staticmethod
    def from_json(text: str) -> "WorkloadTrace":
        try:
            d = json.loads(text)
            # Pre-version traces carried no stamp; read them as v1.
            version = d.get("version", 1)
            if not isinstance(version, int) or version < 1:
                raise ServingError(
                    f"malformed workload trace: bad version {version!r}"
                )
            if version > WorkloadTrace.FORMAT_VERSION:
                raise ServingError(
                    f"workload trace version {version} is newer than this "
                    f"build supports (<= {WorkloadTrace.FORMAT_VERSION})"
                )
            return WorkloadTrace(
                requests=[TraceRequest.from_dict(r) for r in d["requests"]],
                name=d.get("name", "trace"),
                metadata=d.get("metadata", {}),
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ServingError(f"malformed workload trace: {exc}") from exc

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    @staticmethod
    def load(path: str) -> "WorkloadTrace":
        with open(path) as fh:
            return WorkloadTrace.from_json(fh.read())


# --------------------------------------------------------------------------
# Arrival processes
# --------------------------------------------------------------------------
def poisson_arrivals(
    n: int, rate_rps: float, seed: int = 0, start_s: float = 0.0
) -> List[float]:
    """``n`` Poisson-process arrival times at ``rate_rps`` from ``start_s``."""
    if n < 0:
        raise ServingError("n must be >= 0")
    if rate_rps <= 0:
        raise ServingError("rate_rps must be positive")
    rng = random.Random(seed)
    t = start_s
    out = []
    for _ in range(n):
        t += rng.expovariate(rate_rps)
        out.append(t)
    return out


def bursty_arrivals(
    n: int,
    on_rate_rps: float,
    off_rate_rps: float = 0.0,
    on_mean_s: float = 1.0,
    off_mean_s: float = 1.0,
    seed: int = 0,
    start_s: float = 0.0,
) -> List[float]:
    """``n`` arrivals from an MMPP-style on-off process: the source
    alternates between ON and OFF states with exponential holding times
    (means ``on_mean_s``/``off_mean_s``); arrivals are Poisson at
    ``on_rate_rps`` during ON and ``off_rate_rps`` during OFF (0 = silent
    gaps)."""
    if n < 0:
        raise ServingError("n must be >= 0")
    if on_rate_rps <= 0 or off_rate_rps < 0:
        raise ServingError("on_rate_rps must be positive, off_rate_rps >= 0")
    if on_mean_s <= 0 or off_mean_s <= 0:
        raise ServingError("state holding means must be positive")
    rng = random.Random(seed)
    out: List[float] = []
    t = start_s
    on = True
    state_end = t + rng.expovariate(1.0 / on_mean_s)
    while len(out) < n:
        rate = on_rate_rps if on else off_rate_rps
        if rate <= 0:
            t = state_end
        else:
            nxt = t + rng.expovariate(rate)
            if nxt <= state_end:
                t = nxt
                out.append(t)
                continue
            t = state_end
        on = not on
        mean = on_mean_s if on else off_mean_s
        state_end = t + rng.expovariate(1.0 / mean)
    return out


def diurnal_arrivals(
    n: int,
    base_rate_rps: float,
    period_s: float = 60.0,
    amplitude: float = 0.8,
    seed: int = 0,
    start_s: float = 0.0,
) -> List[float]:
    """``n`` arrivals from a nonhomogeneous Poisson process with rate
    ``base * (1 + amplitude * sin(2 pi t / period))`` (thinning), the
    compressed day/night envelope of analytics traffic."""
    if n < 0:
        raise ServingError("n must be >= 0")
    if base_rate_rps <= 0:
        raise ServingError("base_rate_rps must be positive")
    if not 0 <= amplitude < 1:
        raise ServingError("amplitude must be in [0, 1)")
    if period_s <= 0:
        raise ServingError("period_s must be positive")
    rng = random.Random(seed)
    peak = base_rate_rps * (1 + amplitude)
    t = start_s
    out: List[float] = []
    while len(out) < n:
        t += rng.expovariate(peak)
        rate = base_rate_rps * (
            1 + amplitude * math.sin(2 * math.pi * t / period_s)
        )
        if rng.random() < rate / peak:
            out.append(t)
    return out


def make_arrivals(process: str, n: int, rate_rps: float, seed: int = 0, **kwargs) -> List[float]:
    """Dispatch over :data:`ARRIVAL_PROCESSES` (``rate_rps`` is the Poisson
    rate, the bursty ON rate, or the diurnal base rate respectively)."""
    if process == "poisson":
        return poisson_arrivals(n, rate_rps, seed=seed, **kwargs)
    if process == "bursty":
        return bursty_arrivals(n, rate_rps, seed=seed, **kwargs)
    if process == "diurnal":
        return diurnal_arrivals(n, rate_rps, seed=seed, **kwargs)
    raise ServingError(
        f"unknown arrival process {process!r}; choose from {ARRIVAL_PROCESSES}"
    )


# --------------------------------------------------------------------------
# Tenant-mix synthesis over the benchmark query suite
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class TenantSpec:
    """One tenant's workload recipe: a benchmark query, a reorder policy
    (``"original"`` = stored row order, ``"ggr"`` = the paper's schedule —
    reordered tenants stream grouped prompts, unordered ones interleave),
    and a relative traffic weight."""

    name: str
    query_id: str
    policy: str = "original"
    weight: float = 1.0

    def __post_init__(self):
        if self.weight <= 0:
            raise ServingError("tenant weight must be positive")


def tenant_prompts(
    spec: TenantSpec, scale: float = 0.02, seed: int = 0
) -> Tuple[List[str], int]:
    """Render one tenant's prompt stream from its benchmark query: the
    dataset's rows, projected to the query's fields, serialized in stored
    or reordered (schedule) order. Returns (prompts, per-request decode
    tokens from the dataset's Table-1 output profile)."""
    from repro.bench.queries import get_query
    from repro.core.reorder import reorder
    from repro.data import build_dataset
    from repro.llm.prompts import build_prompt

    query = get_query(spec.query_id)
    ds = build_dataset(query.dataset, scale=scale, seed=seed)
    fields = None if "*" in query.fields else list(query.fields)
    sub = ds.table.to_reorder_table(fields)
    result = reorder(
        sub,
        policy=spec.policy,
        fds=ds.fds if spec.policy not in ("original", "sorted") else None,
        validate=False,
    )
    prompts = [
        build_prompt(query.prompt, row.cells) for row in result.schedule.rows
    ]
    if not prompts:
        raise ServingError(
            f"tenant {spec.name!r}: dataset {query.dataset!r} at scale "
            f"{scale} produced no rows"
        )
    return prompts, ds.output_tokens.get(query.output_type, 8)


def synthesize_tenant_trace(
    tenants: Sequence[TenantSpec],
    arrivals: Sequence[float],
    scale: float = 0.02,
    seed: int = 0,
    name: str = "tenant-mix",
) -> WorkloadTrace:
    """Interleave the tenants' prompt streams over ``arrivals``.

    Each arrival slot draws a tenant (weighted, seeded) and takes that
    tenant's next prompt, cycling when its stream is exhausted — so the
    trace mixes real per-tenant prefix structure under whichever arrival
    process produced the stamps."""
    if not tenants:
        raise ServingError("need at least one tenant")
    if len({t.name for t in tenants}) != len(tenants):
        raise ServingError("tenant names must be unique")
    rng = random.Random(seed ^ 0x7E4A17)
    streams = {t.name: tenant_prompts(t, scale=scale, seed=seed) for t in tenants}
    cursors = {t.name: 0 for t in tenants}
    total_w = sum(t.weight for t in tenants)
    reqs: List[TraceRequest] = []
    for arrival in arrivals:
        pick = rng.random() * total_w
        chosen = tenants[-1]
        for t in tenants:
            pick -= t.weight
            if pick < 0:
                chosen = t
                break
        prompts, out_tokens = streams[chosen.name]
        i = cursors[chosen.name]
        cursors[chosen.name] = i + 1
        reqs.append(
            TraceRequest(
                arrival_s=arrival,
                prompt=prompts[i % len(prompts)],
                tenant=chosen.name,
                job=chosen.query_id,
                output_len=out_tokens,
            )
        )
    return WorkloadTrace(
        requests=reqs,
        name=name,
        metadata={
            "scale": scale,
            "seed": seed,
            "tenants": {
                t.name: {"query": t.query_id, "policy": t.policy, "weight": t.weight}
                for t in tenants
            },
        },
    )
