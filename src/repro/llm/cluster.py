"""Multi-replica cluster serving with cache-aware request routing.

One :class:`~repro.llm.engine.SimulatedLLMEngine` is a throughput ceiling:
its batch cap and KV pool bound how much concurrent work a single replica
can absorb. A :class:`ClusterEngine` owns **N replica engines** — each with
its own radix cache, block pool, and admission scheduler — and routes an
arrival-timed :class:`~repro.llm.workload.WorkloadTrace` across them
through a pluggable *routing policy*, then merges the per-replica replays
into one cluster-level result.

Routing policies (:data:`ROUTING_POLICIES`):

``"round-robin"``
    Requests cycle through replicas in arrival order. The oracle shape: a
    1-replica round-robin cluster sends every request to replica 0, which
    replays the trace exactly like the single-engine client path (enforced
    by the randomized suite in ``tests/llm/test_cluster_equivalence.py``).

``"least-queue"``
    Join-the-shortest-queue on the router's outstanding-work model: each
    routed request is charged an estimated solo service time (cost-model
    prefill + batch-1 decode); at every arrival the router retires
    estimates whose completion has passed and picks the replica with the
    fewest outstanding requests (ties: least queued prompt tokens, then
    lowest index). Classic load balancing — and the cache-blind baseline
    prefix-aware routing is measured against.

``"prefix-aware"``
    The paper's prefix-sharing insight lifted from admission ordering
    (PR 5's prefix-affinity scheduler) to *placement*: the router keeps a
    per-replica **shadow radix tree** — a bounded
    :class:`~repro.llm.radix.RadixPrefixCache` fed every routed prompt,
    token-budgeted like the cache it mirrors — and scores an incoming
    prompt by its true longest-cached-prefix match against each replica's
    shadow. The request goes where its prefix is already hot (ties: least
    queued tokens, then lowest index), so one tenant's shared header lands
    on one replica instead of thrashing every cache in the fleet. Shadows
    are router-side only: no replica radix tree is touched at routing
    time, keeping the assignment a pure function of the trace.

``"tenant-sharded"``
    Consistent hashing of the tenant tag over a ``vnodes``-point hash ring
    (stable across processes — SHA1, not the salted builtin ``hash``),
    with explicit per-tenant ``pins`` overriding the ring. The static
    sharding baseline: perfect cache locality per tenant, no load
    adaptation.

Execution backends (``ClusterConfig.backend``):

``"inline"``
    Replicas replay sequentially in-process — the default, deterministic
    reference.

``"spawn"``
    Replicas fan out over a ``spawn`` process pool for real wall-clock
    parallelism, reusing the shared-memory transport idiom of
    :func:`repro.core.compiled.export_shared_table`: the parent tokenizes
    every prompt once, packs all token ids into a single shared-memory
    segment (ids, offsets, decode lengths, arrival stamps, assignments),
    and each worker attaches by name and rebuilds only its replica's
    requests — nothing is pickled per request. Replay is deterministic
    arithmetic on the same integers, so spawn merges **bit-identically**
    with inline (enforced by the equivalence suite). Without numpy or a
    usable process pool the backend degrades to inline.

**One global event clock.** Routing happens in arrival order against
router-side state only, so the assignment is independent of the backend;
each replica then replays its sub-stream on its own engine with *absolute*
arrival stamps (an idle replica jumps its clock to the next arrival), so
every per-request clock — admission, first token, completion — is exact
global simulation time and the merged metrics need no adjustment.

``REPRO_SERVING_CLUSTER=0`` is the oracle switch: it forces 1 replica,
round-robin routing, and the inline backend, reproducing the existing
single-engine replay exactly — schedules, clocks, and cache counters —
mirroring ``REPRO_SERVING_FASTPATH`` / ``REPRO_SERVING_ONLINE``.

Each :meth:`ClusterEngine.run_trace` call is a self-contained replay:
fresh replica engines and router state per call, so a cluster result is a
pure function of ``(trace, config)`` on any backend. Long-lived
cross-job cache persistence remains the single-engine client's job.
"""

from __future__ import annotations

import hashlib
import os
from bisect import bisect_left
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ServingError
from repro.llm.costmodel import CostModel
from repro.llm.encode_cache import encode_cache_for
from repro.llm.engine import EngineConfig, EngineResult, SimulatedLLMEngine
from repro.llm.hardware import CLUSTER_1XL4, Cluster
from repro.llm.models import LLAMA3_8B, ModelSpec
from repro.llm.radix import RadixPrefixCache
from repro.llm.request import Request, RequestMetrics
from repro.llm.scheduler import SLOReport, compute_slo
from repro.llm.tokenizer import HashTokenizer
from repro.llm.tracing import EngineTrace
from repro.llm.workload import WorkloadTrace

try:  # numpy backs the spawn backend's shared-memory token transport.
    import numpy as _np
except ImportError:  # pragma: no cover - environment without numpy
    _np = None

#: Routing-policy registry for :class:`ClusterConfig` / :func:`make_router`.
ROUTING_POLICIES = ("round-robin", "least-queue", "prefix-aware", "tenant-sharded")

#: Execution backends for :class:`ClusterConfig`.
CLUSTER_BACKENDS = ("inline", "spawn")


def serving_cluster_enabled() -> bool:
    """Whether multi-replica cluster serving is enabled.
    ``REPRO_SERVING_CLUSTER=0`` forces every :class:`ClusterEngine` down to
    1 replica, round-robin routing, and the inline backend — the
    single-engine reference oracle."""
    flag = os.environ.get("REPRO_SERVING_CLUSTER", "1").strip().lower()
    return flag not in ("0", "false", "off", "no")


@dataclass
class ClusterConfig:
    """Cluster tunables; every name is validated at construction time so a
    typo fails here, not at first use deep in a replay.

    ``engine`` is the per-replica :class:`EngineConfig` (each replica gets
    its own engine built from it); ``digest_block``/``sketch_entries``
    bound the prefix-aware router's per-replica shadow radix trees
    (budget = ``digest_block * sketch_entries`` tokens);
    ``vnodes``/``pins`` shape the tenant-sharded hash ring;
    ``max_workers`` caps the spawn pool (default: one worker per replica,
    bounded by available CPUs).
    """

    n_replicas: int = 1
    routing: str = "round-robin"
    backend: str = "inline"
    engine: EngineConfig = field(default_factory=EngineConfig)
    digest_block: int = 16
    sketch_entries: int = 4096
    vnodes: int = 64
    pins: Dict[str, int] = field(default_factory=dict)
    max_workers: Optional[int] = None

    def __post_init__(self):
        if self.n_replicas < 1:
            raise ServingError(
                f"n_replicas must be >= 1, got {self.n_replicas}"
            )
        if self.routing not in ROUTING_POLICIES:
            raise ServingError(
                f"unknown routing policy {self.routing!r}; "
                f"choose from {ROUTING_POLICIES}"
            )
        if self.backend not in CLUSTER_BACKENDS:
            raise ServingError(
                f"unknown cluster backend {self.backend!r}; "
                f"choose from {CLUSTER_BACKENDS}"
            )
        if self.digest_block < 1:
            raise ServingError("digest_block must be >= 1")
        if self.sketch_entries < 1:
            raise ServingError("sketch_entries must be >= 1")
        if self.vnodes < 1:
            raise ServingError("vnodes must be >= 1")
        for tenant, replica in self.pins.items():
            if not 0 <= replica < self.n_replicas:
                raise ServingError(
                    f"pin {tenant!r} -> replica {replica} out of range "
                    f"(cluster has {self.n_replicas} replicas)"
                )


# --------------------------------------------------------------------------
# Router-side outstanding-work model (shared by every policy)
# --------------------------------------------------------------------------
class _OutstandingTracker:
    """Per-replica outstanding-request model the router consults and every
    policy reports from. Each routed request is charged an estimated solo
    service time from the cost model; at every arrival the tracker retires
    estimates whose completion has passed. This is router-side bookkeeping
    only — the replicas' real clocks never feed back in, which keeps the
    assignment a pure function of the trace (and therefore identical
    across the inline and spawn backends)."""

    def __init__(self, n_replicas: int, cost: CostModel):
        self.cost = cost
        self._heaps: List[List[Tuple[float, int]]] = [[] for _ in range(n_replicas)]
        self._queued_tokens = [0] * n_replicas
        self._busy_until = [0.0] * n_replicas
        self.peak_depth = [0] * n_replicas
        self.routed_requests = [0] * n_replicas
        self.routed_tokens = [0] * n_replicas

    def service_estimate_s(self, req: Request) -> float:
        """Estimated solo service time: full prefill (the router cannot
        know the replica's cache state) plus batch-1 decode."""
        return (
            self.cost.prefill_time(req.prompt_len)
            + self.cost.decode_run_time(req.prompt_len, 1, req.output_tokens)
            + self.cost.per_request_overhead_s
        )

    def advance(self, now_s: float) -> None:
        """Retire outstanding estimates that completed before ``now_s``."""
        for r, heap in enumerate(self._heaps):
            while heap and heap[0][0] <= now_s:
                _, tokens = heappop(heap)
                self._queued_tokens[r] -= tokens

    def depth(self, replica: int) -> int:
        return len(self._heaps[replica])

    def queued_tokens(self, replica: int) -> int:
        return self._queued_tokens[replica]

    def commit(self, req: Request, replica: int) -> None:
        start = max(req.arrival_s, self._busy_until[replica])
        finish = start + self.service_estimate_s(req)
        self._busy_until[replica] = finish
        tokens = req.prompt_len + req.output_tokens
        heappush(self._heaps[replica], (finish, tokens))
        self._queued_tokens[replica] += tokens
        self.routed_requests[replica] += 1
        self.routed_tokens[replica] += tokens
        depth = len(self._heaps[replica])
        if depth > self.peak_depth[replica]:
            self.peak_depth[replica] = depth


# --------------------------------------------------------------------------
# Routing policies
# --------------------------------------------------------------------------
class RoutingPolicy:
    """Chooses a replica for each request, in arrival order.

    :meth:`route` is the single entry point: it advances the outstanding
    model to the request's arrival time, picks a replica (:meth:`_pick`),
    commits the routing (outstanding model + any policy state), and
    returns the replica index. Deterministic given the request sequence.
    """

    name = "base"

    def __init__(self, n_replicas: int, cost: CostModel):
        self.n = n_replicas
        self.tracker = _OutstandingTracker(n_replicas, cost)

    def route(self, req: Request) -> int:
        self.tracker.advance(req.arrival_s)
        replica = self._pick(req)
        if not 0 <= replica < self.n:
            raise ServingError(
                f"router {self.name!r} picked replica {replica} "
                f"of {self.n}"
            )
        self.tracker.commit(req, replica)
        self._committed(req, replica)
        return replica

    def _pick(self, req: Request) -> int:
        raise NotImplementedError

    def _committed(self, req: Request, replica: int) -> None:
        """Post-commit hook for policy-side state (e.g. prefix sketches)."""


class RoundRobinRouter(RoutingPolicy):
    """Cycle through replicas in arrival order."""

    name = "round-robin"

    def __init__(self, n_replicas: int, cost: CostModel):
        super().__init__(n_replicas, cost)
        self._next = 0

    def _pick(self, req: Request) -> int:
        r = self._next
        self._next = (r + 1) % self.n
        return r


class LeastQueueRouter(RoutingPolicy):
    """Fewest outstanding requests; ties by queued tokens, then index."""

    name = "least-queue"

    def _pick(self, req: Request) -> int:
        t = self.tracker
        return min(
            range(self.n),
            key=lambda r: (t.depth(r), t.queued_tokens(r), r),
        )


class PrefixAwareRouter(RoutingPolicy):
    """Longest true radix-prefix match against per-replica shadow trees;
    cold/tied prompts fall back to least queued tokens.

    The router keeps a bounded shadow :class:`RadixPrefixCache` per
    replica — the same structure the replica's engine uses — and scores
    each candidate with a side-effect-free ``match_len`` probe (the flat
    array-backed backend when available, so the probe is one vectorized
    walk). Committing a route inserts the prompt into that replica's
    shadow tree and evicts it back to a token budget of ``digest_block *
    sketch_entries`` tokens (the legacy sketch knobs, reinterpreted as
    entries x tokens-per-entry), modelling the replica cache's own
    eviction: prefixes a replica has not served recently age out, so the
    router stops chasing prefixes that are no longer resident. Earlier
    revisions approximated this with rolling-hash digest sketches scored
    at ``digest_block`` granularity; true match lengths are exact per
    token and track edge splits the sketch could not see. Shadow state
    lives entirely on the router side, so routing stays a pure function
    of the trace — identical across the inline and spawn backends.
    """

    name = "prefix-aware"

    def __init__(
        self,
        n_replicas: int,
        cost: CostModel,
        digest_block: int = 16,
        sketch_entries: int = 4096,
    ):
        super().__init__(n_replicas, cost)
        if digest_block < 1:
            raise ServingError("digest_block must be >= 1")
        if sketch_entries < 1:
            raise ServingError("sketch_entries must be >= 1")
        self.digest_block = digest_block
        self.sketch_entries = sketch_entries
        #: Per-replica shadow-tree token budget.
        self.shadow_tokens = digest_block * sketch_entries
        self._shadows: List[RadixPrefixCache] = [
            RadixPrefixCache() for _ in range(n_replicas)
        ]

    def _pick(self, req: Request) -> int:
        t = self.tracker
        best = 0
        best_key: Optional[Tuple[int, int, int]] = None
        for r in range(self.n):
            hit = self._shadows[r].match_len(req.prompt_tokens, req.prompt_bytes)
            key = (-hit, t.queued_tokens(r), r)
            if best_key is None or key < best_key:
                best, best_key = r, key
        return best

    def _committed(self, req: Request, replica: int) -> None:
        shadow = self._shadows[replica]
        shadow.insert(req.prompt_tokens, req.prompt_bytes)
        over = shadow.total_tokens - self.shadow_tokens
        if over > 0:
            # The just-routed prompt is the tree's most recent path, so
            # LRU eviction trims the stalest prefixes first.
            shadow.evict(over)


class TenantShardedRouter(RoutingPolicy):
    """Consistent hashing of the tenant tag, with explicit pinning.

    Each replica owns ``vnodes`` points on a 64-bit hash ring (SHA1-based,
    so the ring is stable across processes and Python's hash
    randomization); a tenant maps to the first replica point at or after
    its own hash. ``pins`` overrides the ring per tenant. Adding a replica
    moves only the tenants between ring points — the usual consistent-
    hashing resize property.
    """

    name = "tenant-sharded"

    def __init__(
        self,
        n_replicas: int,
        cost: CostModel,
        vnodes: int = 64,
        pins: Optional[Dict[str, int]] = None,
    ):
        super().__init__(n_replicas, cost)
        if vnodes < 1:
            raise ServingError("vnodes must be >= 1")
        self.pins = dict(pins or {})
        for tenant, replica in self.pins.items():
            if not 0 <= replica < n_replicas:
                raise ServingError(
                    f"pin {tenant!r} -> replica {replica} out of range"
                )
        points = []
        for r in range(n_replicas):
            for v in range(vnodes):
                points.append((self._hash64(f"replica-{r}#vnode-{v}"), r))
        points.sort()
        self._ring_keys = [k for k, _ in points]
        self._ring_replicas = [r for _, r in points]
        self._memo: Dict[str, int] = {}

    @staticmethod
    def _hash64(text: str) -> int:
        return int.from_bytes(
            hashlib.sha1(text.encode("utf-8")).digest()[:8], "big"
        )

    def shard_of(self, tenant: str) -> int:
        """The tenant's replica (pin, else ring lookup), memoized."""
        pinned = self.pins.get(tenant)
        if pinned is not None:
            return pinned
        replica = self._memo.get(tenant)
        if replica is None:
            i = bisect_left(self._ring_keys, self._hash64(tenant))
            replica = self._ring_replicas[i % len(self._ring_replicas)]
            self._memo[tenant] = replica
        return replica

    def _pick(self, req: Request) -> int:
        return self.shard_of(req.tenant)


def make_router(
    name: str, n_replicas: int, cost: CostModel, config: Optional[ClusterConfig] = None
) -> RoutingPolicy:
    """Instantiate a routing policy by registry name."""
    if name == "round-robin":
        return RoundRobinRouter(n_replicas, cost)
    if name == "least-queue":
        return LeastQueueRouter(n_replicas, cost)
    if name == "prefix-aware":
        return PrefixAwareRouter(
            n_replicas,
            cost,
            digest_block=config.digest_block if config else 16,
            sketch_entries=config.sketch_entries if config else 4096,
        )
    if name == "tenant-sharded":
        return TenantShardedRouter(
            n_replicas,
            cost,
            vnodes=config.vnodes if config else 64,
            pins=config.pins if config else None,
        )
    raise ServingError(
        f"unknown routing policy {name!r}; choose from {ROUTING_POLICIES}"
    )


# --------------------------------------------------------------------------
# Cluster results
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class ReplicaStats:
    """One replica's share of a cluster replay: engine metrics plus the
    router's view of it (peak outstanding depth, routed work)."""

    replica: int
    n_requests: int
    prompt_tokens: int
    cached_tokens: int
    prefill_tokens: int
    decode_tokens: int
    total_seconds: float
    peak_kv_tokens: int
    max_batch_seen: int
    peak_queue_depth: int
    routed_tokens: int
    #: Fraction of the replica's KV capacity its peak usage reached.
    occupancy: float
    #: Radix-cache counters, for oracle comparisons and telemetry.
    cache_hits: int
    cache_misses: int
    cache_evicted_tokens: int
    cache_total_tokens: int
    #: Full :meth:`RadixPrefixCache.stats` snapshot (backend, node count,
    #: token-store bytes, eviction totals) for operator output.
    cache_stats: Optional[Dict[str, object]] = None
    #: Peak engine-side waiting-queue depth (scheduler backlog), as opposed
    #: to ``peak_queue_depth`` which is the router's outstanding view.
    peak_waiting: int = 0

    @property
    def prefix_hit_rate(self) -> float:
        if self.prompt_tokens == 0:
            return 0.0
        return self.cached_tokens / self.prompt_tokens


@dataclass
class ClusterResult:
    """Merged outcome of one cluster trace replay.

    ``request_metrics`` is the union of every replica's per-request
    metrics, sorted by request id (= trace order); clocks are global
    simulation time, so SLO accounting needs no adjustment.
    ``total_seconds`` is the cluster makespan (the slowest replica).
    ``load_skew`` is the coefficient of variation (population std / mean)
    of per-replica routed work in tokens — 0.0 means perfectly even.
    """

    n_replicas: int
    routing: str
    backend: str
    scheduler: str
    worker_transport: str
    total_seconds: float
    request_metrics: List[RequestMetrics]
    prompt_tokens: int
    cached_tokens: int
    prefill_tokens: int
    decode_tokens: int
    replicas: List[ReplicaStats]
    engine_results: List[EngineResult]
    load_skew: float
    slo: SLOReport
    deadline_s: Optional[float] = None

    @property
    def prefix_hit_rate(self) -> float:
        """Aggregate fraction of prompt tokens served from replica caches."""
        if self.prompt_tokens == 0:
            return 0.0
        return self.cached_tokens / self.prompt_tokens

    # ----------------------------------------- continuous-batching rollups
    @property
    def preemption(self) -> str:
        """Preemption mode the replicas decoded under (fleet-uniform —
        every replica shares one :class:`EngineConfig`)."""
        return self.engine_results[0].preemption if self.engine_results else "off"

    @property
    def n_preemptions(self) -> int:
        return sum(r.n_preemptions for r in self.engine_results)

    @property
    def preempted_tokens_recomputed(self) -> int:
        return sum(r.preempted_tokens_recomputed for r in self.engine_results)

    @property
    def preempted_tokens_swapped(self) -> int:
        return sum(r.preempted_tokens_swapped for r in self.engine_results)

    @property
    def n_prefill_chunks(self) -> int:
        return sum(r.n_prefill_chunks for r in self.engine_results)

    @property
    def goodput_attainment(self) -> float:
        """Fraction of requests meeting the deadline (1.0 without one)."""
        return self.slo.attainment

    def slo_report(self, deadline_s: Optional[float]) -> SLOReport:
        """SLO rollup of the merged metrics under a different deadline."""
        return compute_slo(self.request_metrics, deadline_s=deadline_s)

    def trace_tracks(self) -> List[Tuple[str, "EngineTrace"]]:
        """Named per-replica engine traces, for Chrome/JSONL export.

        Each replica becomes one named track (→ one Chrome process row);
        replicas whose engines ran with tracing off are omitted."""
        return [
            (f"replica{i}", r.trace)
            for i, r in enumerate(self.engine_results)
            if r.trace is not None
        ]

    def render_replicas(self) -> str:
        """Operator-style per-replica table."""
        lines = [
            "replica   reqs  prompt_tok    phr    peak_kv  occupancy"
            "  peak_queue  peak_wait  makespan"
        ]
        for s in self.replicas:
            lines.append(
                f"{s.replica:>7}  {s.n_requests:>5}  {s.prompt_tokens:>10}  "
                f"{100 * s.prefix_hit_rate:5.1f}%  {s.peak_kv_tokens:>9}  "
                f"{100 * s.occupancy:8.1f}%  {s.peak_queue_depth:>10}  "
                f"{s.peak_waiting:>9}  {s.total_seconds:7.2f}s"
            )
        lines.append(
            f"cluster: {self.n_replicas} replicas, routing={self.routing}, "
            f"backend={self.backend}, aggregate PHR "
            f"{100 * self.prefix_hit_rate:.1f}%, load skew "
            f"{self.load_skew:.3f}, makespan {self.total_seconds:.2f}s"
        )
        if self.preemption != "off":
            lines.append(
                f"continuous batching: preemption={self.preemption}, "
                f"{self.n_preemptions} preemptions "
                f"({self.preempted_tokens_recomputed} tok recomputed, "
                f"{self.preempted_tokens_swapped} tok swapped), "
                f"{self.n_prefill_chunks} prefill chunks"
            )
        rstats = [s.cache_stats for s in self.replicas if s.cache_stats]
        if rstats:
            lines.append(
                f"radix cache: backend={rstats[0]['backend']}, "
                f"{sum(s['nodes'] for s in rstats)} nodes, "
                f"{sum(s['token_store_bytes'] for s in rstats)} store bytes, "
                f"{sum(s['evicted_nodes'] for s in rstats)} nodes / "
                f"{sum(s['evicted_tokens'] for s in rstats)} tok evicted"
            )
        return "\n".join(lines)


def _load_skew(per_replica_tokens: Sequence[int]) -> float:
    n = len(per_replica_tokens)
    if n <= 1:
        return 0.0
    mean = sum(per_replica_tokens) / n
    if mean <= 0:
        return 0.0
    var = sum((t - mean) ** 2 for t in per_replica_tokens) / n
    return var ** 0.5 / mean


# --------------------------------------------------------------------------
# Replica replay (shared by both backends)
# --------------------------------------------------------------------------
def _replay_replica(
    model: ModelSpec,
    cluster_hw: Cluster,
    engine_cfg: EngineConfig,
    requests: Sequence[Request],
) -> Tuple[EngineResult, Dict[str, int]]:
    """Run one replica's sub-stream on a fresh engine; returns the engine
    result plus the radix-cache counters the equivalence suites compare."""
    engine = SimulatedLLMEngine(model=model, cluster=cluster_hw, config=engine_cfg)
    engine.submit_all(requests)
    result = engine.run()
    cache = engine.cache
    counters = {
        "hits": cache.hits,
        "misses": cache.misses,
        "evicted_tokens": cache.evicted_tokens,
        "total_tokens": cache.total_tokens,
        "stats": cache.stats(),
    }
    return result, counters


# ---------------------------------------------------- spawn worker plumbing
#: Handle to a trace exported into shared memory:
#: ``(shm name, n_requests, total_tokens, meta byte length)``. Layout:
#: ``[token ids int64 | offsets int64 (n+1) | output lens int64 |
#: arrivals float64 | assignments int64 | pickled (tenants, deadlines)]``.
SharedTraceHandle = Tuple[str, int, int, int]

_WORKER_STATE = None


def _export_shared_trace(requests: Sequence[Request], assignment: Sequence[int]):
    """Pack every request's token ids and replay metadata into one
    shared-memory segment (the cluster analogue of
    :func:`repro.core.compiled.export_shared_table`); returns
    ``(handle, shm)``. The caller keeps ``shm`` alive while workers
    attach, then ``shm.close(); shm.unlink()``."""
    import pickle
    from multiprocessing import shared_memory

    n = len(requests)
    offsets = _np.zeros(n + 1, dtype=_np.int64)
    for i, req in enumerate(requests):
        offsets[i + 1] = offsets[i] + req.prompt_len
    total_tokens = int(offsets[-1])
    tokens = _np.empty(total_tokens, dtype=_np.int64)
    for i, req in enumerate(requests):
        tokens[offsets[i] : offsets[i + 1]] = req.prompt_tokens
    outs = _np.asarray([r.output_tokens for r in requests], dtype=_np.int64)
    arrivals = _np.asarray([r.arrival_s for r in requests], dtype=_np.float64)
    assign = _np.asarray(assignment, dtype=_np.int64)
    meta = pickle.dumps(
        ([r.tenant for r in requests], [r.deadline_s for r in requests]),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    arrays = (tokens, offsets, outs, arrivals, assign)
    size = max(1, sum(a.nbytes for a in arrays) + len(meta))
    shm = shared_memory.SharedMemory(create=True, size=size)
    pos = 0
    for a in arrays:
        if a.nbytes:
            _np.ndarray(a.shape, dtype=a.dtype, buffer=shm.buf, offset=pos)[:] = a
        pos += a.nbytes
    shm.buf[pos : pos + len(meta)] = meta
    handle: SharedTraceHandle = (shm.name, n, total_tokens, len(meta))
    return handle, shm


def _attach_shared_trace(handle: SharedTraceHandle):
    """Rebuild ``(tokens, offsets, outs, arrivals, assign, tenants,
    deadlines)`` from a shared segment. Arrays are copied out and the
    segment closed before returning — workers own no shared state
    afterwards."""
    import pickle
    from multiprocessing import shared_memory

    name, n, total_tokens, meta_len = handle
    shm = shared_memory.SharedMemory(name=name)
    try:
        pos = 0

        def take(count, dtype):
            nonlocal pos
            arr = _np.ndarray(
                (count,), dtype=dtype, buffer=shm.buf, offset=pos
            ).copy()
            pos += arr.nbytes
            return arr

        tokens = take(total_tokens, _np.int64)
        offsets = take(n + 1, _np.int64)
        outs = take(n, _np.int64)
        arrivals = take(n, _np.float64)
        assign = take(n, _np.int64)
        tenants, deadlines = pickle.loads(bytes(shm.buf[pos : pos + meta_len]))
    finally:
        shm.close()
    return tokens, offsets, outs, arrivals, assign, tenants, deadlines


def _init_cluster_worker(
    handle: SharedTraceHandle,
    model: ModelSpec,
    cluster_hw: Cluster,
    engine_cfg: EngineConfig,
) -> None:
    """Spawn-pool initializer: attach the shared trace once per worker."""
    global _WORKER_STATE
    _WORKER_STATE = (_attach_shared_trace(handle), model, cluster_hw, engine_cfg)


def _replica_requests_from_arrays(
    arrays, replica: int
) -> List[Request]:
    """Materialize one replica's requests from the packed arrays. Token
    tuples and packed probe bytes are rebuilt from the same int64 buffer
    the parent filled, so they equal the parent's inline requests exactly."""
    tokens, offsets, outs, arrivals, assign, tenants, deadlines = arrays
    requests: List[Request] = []
    for i in _np.flatnonzero(assign == replica).tolist():
        lo, hi = int(offsets[i]), int(offsets[i + 1])
        span = tokens[lo:hi]
        requests.append(
            Request(
                request_id=i,
                prompt_tokens=tuple(span.tolist()),
                output_tokens=int(outs[i]),
                prompt_bytes=span.tobytes(),
                arrival_s=float(arrivals[i]),
                tenant=tenants[i],
                deadline_s=deadlines[i],
            )
        )
    return requests


def _cluster_worker_job(replica: int):
    """Worker body: replay one replica from the attached shared trace."""
    assert _WORKER_STATE is not None, "cluster pool initializer did not run"
    arrays, model, cluster_hw, engine_cfg = _WORKER_STATE
    requests = _replica_requests_from_arrays(arrays, replica)
    result, counters = _replay_replica(model, cluster_hw, engine_cfg, requests)
    return replica, result, counters


# --------------------------------------------------------------------------
# The cluster engine
# --------------------------------------------------------------------------
class ClusterEngine:
    """N replica engines behind a routing policy; see module docstring."""

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        model: ModelSpec = LLAMA3_8B,
        cluster: Cluster = CLUSTER_1XL4,
        tokenizer: Optional[HashTokenizer] = None,
    ):
        self.config = config or ClusterConfig()
        self.model = model
        self.cluster = cluster
        self.tokenizer = tokenizer or HashTokenizer()
        self._encode_cache = encode_cache_for(self.tokenizer)
        self.cost = CostModel(model=model, cluster=cluster)
        if serving_cluster_enabled():
            self.n_replicas = self.config.n_replicas
            self.routing = self.config.routing
            self.backend = self.config.backend
        else:
            # The oracle: exactly the single-engine replay, regardless of
            # the configured fleet shape.
            self.n_replicas = 1
            self.routing = "round-robin"
            self.backend = "inline"

    # ----------------------------------------------------------- telemetry
    def encode_cache_stats(self) -> Dict[str, int]:
        """Tokenizer encode-cache counters (shared across every replay
        this engine runs — encoding happens once, cluster-side)."""
        return self._encode_cache.stats()

    # ------------------------------------------------------------- routing
    def route_requests(
        self, requests: Sequence[Request]
    ) -> Tuple[List[int], RoutingPolicy]:
        """Assign each request (in order) to a replica; returns the
        assignment plus the router (whose tracker carries queue-depth and
        routed-work stats for reporting)."""
        router = make_router(self.routing, self.n_replicas, self.cost, self.config)
        assignment = [router.route(req) for req in requests]
        return assignment, router

    def route_trace(self, trace: WorkloadTrace) -> List[int]:
        """The replica assignment this cluster would give ``trace`` —
        exposed for tests and capacity planning."""
        from repro.llm.client import requests_from_trace

        requests, _ = requests_from_trace(
            trace, self.tokenizer, encode_cache=self._encode_cache
        )
        return self.route_requests(requests)[0]

    # -------------------------------------------------------------- replay
    def run_trace(
        self,
        trace: WorkloadTrace,
        deadline_s: Optional[float] = None,
        default_output_len: int = 16,
    ) -> ClusterResult:
        """Route and replay one arrival-timed trace; returns the merged
        cluster result. Each call is a self-contained replay (fresh
        replica engines and router state)."""
        from repro.llm.client import requests_from_trace

        if not trace.n_requests:
            raise ServingError("trace has no requests")
        requests, _ = requests_from_trace(
            trace,
            self.tokenizer,
            encode_cache=self._encode_cache,
            default_output_len=default_output_len,
        )
        assignment, router = self.route_requests(requests)

        per_replica: List[List[Request]] = [[] for _ in range(self.n_replicas)]
        for req, replica in zip(requests, assignment):
            per_replica[replica].append(req)

        transport = "in-process"
        replays: Optional[List[Tuple[EngineResult, Dict[str, int]]]] = None
        if self.backend == "spawn" and self.n_replicas > 1 and _np is not None:
            replays, transport = self._run_spawn(requests, assignment)
        if replays is None:
            replays = [
                _replay_replica(self.model, self.cluster, self.config.engine, reqs)
                for reqs in per_replica
            ]
            transport = "in-process"

        return self._merge(
            replays, per_replica, router, transport, deadline_s
        )

    def _run_spawn(self, requests, assignment):
        """Fan replicas out over a spawn pool via the shared-memory trace
        export; returns ``(replays, transport)`` or ``(None, _)`` to fall
        back to the inline path (pool or shared memory unavailable)."""
        import concurrent.futures
        import multiprocessing as mp

        try:
            ctx = mp.get_context("spawn")
            handle, shm = _export_shared_trace(requests, assignment)
        except (OSError, ValueError):
            return None, "in-process"
        max_workers = self.config.max_workers or min(
            self.n_replicas, os.cpu_count() or 1
        )
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=max_workers,
                mp_context=ctx,
                initializer=_init_cluster_worker,
                initargs=(handle, self.model, self.cluster, self.config.engine),
            ) as pool:
                by_replica = dict()
                for replica, result, counters in pool.map(
                    _cluster_worker_job, range(self.n_replicas)
                ):
                    by_replica[replica] = (result, counters)
        except (OSError, concurrent.futures.process.BrokenProcessPool):
            # Restricted sandboxes may forbid process pools or kill
            # workers; the inline path produces identical results, just
            # without parallelism.
            return None, "in-process"
        finally:
            shm.close()
            shm.unlink()
        return [by_replica[r] for r in range(self.n_replicas)], "shared-memory"

    # --------------------------------------------------------------- merge
    def _merge(
        self,
        replays: List[Tuple[EngineResult, Dict[str, int]]],
        per_replica: List[List[Request]],
        router: RoutingPolicy,
        transport: str,
        deadline_s: Optional[float],
    ) -> ClusterResult:
        tracker = router.tracker
        capacity = (
            self.config.engine.kv_capacity_tokens
            if self.config.engine.kv_capacity_tokens is not None
            else self.cost.kv_capacity_tokens
        )
        stats: List[ReplicaStats] = []
        merged: List[RequestMetrics] = []
        engine_results: List[EngineResult] = []
        work_tokens: List[int] = []
        for replica, ((result, counters), reqs) in enumerate(
            zip(replays, per_replica)
        ):
            engine_results.append(result)
            merged.extend(result.request_metrics)
            work_tokens.append(result.prompt_tokens + result.decode_tokens)
            stats.append(
                ReplicaStats(
                    replica=replica,
                    n_requests=len(reqs),
                    prompt_tokens=result.prompt_tokens,
                    cached_tokens=result.cached_tokens,
                    prefill_tokens=result.prefill_tokens,
                    decode_tokens=result.decode_tokens,
                    total_seconds=result.total_seconds,
                    peak_kv_tokens=result.peak_kv_tokens,
                    max_batch_seen=result.max_batch_seen,
                    peak_queue_depth=tracker.peak_depth[replica],
                    routed_tokens=tracker.routed_tokens[replica],
                    occupancy=(
                        result.peak_kv_tokens / capacity if capacity else 0.0
                    ),
                    cache_hits=counters["hits"],
                    cache_misses=counters["misses"],
                    cache_evicted_tokens=counters["evicted_tokens"],
                    cache_total_tokens=counters["total_tokens"],
                    cache_stats=counters.get("stats"),
                    peak_waiting=result.peak_waiting,
                )
            )
        merged.sort(key=lambda m: m.request_id)
        return ClusterResult(
            n_replicas=self.n_replicas,
            routing=self.routing,
            backend=self.backend,
            scheduler=replays[0][0].scheduler if replays else "fcfs",
            worker_transport=transport,
            total_seconds=max(
                (r.total_seconds for r, _ in replays), default=0.0
            ),
            request_metrics=merged,
            prompt_tokens=sum(r.prompt_tokens for r, _ in replays),
            cached_tokens=sum(r.cached_tokens for r, _ in replays),
            prefill_tokens=sum(r.prefill_tokens for r, _ in replays),
            decode_tokens=sum(r.decode_tokens for r, _ in replays),
            replicas=stats,
            engine_results=engine_results,
            load_skew=_load_skew(work_tokens),
            slo=compute_slo(merged, deadline_s=deadline_s),
            deadline_s=deadline_s,
        )
