"""Prompt-caching billing models for proprietary APIs (paper §6.3).

Two provider styles are implemented with the rates the paper quotes:

* **OpenAI GPT-4o-mini** — automatic prefix caching: cached input tokens
  cost 50% ($0.075/M vs $0.15/M), hits require a 1 024-token minimum
  prefix and are granted in 128-token increments beyond it.
* **Anthropic Claude 3.5 Sonnet** — explicit cache breakpoints: writes
  cost +25% ($3.75/M vs $3.00/M input), reads 10% ($0.30/M). The paper's
  conservative methodology marks only the first 1 024 tokens of each
  request for caching; :class:`APICacheSimulator` reproduces that.

:func:`estimated_savings` is the closed-form used for Table 4: given the
prefix hit rates of two orderings, the relative input-token cost saving of
switching between them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import PricingError
from repro.llm.radix import RadixPrefixCache


@dataclass(frozen=True)
class PricingModel:
    """Provider billing constants (USD per million tokens)."""

    name: str
    provider: str  # "openai" (automatic) or "anthropic" (explicit)
    input_per_mtok: float
    cached_read_per_mtok: float
    output_per_mtok: float
    cache_write_per_mtok: Optional[float] = None  # None: writes billed as input
    min_prefix_tokens: int = 1024
    hit_granularity: int = 128

    def __post_init__(self):
        if self.provider not in ("openai", "anthropic"):
            raise PricingError(f"unknown provider {self.provider!r}")
        if min(self.input_per_mtok, self.cached_read_per_mtok, self.output_per_mtok) < 0:
            raise PricingError("negative price")

    @property
    def cached_ratio(self) -> float:
        """Cached-read price as a fraction of the input price."""
        return self.cached_read_per_mtok / self.input_per_mtok


def openai_gpt4o_mini() -> PricingModel:
    return PricingModel(
        name="GPT-4o-mini",
        provider="openai",
        input_per_mtok=0.15,
        cached_read_per_mtok=0.075,
        output_per_mtok=0.60,
    )


def anthropic_claude35_sonnet() -> PricingModel:
    return PricingModel(
        name="Claude 3.5 Sonnet",
        provider="anthropic",
        input_per_mtok=3.00,
        cached_read_per_mtok=0.30,
        output_per_mtok=15.00,
        cache_write_per_mtok=3.75,
    )


@dataclass
class Usage:
    """Billable token counts for one request."""

    prompt_tokens: int
    cached_tokens: int = 0
    cache_write_tokens: int = 0
    output_tokens: int = 0

    def __post_init__(self):
        if self.cached_tokens + self.cache_write_tokens > self.prompt_tokens:
            raise PricingError("cached + written tokens exceed prompt tokens")


@dataclass
class CostBreakdown:
    """Dollar cost of a batch of usages under one pricing model."""

    input_cost: float = 0.0
    cached_cost: float = 0.0
    cache_write_cost: float = 0.0
    output_cost: float = 0.0

    @property
    def total(self) -> float:
        return self.input_cost + self.cached_cost + self.cache_write_cost + self.output_cost

    @property
    def input_side_total(self) -> float:
        return self.input_cost + self.cached_cost + self.cache_write_cost


def cost_of(usages: Sequence[Usage], pricing: PricingModel) -> CostBreakdown:
    """Bill a trace of usages."""
    b = CostBreakdown()
    write_rate = (
        pricing.cache_write_per_mtok
        if pricing.cache_write_per_mtok is not None
        else pricing.input_per_mtok
    )
    for u in usages:
        fresh = u.prompt_tokens - u.cached_tokens - u.cache_write_tokens
        b.input_cost += fresh * pricing.input_per_mtok / 1e6
        b.cached_cost += u.cached_tokens * pricing.cached_read_per_mtok / 1e6
        b.cache_write_cost += u.cache_write_tokens * write_rate / 1e6
        b.output_cost += u.output_tokens * pricing.output_per_mtok / 1e6
    return b


class APICacheSimulator:
    """Replays a prompt trace through a provider-side prompt cache.

    OpenAI mode: automatic prefix matching with the 1 024-token minimum and
    128-token hit granularity. Anthropic mode: explicit breakpoints — the
    caller marks a prefix for caching per request (the paper marks the
    first 1 024 tokens); identical marked prefixes become reads, new ones
    are billed as writes.
    """

    def __init__(self, pricing: PricingModel):
        self.pricing = pricing
        self._radix = RadixPrefixCache()
        self._written_blocks = set()

    def _usable_hit(self, hit: int) -> int:
        p = self.pricing
        if hit < p.min_prefix_tokens:
            return 0
        extra = (hit - p.min_prefix_tokens) // p.hit_granularity * p.hit_granularity
        return p.min_prefix_tokens + extra

    def process(
        self,
        prompt_tokens: Sequence[int],
        output_tokens: int = 0,
        write_prefix_tokens: Optional[int] = None,
    ) -> Usage:
        """Account one request; mutates the provider-side cache state."""
        n = len(prompt_tokens)
        if self.pricing.provider == "openai":
            hit = self._usable_hit(self._radix.match(prompt_tokens))
            self._radix.insert(prompt_tokens)
            return Usage(
                prompt_tokens=n,
                cached_tokens=hit,
                cache_write_tokens=0,
                output_tokens=output_tokens,
            )
        # Anthropic: explicit breakpoint at write_prefix_tokens.
        limit = write_prefix_tokens if write_prefix_tokens is not None else self.pricing.min_prefix_tokens
        block = tuple(prompt_tokens[:limit])
        if len(block) < self.pricing.min_prefix_tokens:
            return Usage(prompt_tokens=n, output_tokens=output_tokens)
        if block in self._written_blocks:
            return Usage(
                prompt_tokens=n,
                cached_tokens=len(block),
                output_tokens=output_tokens,
            )
        self._written_blocks.add(block)
        return Usage(
            prompt_tokens=n,
            cache_write_tokens=len(block),
            output_tokens=output_tokens,
        )

    def run(
        self,
        prompts: Sequence[Sequence[int]],
        output_tokens: Sequence[int] = (),
        write_prefix_tokens: Optional[int] = None,
    ) -> List[Usage]:
        outs = list(output_tokens) or [0] * len(prompts)
        if len(outs) != len(prompts):
            raise PricingError("output_tokens must align with prompts")
        return [
            self.process(p, o, write_prefix_tokens=write_prefix_tokens)
            for p, o in zip(prompts, outs)
        ]


def input_cost_ratio(phr: float, pricing: PricingModel, write_fraction: float = 0.0) -> float:
    """Relative input-token cost at prefix hit rate ``phr`` (1.0 = no cache).

    ``write_fraction`` bills that share of *missed* tokens at the cache
    write premium (Anthropic); 0 reproduces the paper's Table 4 estimate,
    which treats writes as amortized away over the batch.
    """
    if not 0.0 <= phr <= 1.0:
        raise PricingError(f"phr must be in [0,1], got {phr}")
    write_rate = (
        pricing.cache_write_per_mtok
        if pricing.cache_write_per_mtok is not None
        else pricing.input_per_mtok
    )
    miss = 1.0 - phr
    miss_cost = miss * (
        (1 - write_fraction) * pricing.input_per_mtok + write_fraction * write_rate
    )
    hit_cost = phr * pricing.cached_read_per_mtok
    return (miss_cost + hit_cost) / pricing.input_per_mtok


def estimated_savings(
    phr_original: float,
    phr_ggr: float,
    pricing: PricingModel,
    write_fraction: float = 0.0,
) -> float:
    """Table 4: relative cost saving of the GGR ordering over the original
    ordering, assuming caching at arbitrary token lengths."""
    base = input_cost_ratio(phr_original, pricing, write_fraction)
    opt = input_cost_ratio(phr_ggr, pricing, write_fraction)
    if base <= 0:
        raise PricingError("degenerate baseline cost")
    return 1.0 - opt / base
