"""Request and per-request metric records for the serving simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Request:
    """One generation request.

    ``prompt_tokens`` is the tokenized prompt; ``output_tokens`` the number
    of tokens the simulated model will decode (the benchmark queries derive
    it from the dataset's answer text / Table 1 output lengths).
    """

    request_id: int
    prompt_tokens: Tuple[int, ...]
    output_tokens: int
    output_text: str = ""

    def __post_init__(self):
        if self.output_tokens < 0:
            raise ValueError("output_tokens must be >= 0")

    @property
    def prompt_len(self) -> int:
        return len(self.prompt_tokens)


@dataclass
class RequestMetrics:
    """Filled in by the engine as the request moves through its lifecycle."""

    request_id: int
    prompt_tokens: int = 0
    cached_tokens: int = 0
    prefill_tokens: int = 0
    output_tokens: int = 0
    admitted_at_s: float = 0.0
    first_token_at_s: float = 0.0
    finished_at_s: float = 0.0

    @property
    def hit_rate(self) -> float:
        if self.prompt_tokens == 0:
            return 0.0
        return self.cached_tokens / self.prompt_tokens
