"""Request and per-request metric records for the serving simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Request:
    """One generation request.

    ``prompt_tokens`` is the tokenized prompt; ``output_tokens`` the number
    of tokens the simulated model will decode (the benchmark queries derive
    it from the dataset's answer text / Table 1 output lengths).
    ``prompt_bytes`` is an optional packed form of the prompt
    (``array("q", prompt_tokens).tobytes()``) that the radix cache uses for
    allocation-free long-edge compares; the client computes it once per
    distinct prompt alongside its memoized tokenization.

    ``arrival_s`` is the absolute simulation time the request becomes
    visible to the scheduler (0.0 = already present, the offline batch
    shape); ``tenant`` tags the request for fair-share scheduling and
    per-tenant SLO breakdowns. ``deadline_s`` is the request's SLO
    deadline *relative to arrival* (None = use the deadline scheduler's
    default); only the ``deadline`` policy reads it.
    """

    request_id: int
    prompt_tokens: Tuple[int, ...]
    output_tokens: int
    output_text: str = ""
    prompt_bytes: Optional[bytes] = None
    arrival_s: float = 0.0
    tenant: str = ""
    deadline_s: Optional[float] = None

    def __post_init__(self):
        if not isinstance(self.prompt_tokens, tuple):
            # Normalize so the radix cache sees one immutable object across
            # its match/insert/pin probes (its packed-probe memo keys on
            # object identity).
            self.prompt_tokens = tuple(self.prompt_tokens)
        if self.output_tokens < 0:
            raise ValueError("output_tokens must be >= 0")
        if not self.arrival_s >= 0.0 or self.arrival_s == float("inf"):
            raise ValueError("arrival_s must be a finite time >= 0")
        if self.deadline_s is not None and not self.deadline_s > 0.0:
            raise ValueError("deadline_s must be positive when set")

    @property
    def prompt_len(self) -> int:
        return len(self.prompt_tokens)


@dataclass
class RequestMetrics:
    """Filled in by the engine as the request moves through its lifecycle.

    ``arrival_s``/``tenant`` echo the request's submission stamps so SLO
    accounting (queueing delay, TTFT, E2E — see
    :func:`repro.llm.scheduler.compute_slo`) needs only this record.
    """

    request_id: int
    prompt_tokens: int = 0
    cached_tokens: int = 0
    prefill_tokens: int = 0
    output_tokens: int = 0
    admitted_at_s: float = 0.0
    first_token_at_s: float = 0.0
    finished_at_s: float = 0.0
    arrival_s: float = 0.0
    tenant: str = ""
    # Continuous-batching lifecycle counters (all zero in the one-shot
    # admit-and-forget engine, so pre-preemption replays are unchanged).
    n_preemptions: int = 0
    preempted_tokens_recomputed: int = 0
    preempted_tokens_swapped: int = 0
    n_prefill_chunks: int = 0

    @property
    def hit_rate(self) -> float:
        if self.prompt_tokens == 0:
            return 0.0
        return self.cached_tokens / self.prompt_tokens

    # ------------------------------------------------------- SLO latencies
    @property
    def queueing_delay_s(self) -> float:
        """Arrival to the end of the admission (prefill) wave; the engine
        stamps ``admitted_at_s`` at the post-prefill clock."""
        return self.admitted_at_s - self.arrival_s

    @property
    def ttft_s(self) -> float:
        """Arrival to the first decoded token (to completion for
        zero-output requests, which never decode)."""
        at = self.first_token_at_s if self.output_tokens else self.finished_at_s
        return at - self.arrival_s

    @property
    def e2e_s(self) -> float:
        """Arrival to completion (the online JCT)."""
        return self.finished_at_s - self.arrival_s
