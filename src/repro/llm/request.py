"""Request and per-request metric records for the serving simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Request:
    """One generation request.

    ``prompt_tokens`` is the tokenized prompt; ``output_tokens`` the number
    of tokens the simulated model will decode (the benchmark queries derive
    it from the dataset's answer text / Table 1 output lengths).
    ``prompt_bytes`` is an optional packed form of the prompt
    (``array("q", prompt_tokens).tobytes()``) that the radix cache uses for
    allocation-free long-edge compares; the client computes it once per
    distinct prompt alongside its memoized tokenization.
    """

    request_id: int
    prompt_tokens: Tuple[int, ...]
    output_tokens: int
    output_text: str = ""
    prompt_bytes: Optional[bytes] = None

    def __post_init__(self):
        if not isinstance(self.prompt_tokens, tuple):
            # Normalize so the radix cache sees one immutable object across
            # its match/insert/pin probes (its packed-probe memo keys on
            # object identity).
            self.prompt_tokens = tuple(self.prompt_tokens)
        if self.output_tokens < 0:
            raise ValueError("output_tokens must be >= 0")

    @property
    def prompt_len(self) -> int:
        return len(self.prompt_tokens)


@dataclass
class RequestMetrics:
    """Filled in by the engine as the request moves through its lifecycle."""

    request_id: int
    prompt_tokens: int = 0
    cached_tokens: int = 0
    prefill_tokens: int = 0
    output_tokens: int = 0
    admitted_at_s: float = 0.0
    first_token_at_s: float = 0.0
    finished_at_s: float = 0.0

    @property
    def hit_rate(self) -> float:
        if self.prompt_tokens == 0:
            return 0.0
        return self.cached_tokens / self.prompt_tokens
