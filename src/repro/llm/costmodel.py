"""Roofline timing model for simulated inference.

Prefill is compute-bound: per new token, ~``2 * n_params`` FLOPs of dense
work plus an attention term that grows with the token's absolute position —
the quadratic cost the PHC objective's squared lengths stand in for. Cached
prefix tokens skip prefill entirely; that is the entire mechanism behind
the paper's speedups.

Decode is bandwidth-bound: every step streams the weights once (amortized
over the whole batch) plus each sequence's KV cache. Larger batches
amortize the weight read — which is why freeing KV memory through prefix
sharing raises decode throughput (the Table 7 discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.llm.hardware import Cluster
from repro.llm.models import ModelSpec
from repro.errors import ServingError

#: Average characters per token of English-like text under the simulator's
#: tokenizer (HashTokenizer: ~one piece per word at max_piece_len=6), the
#: same ~4 chars/token scale real BPE vocabularies land on. Used wherever a
#: token count is needed without running a tokenizer (the SQL optimizer's
#: plan-time estimates, solver-only telemetry).
CHARS_PER_TOKEN = 4.0


def estimate_tokens(chars: float, chars_per_token: float = CHARS_PER_TOKEN) -> int:
    """Character-count-based token estimate for planning and telemetry.

    Deliberately tokenizer-free: the SQL optimizer ranks predicates before
    any prompt exists, and solver-only runs have no client to count with.
    """
    if chars_per_token <= 0:
        raise ServingError(f"chars_per_token must be positive, got {chars_per_token}")
    if chars <= 0:
        return 0
    return max(1, int(round(chars / chars_per_token)))


@dataclass(frozen=True)
class CostModel:
    """Timing oracle for one (model, cluster) pair.

    ``mfu`` derates peak FLOPs for prefill; ``bw_util`` derates peak
    bandwidth for decode. Defaults land Llama-3-8B on one L4 at roughly
    2 000 prefill tokens/s, the figure the paper's introduction quotes.
    """

    model: ModelSpec
    cluster: Cluster
    mfu: float = 0.55
    bw_util: float = 0.6
    step_overhead_s: float = 2e-3
    #: Model-independent per-request serving overhead (tokenization,
    #: scheduling, sampling, detokenization). Negligible next to a 70B
    #: forward pass, dominant for a 1B model — which is why the paper's
    #: Table 7 sees smaller relative gains at 1B despite identical PHRs.
    per_request_overhead_s: float = 15e-3
    #: Fraction of effective memory bandwidth usable for KV swap traffic to
    #: host memory (PCIe vs HBM — roughly the 5% ratio of a Gen4 x16 link
    #: to an L4's memory bandwidth). Prices ``preemption="swap"``.
    swap_bw_frac: float = 0.05

    def __post_init__(self):
        if not 0 < self.mfu <= 1 or not 0 < self.bw_util <= 1:
            raise ServingError("mfu and bw_util must be in (0, 1]")
        if not 0 < self.swap_bw_frac <= 1:
            raise ServingError("swap_bw_frac must be in (0, 1]")
        if self.model.weight_bytes > self.cluster.total_mem_bytes:
            raise ServingError(
                f"{self.model.name} ({self.model.weight_bytes/1e9:.1f} GB) does not fit "
                f"on {self.cluster.n_gpus}x{self.cluster.gpu.name}"
            )

    # ------------------------------------------------------------------ KV
    @property
    def kv_capacity_tokens(self) -> int:
        """Tokens of KV cache that fit after weights and activations."""
        reserve = 0.08 * self.cluster.total_mem_bytes  # activations, fragmentation
        free = self.cluster.total_mem_bytes - self.model.weight_bytes - reserve
        return max(0, int(free / self.model.kv_bytes_per_token))

    def kv_capacity_blocks(self, block_tokens: int = 16) -> int:
        """Whole ``block_tokens``-token pages that fit in the KV budget —
        what a paged allocator actually has to hand out (the sub-block
        remainder of :attr:`kv_capacity_tokens` is unusable)."""
        if block_tokens <= 0:
            raise ServingError("block_tokens must be positive")
        return self.kv_capacity_tokens // block_tokens

    # -------------------------------------------------------------- prefill
    def prefill_flops(self, new_tokens: int, context_start: int) -> float:
        """FLOPs to prefill ``new_tokens`` starting at absolute position
        ``context_start`` (cached prefix length)."""
        if new_tokens <= 0:
            return 0.0
        dense = 2.0 * self.model.n_params * new_tokens
        # Attention: each new token attends to all preceding positions.
        # Sum of positions over the new span:
        end = context_start + new_tokens
        pos_sum = (context_start + end - 1) * new_tokens / 2.0
        attn = 4.0 * self.model.hidden_size * self.model.n_layers * pos_sum
        return dense + attn

    def prefill_time(self, new_tokens: int, context_start: int = 0) -> float:
        """Seconds to prefill one request on its own; cached tokens are
        *not* passed here at all."""
        return self.prefill_wave_time([(new_tokens, context_start)])

    def prefill_wave_time(self, requests: Sequence[Tuple[int, int]]) -> float:
        """Seconds to prefill a batch of ``(new_tokens, context_start)``.

        Continuous batching merges the prefills of concurrently admitted
        requests into shared forward passes, so the weight-read floor is
        paid once per wave, not once per request — without this, short
        prompts would see no benefit from cached prefixes at all.
        """
        flops = sum(self.prefill_flops(n, c) for n, c in requests if n > 0)
        if flops <= 0:
            return 0.0
        compute = flops / (self.cluster.effective_flops * self.mfu)
        # The weights stream through at least once per prefill wave.
        weight_read = self.model.weight_bytes / (
            self.cluster.effective_bandwidth * self.bw_util
        )
        return max(compute, weight_read) + self.step_overhead_s

    def prefill_tokens_per_second(self, context: int = 512) -> float:
        """Headline prefill throughput at a representative context length."""
        t = self.prefill_time(context, 0)
        return context / t if t > 0 else float("inf")

    # --------------------------------------------------------------- decode
    def decode_step_time(self, context_lengths: Sequence[int]) -> float:
        """Seconds for one decode step producing one token per sequence.

        ``context_lengths`` are the current total contexts (prompt + decoded
        so far) of the running batch.
        """
        if not context_lengths:
            return 0.0
        bw = self.cluster.effective_bandwidth * self.bw_util
        weight_read = self.model.weight_bytes / bw
        kv_read = self.model.kv_bytes_per_token * float(sum(context_lengths)) / bw
        return weight_read + kv_read + self.step_overhead_s

    def decode_run_time(self, context_sum: int, batch_size: int, steps: int) -> float:
        """Seconds for ``steps`` consecutive decode steps of a *fixed* batch.

        ``context_sum`` is the sum of the batch's context lengths at the
        first step; every sequence grows by one token per step, so the KV
        traffic over the run is an arithmetic series and the whole run is
        priced in O(1) — the closed form behind the event-driven engine.
        Equals the sum of :meth:`decode_step_time` over the run up to float
        rounding.
        """
        if steps <= 0 or batch_size <= 0:
            return 0.0
        bw = self.cluster.effective_bandwidth * self.bw_util
        weight_read = self.model.weight_bytes / bw
        kv_tokens = steps * context_sum + batch_size * (steps * (steps - 1) // 2)
        kv_read = self.model.kv_bytes_per_token * float(kv_tokens) / bw
        return steps * (weight_read + self.step_overhead_s) + kv_read

    # ----------------------------------------------------------------- swap
    def swap_time(self, n_tokens: int) -> float:
        """Seconds to move ``n_tokens`` of KV cache across the host link
        (one direction). ``preemption="swap"`` pays this twice per
        preemption — once parking the decode tail out, once restoring it —
        versus ``"recompute"`` which pays a prefill over the same tokens.
        """
        if n_tokens <= 0:
            return 0.0
        bw = self.cluster.effective_bandwidth * self.bw_util * self.swap_bw_frac
        return self.model.kv_bytes_per_token * float(n_tokens) / bw

    def decode_tokens_per_second(self, batch_size: int, context: int = 512) -> float:
        t = self.decode_step_time([context] * batch_size)
        return batch_size / t if t > 0 else float("inf")
