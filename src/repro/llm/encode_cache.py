"""Shared, bounded prompt-encode cache, attached per tokenizer.

Benchmark replays send the same prompt strings over and over — across
invocations of a multi-stage query, across scheduling policies, across
repeated jobs — and re-tokenizing (and re-packing) them dominated replay
setup time. Each :class:`~repro.llm.tokenizer.HashTokenizer` carries at
most one :class:`EncodeCache`; every consumer holding the same tokenizer
(clients, the batch-inference server's client, the bench runner's
per-policy clients) shares it, so a prompt is encoded once per *tokenizer*
rather than once per consumer. The cache survives
``SimulatedLLMClient.reset_cache`` — that replaces the engine, not the
tokenizer.

Caching is exact: the tokenizer's incremental vocabulary gives a fixed
string the same ids on every call, and returning the *same* tuple object
for a repeated prompt lets the radix cache reuse its packed probe across
the match/insert/pin calls of identical prompts.

Eviction is LRU (the old per-client memos were unbounded-ish FIFO dicts),
and hit/miss/eviction counts are kept for telemetry.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.llm.radix import pack_tokens

#: Default entry bound per map — generous for any realistic benchmark
#: replay while keeping worst-case memory in check.
DEFAULT_MAX_ENTRIES = 1 << 16


class EncodeCache:
    """LRU maps of prompt string -> encode result, with telemetry.

    Two maps are kept: ``encode`` entries hold ``(ids tuple, packed
    bytes)``; ``count`` entries hold bare token counts for strings that
    were only ever counted (counting does not intern into the tokenizer's
    vocabulary, so it is cheaper than a full encode). A count request for
    an already-encoded string is answered from the encode entry without
    touching the count map.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self._encode: "OrderedDict[str, Tuple[Tuple[int, ...], bytes]]" = (
            OrderedDict()
        )
        self._count: "OrderedDict[str, int]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._encode) + len(self._count)

    def encode(self, tokenizer, text: str) -> Tuple[Tuple[int, ...], bytes]:
        """(token ids, packed bytes) for ``text`` via ``tokenizer``,
        cached. The packed form feeds the radix cache's allocation-free
        long-edge compares; computing it here means each distinct prompt
        is packed once, no matter how many times it is replayed."""
        memo = self._encode
        entry = memo.get(text)
        if entry is not None:
            self.hits += 1
            memo.move_to_end(text)
            return entry
        self.misses += 1
        ids = tuple(tokenizer.encode(text))
        entry = (ids, pack_tokens(ids))
        if len(memo) >= self.max_entries:
            memo.popitem(last=False)
            self.evictions += 1
        memo[text] = entry
        return entry

    def count(self, tokenizer, text: str) -> int:
        """Token count of ``text`` via ``tokenizer``, cached."""
        encoded = self._encode.get(text)
        if encoded is not None:
            self.hits += 1
            self._encode.move_to_end(text)
            return len(encoded[0])
        memo = self._count
        n = memo.get(text)
        if n is not None:
            self.hits += 1
            memo.move_to_end(text)
            return n
        self.misses += 1
        n = tokenizer.count(text)
        if len(memo) >= self.max_entries:
            memo.popitem(last=False)
            self.evictions += 1
        memo[text] = n
        return n

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def clear(self) -> None:
        self._encode.clear()
        self._count.clear()


def encode_cache_for(
    tokenizer, max_entries: Optional[int] = None
) -> EncodeCache:
    """The tokenizer's attached :class:`EncodeCache`, created on first use.

    All consumers of one tokenizer share one cache; ``max_entries`` only
    applies when this call creates the cache.
    """
    cache = getattr(tokenizer, "_encode_cache", None)
    if cache is None:
        cache = EncodeCache(max_entries or DEFAULT_MAX_ENTRIES)
        tokenizer._encode_cache = cache
    return cache
