"""Prompt construction for the LLM operator (paper §5 and Appendix C).

The operator serializes each scheduled row as JSON after a fixed header
(system prompt + user query). Field order inside the JSON follows the
request schedule — that is how the reordering algorithms control prefix
sharing. The header is identical for every row of a query, so it is the
first (and for unordered data often the only) shared prefix.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.table import Cell

#: Appendix C system prompt, verbatim modulo whitespace normalization.
SYSTEM_TEMPLATE = (
    "You are a data analyst. Use the provided JSON data to answer the user "
    "query based on the specified fields. Respond with only the answer, "
    "no extra formatting.\n"
    "Answer the below query:\n"
    "{query}\n"
    "Given the following data:\n"
)


def escape_json_string(value: str) -> str:
    """Minimal JSON string escaping (keeps the tokenizer's piece boundaries
    stable across identical values)."""
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\t", "\\t")
    )


def render_cells(cells: Iterable[Cell]) -> str:
    """Serialize cells as a JSON object, preserving the given order."""
    parts = [f'"{escape_json_string(c.field)}": "{escape_json_string(c.value)}"' for c in cells]
    return "{" + ", ".join(parts) + "}"


def build_prompt(query: str, cells: Sequence[Cell]) -> str:
    """Full prompt for one row: header + JSON-encoded row data."""
    return SYSTEM_TEMPLATE.format(query=query) + render_cells(cells)


def build_rag_prompt(query: str, cells: Sequence[Cell]) -> str:
    """RAG prompts use the same shape; contexts arrive as ordinary cells
    (``evidence1``..``evidenceK``) so reordering applies to them too."""
    return build_prompt(query, cells)
