"""Deterministic tokenizer for the serving simulator.

Real tokenizers (BPE) are unavailable offline; this one preserves the two
properties the experiments depend on:

* **Prefix stability** — tokenization is a greedy left-to-right split, so
  two strings sharing a prefix that ends on a piece boundary share the
  corresponding token-id prefix. Prompt construction aligns cell boundaries
  with piece boundaries, so prefix reuse measured over these tokens matches
  what a real radix cache would see.
* **Realistic token counts** — words longer than ``max_piece_len`` are
  chunked, giving roughly one token per ~4 characters of English-like text,
  the same scale the paper's Table 1 reports.

Ids are assigned incrementally on first sight (a learned vocabulary works
the same way), which makes ``decode(encode(s)) == s`` exact.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Sequence

# BPE-style pieces: a single leading space fuses with the following word
# (like the 'Ġword' tokens of GPT/Llama vocabularies), so ordinary prose
# costs ~1 token per word (~4 chars/token) instead of 2.
_PIECE_RE = re.compile(r" ?[A-Za-z0-9_]+|\s+|[^A-Za-z0-9_\s]")


class HashTokenizer:
    """Greedy word/punctuation tokenizer with an incremental vocabulary."""

    def __init__(self, max_piece_len: int = 6):
        if max_piece_len < 1:
            raise ValueError("max_piece_len must be >= 1")
        self.max_piece_len = max_piece_len
        self._piece_to_id: Dict[str, int] = {}
        self._id_to_piece: List[str] = []

    @property
    def vocab_size(self) -> int:
        return len(self._id_to_piece)

    def _pieces(self, text: str) -> Iterable[str]:
        for match in _PIECE_RE.finditer(text):
            piece = match.group(0)
            # The leading space rides along for free (real BPE vocabularies
            # fold it into the word token).
            budget = self.max_piece_len + (1 if piece.startswith(" ") else 0)
            if len(piece) <= budget:
                yield piece
            else:
                yield piece[:budget]
                rest = piece[budget:]
                for i in range(0, len(rest), self.max_piece_len):
                    yield rest[i : i + self.max_piece_len]

    def _intern(self, piece: str) -> int:
        pid = self._piece_to_id.get(piece)
        if pid is None:
            pid = len(self._id_to_piece)
            self._piece_to_id[piece] = pid
            self._id_to_piece.append(piece)
        return pid

    def encode(self, text: str) -> List[int]:
        """Tokenize ``text`` into a list of integer ids."""
        return [self._intern(p) for p in self._pieces(text)]

    def decode(self, tokens: Sequence[int]) -> str:
        """Exact inverse of :meth:`encode` for ids produced by this instance.

        Rejects out-of-range ids explicitly — including negative ones, which
        Python's index-from-the-end semantics would otherwise silently map
        to the last vocabulary pieces.
        """
        pieces = self._id_to_piece
        n = len(pieces)
        out = []
        for t in tokens:
            if not 0 <= t < n:
                raise ValueError(
                    f"token id {t!r} not produced by this tokenizer"
                )
            out.append(pieces[t])
        return "".join(out)

    def count(self, text: str) -> int:
        """Token count without interning (cheap for statistics)."""
        return sum(1 for _ in self._pieces(text))
