"""Simulated LLM serving substrate.

The paper runs vLLM with automatic prefix caching on NVIDIA L4 GPUs; no GPU
is available here, so this package implements the same *mechanisms* in a
discrete-event simulator (see DESIGN.md "Substitutions"):

``tokenizer``
    Deterministic incremental-vocabulary tokenizer (prefix-stable).
``radix``
    RadixAttention-style prefix cache over token sequences with LRU
    eviction and refcounted pin-locking for running requests. The default
    backend stores node records in flat slot-indexed arrays (contiguous
    numpy token store, vectorized prefix compares, intrusive-list LRU);
    the original
    node-object tree stays selectable as the equivalence oracle
    (``REPRO_SERVING_RADIX=0``), with its own heap/scan eviction engines
    (scan = the original reference, ``REPRO_SERVING_FASTPATH=0``).
``blocks``
    Paged KV block manager with ref-counted blocks (vLLM-style). The
    engine admits on it by default: radix nodes own the blocks backing
    their edges, matched prefixes are fork-shared, decode tails grow
    block-by-block, and eviction returns blocks to the pool. The
    token-sum admission heuristic stays selectable as the oracle
    (``EngineConfig.kv_accounting="tokens"`` / ``REPRO_SERVING_PAGED=0``).
``hardware`` / ``models``
    GPU and model registries (L4, 8xL4; Llama-3 1B/8B/70B) with memory,
    bandwidth, FLOPs, weight bytes and KV bytes/token.
``costmodel``
    Roofline timing: compute-bound prefill (with the quadratic attention
    term PHC's squared lengths model), bandwidth-bound decode.
``engine``
    Continuous-batching engine: admission limited by KV memory, sequential
    prefill with radix lookups, batched decode steps. Replay is
    event-driven by default — the clock jumps over whole runs of decode
    steps with a closed-form cost — with the original per-token loop kept
    as the equivalence oracle (``EngineConfig.mode`` /
    ``REPRO_SERVING_FASTPATH``).
``workload``
    Arrival-timed workload traces: tenant/job-tagged requests, Poisson /
    bursty (MMPP on-off) / diurnal arrival processes, tenant-mix synthesis
    over the benchmark query suite, JSON (de)serialization.
``scheduler``
    Online scheduling policies (fcfs / sjf / prefix-affinity / fair-share
    deficit round-robin) in front of the engine's admission, plus SLO
    accounting: queueing-delay/TTFT/E2E percentiles, per-tenant
    breakdowns, goodput under a deadline. ``REPRO_SERVING_ONLINE=0``
    forces the offline (fcfs, all-arrivals-at-t=0) reference path.
``client``
    High-level client: strings in, answers + usage + simulated latency out.
``cluster``
    Multi-replica serving: N per-replica engines behind pluggable routing
    (round-robin / least-queue / prefix-aware sketches / tenant-sharded
    consistent hashing), replayed inline or over a spawn process pool with
    bit-identical merged metrics. ``REPRO_SERVING_CLUSTER=0`` forces the
    1-replica single-engine reference.
``pricing``
    OpenAI / Anthropic prompt-caching billing models (Table 3 / Table 4).
``prompts``
    The JSON prompt construction used by the paper's LLM operator (§5).
"""

from repro.llm.blocks import (
    BlockAllocation,
    BlockManager,
    paged_accounting_enabled,
)
from repro.llm.client import BatchResult, SimulatedLLMClient, TraceResult
from repro.llm.cluster import (
    CLUSTER_BACKENDS,
    ROUTING_POLICIES,
    ClusterConfig,
    ClusterEngine,
    ClusterResult,
    ReplicaStats,
    serving_cluster_enabled,
)
from repro.llm.engine import EngineConfig, EngineResult, SimulatedLLMEngine
from repro.llm.hardware import CLUSTER_1XL4, CLUSTER_8XL4, Cluster, GPUSpec
from repro.llm.models import LLAMA3_1B, LLAMA3_8B, LLAMA3_70B, ModelSpec
from repro.llm.scheduler import (
    SCHEDULER_POLICIES,
    LatencySummary,
    SchedulerPolicy,
    SLOReport,
    compute_slo,
    make_policy,
    serving_online_enabled,
)
from repro.llm.workload import (
    ARRIVAL_PROCESSES,
    TenantSpec,
    TraceRequest,
    WorkloadTrace,
    bursty_arrivals,
    diurnal_arrivals,
    make_arrivals,
    poisson_arrivals,
    synthesize_tenant_trace,
)
from repro.llm.pricing import (
    PricingModel,
    anthropic_claude35_sonnet,
    estimated_savings,
    openai_gpt4o_mini,
)
from repro.llm.radix import (
    RadixPrefixCache,
    pack_tokens,
    serving_fastpath_enabled,
    serving_radix_enabled,
)
from repro.llm.request import Request, RequestMetrics
from repro.llm.tokenizer import HashTokenizer

__all__ = [
    "HashTokenizer",
    "BlockAllocation",
    "BlockManager",
    "paged_accounting_enabled",
    "RadixPrefixCache",
    "pack_tokens",
    "serving_fastpath_enabled",
    "serving_radix_enabled",
    "Request",
    "RequestMetrics",
    "GPUSpec",
    "Cluster",
    "CLUSTER_1XL4",
    "CLUSTER_8XL4",
    "ModelSpec",
    "LLAMA3_1B",
    "LLAMA3_8B",
    "LLAMA3_70B",
    "SimulatedLLMEngine",
    "EngineConfig",
    "EngineResult",
    "SimulatedLLMClient",
    "BatchResult",
    "TraceResult",
    "ClusterEngine",
    "ClusterConfig",
    "ClusterResult",
    "ReplicaStats",
    "ROUTING_POLICIES",
    "CLUSTER_BACKENDS",
    "serving_cluster_enabled",
    "SCHEDULER_POLICIES",
    "SchedulerPolicy",
    "make_policy",
    "serving_online_enabled",
    "LatencySummary",
    "SLOReport",
    "compute_slo",
    "ARRIVAL_PROCESSES",
    "WorkloadTrace",
    "TraceRequest",
    "TenantSpec",
    "poisson_arrivals",
    "bursty_arrivals",
    "diurnal_arrivals",
    "make_arrivals",
    "synthesize_tenant_trace",
    "PricingModel",
    "openai_gpt4o_mini",
    "anthropic_claude35_sonnet",
    "estimated_savings",
]
