"""Model registry: architecture constants for the models the paper runs.

``kv_bytes_per_token`` follows the GQA KV-cache formula
``2 (K+V) * n_layers * n_kv_heads * head_dim * 2 bytes (fp16)``; weight
bytes are set to the on-device footprints the paper quotes (7.6 GB for
Llama-3-8B, 1.8 GB for Llama-3.2-1B — 8-bit-ish serving builds).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServingError


@dataclass(frozen=True)
class ModelSpec:
    """Architecture + deployment constants for one servable model."""

    name: str
    n_params: float
    n_layers: int
    n_heads: int
    n_kv_heads: int
    head_dim: int
    weight_bytes: float

    def __post_init__(self):
        if min(self.n_params, self.n_layers, self.n_heads, self.n_kv_heads,
               self.head_dim, self.weight_bytes) <= 0:
            raise ServingError(f"non-positive model spec for {self.name}")

    @property
    def hidden_size(self) -> int:
        return self.n_heads * self.head_dim

    @property
    def kv_bytes_per_token(self) -> int:
        """fp16 K+V bytes cached per token."""
        return 2 * self.n_layers * self.n_kv_heads * self.head_dim * 2


LLAMA3_8B = ModelSpec(
    name="Llama-3-8B-Instruct",
    n_params=8.0e9,
    n_layers=32,
    n_heads=32,
    n_kv_heads=8,
    head_dim=128,
    weight_bytes=7.6e9,
)

LLAMA3_70B = ModelSpec(
    name="Llama-3-70B-Instruct",
    n_params=70.6e9,
    n_layers=80,
    n_heads=64,
    n_kv_heads=8,
    head_dim=128,
    weight_bytes=70.0e9,
)

LLAMA3_1B = ModelSpec(
    name="Llama-3.2-1B-Instruct",
    n_params=1.24e9,
    n_layers=16,
    n_heads=32,
    n_kv_heads=8,
    head_dim=64,
    weight_bytes=1.8e9,
)

MODELS = {m.name: m for m in (LLAMA3_8B, LLAMA3_70B, LLAMA3_1B)}
