"""Paged KV-cache block manager (vLLM-style).

KV memory is allocated in fixed-size blocks of ``block_tokens`` tokens.
Blocks are ref-counted so a prefix shared by many sequences is stored once;
forking a sequence bumps refs, releasing decrements and frees at zero. The
engine uses the manager for admission control; the radix tree decides *what*
is shared, the block manager enforces *how much* physical memory that costs
(including fragmentation from partially-filled last blocks).

``REPRO_SERVING_PAGED=0`` selects the token-sum admission oracle in the
engine (see :func:`paged_accounting_enabled`), mirroring
``REPRO_SERVING_FASTPATH`` for the replay loop.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import CapacityError, ServingError


def paged_accounting_enabled() -> bool:
    """Whether the engine admits on block-granular paged-KV accounting
    (the default) instead of the token-sum oracle.
    ``REPRO_SERVING_PAGED=0`` forces the oracle everywhere."""
    flag = os.environ.get("REPRO_SERVING_PAGED", "1").strip().lower()
    return flag not in ("0", "false", "off", "no")


@dataclass
class BlockAllocation:
    """A contiguous logical run of ref-counted block ids.

    ``start_offset`` is the token position inside ``block_ids[0]`` where
    this allocation's tokens begin: fresh allocations start at 0, but the
    tail half of a mid-block :meth:`BlockManager.split` starts partway into
    the straddling block. Tokens occupy positions ``[start_offset,
    start_offset + n_tokens)`` laid out consecutively across the blocks —
    the invariant every block computation below relies on.
    """

    block_ids: List[int]
    n_tokens: int
    released: bool = False
    start_offset: int = 0


class BlockManager:
    """Fixed-pool allocator with ref counting.

    Parameters
    ----------
    capacity_tokens:
        Total KV token capacity (device memory / bytes-per-token).
    block_tokens:
        Tokens per block (16 in vLLM by default).
    """

    def __init__(self, capacity_tokens: int, block_tokens: int = 16):
        if capacity_tokens <= 0 or block_tokens <= 0:
            raise ServingError("capacity_tokens and block_tokens must be positive")
        if capacity_tokens < block_tokens:
            raise ServingError(
                f"capacity of {capacity_tokens} tokens holds zero "
                f"{block_tokens}-token blocks"
            )
        self.block_tokens = block_tokens
        self.n_blocks = capacity_tokens // block_tokens
        self._free: List[int] = list(range(self.n_blocks))
        self._refs: Dict[int, int] = {}

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def used_blocks(self) -> int:
        return self.n_blocks - len(self._free)

    @property
    def free_tokens(self) -> int:
        return self.free_blocks * self.block_tokens

    def blocks_needed(self, n_tokens: int) -> int:
        return (n_tokens + self.block_tokens - 1) // self.block_tokens

    def can_allocate(self, n_tokens: int) -> bool:
        return self.blocks_needed(n_tokens) <= self.free_blocks

    def allocate(self, n_tokens: int) -> BlockAllocation:
        """Allocate blocks for ``n_tokens``; raises :class:`CapacityError`
        when the pool cannot satisfy the request. ``n_tokens == 0`` yields a
        valid empty allocation (a decode tail before its first token)."""
        if n_tokens < 0:
            raise ServingError(f"cannot allocate {n_tokens} tokens")
        need = self.blocks_needed(n_tokens)
        if need > self.free_blocks:
            raise CapacityError(
                f"need {need} blocks for {n_tokens} tokens, only {self.free_blocks} free"
            )
        ids = [self._free.pop() for _ in range(need)]
        for b in ids:
            self._refs[b] = 1
        return BlockAllocation(block_ids=ids, n_tokens=n_tokens)

    def fork(self, alloc: BlockAllocation) -> BlockAllocation:
        """Share an allocation copy-free: bump every block's refcount."""
        if alloc.released:
            raise ServingError("fork of a released allocation")
        for b in alloc.block_ids:
            if self._refs.get(b, 0) <= 0:
                raise ServingError(f"fork of freed block {b}")
            self._refs[b] += 1
        return BlockAllocation(
            block_ids=list(alloc.block_ids),
            n_tokens=alloc.n_tokens,
            start_offset=alloc.start_offset,
        )

    def release(self, alloc: BlockAllocation) -> None:
        """Drop one reference to each block; free blocks reaching zero."""
        if alloc.released:
            raise ServingError("double free of allocation")
        for b in alloc.block_ids:
            refs = self._refs.get(b, 0)
            if refs <= 0:
                raise ServingError(f"double free of block {b}")
            if refs == 1:
                del self._refs[b]
                self._free.append(b)
            else:
                self._refs[b] = refs - 1
        alloc.released = True

    def split(
        self, alloc: BlockAllocation, head_tokens: int
    ) -> Tuple[BlockAllocation, BlockAllocation]:
        """Split an allocation at ``head_tokens`` into (head, tail).

        Models a radix edge split: block ids map positionally onto the
        allocation's tokens, so the head keeps the blocks covering its
        tokens and the tail keeps the blocks covering the remainder. When
        the cut falls inside a block, that block *straddles* both halves:
        it gains a reference and is owned by head and tail alike until both
        release it — real block-granular sharing, and the reason evicting a
        small tail may free fewer blocks than its token count suggests.
        The input allocation is consumed (marked released without touching
        refcounts — ownership transfers to the two halves). Forked copies
        of the input remain valid: they reference the same block ids.
        """
        if alloc.released:
            raise ServingError("split of a released allocation")
        if not 0 < head_tokens < alloc.n_tokens:
            raise ServingError(
                f"split point {head_tokens} outside (0, {alloc.n_tokens})"
            )
        # All block arithmetic is in *block-local* token positions: the cut
        # sits at start_offset + head_tokens, not at head_tokens — the tail
        # of an earlier mid-block split starts partway into its first block.
        cut = alloc.start_offset + head_tokens
        n_head = self.blocks_needed(cut)
        tail_start = cut // self.block_tokens
        head = BlockAllocation(
            block_ids=alloc.block_ids[:n_head],
            n_tokens=head_tokens,
            start_offset=alloc.start_offset,
        )
        tail = BlockAllocation(
            block_ids=alloc.block_ids[tail_start:],
            n_tokens=alloc.n_tokens - head_tokens,
            start_offset=cut % self.block_tokens,
        )
        if cut % self.block_tokens:
            straddle = alloc.block_ids[tail_start]
            if self._refs.get(straddle, 0) <= 0:
                raise ServingError(f"split across freed block {straddle}")
            self._refs[straddle] += 1
        alloc.released = True
        return head, tail

    def grow(self, alloc: BlockAllocation, extra_tokens: int) -> None:
        """Extend an allocation in place (decode appends tokens)."""
        if alloc.released:
            raise ServingError("grow of a released allocation")
        if extra_tokens < 0:
            raise ServingError(f"cannot grow by {extra_tokens} tokens")
        new_total = alloc.n_tokens + extra_tokens
        need = (
            self.blocks_needed(alloc.start_offset + new_total)
            - len(alloc.block_ids)
        )
        if need > self.free_blocks:
            raise CapacityError(
                f"grow needs {need} blocks, only {self.free_blocks} free"
            )
        for _ in range(need):
            b = self._free.pop()
            self._refs[b] = 1
            alloc.block_ids.append(b)
        alloc.n_tokens = new_total

    def check_invariants(self) -> None:
        refs_blocks = set(self._refs)
        free_blocks = set(self._free)
        if refs_blocks & free_blocks:
            raise ServingError("block appears both free and referenced")
        if len(free_blocks) != len(self._free):
            raise ServingError("duplicate block in free list")
        if len(refs_blocks) + len(free_blocks) != self.n_blocks:
            raise ServingError("blocks leaked or invented")
        if any(r <= 0 for r in self._refs.values()):
            raise ServingError("non-positive refcount recorded")
