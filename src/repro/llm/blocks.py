"""Paged KV-cache block manager (vLLM-style).

KV memory is allocated in fixed-size blocks of ``block_tokens`` tokens.
Blocks are ref-counted so a prefix shared by many sequences is stored once;
forking a sequence bumps refs, releasing decrements and frees at zero. The
engine uses the manager for admission control; the radix tree decides *what*
is shared, the block manager enforces *how much* physical memory that costs
(including fragmentation from partially-filled last blocks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import CapacityError, ServingError


@dataclass
class BlockAllocation:
    """A contiguous logical run of ref-counted block ids."""

    block_ids: List[int]
    n_tokens: int
    released: bool = False


class BlockManager:
    """Fixed-pool allocator with ref counting.

    Parameters
    ----------
    capacity_tokens:
        Total KV token capacity (device memory / bytes-per-token).
    block_tokens:
        Tokens per block (16 in vLLM by default).
    """

    def __init__(self, capacity_tokens: int, block_tokens: int = 16):
        if capacity_tokens <= 0 or block_tokens <= 0:
            raise ServingError("capacity_tokens and block_tokens must be positive")
        self.block_tokens = block_tokens
        self.n_blocks = capacity_tokens // block_tokens
        self._free: List[int] = list(range(self.n_blocks))
        self._refs: Dict[int, int] = {}

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def used_blocks(self) -> int:
        return self.n_blocks - len(self._free)

    @property
    def free_tokens(self) -> int:
        return self.free_blocks * self.block_tokens

    def blocks_needed(self, n_tokens: int) -> int:
        return (n_tokens + self.block_tokens - 1) // self.block_tokens

    def can_allocate(self, n_tokens: int) -> bool:
        return self.blocks_needed(n_tokens) <= self.free_blocks

    def allocate(self, n_tokens: int) -> BlockAllocation:
        """Allocate blocks for ``n_tokens``; raises :class:`CapacityError`
        when the pool cannot satisfy the request."""
        need = self.blocks_needed(n_tokens)
        if need > self.free_blocks:
            raise CapacityError(
                f"need {need} blocks for {n_tokens} tokens, only {self.free_blocks} free"
            )
        ids = [self._free.pop() for _ in range(need)]
        for b in ids:
            self._refs[b] = 1
        return BlockAllocation(block_ids=ids, n_tokens=n_tokens)

    def fork(self, alloc: BlockAllocation) -> BlockAllocation:
        """Share an allocation copy-free: bump every block's refcount."""
        if alloc.released:
            raise ServingError("fork of a released allocation")
        for b in alloc.block_ids:
            if self._refs.get(b, 0) <= 0:
                raise ServingError(f"fork of freed block {b}")
            self._refs[b] += 1
        return BlockAllocation(block_ids=list(alloc.block_ids), n_tokens=alloc.n_tokens)

    def release(self, alloc: BlockAllocation) -> None:
        """Drop one reference to each block; free blocks reaching zero."""
        if alloc.released:
            raise ServingError("double free of allocation")
        for b in alloc.block_ids:
            refs = self._refs.get(b, 0)
            if refs <= 0:
                raise ServingError(f"double free of block {b}")
            if refs == 1:
                del self._refs[b]
                self._free.append(b)
            else:
                self._refs[b] = refs - 1
        alloc.released = True

    def grow(self, alloc: BlockAllocation, extra_tokens: int) -> None:
        """Extend an allocation in place (decode appends tokens)."""
        if alloc.released:
            raise ServingError("grow of a released allocation")
        new_total = alloc.n_tokens + extra_tokens
        need = self.blocks_needed(new_total) - len(alloc.block_ids)
        if need > self.free_blocks:
            raise CapacityError(
                f"grow needs {need} blocks, only {self.free_blocks} free"
            )
        for _ in range(need):
            b = self._free.pop()
            self._refs[b] = 1
            alloc.block_ids.append(b)
        alloc.n_tokens = new_total

    def check_invariants(self) -> None:
        refs_blocks = set(self._refs)
        free_blocks = set(self._free)
        if refs_blocks & free_blocks:
            raise ServingError("block appears both free and referenced")
        if len(free_blocks) != len(self._free):
            raise ServingError("duplicate block in free list")
        if len(refs_blocks) + len(free_blocks) != self.n_blocks:
            raise ServingError("blocks leaked or invented")
        if any(r <= 0 for r in self._refs.values()):
            raise ServingError("non-positive refcount recorded")
