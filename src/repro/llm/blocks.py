"""Paged KV-cache block manager (vLLM-style).

KV memory is allocated in fixed-size blocks of ``block_tokens`` tokens.
Blocks are ref-counted so a prefix shared by many sequences is stored once;
forking a sequence bumps refs, releasing decrements and frees at zero. The
engine uses the manager for admission control; the radix tree decides *what*
is shared, the block manager enforces *how much* physical memory that costs
(including fragmentation from partially-filled last blocks).

``REPRO_SERVING_PAGED=0`` selects the token-sum admission oracle in the
engine (see :func:`paged_accounting_enabled`), mirroring
``REPRO_SERVING_FASTPATH`` for the replay loop.

The manager has two interchangeable storage backends. The default keeps
the free pool in a Python list and refcounts in a dict — the reference
implementation. ``vector=True`` keeps the free pool as a numpy stack and
refcounts as a numpy array, so multi-block operations (a prompt path's
fork bundle, a decode tail's growth, a victim's release) are single slab
operations instead of per-block Python loops; profiling the event replay
showed those loops were roughly half its runtime. The vectorized engine
mode selects it (``REPRO_SERVING_VECTOR=0`` restores the scalar manager
everywhere); both backends implement identical semantics — same counts,
same errors, same block-id hand-out order.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import CapacityError, ServingError

try:  # numpy backs the vectorized serving paths; its absence only
    import numpy as _np  # disables them (the scalar oracle remains).
except ImportError:  # pragma: no cover - environment without numpy
    _np = None


def paged_accounting_enabled() -> bool:
    """Whether the engine admits on block-granular paged-KV accounting
    (the default) instead of the token-sum oracle.
    ``REPRO_SERVING_PAGED=0`` forces the oracle everywhere."""
    flag = os.environ.get("REPRO_SERVING_PAGED", "1").strip().lower()
    return flag not in ("0", "false", "off", "no")


def serving_vector_enabled() -> bool:
    """Whether the vectorized serving fast paths (numpy engine replay
    state, numpy block accounting) are enabled. ``REPRO_SERVING_VECTOR=0``
    forces the scalar event/stepwise implementations everywhere, mirroring
    ``REPRO_SERVING_FASTPATH`` one layer down; the flag is also off when
    numpy is unavailable."""
    if _np is None:
        return False
    flag = os.environ.get("REPRO_SERVING_VECTOR", "1").strip().lower()
    return flag not in ("0", "false", "off", "no")


@dataclass
class BlockAllocation:
    """A contiguous logical run of ref-counted block ids.

    ``start_offset`` is the token position inside ``block_ids[0]`` where
    this allocation's tokens begin: fresh allocations start at 0, but the
    tail half of a mid-block :meth:`BlockManager.split` starts partway into
    the straddling block. Tokens occupy positions ``[start_offset,
    start_offset + n_tokens)`` laid out consecutively across the blocks —
    the invariant every block computation below relies on.
    """

    block_ids: List[int]
    n_tokens: int
    released: bool = False
    start_offset: int = 0
    #: Bundles (see :meth:`BlockManager.fork_ids`) hold a *multiset* of
    #: block ids — one request's references to every node allocation along
    #: its prompt path, concatenated. A block straddling a radix edge split
    #: legitimately appears in two adjacent path nodes, so release must
    #: decrement per occurrence rather than treat the ids as distinct.
    bundle: bool = False
    #: Vector backend only: the bundle decomposed as distinct ids (a numpy
    #: array) plus the rare extra occurrences of straddle blocks (a short
    #: list, each id also present in ``uniq``). Precomputed at fork time so
    #: both fork and release are plain fancy-indexing passes — no sort, no
    #: scatter-add — over the distinct ids.
    uniq: object = field(default=None, repr=False)
    extra: object = field(default=None, repr=False)
    #: Vector backend only: memo of ``block_ids`` as a numpy array (see
    #: :meth:`BlockManager.ids_array`). Node allocations in the radix tree
    #: are forked into every admitted request's path bundle, so the
    #: conversion pays off across admissions. Invalidated by :meth:`grow`.
    ids_arr: object = field(default=None, repr=False)
    #: Flat radix backend only: the node *slot* this allocation is bound to
    #: (-1 when unowned — forks, bundles, and node-backend allocations).
    #: Rebound on every radix edge split; the flat backend's invariant
    #: checker verifies slot and allocation agree.
    owner: int = field(default=-1, repr=False)


class BlockManager:
    """Fixed-pool allocator with ref counting.

    Parameters
    ----------
    capacity_tokens:
        Total KV token capacity (device memory / bytes-per-token).
    block_tokens:
        Tokens per block (16 in vLLM by default).
    """

    def __init__(
        self,
        capacity_tokens: int,
        block_tokens: int = 16,
        vector: bool = False,
    ):
        if capacity_tokens <= 0 or block_tokens <= 0:
            raise ServingError("capacity_tokens and block_tokens must be positive")
        if capacity_tokens < block_tokens:
            raise ServingError(
                f"capacity of {capacity_tokens} tokens holds zero "
                f"{block_tokens}-token blocks"
            )
        if vector and _np is None:
            raise ServingError("vector block accounting requires numpy")
        self.block_tokens = block_tokens
        self.n_blocks = capacity_tokens // block_tokens
        self.vector = vector
        if vector:
            # Free pool as a LIFO stack in [0, _free_top); refcounts as a
            # dense array. Slab pops come off the stack top in the same
            # high-to-low order the scalar list.pop() hands out.
            self._free_arr = _np.arange(self.n_blocks, dtype=_np.int64)
            self._free_top = self.n_blocks
            self._refs_arr = _np.zeros(self.n_blocks, dtype=_np.int64)
            self._free = None
            self._refs = None
        else:
            self._free: List[int] = list(range(self.n_blocks))
            self._refs: Dict[int, int] = {}
        # KV tokens parked in host memory by preempt-swap: they occupy no
        # device blocks (that is the point of swapping out), only this
        # ledger, which unpark draws back down. Purely token-denominated —
        # host memory is modeled as unbounded next to device KV.
        self.parked_tokens = 0
        # Per-tenant quota enforcement: ``_tenant_quota`` holds the hard
        # block ceilings (absent = unlimited), ``_tenant_used`` the blocks
        # currently charged. The engine charges/uncharges around its own
        # allocate/release calls — the ledger is deliberately decoupled from
        # individual allocations because fork-shared prefix blocks have no
        # single owning tenant.
        self._tenant_quota: Dict[str, int] = {}
        self._tenant_used: Dict[str, int] = {}

    @property
    def free_blocks(self) -> int:
        if self.vector:
            return self._free_top
        return len(self._free)

    @property
    def used_blocks(self) -> int:
        return self.n_blocks - self.free_blocks

    @property
    def free_tokens(self) -> int:
        return self.free_blocks * self.block_tokens

    def blocks_needed(self, n_tokens: int) -> int:
        return (n_tokens + self.block_tokens - 1) // self.block_tokens

    def can_allocate(self, n_tokens: int) -> bool:
        return self.blocks_needed(n_tokens) <= self.free_blocks

    def allocate(self, n_tokens: int) -> BlockAllocation:
        """Allocate blocks for ``n_tokens``; raises :class:`CapacityError`
        when the pool cannot satisfy the request. ``n_tokens == 0`` yields a
        valid empty allocation (a decode tail before its first token)."""
        if n_tokens < 0:
            raise ServingError(f"cannot allocate {n_tokens} tokens")
        need = self.blocks_needed(n_tokens)
        if need > self.free_blocks:
            raise CapacityError(
                f"need {need} blocks for {n_tokens} tokens, only {self.free_blocks} free"
            )
        ids = self._pop_free(need)
        return BlockAllocation(block_ids=ids, n_tokens=n_tokens)

    def _pop_free(self, need: int) -> List[int]:
        """Take ``need`` blocks off the free stack at refcount 1. The
        caller has already checked capacity."""
        if not self.vector:
            ids = [self._free.pop() for _ in range(need)]
            for b in ids:
                self._refs[b] = 1
            return ids
        if need == 0:
            return []
        top = self._free_top
        new_top = top - need
        taken = self._free_arr[new_top:top]
        self._refs_arr[taken] = 1
        self._free_top = new_top
        return taken[::-1].tolist()

    def fork(self, alloc: BlockAllocation) -> BlockAllocation:
        """Share an allocation copy-free: bump every block's refcount."""
        if alloc.released:
            raise ServingError("fork of a released allocation")
        if alloc.bundle:
            # A bundle's ids are a multiset; per-occurrence semantics only
            # exist on the fork_ids path.
            ids = alloc.block_ids
            if not ids and alloc.uniq is not None:
                ids = alloc.uniq.tolist() + list(alloc.extra or ())
            return self.fork_ids(ids, alloc.n_tokens)
        if self.vector:
            refs = self._refs_arr
            ids = _np.asarray(alloc.block_ids, dtype=_np.int64)
            if ids.size:
                cur = refs[ids]
                if cur.min() <= 0:
                    raise ServingError("fork of a freed block")
                refs[ids] = cur + 1
        else:
            for b in alloc.block_ids:
                if self._refs.get(b, 0) <= 0:
                    raise ServingError(f"fork of freed block {b}")
                self._refs[b] += 1
        return BlockAllocation(
            block_ids=list(alloc.block_ids),
            n_tokens=alloc.n_tokens,
            start_offset=alloc.start_offset,
        )

    def fork_ids(
        self, block_ids: Sequence[int], n_tokens: int
    ) -> BlockAllocation:
        """Fork a concatenated multiset of block ids, returning a *bundle*
        allocation: each occurrence takes — and release later drops — one
        reference. Callers that already know the multiset structure (the
        radix path walk does) should use :meth:`fork_bundle` directly; this
        derives it with a sort."""
        if not self.vector:
            for b in block_ids:
                if self._refs.get(b, 0) <= 0:
                    raise ServingError(f"fork of freed block {b}")
                self._refs[b] += 1
            return BlockAllocation(
                block_ids=list(block_ids), n_tokens=n_tokens, bundle=True
            )
        uniq, cnt = _np.unique(
            _np.asarray(block_ids, dtype=_np.int64), return_counts=True
        )
        dup = cnt > 1
        extra = _np.repeat(uniq[dup], cnt[dup] - 1).tolist()
        return self.fork_bundle(uniq.tolist(), extra, n_tokens)

    def fork_bundle(
        self, base: List[int], extra: List[int], n_tokens: int
    ) -> BlockAllocation:
        """Fork a whole prompt path's blocks in one pass: ``base`` holds
        every distinct block id, ``extra`` the additional occurrences of
        blocks referenced twice along the path (a block straddling a radix
        edge split belongs to both adjacent nodes — rare, and structurally
        known to the radix walk, so no dedup sort is ever needed here).
        This is how the vectorized engine admits a request with one
        refcount operation instead of one fork per radix node."""
        if not self.vector:
            return self.fork_ids(base + extra, n_tokens)
        refs = self._refs_arr
        arr = _np.asarray(base, dtype=_np.int64)
        if arr.size:
            cur = refs[arr]
            if cur.min() <= 0:
                raise ServingError("fork of a freed block")
            refs[arr] = cur + 1
        for b in extra:
            if refs[b] <= 0:
                raise ServingError(f"fork of freed block {b}")
            refs[b] += 1
        alloc = BlockAllocation(
            block_ids=base + extra, n_tokens=n_tokens, bundle=True
        )
        alloc.uniq = arr
        alloc.extra = extra
        return alloc

    def ids_array(self, alloc: BlockAllocation) -> "object":
        """``alloc.block_ids`` as a cached numpy int64 array (vector
        backend only). Safe to alias: the array is never mutated — growing
        the allocation drops the memo and a fresh conversion rebuilds it."""
        arr = alloc.ids_arr
        if arr is None:
            arr = alloc.ids_arr = _np.asarray(
                alloc.block_ids, dtype=_np.int64
            )
        return arr

    def fork_bundle_parts(
        self, parts: List["object"], extra: List[int], n_tokens: int
    ) -> BlockAllocation:
        """:meth:`fork_bundle` taking the distinct ids as a list of numpy
        arrays (per-node slices from :meth:`ids_array`) instead of a python
        list — one concatenate replaces per-id list building on the
        admission hot path. Vector backend only."""
        refs = self._refs_arr
        if len(parts) == 1:
            arr = parts[0]
        else:
            arr = _np.concatenate(parts)
        if arr.size:
            cur = refs[arr]
            if cur.min() <= 0:
                raise ServingError("fork of a freed block")
            refs[arr] = cur + 1
        for b in extra:
            if refs[b] <= 0:
                raise ServingError(f"fork of freed block {b}")
            refs[b] += 1
        # block_ids stays empty: for vector bundles, uniq/extra are the
        # source of truth (release and the scalar fallbacks below honor
        # them), and materializing the python list would cost more than the
        # fork itself.
        alloc = BlockAllocation(block_ids=[], n_tokens=n_tokens, bundle=True)
        alloc.uniq = arr
        alloc.extra = extra
        return alloc

    def release(self, alloc: BlockAllocation) -> None:
        """Drop one reference per block-id occurrence; free blocks reaching
        zero."""
        if alloc.released:
            raise ServingError("double free of allocation")
        if self.vector:
            self._release_vector(alloc)
        else:
            ids = alloc.block_ids
            if alloc.bundle and not ids and alloc.uniq is not None:
                # Vector-built bundle drained on a scalar manager:
                # reconstitute the multiset from its decomposition.
                ids = alloc.uniq.tolist() + list(alloc.extra or ())
            for b in ids:
                refs = self._refs.get(b, 0)
                if refs <= 0:
                    raise ServingError(f"double free of block {b}")
                if refs == 1:
                    del self._refs[b]
                    self._free.append(b)
                else:
                    self._refs[b] = refs - 1
        alloc.released = True

    def _release_vector(self, alloc: BlockAllocation) -> None:
        refs = self._refs_arr
        if alloc.bundle:
            if alloc.uniq is None:
                # Bundle forked on the scalar backend: derive its base /
                # extra decomposition once.
                uniq, cnt = _np.unique(
                    _np.asarray(alloc.block_ids, dtype=_np.int64),
                    return_counts=True,
                )
                dup = cnt > 1
                alloc.uniq = uniq
                alloc.extra = _np.repeat(uniq[dup], cnt[dup] - 1).tolist()
            ids = alloc.uniq
            if not ids.size:
                return
            after = refs[ids] - 1
            if after.min() < 0:
                raise ServingError("double free of block")
            refs[ids] = after
            if alloc.extra:
                for b in alloc.extra:
                    r = refs[b] - 1
                    if r < 0:
                        raise ServingError(f"double free of block {b}")
                    refs[b] = r
                freed = ids[refs[ids] == 0]
            else:
                freed = ids[after == 0]
        else:
            ids = _np.asarray(alloc.block_ids, dtype=_np.int64)
            if not ids.size:
                return
            after = refs[ids] - 1
            if after.min() < 0:
                raise ServingError("double free of block")
            refs[ids] = after
            freed = ids[after == 0]
        n = freed.size
        if n:
            top = self._free_top
            self._free_arr[top : top + n] = freed
            self._free_top = top + n

    def split(
        self, alloc: BlockAllocation, head_tokens: int
    ) -> Tuple[BlockAllocation, BlockAllocation]:
        """Split an allocation at ``head_tokens`` into (head, tail).

        Models a radix edge split: block ids map positionally onto the
        allocation's tokens, so the head keeps the blocks covering its
        tokens and the tail keeps the blocks covering the remainder. When
        the cut falls inside a block, that block *straddles* both halves:
        it gains a reference and is owned by head and tail alike until both
        release it — real block-granular sharing, and the reason evicting a
        small tail may free fewer blocks than its token count suggests.
        The input allocation is consumed (marked released without touching
        refcounts — ownership transfers to the two halves). Forked copies
        of the input remain valid: they reference the same block ids.
        """
        if alloc.released:
            raise ServingError("split of a released allocation")
        if not 0 < head_tokens < alloc.n_tokens:
            raise ServingError(
                f"split point {head_tokens} outside (0, {alloc.n_tokens})"
            )
        # All block arithmetic is in *block-local* token positions: the cut
        # sits at start_offset + head_tokens, not at head_tokens — the tail
        # of an earlier mid-block split starts partway into its first block.
        cut = alloc.start_offset + head_tokens
        n_head = self.blocks_needed(cut)
        tail_start = cut // self.block_tokens
        head = BlockAllocation(
            block_ids=alloc.block_ids[:n_head],
            n_tokens=head_tokens,
            start_offset=alloc.start_offset,
        )
        tail = BlockAllocation(
            block_ids=alloc.block_ids[tail_start:],
            n_tokens=alloc.n_tokens - head_tokens,
            start_offset=cut % self.block_tokens,
        )
        if cut % self.block_tokens:
            straddle = alloc.block_ids[tail_start]
            if self.vector:
                if self._refs_arr[straddle] <= 0:
                    raise ServingError(f"split across freed block {straddle}")
                self._refs_arr[straddle] += 1
            else:
                if self._refs.get(straddle, 0) <= 0:
                    raise ServingError(f"split across freed block {straddle}")
                self._refs[straddle] += 1
        alloc.released = True
        return head, tail

    def grow(self, alloc: BlockAllocation, extra_tokens: int) -> None:
        """Extend an allocation in place (decode appends tokens)."""
        if alloc.released:
            raise ServingError("grow of a released allocation")
        if extra_tokens < 0:
            raise ServingError(f"cannot grow by {extra_tokens} tokens")
        new_total = alloc.n_tokens + extra_tokens
        need = (
            self.blocks_needed(alloc.start_offset + new_total)
            - len(alloc.block_ids)
        )
        if need > self.free_blocks:
            raise CapacityError(
                f"grow needs {need} blocks, only {self.free_blocks} free"
            )
        if need > 0:
            alloc.block_ids.extend(self._pop_free(need))
            alloc.ids_arr = None
        alloc.n_tokens = new_total

    # ------------------------------------------------- preempt-swap parking
    def park(self, alloc: BlockAllocation) -> int:
        """Swap an allocation's KV out to host memory: its device blocks are
        released (immediately reusable by other requests) and its token
        count moves to the :attr:`parked_tokens` ledger. Returns the number
        of tokens parked."""
        n = alloc.n_tokens
        self.release(alloc)
        self.parked_tokens += n
        return n

    def unpark(self, n_tokens: int) -> BlockAllocation:
        """Swap parked KV back in: draws ``n_tokens`` off the parked ledger
        and allocates fresh device blocks for them (raises
        :class:`CapacityError` like any allocation when the pool is full —
        the caller decides when re-admission fits)."""
        if n_tokens < 0:
            raise ServingError(f"cannot unpark {n_tokens} tokens")
        if n_tokens > self.parked_tokens:
            raise ServingError(
                f"unpark of {n_tokens} tokens but only {self.parked_tokens} parked"
            )
        alloc = self.allocate(n_tokens)
        self.parked_tokens -= n_tokens
        return alloc

    # ----------------------------------------------------- per-tenant quota
    def set_tenant_quota(self, tenant: str, blocks: int) -> None:
        """Cap ``tenant`` at ``blocks`` device blocks; charging past the cap
        raises :class:`CapacityError` so admission treats a quota-full
        tenant exactly like a full pool (head-of-line blocks)."""
        if blocks <= 0:
            raise ServingError(f"tenant quota must be positive, got {blocks}")
        self._tenant_quota[tenant] = blocks

    def tenant_quota(self, tenant: str) -> "int | None":
        return self._tenant_quota.get(tenant)

    def tenant_used(self, tenant: str) -> int:
        return self._tenant_used.get(tenant, 0)

    def charge_tenant(self, tenant: str, blocks: int) -> None:
        """Charge ``blocks`` against the tenant's quota (no-op accounting
        when the tenant has no quota set)."""
        if blocks < 0:
            raise ServingError(f"cannot charge {blocks} blocks")
        quota = self._tenant_quota.get(tenant)
        used = self._tenant_used.get(tenant, 0)
        if quota is not None and used + blocks > quota:
            raise CapacityError(
                f"tenant {tenant!r} quota exceeded: {used} used + {blocks} "
                f"requested > {quota} blocks"
            )
        self._tenant_used[tenant] = used + blocks

    def uncharge_tenant(self, tenant: str, blocks: int) -> None:
        if blocks < 0:
            raise ServingError(f"cannot uncharge {blocks} blocks")
        used = self._tenant_used.get(tenant, 0) - blocks
        if used < 0:
            raise ServingError(
                f"tenant {tenant!r} uncharged below zero ({used} blocks)"
            )
        if used:
            self._tenant_used[tenant] = used
        else:
            self._tenant_used.pop(tenant, None)

    def check_invariants(self) -> None:
        if self.parked_tokens < 0:
            raise ServingError("negative parked-token ledger")
        for tenant, used in self._tenant_used.items():
            if used < 0:
                raise ServingError(f"tenant {tenant!r} charged negative blocks")
            quota = self._tenant_quota.get(tenant)
            if quota is not None and used > quota:
                raise ServingError(f"tenant {tenant!r} over quota")
        self._check_pool_invariants()

    def _check_pool_invariants(self) -> None:
        if self.vector:
            refs = self._refs_arr
            free = self._free_arr[: self._free_top]
            if refs.min() < 0:
                raise ServingError("negative refcount recorded")
            if free.size and refs[free].max() > 0:
                raise ServingError("block appears both free and referenced")
            if _np.unique(free).size != free.size:
                raise ServingError("duplicate block in free list")
            used = int(_np.count_nonzero(refs))
            if used + free.size != self.n_blocks:
                raise ServingError("blocks leaked or invented")
            return
        refs_blocks = set(self._refs)
        free_blocks = set(self._free)
        if refs_blocks & free_blocks:
            raise ServingError("block appears both free and referenced")
        if len(free_blocks) != len(self._free):
            raise ServingError("duplicate block in free list")
        if len(refs_blocks) + len(free_blocks) != self.n_blocks:
            raise ServingError("blocks leaked or invented")
        if any(r <= 0 for r in self._refs.values()):
            raise ServingError("non-positive refcount recorded")
