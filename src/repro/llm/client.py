"""High-level client over the simulated engine: strings in, answers out.

The client owns a tokenizer and a persistent engine, so successive
``generate`` calls share the server-side prefix cache exactly like a
long-lived vLLM deployment (the multi-invocation T3 queries depend on
this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ServingError
from repro.llm.encode_cache import encode_cache_for
from repro.llm.engine import EngineConfig, EngineResult, SimulatedLLMEngine
from repro.llm.hardware import CLUSTER_1XL4, Cluster
from repro.llm.models import LLAMA3_8B, ModelSpec
from repro.llm.request import Request
from repro.llm.scheduler import SLOReport, serving_online_enabled
from repro.llm.tokenizer import HashTokenizer
from repro.llm.workload import WorkloadTrace


@dataclass
class BatchResult:
    """Outputs plus serving metrics for one generate() call."""

    outputs: List[str]
    engine_result: EngineResult

    @property
    def total_seconds(self) -> float:
        return self.engine_result.total_seconds

    @property
    def prefix_hit_rate(self) -> float:
        return self.engine_result.prefix_hit_rate

    @property
    def peak_kv_blocks(self) -> int:
        """Peak physical KV blocks charged (0 under token-sum accounting)."""
        return self.engine_result.peak_kv_blocks

    @property
    def fragmentation(self) -> float:
        """Fraction of peak block memory lost to internal fragmentation."""
        return self.engine_result.fragmentation


@dataclass
class TraceResult:
    """Outcome of one :meth:`SimulatedLLMClient.generate_trace` replay:
    answers in trace (arrival) order, the engine metrics, and the SLO
    rollup (latency percentiles, per-tenant breakdown, goodput)."""

    trace_name: str
    outputs: List[str]
    engine_result: EngineResult
    slo: SLOReport

    @property
    def total_seconds(self) -> float:
        return self.engine_result.total_seconds

    @property
    def prefix_hit_rate(self) -> float:
        return self.engine_result.prefix_hit_rate

    @property
    def scheduler(self) -> str:
        return self.engine_result.scheduler


def requests_from_trace(
    trace: WorkloadTrace,
    tokenizer: HashTokenizer,
    encode_cache=None,
    start_id: int = 0,
    base_s: float = 0.0,
    default_output_len: int = 16,
) -> Tuple[List[Request], List[str]]:
    """Build engine :class:`Request`\\ s from a trace, exactly as
    :meth:`SimulatedLLMClient.generate_trace` does — sequential ids from
    ``start_id`` in trace (arrival) order, decode lengths from
    ``output_text``/``output_len``, arrival stamps offset by ``base_s``
    (dropped entirely under ``REPRO_SERVING_ONLINE=0``).

    Shared with :class:`~repro.llm.cluster.ClusterEngine` so a 1-replica
    cluster constructs byte-identical requests to the single-engine client
    path — the foundation of the cluster equivalence oracle. Returns
    ``(requests, output_texts)`` aligned with ``trace.requests``.
    """
    online = serving_online_enabled()
    cache = encode_cache if encode_cache is not None else encode_cache_for(tokenizer)
    requests: List[Request] = []
    out_texts: List[str] = []
    rid = start_id
    for tr in trace.requests:
        if tr.output_text:
            n_out = max(1, cache.count(tokenizer, tr.output_text))
        elif tr.output_len is not None:
            n_out = tr.output_len
        else:
            n_out = default_output_len
        out_texts.append(tr.output_text)
        ids, packed = cache.encode(tokenizer, tr.prompt)
        requests.append(
            Request(
                request_id=rid,
                prompt_tokens=ids,
                output_tokens=n_out,
                output_text=tr.output_text,
                prompt_bytes=packed,
                arrival_s=base_s + tr.arrival_s if online else base_s,
                tenant=tr.tenant,
                deadline_s=tr.deadline_s,
            )
        )
        rid += 1
    return requests, out_texts


class SimulatedLLMClient:
    """Batch-generation client backed by :class:`SimulatedLLMEngine`.

    ``encode`` and ``count_tokens`` results are cached per prompt string in
    the tokenizer's shared :class:`~repro.llm.encode_cache.EncodeCache`
    (bounded, LRU): every consumer of the same tokenizer — this client, the
    batch-inference server, other clients the bench runner spins up —
    encodes each distinct prompt once. The cache survives
    :meth:`reset_cache`, which replaces the engine but keeps the tokenizer.
    """

    def __init__(
        self,
        model: ModelSpec = LLAMA3_8B,
        cluster: Cluster = CLUSTER_1XL4,
        engine_config: Optional[EngineConfig] = None,
        tokenizer: Optional[HashTokenizer] = None,
    ):
        self.model = model
        self.cluster = cluster
        self.engine_config = engine_config or EngineConfig()
        self.tokenizer = tokenizer or HashTokenizer()
        self.engine = SimulatedLLMEngine(model=model, cluster=cluster, config=self.engine_config)
        self._next_id = 0
        self._encode_cache = encode_cache_for(self.tokenizer)

    def _encode_cached(self, text: str) -> Tuple[Tuple[int, ...], Optional[bytes]]:
        return self._encode_cache.encode(self.tokenizer, text)

    def count_tokens(self, text: str) -> int:
        """Cached token count of ``text`` — the public counting API used
        by the LLM operator's dedup/telemetry accounting."""
        return self._count_cached(text)

    def _count_cached(self, text: str) -> int:
        return self._encode_cache.count(self.tokenizer, text)

    def encode_cache_stats(self) -> Dict[str, int]:
        """Hit/miss/eviction telemetry of the shared encode cache."""
        return self._encode_cache.stats()

    def radix_stats(self) -> Dict[str, object]:
        """Backend/size/eviction telemetry of the engine's radix cache."""
        return self.engine.cache.stats()

    def generate(
        self,
        prompts: Sequence[str],
        outputs: Optional[Sequence[str]] = None,
        output_lens: Optional[Sequence[int]] = None,
        default_output_len: int = 16,
    ) -> BatchResult:
        """Run one batch job in the given prompt order.

        The simulated "model" does not invent text: callers supply the
        answer strings (``outputs``, produced by the task's labeler/judge)
        or just their lengths (``output_lens``). Decode time is charged for
        the corresponding number of tokens either way.
        """
        if outputs is not None and len(outputs) != len(prompts):
            raise ServingError("outputs must align with prompts")
        if output_lens is not None and len(output_lens) != len(prompts):
            raise ServingError("output_lens must align with prompts")

        requests: List[Request] = []
        out_texts: List[str] = []
        # The whole batch "arrives" now: stamping the engine's current
        # clock keeps queueing/TTFT/E2E latencies batch-relative when a
        # long-lived engine serves successive jobs.
        base = self.engine.clock
        for i, prompt in enumerate(prompts):
            if outputs is not None:
                text = outputs[i]
                n_out = max(1, self._count_cached(text))
            elif output_lens is not None:
                text = ""
                n_out = output_lens[i]
            else:
                text = ""
                n_out = default_output_len
            out_texts.append(text)
            ids, packed = self._encode_cached(prompt)
            requests.append(
                Request(
                    request_id=self._next_id,
                    prompt_tokens=ids,
                    output_tokens=n_out,
                    output_text=text,
                    prompt_bytes=packed,
                    arrival_s=base,
                )
            )
            self._next_id += 1

        self.engine.submit_all(requests)
        result = self.engine.run()
        return BatchResult(outputs=out_texts, engine_result=result)

    def generate_trace(
        self,
        trace: WorkloadTrace,
        deadline_s: Optional[float] = None,
        default_output_len: int = 16,
    ) -> TraceResult:
        """Replay an arrival-timed workload trace through the engine.

        Arrival stamps are offset by the engine's current clock (a
        long-lived server receiving its second trace sees arrivals "from
        now"), so queueing delay / TTFT / E2E stay arrival-relative. With
        ``REPRO_SERVING_ONLINE=0`` the stamps are dropped entirely and the
        trace replays as an offline batch in arrival order — combined with
        the engine's forced ``fcfs`` policy, that is byte-identical to
        :meth:`generate` on the same prompt sequence.

        ``deadline_s`` (arrival-relative) feeds the goodput accounting of
        the returned SLO report.
        """
        requests, out_texts = requests_from_trace(
            trace,
            self.tokenizer,
            encode_cache=self._encode_cache,
            start_id=self._next_id,
            base_s=self.engine.clock,
            default_output_len=default_output_len,
        )
        self._next_id += len(requests)

        self.engine.submit_all(requests)
        result = self.engine.run()
        return TraceResult(
            trace_name=trace.name,
            outputs=out_texts,
            engine_result=result,
            slo=result.slo(deadline_s),
        )

    def cancel_pending(self) -> int:
        """Withdraw queued requests after a failed ``generate`` so the
        engine (and its warm prefix cache) can serve the next call."""
        return self.engine.flush_waiting()

    def reset_cache(self) -> None:
        """Fresh server state (new engine, same tokenizer)."""
        self.engine = SimulatedLLMEngine(
            model=self.model, cluster=self.cluster, config=self.engine_config
        )
