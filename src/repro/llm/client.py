"""High-level client over the simulated engine: strings in, answers out.

The client owns a tokenizer and a persistent engine, so successive
``generate`` calls share the server-side prefix cache exactly like a
long-lived vLLM deployment (the multi-invocation T3 queries depend on
this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.errors import ServingError
from repro.llm.engine import EngineConfig, EngineResult, SimulatedLLMEngine
from repro.llm.hardware import CLUSTER_1XL4, Cluster
from repro.llm.models import LLAMA3_8B, ModelSpec
from repro.llm.request import Request
from repro.llm.tokenizer import HashTokenizer


@dataclass
class BatchResult:
    """Outputs plus serving metrics for one generate() call."""

    outputs: List[str]
    engine_result: EngineResult

    @property
    def total_seconds(self) -> float:
        return self.engine_result.total_seconds

    @property
    def prefix_hit_rate(self) -> float:
        return self.engine_result.prefix_hit_rate


class SimulatedLLMClient:
    """Batch-generation client backed by :class:`SimulatedLLMEngine`."""

    def __init__(
        self,
        model: ModelSpec = LLAMA3_8B,
        cluster: Cluster = CLUSTER_1XL4,
        engine_config: Optional[EngineConfig] = None,
        tokenizer: Optional[HashTokenizer] = None,
    ):
        self.model = model
        self.cluster = cluster
        self.engine_config = engine_config or EngineConfig()
        self.tokenizer = tokenizer or HashTokenizer()
        self.engine = SimulatedLLMEngine(model=model, cluster=cluster, config=self.engine_config)
        self._next_id = 0

    def generate(
        self,
        prompts: Sequence[str],
        outputs: Optional[Sequence[str]] = None,
        output_lens: Optional[Sequence[int]] = None,
        default_output_len: int = 16,
    ) -> BatchResult:
        """Run one batch job in the given prompt order.

        The simulated "model" does not invent text: callers supply the
        answer strings (``outputs``, produced by the task's labeler/judge)
        or just their lengths (``output_lens``). Decode time is charged for
        the corresponding number of tokens either way.
        """
        if outputs is not None and len(outputs) != len(prompts):
            raise ServingError("outputs must align with prompts")
        if output_lens is not None and len(output_lens) != len(prompts):
            raise ServingError("output_lens must align with prompts")

        requests: List[Request] = []
        out_texts: List[str] = []
        for i, prompt in enumerate(prompts):
            if outputs is not None:
                text = outputs[i]
                n_out = max(1, self.tokenizer.count(text))
            elif output_lens is not None:
                text = ""
                n_out = output_lens[i]
            else:
                text = ""
                n_out = default_output_len
            out_texts.append(text)
            requests.append(
                Request(
                    request_id=self._next_id,
                    prompt_tokens=tuple(self.tokenizer.encode(prompt)),
                    output_tokens=n_out,
                    output_text=text,
                )
            )
            self._next_id += 1

        self.engine.submit_all(requests)
        result = self.engine.run()
        return BatchResult(outputs=out_texts, engine_result=result)

    def reset_cache(self) -> None:
        """Fresh server state (new engine, same tokenizer)."""
        self.engine = SimulatedLLMEngine(
            model=self.model, cluster=self.cluster, config=self.engine_config
        )
