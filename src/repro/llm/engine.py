"""Continuous-batching serving engine (simulated vLLM).

The engine replays a *schedule* of requests — order matters, which is the
whole point of the paper — through the mechanisms a real prefix-caching
server uses:

* requests are admitted FIFO while KV memory and the batch-size cap allow;
* on admission the radix cache is probed: the matched prefix skips prefill,
  only the suffix is prefilled (compute-bound time from the cost model);
* prompt KV lives in the shared radix cache (paths of running requests are
  pinned, the rest is LRU-evicted under pressure); decode KV is private
  and reserved up front for admission control;
* every decode step produces one token per running sequence and costs
  bandwidth-bound time (weights amortized over the batch).

Three replay modes produce the same integer metrics (and clocks equal to
float rounding):

``mode="vector"`` (default when numpy is available)
    The event-driven replay below, with its per-request Python state
    vectorized: request metrics live in numpy arrays keyed by a dense
    request index (``RequestMetrics`` objects are materialized once, in
    bulk, at the end of the run), admission waves stamp clocks with one
    fancy-indexed assignment, a request's prompt-path block references are
    forked and released as a single bundle
    (:meth:`RadixPrefixCache.fork_path_bundle`), and the block pool itself
    runs on the numpy backend (``BlockManager(vector=True)``). The clock
    arithmetic is the *same sequence of scalar float operations* as
    ``"event"``, so the two produce bit-identical clocks, not merely
    rounding-equal ones. ``REPRO_SERVING_VECTOR=0`` selects ``"event"``
    instead, keeping the scalar implementation available as the
    one-layer-up oracle.

``mode="event"``
    Event-driven: between admission and completion events the batch
    composition is fixed, so the clock advances over whole runs of decode
    steps with the closed-form arithmetic-series sum
    (:meth:`CostModel.decode_run_time`) — O(batch) work per event instead
    of O(steps x batch) Python work per token. Exact per-request
    ``first_token_at_s``/``finished_at_s`` stamps are still produced.

``mode="stepwise"``
    The original per-token loop, kept as the equivalence oracle
    (``REPRO_SERVING_FASTPATH=0`` selects it, plus the scan-based radix
    eviction, everywhere).

Two *KV accounting* models gate admission (orthogonal to the replay mode):

``kv_accounting="paged"`` (default)
    PagedAttention-style block accounting through
    :class:`~repro.llm.blocks.BlockManager`: each radix node owns the
    fixed-size blocks backing its edge, an admitted request fork-shares
    (ref-counts) the blocks of its matched prefix and allocates fresh
    blocks only for the suffix, decode grows a private tail allocation
    block-by-block (fully reserved at admission so decoding never OOMs),
    and radix eviction returns the victim's blocks to the pool. Admission
    charges whole blocks, so internal fragmentation — partially-filled
    last blocks — is visible to every benchmark via ``peak_kv_blocks`` /
    ``fragmentation_tokens``.

``kv_accounting="tokens"``
    The original token-sum heuristic, kept as the selectable oracle
    (``REPRO_SERVING_PAGED=0`` selects it everywhere). With
    ``block_tokens=1`` the paged path reproduces this oracle's schedules
    and clocks exactly (a block is a token; no rounding, no straddles).

Disabling the prefix cache turns the same machinery into the paper's
*No Cache* baseline: every prompt prefills fully and its KV is private,
shrinking the feasible batch.

**Online serving** (PR 5): requests may carry an ``arrival_s`` stamp. A
not-yet-arrived request waits in a time-ordered arrival heap; at every
admission point the engine releases the requests whose arrival time has
passed into a pluggable *scheduling policy*
(:mod:`repro.llm.scheduler` — ``fcfs``/``sjf``/``prefix-affinity``/
``fair-share``) that decides which waiting request is admitted next.
Arrival events merge into both replay loops: the stepwise loop sees them
naturally (it probes admission at every step boundary), the event loop
cuts its closed-form decode runs at the first step boundary past the next
arrival, so both modes attempt admission at identical clocks. With every
arrival at t=0 and the ``fcfs`` policy this degenerates exactly to the
offline batch replay (``tests/llm/test_online_equivalence.py``);
``REPRO_SERVING_ONLINE=0`` forces that offline shape everywhere.

**Continuous batching** (PR 8): admission is no longer one-shot. With
``EngineConfig.preemption`` enabled, the scheduling policy may name a
decoding *victim* (:meth:`SchedulerPolicy.preempt_victim`) whenever its
selected candidate lacks batch slots or KV memory; the victim's decode
tail is evicted for later re-prefill (``"recompute"``) or parked in host
memory at PCIe-priced cost (``"swap"``, :meth:`CostModel.swap_time`), and
the victim re-enters the waiting queue with its decode progress and
metrics row intact. ``prefill_chunk_tokens`` splits long prefills into
chunks that advance one per admission point, interleaved with decode
steps, so a long prompt no longer stalls the batch; radix inserts, pins,
and paged block reservations settle chunk by chunk. Per-tenant KV block
quotas (``tenant_kv_quota_blocks``) bound any tenant's concurrent block
charge, blocking head-of-line exactly like a full pool. The three replay
modes stay exact: preemption decisions depend only on requests and the
clock, so the event loops cut their closed-form decode runs at every
boundary where the stepwise loop could act — arrivals (even with a full
batch), the step after an admission wave (new members become eligible
victims there), active chunked prefills, and time-driven priority shifts
(a waiting deadline expiring —
:meth:`SchedulerPolicy.next_priority_shift`). ``REPRO_SERVING_PREEMPT=0``
forces the one-shot admit-and-forget shape everywhere — no preemption,
monolithic prefill, the ``deadline`` policy falling back to ``fcfs`` —
reproducing the pre-continuous-batching engine bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import List, Optional, Sequence, Tuple

from repro.errors import CapacityError, ServingError
from repro.llm.blocks import (
    BlockAllocation,
    BlockManager,
    paged_accounting_enabled,
    serving_vector_enabled,
)
from repro.llm.costmodel import CostModel
from repro.llm.hardware import CLUSTER_1XL4, Cluster
from repro.llm.models import LLAMA3_8B, ModelSpec
from repro.llm.radix import RadixPrefixCache, serving_fastpath_enabled
from repro.llm.request import Request, RequestMetrics
from repro.llm.scheduler import (
    SCHEDULER_POLICIES,
    SchedulerPolicy,
    SLOReport,
    compute_slo,
    make_policy,
    serving_online_enabled,
    serving_preempt_enabled,
    validate_policy_name,
)
from repro.llm.tracing import EngineTrace, TraceRecorder, serving_trace_enabled

try:  # numpy backs mode="vector"; without it the scalar modes remain.
    import numpy as _np
except ImportError:  # pragma: no cover - environment without numpy
    _np = None


#: Valid ``EngineConfig.preemption`` modes.
PREEMPTION_MODES = ("off", "recompute", "swap")


@dataclass
class EngineConfig:
    """Engine tunables.

    ``max_batch_size`` caps concurrent sequences (vLLM ``max_num_seqs``);
    ``kv_capacity_tokens`` overrides the cost model's derived capacity
    (useful for the memory-pressure ablation); ``mode`` selects the replay
    engine: ``"vector"`` (numpy request state over the event loop),
    ``"event"`` (closed-form multi-step advance, scalar state),
    ``"stepwise"`` (per-token reference loop), or ``"auto"`` (vector
    unless ``REPRO_SERVING_VECTOR=0`` drops it to event, or
    ``REPRO_SERVING_FASTPATH=0`` forces stepwise); ``kv_accounting``
    selects the admission
    model: ``"paged"`` (block-granular, vLLM-style), ``"tokens"`` (the
    token-sum oracle), or ``"auto"`` (paged unless
    ``REPRO_SERVING_PAGED=0``); ``block_tokens`` is the paged block size
    (16 in vLLM by default; 1 makes paged numerically identical to the
    token oracle); ``scheduler`` names the online admission policy
    (:data:`repro.llm.scheduler.SCHEDULER_POLICIES`; ``"auto"``/``"fcfs"``
    is the offline-equivalent default, and ``REPRO_SERVING_ONLINE=0``
    forces ``fcfs`` regardless).
    """

    enable_prefix_cache: bool = True
    max_batch_size: int = 64
    kv_capacity_tokens: Optional[int] = None
    mode: str = "auto"
    kv_accounting: str = "auto"
    block_tokens: int = 16
    scheduler: str = "auto"
    #: Decode preemption: ``"off"`` (one-shot admit-and-forget, the
    #: oracle), ``"recompute"`` (a preempted request's decode-tail KV is
    #: dropped and re-prefilled at re-admission), or ``"swap"`` (the tail
    #: is parked in host memory and swapped back at PCIe-priced cost —
    #: see :meth:`CostModel.swap_time`). Preemption fires only when the
    #: scheduling policy names a victim (:meth:`SchedulerPolicy.
    #: preempt_victim`); ``REPRO_SERVING_PREEMPT=0`` forces ``"off"``.
    preemption: str = "off"
    #: Chunked prefill: split prompts whose prefill exceeds this many
    #: tokens into chunks interleaved with decode steps, so one long
    #: prompt no longer stalls the whole batch's TTFT. ``None`` prefills
    #: monolithically (the oracle); ``REPRO_SERVING_PREEMPT=0`` forces
    #: ``None``.
    prefill_chunk_tokens: Optional[int] = None
    #: Default relative SLO deadline handed to the ``deadline`` scheduler
    #: (requests carrying their own ``Request.deadline_s`` override it).
    scheduler_deadline_s: Optional[float] = None
    #: Per-tenant KV block quotas enforced by the :class:`BlockManager`
    #: ledger (paged accounting only): tenant name -> max blocks charged
    #: at once. A quota-full tenant blocks admission head-of-line, like a
    #: full pool.
    tenant_kv_quota_blocks: Optional[dict] = None
    #: Request-lifecycle tracing (:mod:`repro.llm.tracing`): ``"on"``
    #: records spans/instants/gauges into ``EngineResult.trace``;
    #: ``"off"`` keeps the no-op path (``tracer is None``, zero per-event
    #: cost); ``"auto"`` follows ``REPRO_SERVING_TRACE`` — **off** by
    #: default, inverted vs the other serving gates, because tracing is
    #: an opt-in observer rather than a replay layer.
    trace: str = "auto"

    def __post_init__(self):
        # Name validity fails here, at config construction; env-dependent
        # resolution (oracle gates, numpy availability) stays in the
        # engine's _resolve_* helpers.
        if self.mode not in ("auto", "vector", "event", "stepwise"):
            raise ServingError(f"unknown engine mode {self.mode!r}")
        if self.kv_accounting not in ("auto", "paged", "tokens"):
            raise ServingError(f"unknown kv accounting {self.kv_accounting!r}")
        validate_policy_name(self.scheduler)
        if self.preemption not in PREEMPTION_MODES:
            raise ServingError(
                f"unknown preemption mode {self.preemption!r}; "
                f"choose from {PREEMPTION_MODES}"
            )
        if (
            self.prefill_chunk_tokens is not None
            and self.prefill_chunk_tokens <= 0
        ):
            raise ServingError(
                f"prefill_chunk_tokens must be positive (or None for "
                f"monolithic prefill), got {self.prefill_chunk_tokens}"
            )
        if (
            self.scheduler_deadline_s is not None
            and self.scheduler_deadline_s <= 0
        ):
            raise ServingError(
                f"scheduler_deadline_s must be positive, got "
                f"{self.scheduler_deadline_s}"
            )
        if self.trace not in ("auto", "on", "off"):
            raise ServingError(
                f"unknown trace mode {self.trace!r}; "
                f"choose from ('auto', 'on', 'off')"
            )


@dataclass
class _Running:
    request: Request
    #: None in vector mode, where the per-request metric fields live in the
    #: run's :class:`_VectorState` arrays at row ``idx`` instead.
    metrics: Optional[RequestMetrics]
    reserved_tokens: int
    idx: int = -1
    decoded: int = 0
    pin: Optional[object] = None
    #: Paged accounting only: forked references to the shared blocks of the
    #: prompt's radix path (released at completion), and the private tail
    #: allocation decode tokens grow into (plus the whole prompt when the
    #: prefix cache is off).
    forks: Optional[List[BlockAllocation]] = None
    tail: Optional[BlockAllocation] = None
    #: Continuous-batching lifecycle state. ``in_decode`` marks membership
    #: in the engine's preemption-victim list; ``admit_step`` is the global
    #: decode step the member (re-)joined the batch at, offset by tokens
    #: already decoded, so the event loops price completions and preempt
    #: settlements as ``step - admit_step``; ``admit_gen`` versions the
    #: member's completion-heap entries (bumped on preemption, so stale
    #: entries are recognizably dead).
    in_decode: bool = False
    admit_step: int = 0
    admit_gen: int = 0
    #: Blocks charged against the tenant quota ledger at admission.
    quota_charge: int = 0
    #: Chunked-prefill state: admission-time cache hit, remaining chunk
    #: sizes, tokens already prefilled past the hit, and the outstanding
    #: block reservation covering the un-prefilled chunks.
    hit: int = 0
    chunks_left: Optional[List[int]] = None
    done_prefill: int = 0
    prefill_reserved: int = 0

    @property
    def context_len(self) -> int:
        return self.request.prompt_len + self.decoded


@dataclass
class EngineResult:
    """Aggregate outcome of one engine run."""

    total_seconds: float
    request_metrics: List[RequestMetrics]
    prompt_tokens: int
    cached_tokens: int
    prefill_tokens: int
    decode_tokens: int
    decode_steps: int
    peak_kv_tokens: int
    max_batch_seen: int
    #: Accounting model the run admitted under ("paged" or "tokens").
    kv_accounting: str = "tokens"
    #: Paged accounting only (0 otherwise): block size, peak physical
    #: blocks charged (allocated + reserved decode blocks), and internal
    #: fragmentation at that peak — token slots inside charged blocks that
    #: hold no KV (partially-filled last blocks, decode reservations).
    block_tokens: int = 0
    peak_kv_blocks: int = 0
    fragmentation_tokens: int = 0
    #: Scheduling policy the run admitted under (``"fcfs"`` offline).
    scheduler: str = "fcfs"
    #: Preemption mode the run decoded under (``"off"`` = one-shot).
    preemption: str = "off"
    #: Continuous-batching rollups (all zero with preemption off and
    #: monolithic prefill — the oracle shape).
    n_preemptions: int = 0
    preempted_tokens_recomputed: int = 0
    preempted_tokens_swapped: int = 0
    n_prefill_chunks: int = 0
    #: Deepest waiting queue observed at any admission point this run
    #: (arrived-but-unadmitted requests in the scheduling policy).
    #: Always tracked — one integer max per admission probe.
    peak_waiting: int = 0
    #: Lifecycle trace of this run (:class:`~repro.llm.tracing.
    #: EngineTrace`); None unless tracing is enabled. Excluded from the
    #: metric-equality contracts — it is an observer, not a metric.
    trace: Optional[EngineTrace] = None

    def slo(self, deadline_s: Optional[float] = None) -> SLOReport:
        """Latency/goodput rollup (queueing delay, TTFT, E2E percentiles,
        per-tenant breakdown, goodput under ``deadline_s``) over this
        run's per-request metrics."""
        return compute_slo(self.request_metrics, deadline_s=deadline_s)

    @property
    def prefix_hit_rate(self) -> float:
        """Fraction of prompt tokens served from the KV cache (Table 2)."""
        if self.prompt_tokens == 0:
            return 0.0
        return self.cached_tokens / self.prompt_tokens

    @property
    def fragmentation(self) -> float:
        """Fraction of peak block memory lost to internal fragmentation
        (0.0 under token-sum accounting, where blocks are not modelled)."""
        denom = self.peak_kv_blocks * self.block_tokens
        if denom == 0:
            return 0.0
        return self.fragmentation_tokens / denom


def _resolve_mode(mode: str) -> str:
    if mode == "auto":
        if not serving_fastpath_enabled():
            return "stepwise"
        return "vector" if serving_vector_enabled() else "event"
    if mode not in ("vector", "event", "stepwise"):
        raise ServingError(f"unknown engine mode {mode!r}")
    if mode == "vector" and _np is None:
        raise ServingError("mode='vector' requires numpy")
    return mode


class _VectorState:
    """Per-run SoA request state for ``mode="vector"``: one dense row per
    admitted request, numpy columns for every :class:`RequestMetrics`
    field. The replay loop stamps clocks into rows by index (whole
    admission waves in one fancy-indexed assignment); :meth:`settle` sorts
    by request id and materializes the ``RequestMetrics`` list — plus the
    run's aggregate token sums — in bulk at the end of the run."""

    __slots__ = (
        "n", "_cap", "req_id", "prompt", "cached", "prefill",
        "out", "arrival", "admitted", "first", "finished", "tenants",
        "npre", "tok_rec", "tok_swap", "chunks",
    )

    def __init__(self, capacity_hint: int):
        self._cap = max(16, capacity_hint)
        self.n = 0
        # Admission-time constants are append-only: plain list appends beat
        # numpy scalar stores, and one bulk conversion at settle() suffices.
        self.req_id: List[int] = []
        self.prompt: List[int] = []
        self.cached: List[int] = []
        self.prefill: List[int] = []
        self.arrival: List[float] = []
        self.tenants: List[str] = []
        # Replay-time stamps land at random row indices as events fire, so
        # these are numpy from the start. Zero-initialized: a zero-output
        # request's first-token stamp keeps the RequestMetrics default of
        # 0.0, like the scalar modes.
        self.out = _np.zeros(self._cap, dtype=_np.int64)
        self.admitted = _np.zeros(self._cap, dtype=_np.float64)
        self.first = _np.zeros(self._cap, dtype=_np.float64)
        self.finished = _np.zeros(self._cap, dtype=_np.float64)
        # Preemption/chunking counters land at existing rows when a
        # request leaves and re-enters the running set, so they are numpy
        # from the start like the other replay-time stamps.
        self.npre = _np.zeros(self._cap, dtype=_np.int64)
        self.tok_rec = _np.zeros(self._cap, dtype=_np.int64)
        self.tok_swap = _np.zeros(self._cap, dtype=_np.int64)
        self.chunks = _np.zeros(self._cap, dtype=_np.int64)

    def add(self, req: Request, cached: int, prefill: int) -> int:
        i = self.n
        if i == self._cap:
            self._cap *= 2
            for name in (
                "out", "admitted", "first", "finished",
                "npre", "tok_rec", "tok_swap", "chunks",
            ):
                arr = getattr(self, name)
                grown = _np.zeros(self._cap, dtype=arr.dtype)
                grown[:i] = arr
                setattr(self, name, grown)
        self.req_id.append(req.request_id)
        self.prompt.append(req.prompt_len)
        self.cached.append(cached)
        self.prefill.append(prefill)
        self.arrival.append(req.arrival_s)
        self.tenants.append(req.tenant)
        self.n = i + 1
        return i

    def settle(self) -> Tuple[List[RequestMetrics], int, int, int, int]:
        """(metrics sorted by request id, prompt/cached/prefill/decode
        token sums)."""
        n = self.n
        req_id = _np.asarray(self.req_id, dtype=_np.int64)
        order = _np.argsort(req_id, kind="stable")
        tenants = self.tenants
        prompt = _np.asarray(self.prompt, dtype=_np.int64)
        cached = _np.asarray(self.cached, dtype=_np.int64)
        prefill = _np.asarray(self.prefill, dtype=_np.int64)
        arrival = _np.asarray(self.arrival, dtype=_np.float64)
        metrics = [
            RequestMetrics(
                request_id=rid,
                prompt_tokens=pt,
                cached_tokens=ct,
                prefill_tokens=ft,
                output_tokens=ot,
                admitted_at_s=ad,
                first_token_at_s=fi,
                finished_at_s=fin,
                arrival_s=ar,
                tenant=tenants[i],
                n_preemptions=pr,
                preempted_tokens_recomputed=tr,
                preempted_tokens_swapped=ts,
                n_prefill_chunks=ch,
            )
            for rid, pt, ct, ft, ot, ad, fi, fin, ar, pr, tr, ts, ch, i in zip(
                req_id[order].tolist(),
                prompt[order].tolist(),
                cached[order].tolist(),
                prefill[order].tolist(),
                self.out[:n][order].tolist(),
                self.admitted[:n][order].tolist(),
                self.first[:n][order].tolist(),
                self.finished[:n][order].tolist(),
                arrival[order].tolist(),
                self.npre[:n][order].tolist(),
                self.tok_rec[:n][order].tolist(),
                self.tok_swap[:n][order].tolist(),
                self.chunks[:n][order].tolist(),
                order.tolist(),
            )
        ]
        return (
            metrics,
            int(prompt.sum()),
            int(cached.sum()),
            int(prefill.sum()),
            int(self.out[:n].sum()),
        )


def _resolve_trace(trace: str) -> bool:
    if trace == "auto":
        return serving_trace_enabled()
    if trace not in ("on", "off"):
        raise ServingError(f"unknown trace mode {trace!r}")
    return trace == "on"


def _resolve_accounting(accounting: str) -> str:
    if accounting == "auto":
        return "paged" if paged_accounting_enabled() else "tokens"
    if accounting not in ("paged", "tokens"):
        raise ServingError(f"unknown kv accounting {accounting!r}")
    return accounting


def _resolve_scheduler(name: str) -> str:
    if name == "auto":
        name = "fcfs"
    if name not in SCHEDULER_POLICIES:
        raise ServingError(
            f"unknown scheduler policy {name!r}; choose from {SCHEDULER_POLICIES}"
        )
    # The offline oracle: every engine schedules FCFS, regardless of config.
    if not serving_online_enabled():
        return "fcfs"
    # The continuous-batching oracle: the deadline policy belongs to that
    # layer, so disabling it falls back to FCFS like the offline gate.
    if name == "deadline" and not serving_preempt_enabled():
        return "fcfs"
    return name


class SimulatedLLMEngine:
    """Discrete-event engine; see module docstring."""

    def __init__(
        self,
        model: ModelSpec = LLAMA3_8B,
        cluster: Cluster = CLUSTER_1XL4,
        config: Optional[EngineConfig] = None,
    ):
        self.model = model
        self.cluster = cluster
        self.config = config or EngineConfig()
        self.mode = _resolve_mode(self.config.mode)
        self.cost = CostModel(model=model, cluster=cluster)
        self.capacity_tokens = (
            self.config.kv_capacity_tokens
            if self.config.kv_capacity_tokens is not None
            else self.cost.kv_capacity_tokens
        )
        if self.capacity_tokens <= 0:
            raise ServingError(f"no KV memory left for {model.name} on this cluster")
        self.kv_accounting = _resolve_accounting(self.config.kv_accounting)
        self.block_tokens = self.config.block_tokens
        if self.block_tokens <= 0:
            raise ServingError("block_tokens must be positive")
        # Paged admission: a BlockManager owns the physical pool, the radix
        # cache attaches per-node allocations to it. Capacity is floored to
        # whole blocks, exactly as a real paged allocator would.
        self.blocks: Optional[BlockManager] = (
            BlockManager(
                self.capacity_tokens,
                self.block_tokens,
                vector=self.mode == "vector",
            )
            if self.kv_accounting == "paged"
            else None
        )
        # The oracle mode keeps the scan-based node cache so
        # REPRO_SERVING_FASTPATH=0 reproduces the original implementation
        # end to end; other modes resolve the backend themselves (flat
        # array-backed when numpy is present and REPRO_SERVING_RADIX=1,
        # node tree + lazy heap otherwise).
        self.cache = RadixPrefixCache(
            eviction="scan" if self.mode == "stepwise" else "auto",
            block_manager=self.blocks,
        )
        self._use_pins = self.mode != "stepwise"
        #: Live only inside a vector-mode run(); _admit/_finish stamp into
        #: it instead of per-request RequestMetrics objects when set.
        self._vstate: Optional[_VectorState] = None
        #: Arrived-but-unadmitted requests live in the scheduling policy;
        #: not-yet-arrived requests wait in a (arrival_s, seq) heap and are
        #: released into the policy as the clock passes their stamp.
        self.scheduler_name = _resolve_scheduler(self.config.scheduler)
        sched_kwargs = {}
        if (
            self.scheduler_name == "deadline"
            and self.config.scheduler_deadline_s is not None
        ):
            sched_kwargs["deadline_s"] = self.config.scheduler_deadline_s
        self.scheduler: SchedulerPolicy = make_policy(
            self.scheduler_name, **sched_kwargs
        )
        #: Lifecycle trace recorder (:mod:`repro.llm.tracing`), or None
        #: when tracing is off — every hook site gates on that one
        #: attribute test, so the disabled path costs nothing.
        self.tracer: Optional[TraceRecorder] = (
            TraceRecorder(self.cost) if _resolve_trace(self.config.trace) else None
        )
        self.scheduler.bind_tracer(self.tracer)
        self._peak_waiting = 0
        # Continuous-batching layer: REPRO_SERVING_PREEMPT=0 forces the
        # one-shot admit-and-forget shape (no preemption, monolithic
        # prefill) regardless of config — the selectable oracle.
        preempt_layer = serving_preempt_enabled()
        self.preemption = self.config.preemption if preempt_layer else "off"
        self.chunk_tokens = (
            self.config.prefill_chunk_tokens if preempt_layer else None
        )
        self._quota_on = bool(
            self.blocks is not None and self.config.tenant_kv_quota_blocks
        )
        if self._quota_on:
            for tenant, quota in self.config.tenant_kv_quota_blocks.items():
                self.blocks.set_tenant_quota(tenant, quota)
        #: Decoding members in admission order — the preemption-victim
        #: candidate list (identical across replay modes by construction).
        self._decode_order: List[_Running] = []
        #: Members mid-chunked-prefill: hold their admission charge but do
        #: not decode until their last chunk settles.
        self._prefilling: List[_Running] = []
        #: Preempted members awaiting re-admission, by request id.
        self._parked: dict = {}
        #: Members admitted at the current admission point; they enter the
        #: victim list only at the *next* one, once every replay mode has
        #: actually inserted them into its decoding batch.
        self._pending_decode: List[_Running] = []
        #: Mode-specific callback removing a victim from the run loop's
        #: incremental state (set by each run loop for its duration).
        self._preempt_detach = None
        self._future: List[Tuple[float, int, Request]] = []
        self._arrival_seq = 0
        self._clock = 0.0
        self._private_tokens = 0
        #: Decode blocks promised at admission but not yet drawn from the
        #: pool (paged accounting): the tail allocation grows block-by-block
        #: as decode proceeds, and this reservation guarantees the growth
        #: can never fail mid-decode.
        self._reserved_blocks = 0
        self._peak_blocks = 0
        self._frag_at_peak = 0
        # Once the queue head fails admission on memory, nothing but a
        # completion can change the outcome (the failed attempt already
        # evicted everything evictable), so further attempts are skipped
        # until one happens — both modes therefore probe the cache with an
        # identical call sequence.
        self._admission_blocked = False

    # ------------------------------------------------------------------ API
    @property
    def clock(self) -> float:
        """Current simulation time (persists across :meth:`run` calls —
        the engine models a long-lived server)."""
        return self._clock

    def submit(self, request: Request) -> None:
        if self.tracer is not None:
            self.tracer.queued(request)
        if request.arrival_s > self._clock:
            heappush(
                self._future, (request.arrival_s, self._arrival_seq, request)
            )
            self._arrival_seq += 1
        else:
            # Already arrived (t=0 offline batches land here): straight
            # into the scheduling policy, in submission order.
            self.scheduler.submit(request)

    def submit_all(self, requests: Sequence[Request]) -> None:
        for r in requests:
            self.submit(r)

    def flush_waiting(self) -> int:
        """Drop every queued-but-unadmitted request (arrived or future) and
        unblock admission; returns how many were dropped. Used to clean up
        after a failed run (e.g. a :class:`CapacityError` on an infeasible
        request) so the engine — and its warm cache — stay usable for the
        next job."""
        drained = self.scheduler.drain()
        n = len(drained) + len(self._future)
        if self.tracer is not None:
            for req in drained:
                self.tracer.dropped(req.request_id)
            for _, _, req in self._future:
                self.tracer.dropped(req.request_id)
        self._future.clear()
        self._admission_blocked = False
        return n

    def _release_arrivals(self) -> int:
        """Move requests whose arrival time has passed into the policy."""
        fut = self._future
        n = 0
        while fut and fut[0][0] <= self._clock:
            _, _, req = heappop(fut)
            self.scheduler.submit(req)
            n += 1
        if n:
            # A fresh candidate can change a blocked admission's outcome
            # (another policy choice, or simply a retry with eviction).
            self._admission_blocked = False
        return n

    def run(self) -> EngineResult:
        """Drain the queue; returns aggregate metrics.

        The engine may be reused across calls — the radix cache persists,
        modelling a long-lived server (multi-invocation queries rely on
        this).
        """
        self._admission_blocked = False
        # Peaks are per-run (like the token peak), even though the cache —
        # and its block pool — persist across runs.
        self._peak_blocks = 0
        self._frag_at_peak = 0
        self._peak_waiting = 0
        tracer = self.tracer
        mark = tracer.mark() if tracer is not None else None
        if self.mode == "vector":
            result = self._run_event_vector()
        elif self.mode == "event":
            result = self._run_event()
        else:
            result = self._run_stepwise()
        if tracer is not None:
            result.trace = tracer.collect(
                mark,
                meta={
                    "scheduler": self.scheduler_name,
                    "preemption": self.preemption,
                    "mode": self.mode,
                    "kv_accounting": self.kv_accounting,
                },
            )
        return result

    # ----------------------------------------------------- stepwise oracle
    def _run_stepwise(self) -> EngineResult:
        running: List[_Running] = []
        done: List[RequestMetrics] = []
        peak = 0
        decode_steps = 0
        max_batch_seen = 0
        # Preempting a victim in this mode just removes it from the running
        # list (its decode progress is already materialized per token).
        # Identity-based removal: the closure reads the loop's current
        # ``running`` binding, which _admit also holds.
        def _detach(m: _Running) -> None:
            for i, x in enumerate(running):
                if x is m:
                    del running[i]
                    return
            raise ServingError("preempted a member absent from the batch")

        self._preempt_detach = _detach

        while (
            len(self.scheduler) or self._future or running or self._prefilling
        ):
            self._admit(running)
            if not running:
                if self._prefilling:
                    # Chunked prefills advance (and move the clock) inside
                    # _admit; keep probing until a member becomes ready.
                    continue
                if len(self.scheduler):
                    raise ServingError("admission stalled with empty batch")
                if self._future:
                    # Idle engine: jump the clock to the next arrival.
                    arrival = self._future[0][0]
                    self._clock = max(self._clock, arrival)
                    if self.tracer is not None:
                        self.tracer.idle(arrival)
                    continue
                break
            max_batch_seen = max(max_batch_seen, len(running))
            peak = max(peak, self._sample_usage())

            # Retire zero-output requests without a decode step.
            still: List[_Running] = []
            for r in running:
                if r.request.output_tokens == 0:
                    self._finish(r, done)
                else:
                    still.append(r)
            running = still
            if not running:
                continue

            if self.tracer is not None:
                # One canonical-clock advance per step; the recorder
                # merges consecutive steps back into whole runs so its
                # clock matches the event modes bit for bit.
                self.tracer.decode(
                    sum(r.context_len for r in running), len(running), 1
                )
            dt = self.cost.decode_step_time([r.context_len for r in running])
            self._clock += dt
            decode_steps += 1
            still = []
            for r in running:
                r.decoded += 1
                if r.tail is not None:
                    # Paged accounting: the decode tail grows one token at a
                    # time, drawing a fresh block only at block boundaries
                    # (covered by the admission-time reservation).
                    self._grow_tail(r, 1)
                if r.decoded == 1:
                    r.metrics.first_token_at_s = self._clock
                if r.decoded >= r.request.output_tokens:
                    self._finish(r, done)
                else:
                    still.append(r)
            running = still

        self._preempt_detach = None
        return self._result(done, decode_steps, peak, max_batch_seen)

    # --------------------------------------------------- event-driven mode
    def _run_event(self) -> EngineResult:
        """O(events) replay: the batch is fixed between admission and
        completion events, so each event advances the clock over a whole
        run of decode steps with the closed-form sum. All per-batch state
        (size, context-length sum, next completion) is maintained
        incrementally — no per-event scans of the running set."""
        done: List[RequestMetrics] = []
        peak = 0
        decode_steps = 0
        max_batch_seen = 0

        # (completion_step, admission_order, member, admit_gen): a request
        # (re-)admitted at global step S with n tokens left completes at
        # step S + n. Preemption bumps the member's admit_gen, so an entry
        # whose gen no longer matches is dead and is purged lazily.
        completions: List[Tuple[int, int, _Running, int]] = []
        order = 0
        batch = 0  # running sequences
        context_sum = 0  # sum of their current context lengths
        step = 0  # global decode-step counter
        fresh: List[_Running] = []  # admitted, awaiting their first token

        def _detach(m: _Running) -> None:
            # Settle a preemption victim out of the incremental batch
            # state: its decode progress is the steps elapsed since it
            # (re-)joined the batch.
            nonlocal batch, context_sum
            m.decoded = step - m.admit_step
            batch -= 1
            context_sum -= m.context_len

        self._preempt_detach = _detach
        preempt_on = self.preemption != "off"
        chunking = self.chunk_tokens is not None

        while (
            len(self.scheduler) or self._future or batch or self._prefilling
        ):
            wave: List[_Running] = []
            self._admit(wave, n_active=batch)
            if batch == 0 and not wave:
                if self._prefilling:
                    continue
                if len(self.scheduler):
                    raise ServingError("admission stalled with empty batch")
                if self._future:
                    # Idle engine: jump the clock to the next arrival.
                    arrival = self._future[0][0]
                    self._clock = max(self._clock, arrival)
                    if self.tracer is not None:
                        self.tracer.idle(arrival)
                    continue
                break
            max_batch_seen = max(max_batch_seen, batch + len(wave))
            peak = max(peak, self._sample_usage())

            retired = False
            for m in wave:
                if m.request.output_tokens == 0:
                    # Retired without a decode step, at the post-prefill clock.
                    self._finish(m, done)
                    retired = True
                else:
                    batch += 1
                    context_sum += m.context_len
                    m.admit_step = step - m.decoded
                    heappush(
                        completions,
                        (
                            m.admit_step + m.request.output_tokens,
                            order,
                            m,
                            m.admit_gen,
                        ),
                    )
                    order += 1
                    if m.decoded == 0:
                        fresh.append(m)
            if batch == 0:
                continue

            # Next event: the earliest completion. A zero-output retirement
            # just freed capacity, and the stepwise loop re-attempts
            # admission after exactly one decode step — mirror that cadence
            # so both modes issue identical cache probes.
            if preempt_on:
                while (
                    completions
                    and completions[0][2].admit_gen != completions[0][3]
                ):
                    heappop(completions)  # preempted before completing
            steps = completions[0][0] - step
            if chunking and steps > 1 and self._prefilling:
                # Chunked prefills advance once per step boundary in the
                # stepwise loop; mirror that cadence exactly.
                steps = 1
            if preempt_on and steps > 1 and not self._admission_blocked:
                if self._pending_decode and len(self.scheduler):
                    # The last wave's members join the preemption-victim
                    # list at the next admission probe, where a waiting
                    # candidate may evict one of them; the stepwise loop
                    # probes at the very next step boundary, so cut the
                    # run there.
                    steps = 1
                elif len(self.scheduler):
                    # A time-driven priority shift (a waiting deadline
                    # expiring) can change which candidate is head-of-line
                    # and thereby enable a preemption mid-run; cut at the
                    # step boundary where the stepwise loop would see it.
                    shift = self.scheduler.next_priority_shift(self._clock)
                    if shift is not None:
                        steps = self._cap_steps_at_arrival(
                            context_sum, batch, steps, shift
                        )
            if (
                retired
                and len(self.scheduler)
                and batch < self.config.max_batch_size
                and steps > 1
            ):
                steps = 1
            if (
                self._future
                and steps > 1
                and (batch < self.config.max_batch_size or preempt_on)
            ):
                # Arrival event: cut the decode run at the first step
                # boundary whose clock reaches the next arrival — the
                # boundary where the stepwise loop would see it and attempt
                # admission. With a full batch the arrival cannot be
                # admitted anyway — unless preemption is on, in which case
                # the arriving candidate may evict a victim right there.
                steps = self._cap_steps_at_arrival(
                    context_sum, batch, steps, self._future[0][0]
                )
            if self.tracer is not None:
                self.tracer.decode(context_sum, batch, steps)
            first_dt = self.cost.decode_run_time(context_sum, batch, 1)
            total_dt = (
                first_dt
                if steps == 1
                else self.cost.decode_run_time(context_sum, batch, steps)
            )
            start = self._clock
            self._clock = start + total_dt
            decode_steps += steps
            step += steps
            context_sum += batch * steps
            if fresh:
                first_at = start + first_dt
                for m in fresh:
                    m.metrics.first_token_at_s = first_at
                fresh.clear()
            while completions and (
                completions[0][2].admit_gen != completions[0][3]
                or completions[0][0] <= step
            ):
                _, _, m, gen = heappop(completions)
                if m.admit_gen != gen:
                    continue  # stale entry of a preempted member
                m.decoded = m.request.output_tokens
                batch -= 1
                context_sum -= m.context_len
                self._finish(m, done)

        self._preempt_detach = None
        return self._result(done, decode_steps, peak, max_batch_seen)

    # ------------------------------------------------- vectorized event mode
    def _run_event_vector(self) -> EngineResult:
        """The event loop of :meth:`_run_event` over numpy request state:
        identical control flow and — critically — the identical sequence
        of scalar float operations on the clock, so clocks (and therefore
        schedules, including online arrival cuts) are bit-identical to the
        scalar event mode. What changes is the per-request Python work:
        metric stamps land in :class:`_VectorState` rows (whole admission
        waves per assignment), prompt-path block references fork/release
        as one bundle per request, and ``RequestMetrics`` objects plus the
        aggregate token sums materialize in bulk at the end of the run."""
        vect = _VectorState(len(self.scheduler) + len(self._future))
        self._vstate = vect
        try:
            done: List[RequestMetrics] = []  # unused rows; settle() reports
            peak = 0
            decode_steps = 0
            max_batch_seen = 0

            completions: List[Tuple[int, int, _Running, int]] = []
            order = 0
            batch = 0
            context_sum = 0
            step = 0
            fresh: List[int] = []  # vector-state rows awaiting first token

            def _detach(m: _Running) -> None:
                nonlocal batch, context_sum
                m.decoded = step - m.admit_step
                batch -= 1
                context_sum -= m.context_len

            self._preempt_detach = _detach
            preempt_on = self.preemption != "off"
            chunking = self.chunk_tokens is not None

            while (
                len(self.scheduler)
                or self._future
                or batch
                or self._prefilling
            ):
                wave: List[_Running] = []
                self._admit(wave, n_active=batch)
                if batch == 0 and not wave:
                    if self._prefilling:
                        continue
                    if len(self.scheduler):
                        raise ServingError("admission stalled with empty batch")
                    if self._future:
                        arrival = self._future[0][0]
                        self._clock = max(self._clock, arrival)
                        if self.tracer is not None:
                            self.tracer.idle(arrival)
                        continue
                    break
                max_batch_seen = max(max_batch_seen, batch + len(wave))
                peak = max(peak, self._sample_usage())

                retired = False
                for m in wave:
                    if m.request.output_tokens == 0:
                        self._finish(m, done)
                        retired = True
                    else:
                        batch += 1
                        context_sum += m.context_len
                        m.admit_step = step - m.decoded
                        heappush(
                            completions,
                            (
                                m.admit_step + m.request.output_tokens,
                                order,
                                m,
                                m.admit_gen,
                            ),
                        )
                        order += 1
                        if m.decoded == 0:
                            fresh.append(m.idx)
                if batch == 0:
                    continue

                if preempt_on:
                    while (
                        completions
                        and completions[0][2].admit_gen != completions[0][3]
                    ):
                        heappop(completions)  # preempted before completing
                steps = completions[0][0] - step
                if chunking and steps > 1 and self._prefilling:
                    steps = 1
                if preempt_on and steps > 1 and not self._admission_blocked:
                    if self._pending_decode and len(self.scheduler):
                        steps = 1
                    elif len(self.scheduler):
                        shift = self.scheduler.next_priority_shift(
                            self._clock
                        )
                        if shift is not None:
                            steps = self._cap_steps_at_arrival(
                                context_sum, batch, steps, shift
                            )
                if (
                    retired
                    and len(self.scheduler)
                    and batch < self.config.max_batch_size
                    and steps > 1
                ):
                    steps = 1
                if (
                    self._future
                    and steps > 1
                    and (batch < self.config.max_batch_size or preempt_on)
                ):
                    steps = self._cap_steps_at_arrival(
                        context_sum, batch, steps, self._future[0][0]
                    )
                if self.tracer is not None:
                    self.tracer.decode(context_sum, batch, steps)
                first_dt = self.cost.decode_run_time(context_sum, batch, 1)
                total_dt = (
                    first_dt
                    if steps == 1
                    else self.cost.decode_run_time(context_sum, batch, steps)
                )
                start = self._clock
                self._clock = start + total_dt
                decode_steps += steps
                step += steps
                context_sum += batch * steps
                if fresh:
                    if len(fresh) == 1:  # steady state: one admission/event
                        vect.first[fresh[0]] = start + first_dt
                    else:
                        vect.first[fresh] = start + first_dt
                    fresh.clear()
                while completions and (
                    completions[0][2].admit_gen != completions[0][3]
                    or completions[0][0] <= step
                ):
                    _, _, m, gen = heappop(completions)
                    if m.admit_gen != gen:
                        continue  # stale entry of a preempted member
                    m.decoded = m.request.output_tokens
                    batch -= 1
                    context_sum -= m.context_len
                    self._finish(m, done)

            metrics, prompt, cached, prefill, decode = vect.settle()
            n = vect.n
            return EngineResult(
                total_seconds=self._clock,
                request_metrics=metrics,
                prompt_tokens=prompt,
                cached_tokens=cached,
                prefill_tokens=prefill,
                decode_tokens=decode,
                decode_steps=decode_steps,
                peak_kv_tokens=peak,
                max_batch_seen=max_batch_seen,
                kv_accounting=self.kv_accounting,
                block_tokens=self.block_tokens if self.blocks is not None else 0,
                peak_kv_blocks=self._peak_blocks,
                fragmentation_tokens=self._frag_at_peak,
                scheduler=self.scheduler_name,
                preemption=self.preemption,
                n_preemptions=int(vect.npre[:n].sum()),
                preempted_tokens_recomputed=int(vect.tok_rec[:n].sum()),
                preempted_tokens_swapped=int(vect.tok_swap[:n].sum()),
                n_prefill_chunks=int(vect.chunks[:n].sum()),
                peak_waiting=self._peak_waiting,
            )
        finally:
            self._vstate = None
            self._preempt_detach = None

    # ------------------------------------------------------------ internals
    def _result(
        self,
        done: List[RequestMetrics],
        decode_steps: int,
        peak: int,
        max_batch_seen: int,
    ) -> EngineResult:
        done.sort(key=lambda m: m.request_id)
        return EngineResult(
            total_seconds=self._clock,
            request_metrics=done,
            prompt_tokens=sum(m.prompt_tokens for m in done),
            cached_tokens=sum(m.cached_tokens for m in done),
            prefill_tokens=sum(m.prefill_tokens for m in done),
            decode_tokens=sum(m.output_tokens for m in done),
            decode_steps=decode_steps,
            peak_kv_tokens=peak,
            max_batch_seen=max_batch_seen,
            kv_accounting=self.kv_accounting,
            block_tokens=self.block_tokens if self.blocks is not None else 0,
            peak_kv_blocks=self._peak_blocks,
            fragmentation_tokens=self._frag_at_peak,
            scheduler=self.scheduler_name,
            preemption=self.preemption,
            n_preemptions=sum(m.n_preemptions for m in done),
            preempted_tokens_recomputed=sum(
                m.preempted_tokens_recomputed for m in done
            ),
            preempted_tokens_swapped=sum(
                m.preempted_tokens_swapped for m in done
            ),
            n_prefill_chunks=sum(m.n_prefill_chunks for m in done),
            peak_waiting=self._peak_waiting,
        )

    def _cap_steps_at_arrival(
        self, context_sum: int, batch: int, steps: int, arrival_s: float
    ) -> int:
        """Smallest run length (in decode steps, at least 1) whose
        closed-form clock advance reaches ``arrival_s``, capped at
        ``steps`` when the run's completion event comes first.
        ``decode_run_time`` is strictly increasing in the step count, so a
        binary search finds the boundary in O(log steps) closed-form
        evaluations."""
        start = self._clock
        cost = self.cost
        if start + cost.decode_run_time(context_sum, batch, steps) < arrival_s:
            return steps
        lo, hi = 1, steps
        while lo < hi:
            mid = (lo + hi) // 2
            if start + cost.decode_run_time(context_sum, batch, mid) >= arrival_s:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def _used_tokens(self) -> int:
        return self.cache.total_tokens + self._private_tokens

    def _sample_usage(self) -> int:
        """Token-sum KV usage right now; as a side effect, under paged
        accounting, folds the current block charge (allocated + reserved)
        into the per-run peak. Sampled at admission points in both replay
        modes; the charge is invariant to decode progress (a tail's drawn
        blocks plus its outstanding reservation is a constant), so both
        modes record identical peaks."""
        used = self.cache.total_tokens + self._private_tokens
        bm = self.blocks
        if bm is not None:
            charged = bm.used_blocks + self._reserved_blocks
            if charged > self._peak_blocks:
                self._peak_blocks = charged
                self._frag_at_peak = charged * self.block_tokens - used
        return used

    def _gauge_sample(self, running_now: int) -> tuple:
        """Gauge fields for one admission-wave trace sample, as the
        key-sorted pairs tuple :class:`~repro.llm.tracing.TraceGauge`
        stores (built sorted so the recorder skips the per-wave dict and
        sort). Every value is mode-invariant at admission boundaries: the
        block figures use the *charged* total (allocated + reserved —
        invariant to decode progress, unlike raw ``used_blocks``);
        ``radix_store_bytes`` is the one backend-dependent field (the
        stepwise oracle forces the scan/node backend) and is excluded
        from the cross-mode equality suite accordingly."""
        cache = self.cache
        bm = self.blocks
        head = ()
        if bm is not None:
            charged = bm.used_blocks + self._reserved_blocks
            head = (
                ("kv_blocks_charged", charged),
                ("kv_blocks_free", bm.n_blocks - charged),
                ("kv_parked_tokens", bm.parked_tokens),
            )
        body = (
            ("kv_used_tokens", cache.total_tokens + self._private_tokens),
            ("prefilling", len(self._prefilling)),
            ("radix_nodes", cache.n_nodes),
            ("radix_store_bytes", cache.token_store_bytes),
            ("running", running_now),
        )
        if self._quota_on:
            body += (
                (
                    "tenant_kv_blocks",
                    tuple(
                        (t, bm.tenant_used(t))
                        for t in sorted(self.config.tenant_kv_quota_blocks)
                    ),
                ),
            )
        return head + body + (("waiting", len(self.scheduler)),)

    def _grow_tail(self, r: _Running, extra_tokens: int) -> None:
        """Grow a request's private tail allocation, consuming its
        admission-time block reservation as boundaries are crossed."""
        tail = r.tail
        before = len(tail.block_ids)
        self.blocks.grow(tail, extra_tokens)
        self._reserved_blocks -= len(tail.block_ids) - before
        if self._reserved_blocks < 0:
            raise ServingError("decode block reservation went negative")

    def _admit(self, running: List[_Running], n_active: Optional[int] = None) -> None:
        """Admit the policy's picks while memory and batch slots allow,
        appending members to ``running``. The stepwise loop passes its full
        running list; the event loops pass an empty wave list plus
        ``n_active`` (their incremental batch count).

        The policy only chooses *which* waiting request is next — if that
        request does not fit, admission blocks (no skip-ahead), exactly the
        head-of-line semantics the offline FIFO had. With preemption
        enabled there is one escape: the policy may name a running victim
        (:meth:`SchedulerPolicy.preempt_victim`) to evict from the batch —
        both slot pressure and memory pressure consult it. Chunked prefill
        is the other continuous-batching hook here: members mid-prefill
        advance one chunk per admission point and join the batch when
        their last chunk settles."""
        self._release_arrivals()
        if len(self.scheduler) > self._peak_waiting:
            # Waiting depth only changes at admission points (arrivals
            # released, pops, preemption resubmits), and the depth between
            # common probe boundaries is monotone, so the per-run max is
            # identical across replay modes despite the stepwise loop
            # probing more often.
            self._peak_waiting = len(self.scheduler)
        preempt_on = self.preemption != "off"
        # Members admitted at the previous admission point are decoding by
        # now in every replay mode — only now do they become viable
        # preemption victims (the run loops insert them into their batch
        # state after _admit returns). With preemption off no victim is
        # ever picked, so the list is not maintained at all.
        if self._pending_decode:
            for m in self._pending_decode:
                m.in_decode = True
                self._decode_order.append(m)
            self._pending_decode.clear()
        ready = self._advance_chunks() if self.chunk_tokens is not None else None
        if ready:
            running.extend(ready)
            if preempt_on:
                self._pending_decode.extend(ready)
        if self._admission_blocked:
            return
        base = len(running) if n_active is None else n_active + len(ready or ())
        cache_on = self.config.enable_prefix_cache
        cache = self.cache
        bm = self.blocks
        sched = self.scheduler
        chunk_cap = self.chunk_tokens
        wave: List[Tuple[int, int]] = []  # (new_tokens, cached_prefix) per admission
        wave_members: List[_Running] = []  # new batch entrants (fresh + re-admitted)
        stamped: List[_Running] = []  # fresh entrants: admitted_at_s post-wave
        n_admitted = 0  # admissions charged per-request overhead (incl. chunk starts)
        swap_in_tokens = 0
        while True:
            if (
                base + len(wave_members) + len(self._prefilling)
                >= self.config.max_batch_size
            ):
                if not preempt_on:
                    break
                req = sched.select(cache if cache_on else None, now=self._clock)
                if req is None:
                    break
                victim = self._pick_victim(req)
                if victim is None:
                    break
                self._preempt_member(victim)
                base -= 1
                # Re-select below: select is deterministic and
                # mutation-free, so the same candidate comes back.
                continue
            req = sched.select(cache if cache_on else None, now=self._clock)
            if req is None:
                break
            prompt_len = req.prompt_len
            parked = self._parked.get(req.request_id) if preempt_on else None
            hit = (
                cache.match(req.prompt_tokens, req.prompt_bytes)
                if cache_on
                else 0
            )
            new_prompt = prompt_len - hit
            # Shared tokens enter the radix tree; decode KV (and, without a
            # cache, the whole prompt) is reserved privately up front.
            private_growth = req.output_tokens + (0 if cache_on else prompt_len)
            # Chunked prefill applies to first admissions only: a
            # re-admitted request's recompute tail re-prefills in one pass
            # (its prompt path is typically still cached anyway).
            chunks: Optional[List[int]] = None
            if parked is None and chunk_cap is not None:
                pre_tokens = new_prompt if cache_on else prompt_len
                if pre_tokens > chunk_cap:
                    chunks = [chunk_cap] * (pre_tokens // chunk_cap)
                    if pre_tokens % chunk_cap:
                        chunks.append(pre_tokens % chunk_cap)
            if bm is not None:
                # Paged admission charges whole blocks: the matched prefix
                # is fork-shared (zero new blocks), the suffix rounds up to
                # its own blocks — per chunk when chunked, since every
                # chunk edge is its own allocation — and the private tail
                # (decode KV, plus the prompt when the cache is off)
                # reserves its blocks now so block-by-block growth can
                # never fail.
                if cache_on:
                    if chunks is not None:
                        pre_blocks = sum(bm.blocks_needed(c) for c in chunks)
                    else:
                        pre_blocks = bm.blocks_needed(new_prompt)
                    need = pre_blocks + bm.blocks_needed(req.output_tokens)
                else:
                    pre_blocks = 0
                    need = bm.blocks_needed(prompt_len + req.output_tokens)
                free = bm.free_blocks - self._reserved_blocks
                unit = "blocks"
            else:
                pre_blocks = 0
                need = (new_prompt if cache_on else 0) + private_growth
                free = self.capacity_tokens - self._used_tokens()
                unit = "tokens"
            if self._quota_on:
                quota = bm.tenant_quota(req.tenant)
                if quota is not None and bm.tenant_used(req.tenant) + need > quota:
                    # A quota-full tenant blocks head-of-line like a full
                    # pool; preempting other tenants cannot help, so the
                    # victim hook is not consulted. A request that exceeds
                    # its tenant's whole quota can never run — surface that
                    # once the engine would otherwise sit idle on it.
                    if (
                        need > quota
                        and bm.tenant_used(req.tenant) == 0
                        and base == 0
                        and not wave_members
                        and not self._prefilling
                    ):
                        raise CapacityError(
                            f"request {req.request_id} needs {need} KV "
                            f"blocks; tenant {req.tenant!r} is capped at "
                            f"{quota} blocks"
                        )
                    if self.tracer is not None:
                        self.tracer.instant(
                            "quota-reject",
                            request_id=req.request_id,
                            tenant=req.tenant,
                            need_blocks=need,
                            quota_blocks=quota,
                        )
                    self._admission_blocked = True
                    break
            while need > free:
                if cache_on:
                    freed = cache.evict(
                        need - free,
                        protected=self._protected_paths(running, req, hit),
                        unit=unit,
                    )
                    free += freed
                    if freed and self.tracer is not None:
                        self.tracer.instant("evict", freed=freed, unit=unit)
                    if need <= free:
                        break
                if preempt_on:
                    victim = self._pick_victim(req)
                    if victim is not None:
                        self._preempt_member(victim)
                        base -= 1
                        # The victim's unpinned path may now be evictable
                        # and its tail blocks are back in the pool;
                        # re-probe with a protected list rebuilt from the
                        # shrunken running set.
                        free = (
                            bm.free_blocks - self._reserved_blocks
                            if bm is not None
                            else self.capacity_tokens - self._used_tokens()
                        )
                        continue
                break
            if need > free:
                if base == 0 and not wave_members and not self._prefilling:
                    if bm is not None:
                        raise CapacityError(
                            f"request {req.request_id} needs {need} KV blocks; "
                            f"pool is {bm.n_blocks} blocks of "
                            f"{bm.block_tokens} tokens "
                            f"({self.capacity_tokens} token capacity, "
                            f"{self._reserved_blocks} blocks reserved)"
                        )
                    raise CapacityError(
                        f"request {req.request_id} needs {need} KV tokens; "
                        f"capacity is {self.capacity_tokens}"
                    )
                self._admission_blocked = True
                break  # wait for a completion (or arrival) to change things
            sched.pop(req)
            quota_need = 0
            if self._quota_on:
                bm.charge_tenant(req.tenant, need)
                quota_need = need

            if parked is not None:
                # Re-admission of a preempted member: restore its decode
                # tail (swap it back in, or re-prefill it) and rejoin the
                # batch with decode progress intact.
                del self._parked[req.request_id]
                swapped_in = self._readmit(parked, hit, new_prompt, wave)
                swap_in_tokens += swapped_in
                parked.quota_charge = quota_need
                wave_members.append(parked)
                running.append(parked)
                self._pending_decode.append(parked)
                n_admitted += 1
                if self.tracer is not None:
                    self.tracer.popped(
                        req.request_id,
                        "readmit",
                        (("readmit", 1), ("swap_in_tokens", swapped_in)),
                    )
                continue
            if chunks is not None:
                member = self._start_chunked(
                    req, hit, new_prompt, chunks, pre_blocks,
                    private_growth, wave,
                )
                member.quota_charge = quota_need
                n_admitted += 1
                if self.tracer is not None:
                    self.tracer.popped(
                        req.request_id, "chunk", (("n_chunks", len(chunks)),)
                    )
                continue

            pin = None
            if cache_on:
                cache.insert(req.prompt_tokens, req.prompt_bytes)
                if self._use_pins:
                    pin = cache.pin(req.prompt_tokens)
            vect = self._vstate
            forks = tail = None
            if bm is not None:
                if cache_on:
                    # The request holds its own block refs along the whole
                    # prompt path (matched prefix + fresh suffix), like a
                    # vLLM sequence forked from a cached prefix. The suffix
                    # blocks were just drawn by insert(); only the decode
                    # tail stays reserved.
                    if vect is not None:
                        # One bundle, one vectorized refcount pass, instead
                        # of a fork per radix node.
                        bundle = cache.fork_path_bundle(req.prompt_tokens)
                        forks = [bundle] if bundle is not None else None
                    else:
                        forks = cache.fork_path(req.prompt_tokens)
                    tail = bm.allocate(0)
                    self._reserved_blocks += bm.blocks_needed(req.output_tokens)
                else:
                    tail = bm.allocate(prompt_len)
                    self._reserved_blocks += need - len(tail.block_ids)
            self._private_tokens += private_growth

            if vect is not None:
                metrics = None
                idx = vect.add(req, hit, new_prompt)
            else:
                idx = -1
                metrics = RequestMetrics(
                    request_id=req.request_id,
                    prompt_tokens=prompt_len,
                    cached_tokens=hit,
                    prefill_tokens=new_prompt,
                    arrival_s=req.arrival_s,
                    tenant=req.tenant,
                )
            member = _Running(
                request=req,
                metrics=metrics,
                reserved_tokens=private_growth,
                idx=idx,
                pin=pin,
                forks=forks,
                tail=tail,
                hit=hit,
                quota_charge=quota_need,
            )
            wave.append((new_prompt, hit))
            wave_members.append(member)
            stamped.append(member)
            running.append(member)
            if preempt_on:
                self._pending_decode.append(member)
            n_admitted += 1
            if self.tracer is not None:
                self.tracer.popped(req.request_id, "fresh")

        if n_admitted:
            # One merged prefill pass for the whole admission wave: the
            # weight read amortizes across requests (continuous batching).
            # Per-request serving overhead is charged here too, and swap-in
            # traffic for re-admitted members rides the same wave.
            wave_dt = self.cost.prefill_wave_time(wave)
            self._clock += wave_dt
            overhead_dt = self.cost.per_request_overhead_s * n_admitted
            self._clock += overhead_dt
            swap_dt = 0.0
            if swap_in_tokens:
                swap_dt = self.cost.swap_time(swap_in_tokens)
                self._clock += swap_dt
            vect = self._vstate
            if stamped:
                if vect is not None:
                    if len(stamped) == 1:
                        vect.admitted[stamped[0].idx] = self._clock
                    else:
                        vect.admitted[[m.idx for m in stamped]] = self._clock
                else:
                    for member in stamped:
                        member.metrics.admitted_at_s = self._clock
            if self.tracer is not None:
                # The same charge deltas the engine just added, applied to
                # the canonical clock — each is computed from
                # mode-invariant integer wave entries, so they are bitwise
                # equal across replay modes.
                tracer = self.tracer
                tracer.advance(wave_dt)
                tracer.advance(overhead_dt)
                if swap_dt:
                    tracer.advance(swap_dt)
                tracer.wave_end(self._gauge_sample(base + len(wave_members)))

    def _protected_paths(
        self, running: List[_Running], req: Request, hit: int
    ) -> List[Sequence[int]]:
        """Eviction-protection list for an admission-time evict. Pin modes
        protect persistently via pin counts, so only the candidate's
        matched prefix needs transient cover; the scan-based oracle mode
        protects running prompts (and mid-chunk partial paths) explicitly.
        Rebuilt before every evict call — a preemption may have shrunk the
        running set since the last probe."""
        if self._use_pins:
            return [req.prompt_tokens[:hit]]
        protected: List[Sequence[int]] = [
            r.request.prompt_tokens for r in running
        ]
        for p in self._prefilling:
            protected.append(p.request.prompt_tokens[: p.hit + p.done_prefill])
        protected.append(req.prompt_tokens[:hit])
        return protected

    def _advance_chunks(self) -> List[_Running]:
        """Advance every mid-prefill member by one chunk; returns the
        members whose prefill just completed (ready to join the batch).
        Chunks across members merge into one prefill wave, amortizing the
        weight read exactly like an admission wave."""
        if not self._prefilling:
            return []
        wave: List[Tuple[int, int]] = []
        ready: List[_Running] = []
        still: List[_Running] = []
        traced: Optional[List[Tuple[int, bool]]] = (
            [] if self.tracer is not None else None
        )
        for m in self._prefilling:
            wave.append(self._chunk_step(m))
            (still if m.chunks_left else ready).append(m)
            if traced is not None:
                traced.append((m.request.request_id, not m.chunks_left))
        self._prefilling = still
        chunk_dt = self.cost.prefill_wave_time(wave)
        self._clock += chunk_dt
        if traced is not None:
            self.tracer.chunk_wave(chunk_dt, traced)
        bm = self.blocks
        cache_on = self.config.enable_prefix_cache
        vect = self._vstate
        for m in ready:
            req = m.request
            if bm is not None:
                if m.prefill_reserved:
                    # Per-chunk block rounding (or content another request
                    # shared mid-flight) over-reserved; return the rest.
                    self._reserved_blocks -= m.prefill_reserved
                    m.prefill_reserved = 0
                if cache_on:
                    if vect is not None:
                        bundle = self.cache.fork_path_bundle(req.prompt_tokens)
                        m.forks = [bundle] if bundle is not None else None
                    else:
                        m.forks = self.cache.fork_path(req.prompt_tokens)
            m.chunks_left = None
            # The post-prefill admission stamp, at the clock of the wave
            # that settled the last chunk.
            if vect is not None:
                vect.admitted[m.idx] = self._clock
            else:
                m.metrics.admitted_at_s = self._clock
        return ready

    def _chunk_step(self, m: _Running) -> Tuple[int, int]:
        """Prefill ``m``'s next chunk; returns its prefill-wave entry.
        Cache on: the chunk extends the radix path (drawing blocks out of
        the chunk reservation) and the pin rolls forward to cover it.
        Cache off: the private tail grows by the chunk."""
        c = m.chunks_left.pop(0)
        req = m.request
        cache_on = self.config.enable_prefix_cache
        bm = self.blocks
        start = m.hit + m.done_prefill if cache_on else m.done_prefill
        if cache_on:
            k = m.hit + m.done_prefill + c
            packed = (
                req.prompt_bytes[: 8 * k]
                if req.prompt_bytes is not None
                else None
            )
            if bm is not None:
                before = bm.free_blocks
                self.cache.insert(req.prompt_tokens[:k], packed)
                drawn = before - bm.free_blocks
                m.prefill_reserved -= drawn
                self._reserved_blocks -= drawn
                if m.prefill_reserved < 0 or self._reserved_blocks < 0:
                    raise ServingError(
                        "chunked prefill drew past its block reservation"
                    )
            else:
                self.cache.insert(req.prompt_tokens[:k], packed)
            if self._use_pins:
                pin = self.cache.pin(req.prompt_tokens[:k])
                if m.pin is not None:
                    self.cache.unpin(m.pin)
                m.pin = pin
        elif bm is not None:
            self._grow_tail(m, c)
        m.done_prefill += c
        return (c, start)

    def _start_chunked(
        self,
        req: Request,
        hit: int,
        new_prompt: int,
        chunks: List[int],
        pre_blocks: int,
        private_growth: int,
        wave: List[Tuple[int, int]],
    ) -> _Running:
        """Admit a long-prefill request in chunked mode: it occupies a
        batch slot and holds its full admission charge immediately, but
        only its first chunk prefills in this wave — the rest advance one
        chunk per admission point (:meth:`_advance_chunks`), and the
        member starts decoding once its last chunk settles. Mid-prefill
        members are not preemption victims (their decode tail is empty;
        evicting them would only churn the chunk reservation)."""
        bm = self.blocks
        cache_on = self.config.enable_prefix_cache
        vect = self._vstate
        tail = None
        if bm is not None:
            tail = bm.allocate(0)
            if cache_on:
                self._reserved_blocks += (
                    pre_blocks + bm.blocks_needed(req.output_tokens)
                )
            else:
                self._reserved_blocks += bm.blocks_needed(
                    req.prompt_len + req.output_tokens
                )
        self._private_tokens += private_growth
        if vect is not None:
            metrics = None
            idx = vect.add(req, hit, new_prompt)
            vect.chunks[idx] = len(chunks)
        else:
            idx = -1
            metrics = RequestMetrics(
                request_id=req.request_id,
                prompt_tokens=req.prompt_len,
                cached_tokens=hit,
                prefill_tokens=new_prompt,
                arrival_s=req.arrival_s,
                tenant=req.tenant,
                n_prefill_chunks=len(chunks),
            )
        member = _Running(
            request=req,
            metrics=metrics,
            reserved_tokens=private_growth,
            idx=idx,
            tail=tail,
            hit=hit,
            chunks_left=list(chunks),
            prefill_reserved=pre_blocks if (bm is not None and cache_on) else 0,
        )
        # The first chunk rides this admission wave; admitted_at_s is
        # stamped when the last chunk settles (the post-prefill
        # convention, unchanged).
        wave.append(self._chunk_step(member))
        self._prefilling.append(member)
        return member

    def _readmit(
        self,
        m: _Running,
        hit: int,
        new_prompt: int,
        wave: List[Tuple[int, int]],
    ) -> int:
        """Rebuild a parked member's engine-side state at re-admission and
        append its prefill-wave entry; returns the KV tokens swapped back
        in (0 in recompute mode). The caller has already charged admission
        (need/free/quota) with the same formulas as a fresh request."""
        req = m.request
        cache_on = self.config.enable_prefix_cache
        bm = self.blocks
        swap = self.preemption == "swap"
        d = m.decoded
        prompt_len = req.prompt_len
        m.hit = hit
        pin = None
        if cache_on:
            self.cache.insert(req.prompt_tokens, req.prompt_bytes)
            if self._use_pins:
                pin = self.cache.pin(req.prompt_tokens)
        m.pin = pin
        # Tail KV restored on-device: the decoded tokens, plus the whole
        # prompt when the cache is off (it was parked/dropped privately).
        tail_tokens = d + (0 if cache_on else prompt_len)
        if bm is not None:
            if cache_on:
                if m.metrics is None:
                    bundle = self.cache.fork_path_bundle(req.prompt_tokens)
                    m.forks = [bundle] if bundle is not None else None
                else:
                    m.forks = self.cache.fork_path(req.prompt_tokens)
            tail = bm.unpark(tail_tokens) if swap else bm.allocate(tail_tokens)
            final = req.output_tokens + (0 if cache_on else prompt_len)
            self._reserved_blocks += (
                bm.blocks_needed(final) - len(tail.block_ids)
            )
            m.tail = tail
        private_growth = req.output_tokens + (0 if cache_on else prompt_len)
        self._private_tokens += private_growth
        m.reserved_tokens = private_growth
        # Re-prefill work and the wave entry: recompute redoes the suffix
        # plus the dropped tail in one contiguous span (positions
        # hit..prompt_len+d); swap prefills only the suffix (nothing at
        # all cache-off) and pays PCIe time for the tail instead.
        if swap:
            entry = (new_prompt if cache_on else 0, hit)
            swapped_in = tail_tokens
        else:
            entry = (new_prompt + d, hit) if cache_on else (prompt_len + d, 0)
            swapped_in = 0
        vect = self._vstate
        if vect is not None:
            vect.cached[m.idx] += hit
            vect.prefill[m.idx] += entry[0]
        else:
            m.metrics.cached_tokens += hit
            m.metrics.prefill_tokens += entry[0]
        wave.append(entry)
        return swapped_in

    def _pick_victim(self, candidate: Request) -> Optional[_Running]:
        """Ask the policy for a preemption victim among decoding members."""
        if not self._decode_order:
            return None
        choice = self.scheduler.preempt_victim(
            candidate,
            [m.request for m in self._decode_order],
            now=self._clock,
        )
        if choice is None:
            return None
        for m in self._decode_order:
            if m.request is choice:
                return m
        raise ServingError(
            "preempt_victim returned a request that is not decoding"
        )

    def _preempt_member(self, m: _Running) -> None:
        """Evict a decoding member from the batch. Its decode-tail KV is
        either dropped for re-prefill (``recompute``) or parked in host
        memory (``swap``); either way the member keeps its metrics row and
        decode progress, re-enters the waiting queue, and is re-admitted
        like any other candidate (head-of-line, same need accounting)."""
        req = m.request
        self._preempt_detach(m)  # event modes also settle m.decoded here
        for i, x in enumerate(self._decode_order):
            if x is m:
                del self._decode_order[i]
                break
        else:
            raise ServingError("preempted a member that is not decoding")
        m.in_decode = False
        m.admit_gen += 1  # completion-heap entries for this stint are dead
        cache_on = self.config.enable_prefix_cache
        swap = self.preemption == "swap"
        d = m.decoded
        # KV actually evicted: the decode tail, plus the whole prompt when
        # the prefix cache is off (it is private then) — a cached prompt
        # path stays in the radix tree and is merely unpinned.
        target = d + (0 if cache_on else req.prompt_len)
        vect = self._vstate
        if vect is not None:
            vect.npre[m.idx] += 1
            if swap:
                vect.tok_swap[m.idx] += target
            else:
                vect.tok_rec[m.idx] += target
        else:
            m.metrics.n_preemptions += 1
            if swap:
                m.metrics.preempted_tokens_swapped += target
            else:
                m.metrics.preempted_tokens_recomputed += target
        self._private_tokens -= m.reserved_tokens
        m.reserved_tokens = 0
        if self._private_tokens < 0:
            raise ServingError("private KV accounting went negative")
        if m.pin is not None:
            self.cache.unpin(m.pin)
            m.pin = None
        bm = self.blocks
        if m.tail is not None:
            tail = m.tail
            final = req.output_tokens + (0 if cache_on else req.prompt_len)
            full_blocks = bm.blocks_needed(tail.start_offset + final)
            if m.metrics is None:
                # Vector mode: settle the deferred block-by-block growth
                # through the reservation counter (see _finish) instead of
                # drawing and releasing in the same breath.
                settled = bm.blocks_needed(tail.start_offset + target)
                draw = settled - len(tail.block_ids)
                if draw > 0:
                    self._reserved_blocks -= draw
                self._reserved_blocks -= full_blocks - settled
                if self._reserved_blocks < 0:
                    raise ServingError(
                        "decode block reservation went negative"
                    )
                bm.release(tail)
                if swap:
                    bm.parked_tokens += target
            else:
                if tail.n_tokens < target:
                    self._grow_tail(m, target - tail.n_tokens)
                self._reserved_blocks -= full_blocks - len(tail.block_ids)
                if self._reserved_blocks < 0:
                    raise ServingError(
                        "decode block reservation went negative"
                    )
                if swap:
                    bm.park(tail)
                else:
                    bm.release(tail)
            m.tail = None
        if m.forks:
            for fork in m.forks:
                bm.release(fork)
            m.forks = None
        if m.quota_charge and bm is not None:
            bm.uncharge_tenant(req.tenant, m.quota_charge)
            m.quota_charge = 0
        swap_dt = 0.0
        if swap:
            # Swap-out traffic is charged immediately, before any further
            # admission work at this clock.
            swap_dt = self.cost.swap_time(target)
            self._clock += swap_dt
        if self.tracer is not None:
            self.tracer.preempt(
                req.request_id, self.preemption, target, swap_dt
            )
        self._parked[req.request_id] = m
        self.scheduler.submit(req)

    def _finish(self, r: _Running, done: List[RequestMetrics]) -> None:
        if r.in_decode:
            for i, x in enumerate(self._decode_order):
                if x is r:
                    del self._decode_order[i]
                    break
            r.in_decode = False
        elif self._pending_decode:
            # Zero-output members retire before ever reaching the victim
            # list; drop their pending registration.
            for i, x in enumerate(self._pending_decode):
                if x is r:
                    del self._pending_decode[i]
                    break
        if r.quota_charge and self.blocks is not None:
            self.blocks.uncharge_tenant(r.request.tenant, r.quota_charge)
            r.quota_charge = 0
        self._private_tokens -= r.reserved_tokens
        if self._private_tokens < 0:
            raise ServingError("private KV accounting went negative")
        if r.pin is not None:
            self.cache.unpin(r.pin)
            r.pin = None
        if r.tail is not None:
            # Settle the tail before releasing it: the event loop defers
            # block-by-block growth to the completion event (between events
            # the charge is covered by the reservation, and the closed-form
            # jump never observes intermediate states); the stepwise loop
            # already grew it token-by-token, making this a no-op.
            target = r.decoded + (
                0 if self.config.enable_prefix_cache else r.request.prompt_len
            )
            if r.metrics is None:
                # Vector mode: growing the tail here would draw blocks and
                # free them in the same breath — nothing between the grow
                # and the release ever observes the pool, so the round trip
                # is visible only through the reservation counter. Settle
                # that counter directly and release the pre-drawn blocks.
                tail = r.tail
                draw = (
                    self.blocks.blocks_needed(tail.start_offset + target)
                    - len(tail.block_ids)
                )
                if draw > 0:
                    self._reserved_blocks -= draw
                    if self._reserved_blocks < 0:
                        raise ServingError(
                            "decode block reservation went negative"
                        )
                self.blocks.release(tail)
            else:
                if r.tail.n_tokens < target:
                    self._grow_tail(r, target - r.tail.n_tokens)
                self.blocks.release(r.tail)
            r.tail = None
        if r.forks:
            for fork in r.forks:
                self.blocks.release(fork)
            r.forks = None
        if r.metrics is not None:
            r.metrics.output_tokens = r.decoded
            r.metrics.finished_at_s = self._clock
            done.append(r.metrics)
        else:
            vect = self._vstate
            vect.out[r.idx] = r.decoded
            vect.finished[r.idx] = self._clock
        if self.tracer is not None:
            self.tracer.finished(r.request.request_id)
        self._admission_blocked = False
