"""Continuous-batching serving engine (simulated vLLM).

The engine replays a *schedule* of requests — order matters, which is the
whole point of the paper — through the mechanisms a real prefix-caching
server uses:

* requests are admitted FIFO while KV memory and the batch-size cap allow;
* on admission the radix cache is probed: the matched prefix skips prefill,
  only the suffix is prefilled (compute-bound time from the cost model);
* prompt KV lives in the shared radix cache (paths of running requests are
  protected, the rest is LRU-evicted under pressure); decode KV is private
  and reserved up front for admission control;
* every decode step produces one token per running sequence and costs
  bandwidth-bound time (weights amortized over the batch).

Disabling the prefix cache turns the same machinery into the paper's
*No Cache* baseline: every prompt prefills fully and its KV is private,
shrinking the feasible batch.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

from repro.errors import CapacityError, ServingError
from repro.llm.costmodel import CostModel
from repro.llm.hardware import CLUSTER_1XL4, Cluster
from repro.llm.models import LLAMA3_8B, ModelSpec
from repro.llm.radix import RadixPrefixCache
from repro.llm.request import Request, RequestMetrics


@dataclass
class EngineConfig:
    """Engine tunables.

    ``max_batch_size`` caps concurrent sequences (vLLM ``max_num_seqs``);
    ``kv_capacity_tokens`` overrides the cost model's derived capacity
    (useful for the memory-pressure ablation).
    """

    enable_prefix_cache: bool = True
    max_batch_size: int = 64
    kv_capacity_tokens: Optional[int] = None


@dataclass
class _Running:
    request: Request
    metrics: RequestMetrics
    reserved_tokens: int
    decoded: int = 0

    @property
    def context_len(self) -> int:
        return self.request.prompt_len + self.decoded


@dataclass
class EngineResult:
    """Aggregate outcome of one engine run."""

    total_seconds: float
    request_metrics: List[RequestMetrics]
    prompt_tokens: int
    cached_tokens: int
    prefill_tokens: int
    decode_tokens: int
    decode_steps: int
    peak_kv_tokens: int
    max_batch_seen: int

    @property
    def prefix_hit_rate(self) -> float:
        """Fraction of prompt tokens served from the KV cache (Table 2)."""
        if self.prompt_tokens == 0:
            return 0.0
        return self.cached_tokens / self.prompt_tokens


class SimulatedLLMEngine:
    """Discrete-event engine; see module docstring."""

    def __init__(
        self,
        model: ModelSpec = LLAMA3_8B,
        cluster: Cluster = CLUSTER_1XL4,
        config: Optional[EngineConfig] = None,
    ):
        self.model = model
        self.cluster = cluster
        self.config = config or EngineConfig()
        self.cost = CostModel(model=model, cluster=cluster)
        self.capacity_tokens = (
            self.config.kv_capacity_tokens
            if self.config.kv_capacity_tokens is not None
            else self.cost.kv_capacity_tokens
        )
        if self.capacity_tokens <= 0:
            raise ServingError(f"no KV memory left for {model.name} on this cluster")
        self.cache = RadixPrefixCache()
        self._waiting: Deque[Request] = deque()
        self._clock = 0.0
        self._private_tokens = 0

    # ------------------------------------------------------------------ API
    def submit(self, request: Request) -> None:
        self._waiting.append(request)

    def submit_all(self, requests: Sequence[Request]) -> None:
        for r in requests:
            self.submit(r)

    def run(self) -> EngineResult:
        """Drain the queue; returns aggregate metrics.

        The engine may be reused across calls — the radix cache persists,
        modelling a long-lived server (multi-invocation queries rely on
        this).
        """
        running: List[_Running] = []
        done: List[RequestMetrics] = []
        peak = 0
        decode_steps = 0
        max_batch_seen = 0

        while self._waiting or running:
            self._admit(running)
            if not running:
                if self._waiting:
                    raise ServingError("admission stalled with empty batch")
                break
            max_batch_seen = max(max_batch_seen, len(running))
            peak = max(peak, self._used_tokens())

            # Retire zero-output requests without a decode step.
            still: List[_Running] = []
            for r in running:
                if r.request.output_tokens == 0:
                    self._finish(r, done)
                else:
                    still.append(r)
            running = still
            if not running:
                continue

            dt = self.cost.decode_step_time([r.context_len for r in running])
            self._clock += dt
            decode_steps += 1
            still = []
            for r in running:
                r.decoded += 1
                if r.decoded == 1:
                    r.metrics.first_token_at_s = self._clock
                if r.decoded >= r.request.output_tokens:
                    self._finish(r, done)
                else:
                    still.append(r)
            running = still

        done.sort(key=lambda m: m.request_id)
        return EngineResult(
            total_seconds=self._clock,
            request_metrics=done,
            prompt_tokens=sum(m.prompt_tokens for m in done),
            cached_tokens=sum(m.cached_tokens for m in done),
            prefill_tokens=sum(m.prefill_tokens for m in done),
            decode_tokens=sum(m.output_tokens for m in done),
            decode_steps=decode_steps,
            peak_kv_tokens=peak,
            max_batch_seen=max_batch_seen,
        )

    # ------------------------------------------------------------ internals
    def _used_tokens(self) -> int:
        return self.cache.total_tokens + self._private_tokens

    def _admit(self, running: List[_Running]) -> None:
        cache_on = self.config.enable_prefix_cache
        wave: List[Tuple[int, int]] = []  # (new_tokens, cached_prefix) per admission
        wave_members: List[_Running] = []
        while self._waiting and len(running) < self.config.max_batch_size:
            req = self._waiting[0]
            hit = self.cache.match(req.prompt_tokens) if cache_on else 0
            new_prompt = req.prompt_len - hit
            # Shared tokens enter the radix tree; decode KV (and, without a
            # cache, the whole prompt) is reserved privately up front.
            shared_growth = new_prompt if cache_on else 0
            private_growth = req.output_tokens + (0 if cache_on else req.prompt_len)
            need = shared_growth + private_growth
            free = self.capacity_tokens - self._used_tokens()
            if need > free and cache_on:
                protected = [r.request.prompt_tokens for r in running]
                protected.append(req.prompt_tokens[:hit])
                free += self.cache.evict(need - free, protected=protected)
            if need > free:
                if not running and not wave_members:
                    raise CapacityError(
                        f"request {req.request_id} needs {need} KV tokens; "
                        f"capacity is {self.capacity_tokens}"
                    )
                break  # wait for completions to free memory
            self._waiting.popleft()

            if cache_on:
                self.cache.insert(req.prompt_tokens)
            self._private_tokens += private_growth

            metrics = RequestMetrics(
                request_id=req.request_id,
                prompt_tokens=req.prompt_len,
                cached_tokens=hit,
                prefill_tokens=new_prompt,
            )
            member = _Running(
                request=req,
                metrics=metrics,
                reserved_tokens=private_growth,
            )
            wave.append((new_prompt, hit))
            wave_members.append(member)
            running.append(member)

        if wave_members:
            # One merged prefill pass for the whole admission wave: the
            # weight read amortizes across requests (continuous batching).
            # Per-request serving overhead is charged here too.
            self._clock += self.cost.prefill_wave_time(wave)
            self._clock += self.cost.per_request_overhead_s * len(wave_members)
            for member in wave_members:
                member.metrics.admitted_at_s = self._clock

    def _finish(self, r: _Running, done: List[RequestMetrics]) -> None:
        self._private_tokens -= r.reserved_tokens
        if self._private_tokens < 0:
            raise ServingError("private KV accounting went negative")
        r.metrics.output_tokens = r.decoded
        r.metrics.finished_at_s = self._clock
        done.append(r.metrics)
