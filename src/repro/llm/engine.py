"""Continuous-batching serving engine (simulated vLLM).

The engine replays a *schedule* of requests — order matters, which is the
whole point of the paper — through the mechanisms a real prefix-caching
server uses:

* requests are admitted FIFO while KV memory and the batch-size cap allow;
* on admission the radix cache is probed: the matched prefix skips prefill,
  only the suffix is prefilled (compute-bound time from the cost model);
* prompt KV lives in the shared radix cache (paths of running requests are
  pinned, the rest is LRU-evicted under pressure); decode KV is private
  and reserved up front for admission control;
* every decode step produces one token per running sequence and costs
  bandwidth-bound time (weights amortized over the batch).

Three replay modes produce the same integer metrics (and clocks equal to
float rounding):

``mode="vector"`` (default when numpy is available)
    The event-driven replay below, with its per-request Python state
    vectorized: request metrics live in numpy arrays keyed by a dense
    request index (``RequestMetrics`` objects are materialized once, in
    bulk, at the end of the run), admission waves stamp clocks with one
    fancy-indexed assignment, a request's prompt-path block references are
    forked and released as a single bundle
    (:meth:`RadixPrefixCache.fork_path_bundle`), and the block pool itself
    runs on the numpy backend (``BlockManager(vector=True)``). The clock
    arithmetic is the *same sequence of scalar float operations* as
    ``"event"``, so the two produce bit-identical clocks, not merely
    rounding-equal ones. ``REPRO_SERVING_VECTOR=0`` selects ``"event"``
    instead, keeping the scalar implementation available as the
    one-layer-up oracle.

``mode="event"``
    Event-driven: between admission and completion events the batch
    composition is fixed, so the clock advances over whole runs of decode
    steps with the closed-form arithmetic-series sum
    (:meth:`CostModel.decode_run_time`) — O(batch) work per event instead
    of O(steps x batch) Python work per token. Exact per-request
    ``first_token_at_s``/``finished_at_s`` stamps are still produced.

``mode="stepwise"``
    The original per-token loop, kept as the equivalence oracle
    (``REPRO_SERVING_FASTPATH=0`` selects it, plus the scan-based radix
    eviction, everywhere).

Two *KV accounting* models gate admission (orthogonal to the replay mode):

``kv_accounting="paged"`` (default)
    PagedAttention-style block accounting through
    :class:`~repro.llm.blocks.BlockManager`: each radix node owns the
    fixed-size blocks backing its edge, an admitted request fork-shares
    (ref-counts) the blocks of its matched prefix and allocates fresh
    blocks only for the suffix, decode grows a private tail allocation
    block-by-block (fully reserved at admission so decoding never OOMs),
    and radix eviction returns the victim's blocks to the pool. Admission
    charges whole blocks, so internal fragmentation — partially-filled
    last blocks — is visible to every benchmark via ``peak_kv_blocks`` /
    ``fragmentation_tokens``.

``kv_accounting="tokens"``
    The original token-sum heuristic, kept as the selectable oracle
    (``REPRO_SERVING_PAGED=0`` selects it everywhere). With
    ``block_tokens=1`` the paged path reproduces this oracle's schedules
    and clocks exactly (a block is a token; no rounding, no straddles).

Disabling the prefix cache turns the same machinery into the paper's
*No Cache* baseline: every prompt prefills fully and its KV is private,
shrinking the feasible batch.

**Online serving** (PR 5): requests may carry an ``arrival_s`` stamp. A
not-yet-arrived request waits in a time-ordered arrival heap; at every
admission point the engine releases the requests whose arrival time has
passed into a pluggable *scheduling policy*
(:mod:`repro.llm.scheduler` — ``fcfs``/``sjf``/``prefix-affinity``/
``fair-share``) that decides which waiting request is admitted next.
Arrival events merge into both replay loops: the stepwise loop sees them
naturally (it probes admission at every step boundary), the event loop
cuts its closed-form decode runs at the first step boundary past the next
arrival, so both modes attempt admission at identical clocks. With every
arrival at t=0 and the ``fcfs`` policy this degenerates exactly to the
offline batch replay (``tests/llm/test_online_equivalence.py``);
``REPRO_SERVING_ONLINE=0`` forces that offline shape everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import List, Optional, Sequence, Tuple

from repro.errors import CapacityError, ServingError
from repro.llm.blocks import (
    BlockAllocation,
    BlockManager,
    paged_accounting_enabled,
    serving_vector_enabled,
)
from repro.llm.costmodel import CostModel
from repro.llm.hardware import CLUSTER_1XL4, Cluster
from repro.llm.models import LLAMA3_8B, ModelSpec
from repro.llm.radix import RadixPrefixCache, serving_fastpath_enabled
from repro.llm.request import Request, RequestMetrics
from repro.llm.scheduler import (
    SCHEDULER_POLICIES,
    SchedulerPolicy,
    SLOReport,
    compute_slo,
    make_policy,
    serving_online_enabled,
    validate_policy_name,
)

try:  # numpy backs mode="vector"; without it the scalar modes remain.
    import numpy as _np
except ImportError:  # pragma: no cover - environment without numpy
    _np = None


@dataclass
class EngineConfig:
    """Engine tunables.

    ``max_batch_size`` caps concurrent sequences (vLLM ``max_num_seqs``);
    ``kv_capacity_tokens`` overrides the cost model's derived capacity
    (useful for the memory-pressure ablation); ``mode`` selects the replay
    engine: ``"vector"`` (numpy request state over the event loop),
    ``"event"`` (closed-form multi-step advance, scalar state),
    ``"stepwise"`` (per-token reference loop), or ``"auto"`` (vector
    unless ``REPRO_SERVING_VECTOR=0`` drops it to event, or
    ``REPRO_SERVING_FASTPATH=0`` forces stepwise); ``kv_accounting``
    selects the admission
    model: ``"paged"`` (block-granular, vLLM-style), ``"tokens"`` (the
    token-sum oracle), or ``"auto"`` (paged unless
    ``REPRO_SERVING_PAGED=0``); ``block_tokens`` is the paged block size
    (16 in vLLM by default; 1 makes paged numerically identical to the
    token oracle); ``scheduler`` names the online admission policy
    (:data:`repro.llm.scheduler.SCHEDULER_POLICIES`; ``"auto"``/``"fcfs"``
    is the offline-equivalent default, and ``REPRO_SERVING_ONLINE=0``
    forces ``fcfs`` regardless).
    """

    enable_prefix_cache: bool = True
    max_batch_size: int = 64
    kv_capacity_tokens: Optional[int] = None
    mode: str = "auto"
    kv_accounting: str = "auto"
    block_tokens: int = 16
    scheduler: str = "auto"

    def __post_init__(self):
        # Name validity fails here, at config construction; env-dependent
        # resolution (oracle gates, numpy availability) stays in the
        # engine's _resolve_* helpers.
        if self.mode not in ("auto", "vector", "event", "stepwise"):
            raise ServingError(f"unknown engine mode {self.mode!r}")
        if self.kv_accounting not in ("auto", "paged", "tokens"):
            raise ServingError(f"unknown kv accounting {self.kv_accounting!r}")
        validate_policy_name(self.scheduler)


@dataclass
class _Running:
    request: Request
    #: None in vector mode, where the per-request metric fields live in the
    #: run's :class:`_VectorState` arrays at row ``idx`` instead.
    metrics: Optional[RequestMetrics]
    reserved_tokens: int
    idx: int = -1
    decoded: int = 0
    pin: Optional[object] = None
    #: Paged accounting only: forked references to the shared blocks of the
    #: prompt's radix path (released at completion), and the private tail
    #: allocation decode tokens grow into (plus the whole prompt when the
    #: prefix cache is off).
    forks: Optional[List[BlockAllocation]] = None
    tail: Optional[BlockAllocation] = None

    @property
    def context_len(self) -> int:
        return self.request.prompt_len + self.decoded


@dataclass
class EngineResult:
    """Aggregate outcome of one engine run."""

    total_seconds: float
    request_metrics: List[RequestMetrics]
    prompt_tokens: int
    cached_tokens: int
    prefill_tokens: int
    decode_tokens: int
    decode_steps: int
    peak_kv_tokens: int
    max_batch_seen: int
    #: Accounting model the run admitted under ("paged" or "tokens").
    kv_accounting: str = "tokens"
    #: Paged accounting only (0 otherwise): block size, peak physical
    #: blocks charged (allocated + reserved decode blocks), and internal
    #: fragmentation at that peak — token slots inside charged blocks that
    #: hold no KV (partially-filled last blocks, decode reservations).
    block_tokens: int = 0
    peak_kv_blocks: int = 0
    fragmentation_tokens: int = 0
    #: Scheduling policy the run admitted under (``"fcfs"`` offline).
    scheduler: str = "fcfs"

    def slo(self, deadline_s: Optional[float] = None) -> SLOReport:
        """Latency/goodput rollup (queueing delay, TTFT, E2E percentiles,
        per-tenant breakdown, goodput under ``deadline_s``) over this
        run's per-request metrics."""
        return compute_slo(self.request_metrics, deadline_s=deadline_s)

    @property
    def prefix_hit_rate(self) -> float:
        """Fraction of prompt tokens served from the KV cache (Table 2)."""
        if self.prompt_tokens == 0:
            return 0.0
        return self.cached_tokens / self.prompt_tokens

    @property
    def fragmentation(self) -> float:
        """Fraction of peak block memory lost to internal fragmentation
        (0.0 under token-sum accounting, where blocks are not modelled)."""
        denom = self.peak_kv_blocks * self.block_tokens
        if denom == 0:
            return 0.0
        return self.fragmentation_tokens / denom


def _resolve_mode(mode: str) -> str:
    if mode == "auto":
        if not serving_fastpath_enabled():
            return "stepwise"
        return "vector" if serving_vector_enabled() else "event"
    if mode not in ("vector", "event", "stepwise"):
        raise ServingError(f"unknown engine mode {mode!r}")
    if mode == "vector" and _np is None:
        raise ServingError("mode='vector' requires numpy")
    return mode


class _VectorState:
    """Per-run SoA request state for ``mode="vector"``: one dense row per
    admitted request, numpy columns for every :class:`RequestMetrics`
    field. The replay loop stamps clocks into rows by index (whole
    admission waves in one fancy-indexed assignment); :meth:`settle` sorts
    by request id and materializes the ``RequestMetrics`` list — plus the
    run's aggregate token sums — in bulk at the end of the run."""

    __slots__ = (
        "n", "_cap", "req_id", "prompt", "cached", "prefill",
        "out", "arrival", "admitted", "first", "finished", "tenants",
    )

    def __init__(self, capacity_hint: int):
        self._cap = max(16, capacity_hint)
        self.n = 0
        # Admission-time constants are append-only: plain list appends beat
        # numpy scalar stores, and one bulk conversion at settle() suffices.
        self.req_id: List[int] = []
        self.prompt: List[int] = []
        self.cached: List[int] = []
        self.prefill: List[int] = []
        self.arrival: List[float] = []
        self.tenants: List[str] = []
        # Replay-time stamps land at random row indices as events fire, so
        # these are numpy from the start. Zero-initialized: a zero-output
        # request's first-token stamp keeps the RequestMetrics default of
        # 0.0, like the scalar modes.
        self.out = _np.zeros(self._cap, dtype=_np.int64)
        self.admitted = _np.zeros(self._cap, dtype=_np.float64)
        self.first = _np.zeros(self._cap, dtype=_np.float64)
        self.finished = _np.zeros(self._cap, dtype=_np.float64)

    def add(self, req: Request, cached: int, prefill: int) -> int:
        i = self.n
        if i == self._cap:
            self._cap *= 2
            for name in ("out", "admitted", "first", "finished"):
                arr = getattr(self, name)
                grown = _np.zeros(self._cap, dtype=arr.dtype)
                grown[:i] = arr
                setattr(self, name, grown)
        self.req_id.append(req.request_id)
        self.prompt.append(req.prompt_len)
        self.cached.append(cached)
        self.prefill.append(prefill)
        self.arrival.append(req.arrival_s)
        self.tenants.append(req.tenant)
        self.n = i + 1
        return i

    def settle(self) -> Tuple[List[RequestMetrics], int, int, int, int]:
        """(metrics sorted by request id, prompt/cached/prefill/decode
        token sums)."""
        n = self.n
        req_id = _np.asarray(self.req_id, dtype=_np.int64)
        order = _np.argsort(req_id, kind="stable")
        tenants = self.tenants
        prompt = _np.asarray(self.prompt, dtype=_np.int64)
        cached = _np.asarray(self.cached, dtype=_np.int64)
        prefill = _np.asarray(self.prefill, dtype=_np.int64)
        arrival = _np.asarray(self.arrival, dtype=_np.float64)
        metrics = [
            RequestMetrics(
                request_id=rid,
                prompt_tokens=pt,
                cached_tokens=ct,
                prefill_tokens=ft,
                output_tokens=ot,
                admitted_at_s=ad,
                first_token_at_s=fi,
                finished_at_s=fin,
                arrival_s=ar,
                tenant=tenants[i],
            )
            for rid, pt, ct, ft, ot, ad, fi, fin, ar, i in zip(
                req_id[order].tolist(),
                prompt[order].tolist(),
                cached[order].tolist(),
                prefill[order].tolist(),
                self.out[:n][order].tolist(),
                self.admitted[:n][order].tolist(),
                self.first[:n][order].tolist(),
                self.finished[:n][order].tolist(),
                arrival[order].tolist(),
                order.tolist(),
            )
        ]
        return (
            metrics,
            int(prompt.sum()),
            int(cached.sum()),
            int(prefill.sum()),
            int(self.out[:n].sum()),
        )


def _resolve_accounting(accounting: str) -> str:
    if accounting == "auto":
        return "paged" if paged_accounting_enabled() else "tokens"
    if accounting not in ("paged", "tokens"):
        raise ServingError(f"unknown kv accounting {accounting!r}")
    return accounting


def _resolve_scheduler(name: str) -> str:
    if name == "auto":
        name = "fcfs"
    if name not in SCHEDULER_POLICIES:
        raise ServingError(
            f"unknown scheduler policy {name!r}; choose from {SCHEDULER_POLICIES}"
        )
    # The offline oracle: every engine schedules FCFS, regardless of config.
    if not serving_online_enabled():
        return "fcfs"
    return name


class SimulatedLLMEngine:
    """Discrete-event engine; see module docstring."""

    def __init__(
        self,
        model: ModelSpec = LLAMA3_8B,
        cluster: Cluster = CLUSTER_1XL4,
        config: Optional[EngineConfig] = None,
    ):
        self.model = model
        self.cluster = cluster
        self.config = config or EngineConfig()
        self.mode = _resolve_mode(self.config.mode)
        self.cost = CostModel(model=model, cluster=cluster)
        self.capacity_tokens = (
            self.config.kv_capacity_tokens
            if self.config.kv_capacity_tokens is not None
            else self.cost.kv_capacity_tokens
        )
        if self.capacity_tokens <= 0:
            raise ServingError(f"no KV memory left for {model.name} on this cluster")
        self.kv_accounting = _resolve_accounting(self.config.kv_accounting)
        self.block_tokens = self.config.block_tokens
        if self.block_tokens <= 0:
            raise ServingError("block_tokens must be positive")
        # Paged admission: a BlockManager owns the physical pool, the radix
        # cache attaches per-node allocations to it. Capacity is floored to
        # whole blocks, exactly as a real paged allocator would.
        self.blocks: Optional[BlockManager] = (
            BlockManager(
                self.capacity_tokens,
                self.block_tokens,
                vector=self.mode == "vector",
            )
            if self.kv_accounting == "paged"
            else None
        )
        # The oracle mode keeps the scan-based cache so REPRO_SERVING_FASTPATH=0
        # reproduces the original implementation end to end.
        self.cache = RadixPrefixCache(
            eviction="scan" if self.mode == "stepwise" else "heap",
            block_manager=self.blocks,
        )
        self._use_pins = self.mode != "stepwise"
        #: Live only inside a vector-mode run(); _admit/_finish stamp into
        #: it instead of per-request RequestMetrics objects when set.
        self._vstate: Optional[_VectorState] = None
        #: Arrived-but-unadmitted requests live in the scheduling policy;
        #: not-yet-arrived requests wait in a (arrival_s, seq) heap and are
        #: released into the policy as the clock passes their stamp.
        self.scheduler_name = _resolve_scheduler(self.config.scheduler)
        self.scheduler: SchedulerPolicy = make_policy(self.scheduler_name)
        self._future: List[Tuple[float, int, Request]] = []
        self._arrival_seq = 0
        self._clock = 0.0
        self._private_tokens = 0
        #: Decode blocks promised at admission but not yet drawn from the
        #: pool (paged accounting): the tail allocation grows block-by-block
        #: as decode proceeds, and this reservation guarantees the growth
        #: can never fail mid-decode.
        self._reserved_blocks = 0
        self._peak_blocks = 0
        self._frag_at_peak = 0
        # Once the queue head fails admission on memory, nothing but a
        # completion can change the outcome (the failed attempt already
        # evicted everything evictable), so further attempts are skipped
        # until one happens — both modes therefore probe the cache with an
        # identical call sequence.
        self._admission_blocked = False

    # ------------------------------------------------------------------ API
    @property
    def clock(self) -> float:
        """Current simulation time (persists across :meth:`run` calls —
        the engine models a long-lived server)."""
        return self._clock

    def submit(self, request: Request) -> None:
        if request.arrival_s > self._clock:
            heappush(
                self._future, (request.arrival_s, self._arrival_seq, request)
            )
            self._arrival_seq += 1
        else:
            # Already arrived (t=0 offline batches land here): straight
            # into the scheduling policy, in submission order.
            self.scheduler.submit(request)

    def submit_all(self, requests: Sequence[Request]) -> None:
        for r in requests:
            self.submit(r)

    def flush_waiting(self) -> int:
        """Drop every queued-but-unadmitted request (arrived or future) and
        unblock admission; returns how many were dropped. Used to clean up
        after a failed run (e.g. a :class:`CapacityError` on an infeasible
        request) so the engine — and its warm cache — stay usable for the
        next job."""
        n = len(self.scheduler.drain()) + len(self._future)
        self._future.clear()
        self._admission_blocked = False
        return n

    def _release_arrivals(self) -> int:
        """Move requests whose arrival time has passed into the policy."""
        fut = self._future
        n = 0
        while fut and fut[0][0] <= self._clock:
            _, _, req = heappop(fut)
            self.scheduler.submit(req)
            n += 1
        if n:
            # A fresh candidate can change a blocked admission's outcome
            # (another policy choice, or simply a retry with eviction).
            self._admission_blocked = False
        return n

    def run(self) -> EngineResult:
        """Drain the queue; returns aggregate metrics.

        The engine may be reused across calls — the radix cache persists,
        modelling a long-lived server (multi-invocation queries rely on
        this).
        """
        self._admission_blocked = False
        # Peaks are per-run (like the token peak), even though the cache —
        # and its block pool — persist across runs.
        self._peak_blocks = 0
        self._frag_at_peak = 0
        if self.mode == "vector":
            return self._run_event_vector()
        if self.mode == "event":
            return self._run_event()
        return self._run_stepwise()

    # ----------------------------------------------------- stepwise oracle
    def _run_stepwise(self) -> EngineResult:
        running: List[_Running] = []
        done: List[RequestMetrics] = []
        peak = 0
        decode_steps = 0
        max_batch_seen = 0

        while len(self.scheduler) or self._future or running:
            self._admit(running)
            if not running:
                if len(self.scheduler):
                    raise ServingError("admission stalled with empty batch")
                if self._future:
                    # Idle engine: jump the clock to the next arrival.
                    self._clock = max(self._clock, self._future[0][0])
                    continue
                break
            max_batch_seen = max(max_batch_seen, len(running))
            peak = max(peak, self._sample_usage())

            # Retire zero-output requests without a decode step.
            still: List[_Running] = []
            for r in running:
                if r.request.output_tokens == 0:
                    self._finish(r, done)
                else:
                    still.append(r)
            running = still
            if not running:
                continue

            dt = self.cost.decode_step_time([r.context_len for r in running])
            self._clock += dt
            decode_steps += 1
            still = []
            for r in running:
                r.decoded += 1
                if r.tail is not None:
                    # Paged accounting: the decode tail grows one token at a
                    # time, drawing a fresh block only at block boundaries
                    # (covered by the admission-time reservation).
                    self._grow_tail(r, 1)
                if r.decoded == 1:
                    r.metrics.first_token_at_s = self._clock
                if r.decoded >= r.request.output_tokens:
                    self._finish(r, done)
                else:
                    still.append(r)
            running = still

        return self._result(done, decode_steps, peak, max_batch_seen)

    # --------------------------------------------------- event-driven mode
    def _run_event(self) -> EngineResult:
        """O(events) replay: the batch is fixed between admission and
        completion events, so each event advances the clock over a whole
        run of decode steps with the closed-form sum. All per-batch state
        (size, context-length sum, next completion) is maintained
        incrementally — no per-event scans of the running set."""
        done: List[RequestMetrics] = []
        peak = 0
        decode_steps = 0
        max_batch_seen = 0

        # (completion_step, admission_order, member): a request admitted at
        # global step S with n output tokens completes at step S + n.
        completions: List[Tuple[int, int, _Running]] = []
        order = 0
        batch = 0  # running sequences
        context_sum = 0  # sum of their current context lengths
        step = 0  # global decode-step counter
        fresh: List[_Running] = []  # admitted, awaiting their first token

        while len(self.scheduler) or self._future or batch:
            wave: List[_Running] = []
            self._admit(wave, n_active=batch)
            if batch == 0 and not wave:
                if len(self.scheduler):
                    raise ServingError("admission stalled with empty batch")
                if self._future:
                    # Idle engine: jump the clock to the next arrival.
                    self._clock = max(self._clock, self._future[0][0])
                    continue
                break
            max_batch_seen = max(max_batch_seen, batch + len(wave))
            peak = max(peak, self._sample_usage())

            retired = False
            for m in wave:
                if m.request.output_tokens == 0:
                    # Retired without a decode step, at the post-prefill clock.
                    self._finish(m, done)
                    retired = True
                else:
                    batch += 1
                    context_sum += m.request.prompt_len
                    heappush(
                        completions,
                        (step + m.request.output_tokens, order, m),
                    )
                    order += 1
                    fresh.append(m)
            if batch == 0:
                continue

            # Next event: the earliest completion. A zero-output retirement
            # just freed capacity, and the stepwise loop re-attempts
            # admission after exactly one decode step — mirror that cadence
            # so both modes issue identical cache probes.
            steps = completions[0][0] - step
            if (
                retired
                and len(self.scheduler)
                and batch < self.config.max_batch_size
                and steps > 1
            ):
                steps = 1
            if (
                self._future
                and steps > 1
                and batch < self.config.max_batch_size
            ):
                # Arrival event: cut the decode run at the first step
                # boundary whose clock reaches the next arrival — the
                # boundary where the stepwise loop would see it and attempt
                # admission. With a full batch the arrival cannot be
                # admitted anyway, so the run proceeds to the completion.
                steps = self._cap_steps_at_arrival(
                    context_sum, batch, steps, self._future[0][0]
                )
            first_dt = self.cost.decode_run_time(context_sum, batch, 1)
            total_dt = (
                first_dt
                if steps == 1
                else self.cost.decode_run_time(context_sum, batch, steps)
            )
            start = self._clock
            self._clock = start + total_dt
            decode_steps += steps
            step += steps
            context_sum += batch * steps
            if fresh:
                first_at = start + first_dt
                for m in fresh:
                    m.metrics.first_token_at_s = first_at
                fresh.clear()
            while completions and completions[0][0] <= step:
                _, _, m = heappop(completions)
                m.decoded = m.request.output_tokens
                batch -= 1
                context_sum -= m.context_len
                self._finish(m, done)

        return self._result(done, decode_steps, peak, max_batch_seen)

    # ------------------------------------------------- vectorized event mode
    def _run_event_vector(self) -> EngineResult:
        """The event loop of :meth:`_run_event` over numpy request state:
        identical control flow and — critically — the identical sequence
        of scalar float operations on the clock, so clocks (and therefore
        schedules, including online arrival cuts) are bit-identical to the
        scalar event mode. What changes is the per-request Python work:
        metric stamps land in :class:`_VectorState` rows (whole admission
        waves per assignment), prompt-path block references fork/release
        as one bundle per request, and ``RequestMetrics`` objects plus the
        aggregate token sums materialize in bulk at the end of the run."""
        vect = _VectorState(len(self.scheduler) + len(self._future))
        self._vstate = vect
        try:
            done: List[RequestMetrics] = []  # unused rows; settle() reports
            peak = 0
            decode_steps = 0
            max_batch_seen = 0

            completions: List[Tuple[int, int, _Running]] = []
            order = 0
            batch = 0
            context_sum = 0
            step = 0
            fresh: List[int] = []  # vector-state rows awaiting first token

            while len(self.scheduler) or self._future or batch:
                wave: List[_Running] = []
                self._admit(wave, n_active=batch)
                if batch == 0 and not wave:
                    if len(self.scheduler):
                        raise ServingError("admission stalled with empty batch")
                    if self._future:
                        self._clock = max(self._clock, self._future[0][0])
                        continue
                    break
                max_batch_seen = max(max_batch_seen, batch + len(wave))
                peak = max(peak, self._sample_usage())

                retired = False
                for m in wave:
                    if m.request.output_tokens == 0:
                        self._finish(m, done)
                        retired = True
                    else:
                        batch += 1
                        context_sum += m.request.prompt_len
                        heappush(
                            completions,
                            (step + m.request.output_tokens, order, m),
                        )
                        order += 1
                        fresh.append(m.idx)
                if batch == 0:
                    continue

                steps = completions[0][0] - step
                if (
                    retired
                    and len(self.scheduler)
                    and batch < self.config.max_batch_size
                    and steps > 1
                ):
                    steps = 1
                if (
                    self._future
                    and steps > 1
                    and batch < self.config.max_batch_size
                ):
                    steps = self._cap_steps_at_arrival(
                        context_sum, batch, steps, self._future[0][0]
                    )
                first_dt = self.cost.decode_run_time(context_sum, batch, 1)
                total_dt = (
                    first_dt
                    if steps == 1
                    else self.cost.decode_run_time(context_sum, batch, steps)
                )
                start = self._clock
                self._clock = start + total_dt
                decode_steps += steps
                step += steps
                context_sum += batch * steps
                if fresh:
                    if len(fresh) == 1:  # steady state: one admission/event
                        vect.first[fresh[0]] = start + first_dt
                    else:
                        vect.first[fresh] = start + first_dt
                    fresh.clear()
                while completions and completions[0][0] <= step:
                    _, _, m = heappop(completions)
                    m.decoded = m.request.output_tokens
                    batch -= 1
                    context_sum -= m.context_len
                    self._finish(m, done)

            metrics, prompt, cached, prefill, decode = vect.settle()
            return EngineResult(
                total_seconds=self._clock,
                request_metrics=metrics,
                prompt_tokens=prompt,
                cached_tokens=cached,
                prefill_tokens=prefill,
                decode_tokens=decode,
                decode_steps=decode_steps,
                peak_kv_tokens=peak,
                max_batch_seen=max_batch_seen,
                kv_accounting=self.kv_accounting,
                block_tokens=self.block_tokens if self.blocks is not None else 0,
                peak_kv_blocks=self._peak_blocks,
                fragmentation_tokens=self._frag_at_peak,
                scheduler=self.scheduler_name,
            )
        finally:
            self._vstate = None

    # ------------------------------------------------------------ internals
    def _result(
        self,
        done: List[RequestMetrics],
        decode_steps: int,
        peak: int,
        max_batch_seen: int,
    ) -> EngineResult:
        done.sort(key=lambda m: m.request_id)
        return EngineResult(
            total_seconds=self._clock,
            request_metrics=done,
            prompt_tokens=sum(m.prompt_tokens for m in done),
            cached_tokens=sum(m.cached_tokens for m in done),
            prefill_tokens=sum(m.prefill_tokens for m in done),
            decode_tokens=sum(m.output_tokens for m in done),
            decode_steps=decode_steps,
            peak_kv_tokens=peak,
            max_batch_seen=max_batch_seen,
            kv_accounting=self.kv_accounting,
            block_tokens=self.block_tokens if self.blocks is not None else 0,
            peak_kv_blocks=self._peak_blocks,
            fragmentation_tokens=self._frag_at_peak,
            scheduler=self.scheduler_name,
        )

    def _cap_steps_at_arrival(
        self, context_sum: int, batch: int, steps: int, arrival_s: float
    ) -> int:
        """Smallest run length (in decode steps, at least 1) whose
        closed-form clock advance reaches ``arrival_s``, capped at
        ``steps`` when the run's completion event comes first.
        ``decode_run_time`` is strictly increasing in the step count, so a
        binary search finds the boundary in O(log steps) closed-form
        evaluations."""
        start = self._clock
        cost = self.cost
        if start + cost.decode_run_time(context_sum, batch, steps) < arrival_s:
            return steps
        lo, hi = 1, steps
        while lo < hi:
            mid = (lo + hi) // 2
            if start + cost.decode_run_time(context_sum, batch, mid) >= arrival_s:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def _used_tokens(self) -> int:
        return self.cache.total_tokens + self._private_tokens

    def _sample_usage(self) -> int:
        """Token-sum KV usage right now; as a side effect, under paged
        accounting, folds the current block charge (allocated + reserved)
        into the per-run peak. Sampled at admission points in both replay
        modes; the charge is invariant to decode progress (a tail's drawn
        blocks plus its outstanding reservation is a constant), so both
        modes record identical peaks."""
        used = self.cache.total_tokens + self._private_tokens
        bm = self.blocks
        if bm is not None:
            charged = bm.used_blocks + self._reserved_blocks
            if charged > self._peak_blocks:
                self._peak_blocks = charged
                self._frag_at_peak = charged * self.block_tokens - used
        return used

    def _grow_tail(self, r: _Running, extra_tokens: int) -> None:
        """Grow a request's private tail allocation, consuming its
        admission-time block reservation as boundaries are crossed."""
        tail = r.tail
        before = len(tail.block_ids)
        self.blocks.grow(tail, extra_tokens)
        self._reserved_blocks -= len(tail.block_ids) - before
        if self._reserved_blocks < 0:
            raise ServingError("decode block reservation went negative")

    def _admit(self, running: List[_Running], n_active: Optional[int] = None) -> None:
        """Admit the policy's picks while memory and batch slots allow,
        appending members to ``running``. The stepwise loop passes its full
        running list; the event loop passes an empty wave list plus
        ``n_active`` (its incremental batch count).

        The policy only chooses *which* waiting request is next — if that
        request does not fit, admission blocks (no skip-ahead), exactly the
        head-of-line semantics the offline FIFO had."""
        self._release_arrivals()
        if self._admission_blocked:
            return
        base = len(running) if n_active is None else n_active
        cache_on = self.config.enable_prefix_cache
        cache = self.cache
        bm = self.blocks
        sched = self.scheduler
        wave: List[Tuple[int, int]] = []  # (new_tokens, cached_prefix) per admission
        wave_members: List[_Running] = []
        while base + len(wave_members) < self.config.max_batch_size:
            req = sched.select(cache if cache_on else None)
            if req is None:
                break
            prompt_len = req.prompt_len
            hit = (
                cache.match(req.prompt_tokens, req.prompt_bytes)
                if cache_on
                else 0
            )
            new_prompt = prompt_len - hit
            # Shared tokens enter the radix tree; decode KV (and, without a
            # cache, the whole prompt) is reserved privately up front.
            private_growth = req.output_tokens + (0 if cache_on else prompt_len)
            if bm is not None:
                # Paged admission charges whole blocks: the matched prefix
                # is fork-shared (zero new blocks), the suffix rounds up to
                # its own blocks, and the private tail (decode KV, plus the
                # prompt when the cache is off) reserves its blocks now so
                # block-by-block growth can never fail.
                if cache_on:
                    need = bm.blocks_needed(new_prompt) + bm.blocks_needed(
                        req.output_tokens
                    )
                else:
                    need = bm.blocks_needed(prompt_len + req.output_tokens)
                free = bm.free_blocks - self._reserved_blocks
                unit = "blocks"
            else:
                need = (new_prompt if cache_on else 0) + private_growth
                free = self.capacity_tokens - self._used_tokens()
                unit = "tokens"
            if need > free and cache_on:
                if self._use_pins:
                    # Running requests' paths are pinned persistently; only
                    # this request's matched prefix needs transient cover.
                    protected: List[Sequence[int]] = [req.prompt_tokens[:hit]]
                else:
                    protected = [r.request.prompt_tokens for r in running]
                    protected.append(req.prompt_tokens[:hit])
                free += cache.evict(need - free, protected=protected, unit=unit)
            if need > free:
                if base == 0 and not wave_members:
                    if bm is not None:
                        raise CapacityError(
                            f"request {req.request_id} needs {need} KV blocks; "
                            f"pool is {bm.n_blocks} blocks of "
                            f"{bm.block_tokens} tokens "
                            f"({self.capacity_tokens} token capacity, "
                            f"{self._reserved_blocks} blocks reserved)"
                        )
                    raise CapacityError(
                        f"request {req.request_id} needs {need} KV tokens; "
                        f"capacity is {self.capacity_tokens}"
                    )
                self._admission_blocked = True
                break  # wait for a completion (or arrival) to change things
            sched.pop(req)

            pin = None
            if cache_on:
                cache.insert(req.prompt_tokens, req.prompt_bytes)
                if self._use_pins:
                    pin = cache.pin(req.prompt_tokens)
            vect = self._vstate
            forks = tail = None
            if bm is not None:
                if cache_on:
                    # The request holds its own block refs along the whole
                    # prompt path (matched prefix + fresh suffix), like a
                    # vLLM sequence forked from a cached prefix. The suffix
                    # blocks were just drawn by insert(); only the decode
                    # tail stays reserved.
                    if vect is not None:
                        # One bundle, one vectorized refcount pass, instead
                        # of a fork per radix node.
                        bundle = cache.fork_path_bundle(req.prompt_tokens)
                        forks = [bundle] if bundle is not None else None
                    else:
                        forks = cache.fork_path(req.prompt_tokens)
                    tail = bm.allocate(0)
                    self._reserved_blocks += bm.blocks_needed(req.output_tokens)
                else:
                    tail = bm.allocate(prompt_len)
                    self._reserved_blocks += need - len(tail.block_ids)
            self._private_tokens += private_growth

            if vect is not None:
                metrics = None
                idx = vect.add(req, hit, new_prompt)
            else:
                idx = -1
                metrics = RequestMetrics(
                    request_id=req.request_id,
                    prompt_tokens=prompt_len,
                    cached_tokens=hit,
                    prefill_tokens=new_prompt,
                    arrival_s=req.arrival_s,
                    tenant=req.tenant,
                )
            member = _Running(
                request=req,
                metrics=metrics,
                reserved_tokens=private_growth,
                idx=idx,
                pin=pin,
                forks=forks,
                tail=tail,
            )
            wave.append((new_prompt, hit))
            wave_members.append(member)
            running.append(member)

        if wave_members:
            # One merged prefill pass for the whole admission wave: the
            # weight read amortizes across requests (continuous batching).
            # Per-request serving overhead is charged here too.
            self._clock += self.cost.prefill_wave_time(wave)
            self._clock += self.cost.per_request_overhead_s * len(wave_members)
            vect = self._vstate
            if vect is not None:
                if len(wave_members) == 1:
                    vect.admitted[wave_members[0].idx] = self._clock
                else:
                    vect.admitted[[m.idx for m in wave_members]] = self._clock
            else:
                for member in wave_members:
                    member.metrics.admitted_at_s = self._clock

    def _finish(self, r: _Running, done: List[RequestMetrics]) -> None:
        self._private_tokens -= r.reserved_tokens
        if self._private_tokens < 0:
            raise ServingError("private KV accounting went negative")
        if r.pin is not None:
            self.cache.unpin(r.pin)
            r.pin = None
        if r.tail is not None:
            # Settle the tail before releasing it: the event loop defers
            # block-by-block growth to the completion event (between events
            # the charge is covered by the reservation, and the closed-form
            # jump never observes intermediate states); the stepwise loop
            # already grew it token-by-token, making this a no-op.
            target = r.decoded + (
                0 if self.config.enable_prefix_cache else r.request.prompt_len
            )
            if r.metrics is None:
                # Vector mode: growing the tail here would draw blocks and
                # free them in the same breath — nothing between the grow
                # and the release ever observes the pool, so the round trip
                # is visible only through the reservation counter. Settle
                # that counter directly and release the pre-drawn blocks.
                tail = r.tail
                draw = (
                    self.blocks.blocks_needed(tail.start_offset + target)
                    - len(tail.block_ids)
                )
                if draw > 0:
                    self._reserved_blocks -= draw
                    if self._reserved_blocks < 0:
                        raise ServingError(
                            "decode block reservation went negative"
                        )
                self.blocks.release(tail)
            else:
                if r.tail.n_tokens < target:
                    self._grow_tail(r, target - r.tail.n_tokens)
                self.blocks.release(r.tail)
            r.tail = None
        if r.forks:
            for fork in r.forks:
                self.blocks.release(fork)
            r.forks = None
        if r.metrics is not None:
            r.metrics.output_tokens = r.decoded
            r.metrics.finished_at_s = self._clock
            done.append(r.metrics)
        else:
            vect = self._vstate
            vect.out[r.idx] = r.decoded
            vect.finished[r.idx] = self._clock
        self._admission_blocked = False
