"""Online scheduling policies and SLO accounting for the serving engine.

The offline engine replays a *batch*: every request is present at t=0 and
admission is FIFO. Online serving — the regime the paper's optimizations
must ultimately survive — adds two degrees of freedom:

* requests **arrive over time** (``Request.arrival_s``), so the engine
  merges arrival events into its event-driven clock (see
  :class:`~repro.llm.engine.SimulatedLLMEngine`);
* among the arrived-but-waiting requests, a **scheduling policy** decides
  which one is admitted next.

Policies (``EngineConfig.scheduler`` / :data:`SCHEDULER_POLICIES`):

``"fcfs"``
    First-come-first-served, in submission order. The oracle: with every
    arrival at t=0 it reproduces the offline engine exactly (the
    randomized suite in ``tests/llm/test_online_equivalence.py`` enforces
    schedules, clocks and cache counters).

``"sjf"``
    Shortest predicted job first — the prediction is the prompt length,
    which the scheduler knows exactly (prompts are tokenized at submit).
    Classic mean-latency optimizer; can starve long prompts.

``"prefix-affinity"``
    Picks the waiting request whose prompt has the longest cached prefix
    in the engine's radix tree right now (one side-effect-free
    :meth:`~repro.llm.radix.RadixPrefixCache.match_many` bulk probe), so
    admissions extend currently-hot paths instead of thrashing the cache
    across tenants — the paper's prefix-sharing win under contention.
    Ties (including the all-cold case) fall back to FCFS order.

``"fair-share"``
    Per-tenant deficit round-robin in prompt-token currency: each visit
    tops the tenant's deficit up by ``quantum_tokens`` and the tenant may
    admit while its head request costs no more than its deficit. Bounds
    cross-tenant interference without starving anyone.

``"deadline"``
    Earliest-deadline-first against each request's SLO deadline
    (``Request.deadline_s`` relative to arrival, falling back to the
    policy's ``deadline_s`` default). EDF *is* priority aging: a waiting
    request's priority rises monotonically as the clock approaches its
    deadline, so old requests cannot be starved by a stream of newer
    ones. Requests that are already past their deadline when selection
    runs are **shed to the back of the queue** (they still complete —
    no work is dropped — but they stop blocking requests that can still
    meet their SLO, which is where the goodput-under-overload win comes
    from). This is also the only built-in policy that implements
    :meth:`SchedulerPolicy.preempt_victim`: under memory or batch-slot
    pressure it preempts the *running* request with the latest absolute
    deadline, strictly later than the candidate's.

No policy skips ahead of its own choice: if the selected request does not
fit in KV memory, admission blocks until a completion (or a new arrival,
which may change the choice) — head-of-line semantics identical to the
offline engine's, so policies differ only in *which* head they expose.
With preemption enabled (``EngineConfig.preemption != "off"``) a policy
may additionally name a running victim to evict from the batch via
:meth:`SchedulerPolicy.preempt_victim`; the default implementation names
none, so every pre-existing policy keeps its exact behavior.

``REPRO_SERVING_ONLINE=0`` disables the online layer end to end: engines
force the FCFS policy and trace replay drops arrival stamps (everything
behaves as an offline batch at t=0) — the selectable reference oracle,
mirroring ``REPRO_SERVING_FASTPATH`` / ``REPRO_SERVING_PAGED``.

SLO accounting (:func:`compute_slo`) rolls per-request queueing delay,
TTFT and end-to-end latency into exact nearest-rank p50/p95/p99
percentiles (shared helper in :mod:`repro.bench.reporting`), per-tenant
breakdowns, and goodput under a deadline.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import ServingError
from repro.llm.request import Request, RequestMetrics


def serving_online_enabled() -> bool:
    """Whether the online serving layer (arrival-timed admission, pluggable
    scheduling policies) is enabled. ``REPRO_SERVING_ONLINE=0`` forces the
    offline reference path — FCFS policy, all arrivals treated as t=0 —
    end to end."""
    flag = os.environ.get("REPRO_SERVING_ONLINE", "1").strip().lower()
    return flag not in ("0", "false", "off", "no")


def serving_preempt_enabled() -> bool:
    """Whether the continuous-batching layer (decode preemption, chunked
    prefill, the deadline scheduler) is enabled. ``REPRO_SERVING_PREEMPT=0``
    forces the one-shot admit-and-forget reference engine — preemption off,
    prompts prefilled monolithically, ``deadline`` mapped to ``fcfs`` —
    reproducing the pre-continuous-batching engine bit for bit, mirroring
    ``REPRO_SERVING_ONLINE`` one layer up."""
    flag = os.environ.get("REPRO_SERVING_PREEMPT", "1").strip().lower()
    return flag not in ("0", "false", "off", "no")


# --------------------------------------------------------------------------
# Scheduling policies
# --------------------------------------------------------------------------
class SchedulerPolicy:
    """Waiting pool + selection rule for arrived requests.

    The engine calls :meth:`select` to peek at the next admission candidate
    (repeatedly — the call must be deterministic and mutation-free given an
    unchanged pool and clock) and :meth:`pop` to commit the admission.
    ``cache`` is the engine's radix cache (None when prefix caching is
    off); policies may probe it with the side-effect-free ``match_len`` /
    ``match_many`` only. ``now`` is the engine clock at the admission point — the clock
    only advances at event boundaries, where both replay modes probe
    admission at identical times, so clock-dependent selection stays
    mode-equivalent.
    """

    name = "base"

    #: Bound :class:`~repro.llm.tracing.TraceRecorder`, or None (the
    #: default): policies with observable scheduling decisions (the
    #: deadline policy's late-request sheds) emit instant events into it.
    _tracer = None

    def bind_tracer(self, tracer) -> None:
        """Give the policy the engine's trace recorder (None disables)."""
        self._tracer = tracer

    def submit(self, request: Request) -> None:
        raise NotImplementedError

    def select(self, cache=None, now: float = 0.0) -> Optional[Request]:
        raise NotImplementedError

    def pop(self, request: Request) -> None:
        """Remove ``request`` — must be the current :meth:`select` choice."""
        raise NotImplementedError

    def preempt_victim(
        self,
        candidate: Request,
        running: Sequence[Request],
        now: float = 0.0,
    ) -> Optional[Request]:
        """Name a *running* request to preempt so ``candidate`` can be
        admitted, or None to decline (the default — no built-in policy
        preempts unless it overrides this, so enabling
        ``EngineConfig.preemption`` changes nothing under fcfs/sjf/
        prefix-affinity/fair-share).

        Called by the engine only when preemption is enabled and the
        selected ``candidate`` cannot be admitted (KV memory or batch
        slots exhausted). ``running`` is the decoding batch in decode-start
        order; the return value must be one of its members. The decision
        must depend only on the requests and ``now`` — not on decode
        progress, which the event-driven replay modes do not materialize
        between events."""
        return None

    def next_priority_shift(self, now: float) -> Optional[float]:
        """Earliest future time at which this policy's selection order can
        change with *no* new arrival or completion (e.g. a waiting request
        crossing its deadline), or None when the order is time-invariant
        (the default). The event-driven engines cut their closed-form
        decode runs at this time so time-driven priority shifts land at
        the same step boundary in every replay mode — the stepwise loop
        sees them naturally by probing every step."""
        return None

    def drain(self) -> List[Request]:
        """Remove and return every waiting request (failed-job cleanup)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class FCFSPolicy(SchedulerPolicy):
    """Submission order — the offline engine's FIFO queue."""

    name = "fcfs"

    def __init__(self):
        self._queue: Deque[Request] = deque()

    def submit(self, request: Request) -> None:
        self._queue.append(request)

    def select(self, cache=None, now: float = 0.0) -> Optional[Request]:
        return self._queue[0] if self._queue else None

    def pop(self, request: Request) -> None:
        if not self._queue or self._queue[0] is not request:
            raise ServingError("pop out of order: not the selected request")
        self._queue.popleft()

    def drain(self) -> List[Request]:
        out = list(self._queue)
        self._queue.clear()
        return out

    def __len__(self) -> int:
        return len(self._queue)


class SJFPolicy(SchedulerPolicy):
    """Shortest predicted prompt first; FCFS among equals."""

    name = "sjf"

    def __init__(self):
        self._heap: List[Tuple[int, int, Request]] = []
        self._seq = 0

    def submit(self, request: Request) -> None:
        heappush(self._heap, (request.prompt_len, self._seq, request))
        self._seq += 1

    def select(self, cache=None, now: float = 0.0) -> Optional[Request]:
        return self._heap[0][2] if self._heap else None

    def pop(self, request: Request) -> None:
        if not self._heap or self._heap[0][2] is not request:
            raise ServingError("pop out of order: not the selected request")
        heappop(self._heap)

    def drain(self) -> List[Request]:
        out = [r for _, _, r in sorted(self._heap)]
        self._heap.clear()
        return out

    def __len__(self) -> int:
        return len(self._heap)


class PrefixAffinityPolicy(SchedulerPolicy):
    """Longest currently-cached prefix first; FCFS among ties.

    One bulk side-effect-free :meth:`RadixPrefixCache.match_many` probe
    per selection answers every waiting candidate in a single pass
    (deduplicating shared prompt tuples) — fine for a simulator, and
    exactly the signal a prefix-caching server has at hand (vLLM/SGLang
    expose the same lookup their admission uses).
    """

    name = "prefix-affinity"

    def __init__(self):
        self._pool: List[Tuple[int, Request]] = []  # (submit seq, request)
        self._seq = 0

    def submit(self, request: Request) -> None:
        self._pool.append((self._seq, request))
        self._seq += 1

    def select(self, cache=None, now: float = 0.0) -> Optional[Request]:
        if not self._pool:
            return None
        if cache is None:
            return min(self._pool)[1]
        hits = cache.match_many([req for _, req in self._pool])
        best = None
        best_key: Tuple[int, int] = (1, 0)
        for (seq, req), hit in zip(self._pool, hits):
            key = (-hit, seq)  # longest hit, then FCFS
            if best is None or key < best_key:
                best, best_key = req, key
        return best

    def pop(self, request: Request) -> None:
        for i, (_, req) in enumerate(self._pool):
            if req is request:
                del self._pool[i]
                return
        raise ServingError("pop of a request not in the pool")

    def drain(self) -> List[Request]:
        out = [r for _, r in sorted(self._pool)]
        self._pool.clear()
        return out

    def __len__(self) -> int:
        return len(self._pool)


class FairSharePolicy(SchedulerPolicy):
    """Per-tenant deficit round-robin (DRR) in prompt-token currency.

    Tenants are visited in first-seen order; each visit adds
    ``quantum_tokens`` to the tenant's deficit and the tenant may admit
    while its head (FIFO) request costs no more than the accumulated
    deficit. Selection is computed without mutating the DRR state — the
    deficit/cursor updates commit on :meth:`pop` — so repeated selects
    while admission is blocked keep returning the same request.
    """

    name = "fair-share"

    def __init__(self, quantum_tokens: int = 256):
        if quantum_tokens <= 0:
            raise ServingError("quantum_tokens must be positive")
        self.quantum_tokens = quantum_tokens
        self._queues: Dict[str, Deque[Request]] = {}
        self._order: List[str] = []  # tenants with nonempty queues
        self._deficit: Dict[str, int] = {}
        self._cursor = 0
        self._n = 0

    def submit(self, request: Request) -> None:
        tenant = request.tenant
        q = self._queues.get(tenant)
        if q is None:
            q = self._queues[tenant] = deque()
        if not q:
            self._order.append(tenant)
            self._deficit.setdefault(tenant, 0)
        q.append(request)
        self._n += 1

    def _walk(self, commit: bool) -> Optional[Request]:
        order = self._order
        if not order:
            return None
        deficit = self._deficit if commit else dict(self._deficit)
        i = self._cursor % len(order)
        while True:
            tenant = order[i]
            head = self._queues[tenant][0]
            cost = max(1, head.prompt_len)
            if deficit[tenant] >= cost:
                if commit:
                    deficit[tenant] -= cost
                    self._cursor = i
                return head
            # Top up once per visit; a full cycle adds one quantum to every
            # tenant, so the walk terminates in O(max_cost / quantum) cycles.
            deficit[tenant] += self.quantum_tokens
            i = (i + 1) % len(order)

    def select(self, cache=None, now: float = 0.0) -> Optional[Request]:
        return self._walk(commit=False)

    def pop(self, request: Request) -> None:
        chosen = self._walk(commit=True)
        if chosen is not request:
            raise ServingError("pop out of order: not the selected request")
        tenant = request.tenant
        q = self._queues[tenant]
        q.popleft()
        self._n -= 1
        if not q:
            # The commit walk just parked the cursor on this tenant, so its
            # index is the cursor; removing it leaves the cursor pointing at
            # the next tenant in rotation (modulo the shrunken list). An
            # exhausted tenant's residual deficit is forfeited — a tenant
            # cannot bank credit while it has nothing queued.
            self._order.pop(self._cursor)
            self._deficit[tenant] = 0
            self._cursor = self._cursor % len(self._order) if self._order else 0

    def drain(self) -> List[Request]:
        out: List[Request] = []
        for tenant in list(self._order):
            out.extend(self._queues[tenant])
            self._queues[tenant].clear()
        self._order.clear()
        self._deficit = {t: 0 for t in self._deficit}
        self._cursor = 0
        self._n = 0
        return out

    def __len__(self) -> int:
        return self._n


class DeadlinePolicy(SchedulerPolicy):
    """Earliest-deadline-first with late-request shedding.

    Each request's absolute deadline is ``arrival_s + deadline_s`` where
    ``deadline_s`` comes from the request (``Request.deadline_s``) or the
    policy default. EDF gives monotone priority aging for free — waiting
    requests climb the queue as the clock approaches their deadline.
    Requests with an *explicit* deadline already past at selection time
    are shed to the back (FCFS among themselves): they still complete,
    but they no longer block requests that can still meet their SLO.

    Deadline-less requests are never shed. Their synthetic deadline
    (arrival + policy default) stays their EDF key even once the clock
    passes it, so queue age keeps tightening their effective priority: a
    freshly arriving explicit-deadline request out-ranks a waiting
    deadline-less one only while its own deadline is earlier, which drifts
    later with every arrival. Under a sustained urgent stream a
    deadline-less request is therefore served after a bounded interval
    instead of starving behind every future arrival (pure EDF with
    re-shedding let that happen; see
    ``test_scheduler.py::TestDeadlineStarvation``).

    Selection is an O(pool) mutation-free scan (same shape as
    :class:`PrefixAffinityPolicy`); the late/on-time split depends only on
    ``now``, which the engine passes from its event clock, so repeated
    selects at one admission point agree across replay modes.
    """

    name = "deadline"

    def __init__(self, deadline_s: float = 10.0):
        if deadline_s <= 0:
            raise ServingError(f"deadline_s must be positive, got {deadline_s}")
        self.deadline_s = deadline_s
        self._pool: List[Tuple[int, Request]] = []  # (submit seq, request)
        self._seq = 0
        #: Requests already reported as shed to the trace recorder — one
        #: instant per request lifetime, however many selects see it late.
        self._shed_ids: set = set()
        #: Shed detection off the selection scan: explicit-deadline
        #: waiters land on this (deadline, seq, request) min-heap at
        #: submit (only while a tracer is bound) and :meth:`select`
        #: drains the expired prefix — O(sheds log n) total instead of a
        #: per-member branch on every scan, keeping the traced scan the
        #: same shape as the untraced one.
        self._shed_heap: List[Tuple[float, int, Request]] = []
        self._pooled: set = set()  # request ids currently waiting

    def deadline_of(self, request: Request) -> float:
        """Absolute deadline of ``request`` (arrival + relative SLO)."""
        rel = getattr(request, "deadline_s", None)
        return request.arrival_s + (rel if rel is not None else self.deadline_s)

    def _key(self, seq: int, req: Request, now: float) -> Tuple[int, float, int]:
        deadline = self.deadline_of(req)
        if getattr(req, "deadline_s", None) is None:
            # Deadline-less: a time-invariant EDF key — never shed to the
            # late bucket, so queue age monotonically improves its rank.
            return (0, deadline, seq)
        late = 1 if deadline < now else 0
        # Late requests fall back to FCFS order behind every on-time one.
        return (late, seq, seq) if late else (late, deadline, seq)

    def submit(self, request: Request) -> None:
        self._pool.append((self._seq, request))
        if self._tracer is not None:
            self._pooled.add(request.request_id)
            if getattr(request, "deadline_s", None) is not None:
                heappush(
                    self._shed_heap,
                    (self.deadline_of(request), self._seq, request),
                )
        self._seq += 1

    def _drain_sheds(self, now: float) -> None:
        """Report every explicit deadline that expired while its request
        was still waiting: the shed decision itself, recorded at the
        first select that sees it late. Selection order is untouched (the
        instant only records it), and the seen-set keeps resubmitted
        (preempted) requests from re-reporting."""
        heap = self._shed_heap
        while heap and heap[0][0] < now:
            deadline, _, req = heappop(heap)
            rid = req.request_id
            if rid in self._pooled and rid not in self._shed_ids:
                self._shed_ids.add(rid)
                self._tracer.instant(
                    "shed",
                    request_id=rid,
                    tenant=req.tenant,
                    deadline_s=deadline,
                )

    def select(self, cache=None, now: float = 0.0) -> Optional[Request]:
        if not self._pool:
            return None
        heap = self._shed_heap
        if heap and heap[0][0] < now and self._tracer is not None:
            self._drain_sheds(now)
        best = None
        best_key: Optional[Tuple[int, float, int]] = None
        for seq, req in self._pool:
            key = self._key(seq, req, now)
            if best is None or key < best_key:
                best, best_key = req, key
        return best

    def pop(self, request: Request) -> None:
        for i, (_, req) in enumerate(self._pool):
            if req is request:
                del self._pool[i]
                self._pooled.discard(request.request_id)
                return
        raise ServingError("pop of a request not in the pool")

    def preempt_victim(
        self,
        candidate: Request,
        running: Sequence[Request],
        now: float = 0.0,
    ) -> Optional[Request]:
        """Preempt the running request with the *latest* absolute deadline,
        but only if it is strictly later than the candidate's — the strict
        order means a re-admitted victim can never preempt its preemptor
        back, so preemption cannot livelock."""
        cand_deadline = self.deadline_of(candidate)
        victim = None
        victim_deadline = cand_deadline
        for req in running:
            deadline = self.deadline_of(req)
            # >= keeps the latest-started member among equal deadlines —
            # it has the least sunk decode work to throw away.
            if deadline > cand_deadline and deadline >= victim_deadline:
                victim, victim_deadline = req, deadline
        return victim

    def next_priority_shift(self, now: float) -> Optional[float]:
        """The next waiting *explicit* deadline to expire: when it does,
        that request is shed to the late bucket and a different head —
        with different preemption leverage — emerges. Deadline-less
        requests have time-invariant keys, so their expiry shifts
        nothing."""
        best = None
        for _, req in self._pool:
            if getattr(req, "deadline_s", None) is None:
                continue
            deadline = self.deadline_of(req)
            if deadline >= now and (best is None or deadline < best):
                best = deadline
        return best

    def drain(self) -> List[Request]:
        out = [r for _, r in sorted(self._pool, key=lambda e: e[0])]
        self._pool.clear()
        return out

    def __len__(self) -> int:
        return len(self._pool)


SCHEDULER_POLICIES = ("fcfs", "sjf", "prefix-affinity", "fair-share", "deadline")


def validate_policy_name(name: str) -> str:
    """Reject an unknown scheduler-policy name (``"auto"`` allowed) —
    called from ``EngineConfig.__post_init__`` so a typo fails when the
    config is built, not at first admission deep in a replay."""
    if name != "auto" and name not in SCHEDULER_POLICIES:
        raise ServingError(
            f"unknown scheduler policy {name!r}; choose from {SCHEDULER_POLICIES}"
        )
    return name


def make_policy(name: str, **kwargs) -> SchedulerPolicy:
    """Instantiate a scheduling policy by registry name."""
    if name == "fcfs":
        return FCFSPolicy(**kwargs)
    if name == "sjf":
        return SJFPolicy(**kwargs)
    if name == "prefix-affinity":
        return PrefixAffinityPolicy(**kwargs)
    if name == "fair-share":
        return FairSharePolicy(**kwargs)
    if name == "deadline":
        return DeadlinePolicy(**kwargs)
    raise ServingError(
        f"unknown scheduler policy {name!r}; choose from {SCHEDULER_POLICIES}"
    )


# --------------------------------------------------------------------------
# SLO accounting
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class LatencySummary:
    """Exact nearest-rank percentiles of one latency series (seconds)."""

    n: int
    p50: float
    p95: float
    p99: float
    mean: float
    max: float

    @staticmethod
    def of(values: Sequence[float]) -> "LatencySummary":
        from repro.bench.reporting import latency_percentiles  # avoid an import cycle

        vals = list(values)
        if not vals:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        p50, p95, p99 = latency_percentiles(vals)
        return LatencySummary(
            n=len(vals),
            p50=p50,
            p95=p95,
            p99=p99,
            mean=sum(vals) / len(vals),
            max=max(vals),
        )


@dataclass(frozen=True)
class SLOReport:
    """Latency/goodput rollup of one (sub)population of requests.

    ``queueing`` is arrival → end of the admission (prefill) wave, ``ttft``
    arrival → first decoded token (completion for zero-output requests),
    ``e2e`` arrival → completion. ``goodput_requests`` counts requests
    whose e2e latency met ``deadline_s`` (all of them when no deadline);
    ``goodput_tokens_per_s`` is their decode-token throughput over the
    span from first arrival to last completion.
    """

    n_requests: int
    deadline_s: Optional[float]
    queueing: LatencySummary
    ttft: LatencySummary
    e2e: LatencySummary
    goodput_requests: int
    goodput_tokens_per_s: float
    per_tenant: Dict[str, "SLOReport"] = field(default_factory=dict)
    n_preemptions: int = 0
    preempted_tokens_recomputed: int = 0
    preempted_tokens_swapped: int = 0
    n_prefill_chunks: int = 0

    @property
    def attainment(self) -> float:
        """Fraction of requests that met the deadline (1.0 without one)."""
        return self.goodput_requests / self.n_requests if self.n_requests else 0.0

    def render(self, title: str = "SLO report") -> str:
        """Operator-style fixed-width text table, one row per tenant plus
        the all-tenants rollup."""
        lines = [
            title,
            "tenant            reqs   q_p95     ttft_p50  ttft_p95  ttft_p99"
            "  e2e_p95   goodput",
        ]

        def row(name: str, r: "SLOReport") -> str:
            return (
                f"{name:<16} {r.n_requests:>5}   "
                f"{r.queueing.p95:7.3f}s  {r.ttft.p50:7.3f}s  "
                f"{r.ttft.p95:7.3f}s  {r.ttft.p99:7.3f}s  "
                f"{r.e2e.p95:7.3f}s  {100 * r.attainment:5.1f}%"
            )

        for tenant in sorted(self.per_tenant):
            lines.append(row(tenant, self.per_tenant[tenant]))
        lines.append(row("(all)", self))
        if self.deadline_s is not None:
            lines.append(
                f"deadline {self.deadline_s:.3f}s: {self.goodput_requests}/"
                f"{self.n_requests} on time, goodput "
                f"{self.goodput_tokens_per_s:.1f} decode tok/s"
            )
        if self.n_preemptions:
            lines.append(
                f"preemptions {self.n_preemptions}: "
                f"{self.preempted_tokens_recomputed} tok recomputed, "
                f"{self.preempted_tokens_swapped} tok swapped"
            )
        return "\n".join(lines)


def compute_slo(
    metrics: Sequence[RequestMetrics],
    deadline_s: Optional[float] = None,
    by_tenant: bool = True,
) -> SLOReport:
    """Roll per-request stamps into an :class:`SLOReport` (empty-safe)."""
    if deadline_s is not None and deadline_s <= 0:
        raise ServingError(f"deadline_s must be positive, got {deadline_s}")
    if not metrics:
        empty = LatencySummary.of(())
        return SLOReport(0, deadline_s, empty, empty, empty, 0, 0.0)
    n_preempt = sum(m.n_preemptions for m in metrics)
    tok_recomputed = sum(m.preempted_tokens_recomputed for m in metrics)
    tok_swapped = sum(m.preempted_tokens_swapped for m in metrics)
    n_chunks = sum(m.n_prefill_chunks for m in metrics)
    on_time = [
        m for m in metrics if deadline_s is None or m.e2e_s <= deadline_s
    ]
    span = max(m.finished_at_s for m in metrics) - min(m.arrival_s for m in metrics)
    goodput_tokens = sum(m.output_tokens for m in on_time)
    per_tenant: Dict[str, SLOReport] = {}
    if by_tenant:
        groups: Dict[str, List[RequestMetrics]] = {}
        for m in metrics:
            groups.setdefault(m.tenant, []).append(m)
        if len(groups) > 1 or "" not in groups:
            per_tenant = {
                t: compute_slo(ms, deadline_s=deadline_s, by_tenant=False)
                for t, ms in groups.items()
            }
    return SLOReport(
        n_requests=len(metrics),
        deadline_s=deadline_s,
        queueing=LatencySummary.of([m.queueing_delay_s for m in metrics]),
        ttft=LatencySummary.of([m.ttft_s for m in metrics]),
        e2e=LatencySummary.of([m.e2e_s for m in metrics]),
        goodput_requests=len(on_time),
        goodput_tokens_per_s=goodput_tokens / span if span > 0 else 0.0,
        per_tenant=per_tenant,
        n_preemptions=n_preempt,
        preempted_tokens_recomputed=tok_recomputed,
        preempted_tokens_swapped=tok_swapped,
        n_prefill_chunks=n_chunks,
    )
