"""RadixAttention-style prefix cache over token sequences.

The cache stores every served prompt as a path in a compressed radix tree.
A new prompt's longest cached prefix can be reused from the KV cache,
skipping its prefill. Mirrors the structure SGLang/vLLM use:

* compressed edges (token spans), split on partial match;
* LRU eviction at leaf granularity, so interior (widely shared) prefixes
  outlive their rarely-used extensions;
* pinned paths — the engine :meth:`pin`\\ s a running request's prompt path
  at admission and :meth:`unpin`\\ s it at completion; pinned nodes carry a
  refcount (``lock_ref``) up to the root and are never evicted, exactly like
  vLLM's block refcounts / SGLang's ``lock_ref``.

Two storage backends implement the same contract:

``backend="flat"`` (default when numpy is present)
    A flat, array-backed radix tree: node records live in slot-indexed
    parallel arrays (edge spans into one contiguous numpy token store;
    refcounts, last-touch ticks and links in plain Python lists — see the
    class docstring for why), child dispatch is a single ``(node,
    first_token) -> child`` hash map, longest-common-prefix compares are
    vectorized numpy slices instead of per-token loops, and LRU eviction
    walks an intrusive
    doubly-linked list kept strictly sorted by ``(last_access, node_id)``
    — O(1) touch and pop, no heap churn. Implemented by
    :class:`_FlatRadixCache`; selected automatically by
    ``RadixPrefixCache()`` (see :func:`serving_radix_enabled`).

``backend="node"``
    Today's per-node Python-object tree — the equivalence oracle.
    ``REPRO_SERVING_RADIX=0`` keeps it everywhere, mirroring
    ``REPRO_SERVING_VECTOR`` one layer down; the randomized suites in
    ``tests/llm/test_radix_flat.py`` / ``test_radix_equivalence.py``
    enforce bit-identical match lengths, eviction victims and order,
    counters, block allocations, and engine clocks across backends.

Requesting an explicit eviction engine (below) also selects the node
backend — the flat backend owns its own eviction structure.

Two eviction engines share the node-object tree:

``eviction="heap"`` (node-backend default)
    Amortized O(log n) eviction: evictable leaves live in a lazy min-heap
    keyed by LRU timestamp. Stale entries (re-touched, pinned, no longer a
    leaf, already evicted) are skipped at pop time. Edge comparison in
    ``match``/``insert`` runs over a packed byte view of the probe
    (``bytes.startswith`` with an offset), so no per-edge tuple slices are
    allocated on the hot path.

``eviction="scan"``
    The original reference implementation: a full-tree scan per evicted
    leaf and tuple-slice edge compares. Kept as the equivalence oracle —
    ``REPRO_SERVING_FASTPATH=0`` selects it (and the stepwise engine loop)
    everywhere.

Both engines make identical eviction decisions: LRU timestamps are unique
per node (a tick touches one root path, which contains at most one leaf),
so "pop the min-stamp evictable leaf" and "scan for the min-stamp evictable
leaf" pick the same victim.

Token counts are the currency: the engine charges the tree's
``total_tokens`` against KV memory and asks it to ``evict`` under pressure.
"""

from __future__ import annotations

import itertools
import os
from array import array
from heapq import heappush, heappop
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ServingError
from repro.llm.blocks import BlockAllocation, BlockManager

try:  # numpy backs the flat array-backed radix backend; its absence
    import numpy as _np  # only disables it (the node-tree oracle remains).
except ImportError:  # pragma: no cover - environment without numpy
    _np = None

#: Packed token width used for offset-based edge comparison ("q" = int64,
#: wide enough for any realistic vocabulary id).
_PACK_CODE = "q"
_PACK_BYTES = 8
#: Edges shorter than this are compared with a plain tuple slice — the
#: allocation is tiny and beats any packed-probe bookkeeping. Long edges
#: (shared headers, whole-prompt leaves) use ``bytes.startswith`` at an
#: offset when the caller supplies a packed probe: zero allocation, one C
#: call. Packing a probe costs O(len) Python-int marshalling, so the cache
#: never packs probes itself — callers that replay the same token
#: sequences repeatedly (the client packs once per distinct prompt, see
#: ``SimulatedLLMClient``) pass ``packed=`` and amortize it to nothing.
_BYTES_MIN_EDGE = 16


def serving_fastpath_enabled() -> bool:
    """Whether the serving-layer fast paths (event-driven engine replay,
    heap-based radix eviction) are enabled. ``REPRO_SERVING_FASTPATH=0``
    forces the stepwise/scan reference oracle, mirroring
    ``REPRO_CORE_FASTPATH`` for the solver layer."""
    flag = os.environ.get("REPRO_SERVING_FASTPATH", "1").strip().lower()
    return flag not in ("0", "false", "off", "no")


def serving_radix_enabled() -> bool:
    """Whether the flat array-backed radix backend is enabled (the default
    when numpy is importable). ``REPRO_SERVING_RADIX=0`` keeps the
    node-object tree — the equivalence oracle — everywhere, mirroring
    ``REPRO_SERVING_VECTOR`` one layer down."""
    if _np is None:
        return False
    flag = os.environ.get("REPRO_SERVING_RADIX", "1").strip().lower()
    return flag not in ("0", "false", "off", "no")


def _resolve_backend(backend: str, eviction: str) -> str:
    """Map the ``backend``/``eviction`` constructor arguments to a concrete
    backend name. Explicitly naming an eviction engine (``"heap"`` /
    ``"scan"``) selects the node backend — those engines live on the
    node-object tree, and tests/benches that construct them inspect its
    internals. ``backend="auto"`` with ``eviction="auto"`` takes the flat
    backend whenever numpy and both fast-path flags allow it."""
    if backend not in ("auto", "flat", "node"):
        raise ValueError(f"unknown radix backend {backend!r}")
    if backend == "flat":
        if _np is None:
            raise ServingError("backend='flat' requires numpy")
        return "flat"
    if backend == "node":
        return "node"
    if (
        eviction == "auto"
        and serving_radix_enabled()
        and serving_fastpath_enabled()
    ):
        return "flat"
    return "node"


class _Node:
    __slots__ = (
        "edge",
        "edge_bytes",
        "children",
        "parent",
        "last_access",
        "node_id",
        "lock_ref",
        "pin_count",
        "dead",
        "heap_entries",
        "alloc",
    )

    _ids = itertools.count()

    def __init__(self, edge: Tuple[int, ...], parent: Optional["_Node"]):
        self.edge = edge
        self.edge_bytes: Optional[bytes] = None
        self.children: Dict[int, "_Node"] = {}
        self.parent = parent
        self.last_access = 0
        self.node_id = next(_Node._ids)
        #: Number of active pins in this node's subtree (self included).
        self.lock_ref = 0
        #: Number of active pins whose path ends exactly at this node.
        self.pin_count = 0
        self.dead = False
        #: Live eviction-heap entries referencing this node (heap mode).
        self.heap_entries = 0
        #: Physical KV blocks backing this edge's tokens (paged accounting
        #: only; None when the cache has no block manager).
        self.alloc: Optional[BlockAllocation] = None


def _common_prefix_len(edge: Sequence[int], tokens: Sequence[int], pos: int) -> int:
    """Length of the common prefix of ``edge`` and ``tokens[pos:]``,
    compared in place — no tail slice is allocated. Callers pre-check full
    edge equality with one C-level compare, so by the time we get here the
    sequences diverge somewhere."""
    n = min(len(edge), len(tokens) - pos)
    for i in range(n):
        if edge[i] != tokens[pos + i]:
            return i
    return n


def pack_tokens(tokens: Sequence[int]) -> Optional[bytes]:
    """Pack token ids into a fixed-width byte string suitable for the
    ``packed=`` argument of :meth:`RadixPrefixCache.match`/``insert``, or
    None if any id does not fit (falls back to tuple compares)."""
    try:
        return array(_PACK_CODE, tokens).tobytes()
    except (OverflowError, TypeError, ValueError):
        return None


class RadixPrefixCache:
    """Prefix cache with LRU eviction and pinned (refcounted) paths.

    Constructing ``RadixPrefixCache(...)`` dispatches on ``backend`` (see
    :func:`_resolve_backend`): the default returns a :class:`_FlatRadixCache`
    when numpy is present and ``REPRO_SERVING_RADIX`` allows it, else this
    node-object reference implementation. Both expose the same API and make
    bit-identical decisions."""

    def __new__(cls, **kwargs):
        if cls is RadixPrefixCache and _resolve_backend(
            kwargs.get("backend", "auto"), kwargs.get("eviction", "auto")
        ) == "flat":
            return super().__new__(_FlatRadixCache)
        return super().__new__(cls)

    def __init__(
        self,
        *,
        backend: str = "auto",
        eviction: str = "auto",
        block_manager: Optional[BlockManager] = None,
    ):
        if eviction == "auto":
            eviction = "heap" if serving_fastpath_enabled() else "scan"
        if eviction not in ("heap", "scan"):
            raise ValueError(f"unknown eviction mode {eviction!r}")
        self.backend = "node"
        self.eviction = eviction
        #: Optional paged-KV authority: when set, every node owns a block
        #: allocation for its edge tokens — created on insert, divided on
        #: edge splits (the straddling block is ref-shared), released on
        #: eviction. The tree decides *what* is shared; the manager charges
        #: *how many blocks* that sharing actually costs.
        self._bm = block_manager
        self.root = _Node(edge=(), parent=None)
        self.total_tokens = 0
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.evicted_tokens = 0
        self.evicted_nodes = 0
        #: Live non-root nodes (maintained, not recounted — surfaced by
        #: :meth:`stats` and compared across backends by the equivalence
        #: suites).
        self.n_nodes = 0
        #: Lazy min-heap of (last_access, node_id, node) eviction candidates
        #: (heap mode only). Entries are pushed when a node *becomes* an
        #: evictable leaf (creation, unpin, child evicted) — NOT on every
        #: LRU touch, which keeps match/insert walks heap-free. A touched
        #: node's entry goes stale-low; evict() re-pushes it at its current
        #: stamp when popped (lazy increase-key), so pops still come out in
        #: true LRU order.
        self._heap: Optional[List[Tuple[int, int, _Node]]] = (
            [] if eviction == "heap" else None
        )
        self._fast = self._heap is not None
        # One-slot identity memo: the engine probes the same prompt tuple
        # with insert -> pin, so pin() reuses insert()'s end node instead
        # of re-walking the path. (Safe: the token string spelled
        # root->node never changes — splits preserve it and only leaves
        # are evicted — so a live end node stays the deepest full match
        # for its tokens.)
        self._last_end: Optional[Tuple[Tuple[int, ...], _Node]] = None

    # ------------------------------------------------------------- helpers
    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _push_candidate(self, node: _Node) -> None:
        """Register a node that just became an evictable leaf. A node with
        a live entry needs no second one — stale-stamp entries are re-keyed
        at pop time, so one entry always suffices (and repeated pin/unpin
        cycles cannot grow the heap)."""
        if node.heap_entries == 0:
            node.heap_entries = 1
            heappush(self._heap, (node.last_access, node.node_id, node))

    # --------------------------------------------------------------- match
    def match(self, tokens: Sequence[int], packed: Optional[bytes] = None) -> int:
        """Length of the longest cached prefix of ``tokens``.

        Refreshes LRU timestamps along the matched path. ``packed`` is an
        optional pre-packed probe (``array("q", tokens).tobytes()``) that
        turns long-edge compares into allocation-free ``bytes.startswith``
        calls.
        """
        now = self._tick()
        node = self.root
        node.last_access = now
        if not isinstance(tokens, tuple):
            tokens = tuple(tokens)
        pos = 0
        n = len(tokens)
        tb = packed
        while pos < n:
            child = node.children.get(tokens[pos])
            if child is None:
                break
            edge = child.edge
            k = len(edge)
            eb = child.edge_bytes
            if eb is not None and tb is not None:
                full = tb.startswith(eb, pos * _PACK_BYTES)
            else:
                full = tokens[pos : pos + k] == edge
            if full:
                child.last_access = now
                pos += k
                node = child
                continue
            k = _common_prefix_len(edge, tokens, pos)
            if k == 0:
                break
            child.last_access = now
            pos += k
            break
        if pos > 0:
            self.hits += 1
        else:
            self.misses += 1
        return pos

    def match_len(self, tokens: Sequence[int], packed: Optional[bytes] = None) -> int:
        """Length of the longest cached prefix of ``tokens`` WITHOUT any
        side effects: no LRU refresh, no hit/miss counters, no clock tick.

        This is the probe scheduling policies use to rank waiting requests
        by cache affinity — a policy peeking at candidates must not perturb
        the eviction order or the counters the equivalence oracles compare.
        """
        node = self.root
        if not isinstance(tokens, tuple):
            tokens = tuple(tokens)
        pos = 0
        n = len(tokens)
        tb = packed
        while pos < n:
            child = node.children.get(tokens[pos])
            if child is None:
                break
            edge = child.edge
            k = len(edge)
            eb = child.edge_bytes
            if eb is not None and tb is not None:
                full = tb.startswith(eb, pos * _PACK_BYTES)
            else:
                full = tokens[pos : pos + k] == edge
            if full:
                pos += k
                node = child
                continue
            pos += _common_prefix_len(edge, tokens, pos)
            break
        return pos

    def match_many(self, requests: Sequence[object]) -> List[int]:
        """Batched, side-effect-free prefix probe: the longest cached
        prefix length of every request's prompt, in request order.

        ``requests`` is any sequence of objects with ``prompt_tokens`` /
        ``prompt_bytes`` attributes (``Request`` duck type). This is the
        bulk form of :meth:`match_len` the prefix-affinity scheduler and
        the prefix-aware cluster router consume: one call answers every
        waiting candidate, and probes of the *same* prompt tuple object
        (the encode cache interns prompts, so identical prompts share one
        tuple) are answered once and reused."""
        out: List[int] = []
        memo: Dict[int, int] = {}
        for req in requests:
            toks = req.prompt_tokens
            hit = memo.get(id(toks))
            if hit is None:
                hit = self.match_len(toks, req.prompt_bytes)
                memo[id(toks)] = hit
            out.append(hit)
        return out

    # --------------------------------------------------------------- stats
    @property
    def token_store_bytes(self) -> int:
        """The backend's token-storage footprint in bytes (packed-edge
        payload here; the flat backend reports its contiguous store
        buffer). O(1) — the trace recorder samples it per admission wave."""
        return self.total_tokens * _PACK_BYTES

    def stats(self) -> Dict[str, object]:
        """Operator telemetry snapshot. The counter fields (``nodes``,
        ``total_tokens``, ``hits``, ``misses``, ``evicted_tokens``,
        ``evicted_nodes``) are backend-independent — the equivalence
        suites compare them with ``==`` across backends;
        ``token_store_bytes`` is backend-specific (see the property)."""
        return {
            "backend": self.backend,
            "eviction": self.eviction,
            "nodes": self.n_nodes,
            "total_tokens": self.total_tokens,
            "token_store_bytes": self.token_store_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evicted_tokens": self.evicted_tokens,
            "evicted_nodes": self.evicted_nodes,
        }

    # -------------------------------------------------------------- insert
    def insert(self, tokens: Sequence[int], packed: Optional[bytes] = None) -> int:
        """Cache ``tokens``; returns the number of *newly* cached tokens.

        ``packed`` as in :meth:`match`; new long edges inherit their packed
        form from it (a byte-slice, no re-marshalling).
        """
        now = self._tick()
        node = self.root
        node.last_access = now
        if not isinstance(tokens, tuple):
            tokens = tuple(tokens)
        pos = 0
        n = len(tokens)
        fast = self._fast
        tb = packed
        while pos < n:
            child = node.children.get(tokens[pos])
            if child is None:
                leaf = _Node(edge=tokens[pos:], parent=node)
                if fast and tb is not None and n - pos >= _BYTES_MIN_EDGE:
                    leaf.edge_bytes = tb[pos * _PACK_BYTES :]
                leaf.last_access = now
                if self._bm is not None:
                    # The engine pre-checks capacity before inserting, so
                    # this draw from the pool cannot fail mid-admission.
                    leaf.alloc = self._bm.allocate(len(leaf.edge))
                node.children[tokens[pos]] = leaf
                if fast:
                    self._push_candidate(leaf)
                added = len(leaf.edge)
                self.total_tokens += added
                self.n_nodes += 1
                self._last_end = (tokens, leaf)
                return added
            edge = child.edge
            k = len(edge)
            eb = child.edge_bytes
            if eb is not None and tb is not None:
                full = tb.startswith(eb, pos * _PACK_BYTES)
            else:
                full = tokens[pos : pos + k] == edge
            if full:
                child.last_access = now
                pos += k
                node = child
                continue
            k = _common_prefix_len(edge, tokens, pos)
            # Split the edge at k; the existing tail keeps its subtree (and
            # its lock refs: every pin through the tail also pins the head).
            head, tail = edge[:k], edge[k:]
            mid = _Node(edge=head, parent=node)
            mid.last_access = now
            mid.lock_ref = child.lock_ref
            if eb is not None:
                if len(head) >= _BYTES_MIN_EDGE:
                    mid.edge_bytes = eb[: k * _PACK_BYTES]
                if len(tail) >= _BYTES_MIN_EDGE:
                    child.edge_bytes = eb[k * _PACK_BYTES :]
                else:
                    child.edge_bytes = None
            if self._bm is not None:
                # Divide the edge's blocks at the split point; a block the
                # cut falls inside is ref-shared between head and tail.
                mid.alloc, child.alloc = self._bm.split(child.alloc, k)
            node.children[tokens[pos]] = mid
            child.edge = tail
            child.parent = mid
            mid.children[tail[0]] = child
            child.last_access = now
            self.n_nodes += 1
            node = mid
            pos += k
        if node is not self.root:
            self._last_end = (tokens, node)
        return 0

    # ------------------------------------------------------------- pinning
    def _path_end(self, tokens: Tuple[int, ...]) -> Optional[_Node]:
        """Deepest node on the cached path of ``tokens`` (tolerant walk,
        like :meth:`path_node_ids`: a partially-matched child counts)."""
        node = self.root
        pos = 0
        last: Optional[_Node] = None
        n = len(tokens)
        while pos < n:
            child = node.children.get(tokens[pos])
            if child is None:
                break
            edge = child.edge
            if tokens[pos : pos + len(edge)] == edge:
                k = len(edge)
            else:
                k = _common_prefix_len(edge, tokens, pos)
            if k == 0:
                break
            last = child
            pos += k
            if k < len(edge):
                break
            node = child
        return last

    def _resolve_end(self, tokens: Tuple[int, ...]) -> Optional[_Node]:
        """Deepest cached node for ``tokens``, via the one-slot insert memo
        when it matches (identity compare — the engine replays the same
        tuple object through insert/pin/fork_path), else a path walk."""
        memo = self._last_end
        if memo is not None and memo[0] is tokens and not memo[1].dead:
            return memo[1]
        return self._path_end(tokens)

    def pin(self, tokens: Sequence[int]) -> Optional[_Node]:
        """Pin the cached path of ``tokens`` against eviction.

        Returns a ticket (pass to :meth:`unpin`), or None if nothing is
        cached. Does not refresh LRU stamps — pinning is bookkeeping, not a
        use. Pins survive later edge splits: the split head inherits the
        tail's refcount.
        """
        if not isinstance(tokens, tuple):
            tokens = tuple(tokens)
        end = self._resolve_end(tokens)
        if end is None:
            return None
        end.pin_count += 1
        cur: Optional[_Node] = end
        while cur is not None and cur is not self.root:
            cur.lock_ref += 1
            cur = cur.parent
        return end

    def unpin(self, ticket: Optional[_Node]) -> None:
        """Release a pin acquired with :meth:`pin` (None tickets are a
        no-op, matching pin's miss behavior)."""
        if ticket is None:
            return
        if ticket.pin_count <= 0:
            raise ServingError("unpin without a matching pin")
        ticket.pin_count -= 1
        cur: Optional[_Node] = ticket
        while cur is not None and cur is not self.root:
            cur.lock_ref -= 1
            if cur.lock_ref < 0:
                raise ServingError("lock refcount went negative")
            if (
                self._fast
                and cur.lock_ref == 0
                and not cur.children
                and not cur.dead
            ):
                self._push_candidate(cur)
            cur = cur.parent

    # ---------------------------------------------------- block ownership
    def fork_path(self, tokens: Sequence[int]) -> List[BlockAllocation]:
        """Fork (ref-count-bump) the block allocation of every node on the
        cached path of ``tokens`` — the paged-KV counterpart of :meth:`pin`:
        the admitted request holds its own reference to each shared block,
        exactly like a vLLM sequence forked from a cached prefix. Returns
        the forked allocations; the engine releases them at completion.
        No-op (empty list) without a block manager."""
        if self._bm is None:
            return []
        if not isinstance(tokens, tuple):
            tokens = tuple(tokens)
        forks: List[BlockAllocation] = []
        cur: Optional[_Node] = self._resolve_end(tokens)
        while cur is not None and cur is not self.root:
            if cur.alloc is None:
                raise ServingError(
                    f"node {cur.node_id} has no block allocation to fork"
                )
            forks.append(self._bm.fork(cur.alloc))
            cur = cur.parent
        return forks

    def fork_path_bundle(self, tokens: Sequence[int]) -> Optional[BlockAllocation]:
        """Single-allocation variant of :meth:`fork_path` for the
        vectorized engine: the block ids of every node on the cached path
        are concatenated and forked in one refcount pass
        (:meth:`BlockManager.fork_ids`), so admitting a request costs one
        vector operation over ~path-length ids instead of one fork per
        radix node. The ids form a multiset — a block straddling an edge
        split belongs to two adjacent nodes and is referenced once per
        node, exactly as the per-node forks would. Returns None without a
        block manager or when nothing of ``tokens`` is cached; the engine
        releases the bundle at completion."""
        if self._bm is None:
            return None
        if not isinstance(tokens, tuple):
            tokens = tuple(tokens)
        cur: Optional[_Node] = self._resolve_end(tokens)
        if cur is None:
            return None
        bm = self._bm
        extra: List[int] = []
        n_tokens = 0
        root = self.root
        if bm.vector:
            # Per-node id arrays are memoized on the allocations, so the
            # bundle is a concatenate of cached arrays — no per-id work.
            parts: List[object] = []
            while cur is not None and cur is not root:
                alloc = cur.alloc
                if alloc is None:
                    raise ServingError(
                        f"node {cur.node_id} has no block allocation to fork"
                    )
                arr = alloc.ids_arr
                if arr is None:
                    arr = bm.ids_array(alloc)
                parent = cur.parent
                if alloc.start_offset and parent is not None and parent is not root:
                    # A nonzero start offset means this edge begins
                    # mid-block: its first block is the straddle shared
                    # with — and listed last in — the parent edge's
                    # allocation, so it enters the distinct set via the
                    # parent and only its second occurrence is recorded
                    # here.
                    extra.append(alloc.block_ids[0])
                    parts.append(arr[1:])
                else:
                    parts.append(arr)
                n_tokens += alloc.n_tokens
                cur = parent
            return bm.fork_bundle_parts(parts, extra, n_tokens)
        base: List[int] = []
        while cur is not None and cur is not root:
            alloc = cur.alloc
            if alloc is None:
                raise ServingError(
                    f"node {cur.node_id} has no block allocation to fork"
                )
            bids = alloc.block_ids
            parent = cur.parent
            if alloc.start_offset and parent is not None and parent is not root:
                extra.append(bids[0])
                base.extend(bids[1:])
            else:
                base.extend(bids)
            n_tokens += alloc.n_tokens
            cur = parent
        return self._bm.fork_bundle(base, extra, n_tokens)

    # ------------------------------------------------------ legacy walkers
    def path_node_ids(self, tokens: Sequence[int]) -> Set[int]:
        """Ids of nodes along the cached path of ``tokens`` (tolerant walk:
        stops wherever the cache diverges). Used by the scan oracle to
        protect running requests' prompts from eviction."""
        ids: Set[int] = set()
        node = self.root
        pos = 0
        tokens = tuple(tokens)
        while pos < len(tokens):
            child = node.children.get(tokens[pos])
            if child is None:
                break
            edge = child.edge
            if tokens[pos : pos + len(edge)] == edge:
                k = len(edge)
            else:
                k = _common_prefix_len(edge, tokens, pos)
            if k == 0:
                break
            ids.add(child.node_id)
            pos += k
            if k < len(edge):
                break
            node = child
        return ids

    # ------------------------------------------------------------ eviction
    def evict(
        self,
        n_units: int,
        protected: Iterable[Sequence[int]] = (),
        unit: str = "tokens",
    ) -> int:
        """Evict LRU leaves until >= ``n_units`` freed or nothing remains.

        ``unit`` selects the currency: ``"tokens"`` (edge tokens removed
        from the tree — the token-sum oracle's view) or ``"blocks"``
        (physical blocks actually returned to the block manager's free
        pool; requires a block manager). The two differ under paged
        accounting: a victim whose blocks straddle a split boundary frees
        fewer blocks than its token count suggests, so block-denominated
        eviction keeps going until real memory is available.

        ``protected`` are token sequences whose cached paths must survive
        this call (the engine passes the not-yet-admitted request's matched
        prefix; running requests are pinned persistently). Paths pinned via
        :meth:`pin` always survive. Returns units actually freed.

        Victim *selection* is pure LRU either way, so the paged and token
        oracles pick victims in the same order — only the stopping point
        differs.
        """
        if unit not in ("tokens", "blocks"):
            raise ServingError(f"unknown eviction unit {unit!r}")
        if unit == "blocks" and self._bm is None:
            raise ServingError("block-denominated eviction needs a block manager")
        if not self._fast:
            return self._evict_scan(n_units, protected, unit)
        tickets = [self.pin(seq) for seq in protected]
        try:
            freed = 0
            heap = self._heap
            while freed < n_units:
                victim: Optional[_Node] = None
                while heap:
                    stamp, nid, node = heappop(heap)
                    node.heap_entries -= 1
                    if node.dead or node.children or node.lock_ref:
                        continue  # no longer a candidate (re-pushed if it
                        # becomes one again: unpin / child eviction)
                    if node.last_access != stamp:
                        # Touched since it was pushed: lazy increase-key.
                        self._push_candidate(node)
                        continue
                    victim = node
                    break
                if victim is None:
                    break
                freed += self._remove_leaf(victim, unit)
            return freed
        finally:
            for ticket in tickets:
                self.unpin(ticket)

    def _remove_leaf(self, victim: _Node, unit: str = "tokens") -> int:
        k = len(victim.edge)
        self.total_tokens -= k
        self.evicted_tokens += k
        self.evicted_nodes += 1
        self.n_nodes -= 1
        victim.dead = True
        parent = victim.parent
        assert parent is not None
        del parent.children[victim.edge[0]]
        victim.parent = None
        freed_blocks = 0
        if self._bm is not None and victim.alloc is not None:
            before = self._bm.free_blocks
            self._bm.release(victim.alloc)
            victim.alloc = None
            freed_blocks = self._bm.free_blocks - before
        if (
            self._fast
            and parent is not self.root
            and not parent.children
            and parent.lock_ref == 0
        ):
            self._push_candidate(parent)
        return freed_blocks if unit == "blocks" else k

    def _evict_scan(
        self, n_units: int, protected: Iterable[Sequence[int]], unit: str = "tokens"
    ) -> int:
        """Reference eviction: full-tree LRU scan per victim."""
        protected_ids: Set[int] = set()
        for seq in protected:
            protected_ids |= self.path_node_ids(seq)
        freed = 0
        while freed < n_units:
            victim = self._lru_leaf(protected_ids)
            if victim is None:
                break
            freed += self._remove_leaf(victim, unit)
        return freed

    def _lru_leaf(self, protected_ids: Set[int]) -> Optional[_Node]:
        best: Optional[_Node] = None
        stack = [self.root]
        while stack:
            node = stack.pop()
            if (
                node is not self.root
                and not node.children
                and node.lock_ref == 0
                and node.node_id not in protected_ids
            ):
                # Ties happen when one insert both splits an edge and adds
                # a divergent leaf (one tick stamps both); break them by
                # node id — the order the lazy heap uses — instead of
                # traversal order.
                if best is None or (node.last_access, node.node_id) < (
                    best.last_access,
                    best.node_id,
                ):
                    best = node
            stack.extend(node.children.values())
        return best

    # ---------------------------------------------------------- invariants
    def check_invariants(self) -> None:
        """Debug/testing: verify token accounting, tree structure, pin
        refcounts, and (heap mode) eviction-heap coverage."""
        count = 0
        stack = [self.root]
        nodes: List[_Node] = []
        while stack:
            node = stack.pop()
            nodes.append(node)
            if node is not self.root:
                if not node.edge:
                    raise ServingError("non-root node with empty edge")
                if node.parent is None:
                    raise ServingError("non-root node without parent")
                if node.dead:
                    raise ServingError("evicted node still reachable")
                if node.edge_bytes is not None and node.edge_bytes != pack_tokens(node.edge):
                    raise ServingError("packed edge out of sync with edge tokens")
                if self._bm is not None:
                    if node.alloc is None:
                        raise ServingError(
                            f"node {node.node_id} has no block allocation"
                        )
                    if node.alloc.released:
                        raise ServingError(
                            f"node {node.node_id} holds a released allocation"
                        )
                    if node.alloc.n_tokens != len(node.edge):
                        raise ServingError(
                            f"node {node.node_id} allocation covers "
                            f"{node.alloc.n_tokens} tokens for a "
                            f"{len(node.edge)}-token edge"
                        )
                    # The structural fact fork_path_bundle's straddle
                    # detection rests on: an edge starting mid-block shares
                    # that block with its parent edge, where it is last.
                    if node.alloc.start_offset and node.parent is not self.root:
                        parent_alloc = node.parent.alloc
                        if (
                            parent_alloc is None
                            or parent_alloc.block_ids[-1]
                            != node.alloc.block_ids[0]
                        ):
                            raise ServingError(
                                f"node {node.node_id} straddle block out of "
                                f"sync with parent allocation"
                            )
                count += len(node.edge)
            if node.pin_count < 0 or node.lock_ref < 0:
                raise ServingError("negative pin refcount")
            child_locks = 0
            for first, child in node.children.items():
                if child.edge[0] != first:
                    raise ServingError("child keyed by wrong first token")
                if child.parent is not node:
                    raise ServingError("parent pointer corrupted")
                child_locks += child.lock_ref
                stack.append(child)
            if node is not self.root and node.lock_ref != node.pin_count + child_locks:
                raise ServingError(
                    f"lock refcount drift at node {node.node_id}: "
                    f"lock_ref={node.lock_ref}, pins={node.pin_count}, "
                    f"children={child_locks}"
                )
        if count != self.total_tokens:
            raise ServingError(
                f"token accounting drift: counted {count}, recorded {self.total_tokens}"
            )
        if len(nodes) - 1 != self.n_nodes:
            raise ServingError(
                f"node accounting drift: counted {len(nodes) - 1}, "
                f"recorded {self.n_nodes}"
            )
        if self._fast:
            entry_tally: Dict[int, int] = {}
            for stamp, nid, node in self._heap:
                if nid != node.node_id:
                    raise ServingError("heap entry id out of sync with node")
                if stamp > node.last_access:
                    raise ServingError(
                        "heap entry stamp ahead of node LRU stamp"
                    )
                entry_tally[nid] = entry_tally.get(nid, 0) + 1
            for node in nodes:
                tally = entry_tally.get(node.node_id, 0)
                if tally != node.heap_entries:
                    raise ServingError(
                        f"heap entry counter drift at node {node.node_id}: "
                        f"counted {tally}, recorded {node.heap_entries}"
                    )
                if tally > 1:
                    raise ServingError(
                        f"duplicate heap entries for node {node.node_id}"
                    )
                if (
                    node is self.root
                    or node.children
                    or node.lock_ref
                    or node.dead
                ):
                    continue
                if tally == 0:
                    raise ServingError(
                        f"evictable leaf {node.node_id} missing from eviction heap"
                    )
        if self._bm is not None:
            self._bm.check_invariants()


# ---------------------------------------------------------------------------
# Flat array-backed backend
# ---------------------------------------------------------------------------
#: Sentinel link value for "slot is not in the LRU list" (the list's real
#: links are slot indices >= 0 or -1 for the ends).
_NOT_IN = -2

#: Edge compares at or below this length use a scalar loop against the
#: probe tuple — numpy slice/compare setup costs more than it saves on
#: tiny edges. Longer edges (shared headers, whole-prompt leaves) take one
#: vectorized compare + argmax.
_SMALL_EDGE = 8

#: Edge compares at or below this length try a C-level ``startswith``
#: full-match pre-check unconditionally — the ``tobytes`` copy is cheap
#: at this size and a warm walk is mostly full-edge matches. Longer edges
#: gate the pre-check on a last-token equality probe first: a divergent
#: edge almost always differs at its last position too, so the full-width
#: copy is only paid when a full match is likely.
_PRECHECK_EDGE = 256

#: Bound on the probe-array memo (id(tokens) -> (array, bytes) views). The
#: memo holds the tuple alongside the views so the id stays valid; clearing
#: it wholesale on overflow keeps the common case (a client replaying
#: interned prompt tuples) hot without unbounded growth.
_PROBE_MEMO_CAP = 4096


class _FlatRadixCache(RadixPrefixCache):
    """Flat array-backed radix cache: same contract as the node-tree
    reference, different machine.

    * **Node records** live in flat parallel arrays indexed by slot:
      edge span (``_estart``/``_elen`` into one contiguous numpy token
      store), parent slot, LRU stamp, node id, lock/pin refcounts, child
      count, and intrusive LRU links. The scalar record arrays are plain
      Python lists (amortized-doubling, machine ints) — CPython reads a
      list element ~5x faster than a numpy scalar, and the tree walk is
      all scalar reads; the *token payload* is the numpy part, where
      vectorized compares actually pay. Evicted slots go on a free list
      and are reused; node *ids* are never reused, so ``(slot, id)`` pin
      tickets detect stale unpins.
    * **Child dispatch** is one ``(parent_slot, first_token) -> child_slot``
      dict for the whole tree — no per-node dicts.
    * **LCP compares** are vectorized: the probe is a numpy view (zero-copy
      ``frombuffer`` of the packed bytes when supplied), an edge compare is
      one slice equality + ``argmax`` instead of a per-token Python loop.
    * **Edge splits are O(1)**: head and tail point at disjoint sub-spans
      of the same store region — no token is copied. Eviction strands the
      victim's span; the store compacts (copying exactly the live tokens)
      when stranded waste exceeds the live mass.
    * **LRU eviction** walks an intrusive doubly-linked list kept strictly
      sorted by ``(last_access, node_id)``: every touch carries a fresh
      global-maximum stamp, so touched nodes re-append at the tail (O(1))
      and the head scan yields victims in exactly the lazy heap's order.
      Because a parent is stamped whenever any descendant is touched,
      ``stamp(parent) >= stamp(child)`` always holds; the single case where
      a victim's parent becomes an evictable leaf that sorts *before* the
      scan cursor (an insert-split tie where the head kept the smaller id)
      is handled by jumping the cursor back to the parent.

    Equivalence with the node backend — match lengths, eviction victims
    and order, counters, block allocations — is enforced by the randomized
    suites in ``tests/llm/test_radix_flat.py`` and
    ``tests/llm/test_radix_equivalence.py``.

    Token ids must fit int64 — the same bound :func:`pack_tokens` assumes.
    """

    def __init__(
        self,
        *,
        backend: str = "auto",
        eviction: str = "auto",
        block_manager: Optional[BlockManager] = None,
    ):
        if _np is None:  # pragma: no cover - guarded by _resolve_backend
            raise ServingError("backend='flat' requires numpy")
        if eviction != "auto":
            raise ServingError(
                "the flat backend owns its eviction engine; an explicit "
                "eviction= selects the node backend"
            )
        self.backend = "flat"
        self.eviction = "flat-lru"
        self._bm = block_manager
        self.total_tokens = 0
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.evicted_tokens = 0
        self.evicted_nodes = 0
        self.n_nodes = 0
        # Slot 0 is the root (empty edge, id 0). The record arrays grow by
        # append in _new_slot — list appends are already amortized-doubling.
        self._estart: List[int] = [0]
        self._elen: List[int] = [0]
        self._parent: List[int] = [-1]
        self._stamp: List[int] = [0]
        self._nid: List[int] = [0]
        self._lock: List[int] = [0]
        self._pins: List[int] = [0]
        self._nchild: List[int] = [0]
        self._lru_prev: List[int] = [_NOT_IN]
        self._lru_next: List[int] = [_NOT_IN]
        self._dead: List[bool] = [False]
        #: Per-slot block allocations (paged accounting only).
        self._allocs: List[Optional[BlockAllocation]] = [None]
        self._children: Dict[Tuple[int, int], int] = {}
        self._free: List[int] = []
        self._n_slots = 1
        self._next_id = 1
        self._store = _np.zeros(256, dtype=_np.int64)
        self._store_n = 0
        self._lru_head = -1
        self._lru_tail = -1
        #: One-slot identity memo, as in the node backend: insert -> pin /
        #: fork of the same tuple object skips the path walk.
        self._last_end: Optional[Tuple[Tuple[int, ...], int]] = None
        self._probe_memo: Dict[int, Tuple[Tuple[int, ...], object]] = {}

    # ------------------------------------------------------------- storage
    def _new_slot(self, parent: int, estart: int, elen: int, now: int) -> int:
        if self._free:
            s = self._free.pop()
        else:
            s = self._n_slots
            self._n_slots += 1
            self._estart.append(0)
            self._elen.append(0)
            self._parent.append(-1)
            self._stamp.append(0)
            self._nid.append(0)
            self._lock.append(0)
            self._pins.append(0)
            self._nchild.append(0)
            self._lru_prev.append(_NOT_IN)
            self._lru_next.append(_NOT_IN)
            self._dead.append(True)
            self._allocs.append(None)
        self._estart[s] = estart
        self._elen[s] = elen
        self._parent[s] = parent
        self._stamp[s] = now
        self._nid[s] = self._next_id
        self._next_id += 1
        self._lock[s] = 0
        self._pins[s] = 0
        self._nchild[s] = 0
        self._lru_prev[s] = _NOT_IN
        self._lru_next[s] = _NOT_IN
        self._dead[s] = False
        self._allocs[s] = None
        self.n_nodes += 1
        return s

    def _store_reserve(self, m: int) -> int:
        """Ensure the token store has room for ``m`` appended tokens;
        returns the append offset. May compact (rewriting ``_estart``) when
        evicted spans outweigh the live tokens."""
        need = self._store_n + m
        if need > self._store.shape[0]:
            stranded = self._store_n - self.total_tokens
            if stranded > self.total_tokens and stranded >= 1024:
                self._compact_store()
                need = self._store_n + m
            if need > self._store.shape[0]:
                cap = self._store.shape[0]
                while cap < need:
                    cap *= 2
                new = _np.empty(cap, dtype=_np.int64)
                new[: self._store_n] = self._store[: self._store_n]
                self._store = new
        return self._store_n

    def _compact_store(self) -> None:
        """Copy live edge spans to the front of a fresh buffer. Spans are
        disjoint (splits divide, never duplicate), so this moves exactly
        ``total_tokens`` tokens. Child-dispatch keys are unaffected — they
        hold token *values*, not offsets."""
        new = _np.empty(self._store.shape[0], dtype=_np.int64)
        pos = 0
        estart, elen, dead, store = self._estart, self._elen, self._dead, self._store
        for s in range(1, self._n_slots):
            if dead[s]:
                continue
            k = int(elen[s])
            st = int(estart[s])
            new[pos : pos + k] = store[st : st + k]
            estart[s] = pos
            pos += k
        self._store = new
        self._store_n = pos

    def _probe_arr(self, tokens: Tuple[int, ...], packed: Optional[bytes]):
        """``(array, bytes)`` views of the probe: the int64 array drives
        vectorized compares, the bytes drive the medium-edge ``startswith``
        pre-check. Zero-copy over ``packed`` when the caller supplied it,
        else one marshalling pass memoized by tuple identity (clients
        intern prompt tuples, so replays hit the memo)."""
        key = id(tokens)
        memo = self._probe_memo.get(key)
        if memo is not None and memo[0] is tokens:
            return memo[1], memo[2]
        if packed is not None and len(packed) == len(tokens) * _PACK_BYTES:
            arr = _np.frombuffer(packed, dtype=_np.int64)
            pb = packed
        else:
            try:
                arr = _np.asarray(tokens, dtype=_np.int64)
            except (OverflowError, TypeError, ValueError) as exc:
                raise ServingError(
                    f"flat radix backend requires int64 token ids: {exc}"
                )
            pb = arr.tobytes()
        if len(self._probe_memo) >= _PROBE_MEMO_CAP:
            self._probe_memo.clear()
        self._probe_memo[key] = (tokens, arr, pb)
        return arr, pb

    # ----------------------------------------------------------- LRU order
    def _lru_unlink(self, s: int) -> None:
        p = self._lru_prev[s]
        nx = self._lru_next[s]
        if p >= 0:
            self._lru_next[p] = nx
        else:
            self._lru_head = nx
        if nx >= 0:
            self._lru_prev[nx] = p
        else:
            self._lru_tail = p
        self._lru_prev[s] = _NOT_IN
        self._lru_next[s] = _NOT_IN

    def _lru_append(self, s: int) -> None:
        t = self._lru_tail
        self._lru_prev[s] = t
        self._lru_next[s] = -1
        if t >= 0:
            self._lru_next[t] = s
        else:
            self._lru_head = s
        self._lru_tail = s

    def _touch(self, touched: List[int], now: int) -> None:
        """Stamp ``touched`` slots with ``now`` and move them to the list
        tail in node-id order. ``now`` is strictly greater than every stamp
        already in the list (ticks are monotone), so appending the batch
        sorted by id preserves the strict ``(stamp, id)`` order the
        eviction scan relies on."""
        if not touched:
            return
        if len(touched) > 1:
            touched.sort(key=self._nid.__getitem__)
        prev = self._lru_prev
        for s in touched:
            self._stamp[s] = now
            if prev[s] != _NOT_IN:
                self._lru_unlink(s)
            self._lru_append(s)

    # --------------------------------------------------------------- match
    def _edge_lcp(self, c: int, tokens, pa, pb, pos: int, m: int) -> int:
        """Common-prefix length of edge ``c`` vs the probe at ``pos``,
        bounded by ``m`` (``m >= 1``; the first token matched via the
        dispatch key).

        Three regimes: tiny edges take a scalar loop; medium edges try one
        C-level ``startswith`` against the probe bytes first (full-edge
        matches — the common case on a warm walk — then cost one small
        ``tobytes`` copy instead of a vectorized compare); long edges
        gate that pre-check on last-token equality, so a divergent edge
        (which almost always differs at its last position too) skips the
        full-width ``tobytes`` copy and goes straight to compare+argmax,
        while a warm full-edge match (shared 2k-token prompt header) still
        gets the C fast path."""
        if m == 1:
            return 1
        store = self._store
        s = self._estart[c]
        if m <= _SMALL_EDGE:
            lcp = 1
            while lcp < m and store[s + lcp] == tokens[pos + lcp]:
                lcp += 1
            return lcp
        if (
            m <= _PRECHECK_EDGE or store[s + m - 1] == tokens[pos + m - 1]
        ) and pb.startswith(store[s : s + m].tobytes(), pos * _PACK_BYTES):
            return m
        neq = store[s : s + m] != pa[pos : pos + m]
        j = int(neq.argmax())
        return m if not neq[j] else j

    def match(self, tokens: Sequence[int], packed: Optional[bytes] = None) -> int:
        now = self._tick()
        if not isinstance(tokens, tuple):
            tokens = tuple(tokens)
        n = len(tokens)
        pa, pb = self._probe_arr(tokens, packed) if n else (None, None)
        self._stamp[0] = now
        node = 0
        pos = 0
        touched: List[int] = []
        children = self._children
        elen = self._elen
        while pos < n:
            c = children.get((node, tokens[pos]))
            if c is None:
                break
            k = elen[c]
            rem = n - pos
            m = k if k <= rem else rem
            lcp = self._edge_lcp(c, tokens, pa, pb, pos, m)
            touched.append(c)
            pos += lcp
            if lcp != k:
                break
            node = c
        self._touch(touched, now)
        if pos > 0:
            self.hits += 1
        else:
            self.misses += 1
        return pos

    def match_len(self, tokens: Sequence[int], packed: Optional[bytes] = None) -> int:
        if not isinstance(tokens, tuple):
            tokens = tuple(tokens)
        n = len(tokens)
        pa, pb = self._probe_arr(tokens, packed) if n else (None, None)
        node = 0
        pos = 0
        children = self._children
        elen = self._elen
        while pos < n:
            c = children.get((node, tokens[pos]))
            if c is None:
                break
            k = elen[c]
            rem = n - pos
            m = k if k <= rem else rem
            lcp = self._edge_lcp(c, tokens, pa, pb, pos, m)
            pos += lcp
            if lcp != k:
                break
            node = c
        return pos

    # -------------------------------------------------------------- insert
    def insert(self, tokens: Sequence[int], packed: Optional[bytes] = None) -> int:
        now = self._tick()
        if not isinstance(tokens, tuple):
            tokens = tuple(tokens)
        n = len(tokens)
        pa, pb = self._probe_arr(tokens, packed) if n else (None, None)
        self._stamp[0] = now
        node = 0
        pos = 0
        touched: List[int] = []
        children = self._children
        while pos < n:
            c = children.get((node, tokens[pos]))
            if c is None:
                added = n - pos
                # Stamp the walked ancestors before drawing from the pool:
                # a CapacityError must leave the tree unchanged but the
                # path touched, exactly like the node backend (which stamps
                # inline during its walk).
                self._touch(touched, now)
                alloc = None
                if self._bm is not None:
                    # The engine pre-checks capacity before inserting, so
                    # this draw from the pool cannot fail mid-admission.
                    alloc = self._bm.allocate(added)
                start = self._store_reserve(added)
                self._store[start : start + added] = pa[pos:]
                self._store_n = start + added
                leaf = self._new_slot(node, start, added, now)
                children[(node, tokens[pos])] = leaf
                self._nchild[node] += 1
                if alloc is not None:
                    alloc.owner = leaf
                    self._allocs[leaf] = alloc
                self.total_tokens += added
                # The leaf's id is the newest in the tree, so appending it
                # after the ancestor batch keeps the strict (stamp, id)
                # LRU order even though both share this tick's stamp.
                self._touch([leaf], now)
                self._last_end = (tokens, leaf)
                return added
            k = self._elen[c]
            rem = n - pos
            m = k if k <= rem else rem
            lcp = self._edge_lcp(c, tokens, pa, pb, pos, m)
            if lcp == k:
                touched.append(c)
                node = c
                pos += lcp
                continue
            # Split edge c at lcp: the new head (mid) keeps [s, s+lcp) and
            # the tail keeps [s+lcp, s+k) — disjoint spans of the same
            # store region, no copy. Pins through the tail also pin the
            # head, so mid inherits the tail's lock refcount.
            s = self._estart[c]
            mid = self._new_slot(node, s, lcp, now)
            self._lock[mid] = self._lock[c]
            if self._bm is not None:
                a_mid, a_tail = self._bm.split(self._allocs[c], lcp)
                a_mid.owner = mid
                a_tail.owner = c
                self._allocs[mid] = a_mid
                self._allocs[c] = a_tail
            children[(node, tokens[pos])] = mid
            self._nchild[mid] = 1
            self._estart[c] = s + lcp
            self._elen[c] = k - lcp
            self._parent[c] = mid
            children[(mid, int(self._store[s + lcp]))] = c
            touched.append(mid)
            touched.append(c)
            node = mid
            pos += lcp
        self._touch(touched, now)
        if node != 0:
            self._last_end = (tokens, node)
        return 0

    # ------------------------------------------------------------- pinning
    def _path_end(self, tokens: Tuple[int, ...]) -> Optional[int]:
        n = len(tokens)
        if n == 0:
            return None
        pa, pb = self._probe_arr(tokens, None)
        node = 0
        pos = 0
        last: Optional[int] = None
        children = self._children
        elen = self._elen
        while pos < n:
            c = children.get((node, tokens[pos]))
            if c is None:
                break
            k = elen[c]
            rem = n - pos
            m = k if k <= rem else rem
            lcp = self._edge_lcp(c, tokens, pa, pb, pos, m)
            last = c
            pos += lcp
            if lcp < k:
                break
            node = c
        return last

    def _resolve_end(self, tokens: Tuple[int, ...]) -> Optional[int]:
        memo = self._last_end
        if memo is not None and memo[0] is tokens:
            return memo[1]
        return self._path_end(tokens)

    def pin(self, tokens: Sequence[int]):
        if not isinstance(tokens, tuple):
            tokens = tuple(tokens)
        end = self._resolve_end(tokens)
        if end is None:
            return None
        self._pins[end] += 1
        lock = self._lock
        parent = self._parent
        cur = end
        while cur != 0:
            lock[cur] += 1
            cur = parent[cur]
        return (end, self._nid[end])

    def unpin(self, ticket) -> None:
        if ticket is None:
            return
        s, tid = ticket
        # A stale ticket (slot evicted and reused) fails the id check —
        # pinned nodes are never evicted, so this only fires on
        # double-unpin, same as the node backend.
        if self._dead[s] or self._nid[s] != tid or self._pins[s] <= 0:
            raise ServingError("unpin without a matching pin")
        self._pins[s] -= 1
        lock = self._lock
        parent = self._parent
        cur = s
        while cur != 0:
            lock[cur] -= 1
            if lock[cur] < 0:
                raise ServingError("lock refcount went negative")
            cur = parent[cur]

    # ---------------------------------------------------- block ownership
    def fork_path(self, tokens: Sequence[int]) -> List[BlockAllocation]:
        if self._bm is None:
            return []
        if not isinstance(tokens, tuple):
            tokens = tuple(tokens)
        forks: List[BlockAllocation] = []
        cur = self._resolve_end(tokens)
        if cur is None:
            return forks
        parent = self._parent
        while cur != 0:
            alloc = self._allocs[cur]
            if alloc is None:
                raise ServingError(
                    f"node {self._nid[cur]} has no block allocation to fork"
                )
            forks.append(self._bm.fork(alloc))
            cur = parent[cur]
        return forks

    def fork_path_bundle(self, tokens: Sequence[int]) -> Optional[BlockAllocation]:
        if self._bm is None:
            return None
        if not isinstance(tokens, tuple):
            tokens = tuple(tokens)
        cur = self._resolve_end(tokens)
        if cur is None:
            return None
        bm = self._bm
        extra: List[int] = []
        n_tokens = 0
        parent = self._parent
        if bm.vector:
            parts: List[object] = []
            while cur != 0:
                alloc = self._allocs[cur]
                if alloc is None:
                    raise ServingError(
                        f"node {self._nid[cur]} has no block allocation to fork"
                    )
                arr = alloc.ids_arr
                if arr is None:
                    arr = bm.ids_array(alloc)
                p = parent[cur]
                if alloc.start_offset and p != 0:
                    # Mid-block edge start: its first block is the straddle
                    # shared with (and listed last in) the parent edge's
                    # allocation — the parent contributes the distinct id,
                    # only the second occurrence is recorded here.
                    extra.append(alloc.block_ids[0])
                    parts.append(arr[1:])
                else:
                    parts.append(arr)
                n_tokens += alloc.n_tokens
                cur = p
            return bm.fork_bundle_parts(parts, extra, n_tokens)
        base: List[int] = []
        while cur != 0:
            alloc = self._allocs[cur]
            if alloc is None:
                raise ServingError(
                    f"node {self._nid[cur]} has no block allocation to fork"
                )
            bids = alloc.block_ids
            p = parent[cur]
            if alloc.start_offset and p != 0:
                extra.append(bids[0])
                base.extend(bids[1:])
            else:
                base.extend(bids)
            n_tokens += alloc.n_tokens
            cur = p
        return bm.fork_bundle(base, extra, n_tokens)

    # ------------------------------------------------------ legacy walkers
    def path_node_ids(self, tokens: Sequence[int]) -> Set[int]:
        ids: Set[int] = set()
        tokens = tuple(tokens)
        n = len(tokens)
        if n == 0:
            return ids
        pa, pb = self._probe_arr(tokens, None)
        node = 0
        pos = 0
        children = self._children
        elen = self._elen
        while pos < n:
            c = children.get((node, tokens[pos]))
            if c is None:
                break
            k = elen[c]
            rem = n - pos
            m = k if k <= rem else rem
            lcp = self._edge_lcp(c, tokens, pa, pb, pos, m)
            ids.add(self._nid[c])
            pos += lcp
            if lcp < k:
                break
            node = c
        return ids

    # ------------------------------------------------------------ eviction
    def evict(
        self,
        n_units: int,
        protected: Iterable[Sequence[int]] = (),
        unit: str = "tokens",
    ) -> int:
        if unit not in ("tokens", "blocks"):
            raise ServingError(f"unknown eviction unit {unit!r}")
        if unit == "blocks" and self._bm is None:
            raise ServingError("block-denominated eviction needs a block manager")
        tickets = [self.pin(seq) for seq in protected]
        try:
            freed = 0
            nchild = self._nchild
            lock = self._lock
            stamp = self._stamp
            nid = self._nid
            parent = self._parent
            lru_next = self._lru_next
            cur = self._lru_head
            while freed < n_units and cur != -1:
                if nchild[cur] or lock[cur]:
                    cur = lru_next[cur]
                    continue
                vstamp = stamp[cur]
                vid = nid[cur]
                p = parent[cur]
                nxt = lru_next[cur]
                freed += self._remove_leaf(cur, unit)
                if (
                    p != 0
                    and not nchild[p]
                    and not lock[p]
                    and stamp[p] == vstamp
                    and nid[p] < vid
                ):
                    # The parent just became an evictable leaf that sorts
                    # *before* the victim (insert-split tie: one tick
                    # stamped both, the head kept the smaller id) — the
                    # only candidate that can appear behind the cursor.
                    cur = p
                else:
                    cur = nxt
            return freed
        finally:
            for ticket in tickets:
                self.unpin(ticket)

    def _remove_leaf(self, s: int, unit: str = "tokens") -> int:
        k = self._elen[s]
        self.total_tokens -= k
        self.evicted_tokens += k
        self.evicted_nodes += 1
        self.n_nodes -= 1
        p = self._parent[s]
        del self._children[(p, int(self._store[self._estart[s]]))]
        self._nchild[p] -= 1
        self._lru_unlink(s)
        freed_blocks = 0
        alloc = self._allocs[s]
        if self._bm is not None and alloc is not None:
            before = self._bm.free_blocks
            self._bm.release(alloc)
            freed_blocks = self._bm.free_blocks - before
        self._allocs[s] = None
        self._dead[s] = True
        self._free.append(s)
        memo = self._last_end
        if memo is not None and memo[1] == s:
            self._last_end = None
        return freed_blocks if unit == "blocks" else k

    # --------------------------------------------------------------- stats
    @property
    def token_store_bytes(self) -> int:
        return int(self._store.nbytes)

    # ---------------------------------------------------------- invariants
    def check_invariants(self) -> None:
        """Debug/testing: verify token/node accounting, tree structure,
        pin refcounts, block ownership, store-span disjointness, and the
        strict ``(stamp, id)`` order of the LRU list."""
        live = [s for s in range(1, self._n_slots) if not self._dead[s]]
        if len(live) != self.n_nodes:
            raise ServingError(
                f"node accounting drift: counted {len(live)}, "
                f"recorded {self.n_nodes}"
            )
        count = sum(int(self._elen[s]) for s in live)
        if count != self.total_tokens:
            raise ServingError(
                f"token accounting drift: counted {count}, "
                f"recorded {self.total_tokens}"
            )
        if self._dead[0] or int(self._elen[0]) != 0:
            raise ServingError("root slot corrupted")
        # Child dispatch: every key consistent, tallies match _nchild.
        nchild_tally: Dict[int, int] = {}
        child_locks: Dict[int, int] = {}
        for (p, tok), c in self._children.items():
            if self._dead[c]:
                raise ServingError("evicted node still reachable")
            if self._dead[p]:
                raise ServingError("child keyed under a dead parent")
            if int(self._parent[c]) != p:
                raise ServingError("parent pointer corrupted")
            if int(self._store[int(self._estart[c])]) != tok:
                raise ServingError("child keyed by wrong first token")
            nchild_tally[p] = nchild_tally.get(p, 0) + 1
            child_locks[p] = child_locks.get(p, 0) + int(self._lock[c])
        for s in [0] + live:
            if nchild_tally.get(s, 0) != int(self._nchild[s]):
                raise ServingError(
                    f"child count drift at slot {s}: counted "
                    f"{nchild_tally.get(s, 0)}, recorded {int(self._nchild[s])}"
                )
        for s in live:
            if int(self._elen[s]) <= 0:
                raise ServingError("non-root node with empty edge")
            if int(self._estart[s]) + int(self._elen[s]) > self._store_n:
                raise ServingError("edge span outside the token store")
            if self._pins[s] < 0 or self._lock[s] < 0:
                raise ServingError("negative pin refcount")
            if int(self._lock[s]) != int(self._pins[s]) + child_locks.get(s, 0):
                raise ServingError(
                    f"lock refcount drift at slot {s}: "
                    f"lock={int(self._lock[s])}, pins={int(self._pins[s])}, "
                    f"children={child_locks.get(s, 0)}"
                )
            p = int(self._parent[s])
            if p < 0:
                raise ServingError("non-root node without parent")
            if p != 0 and self._stamp[p] < self._stamp[s]:
                raise ServingError(
                    "parent LRU stamp behind child (touch must stamp the "
                    "whole path)"
                )
            # Every live node must reach the root through live parents.
            hops = 0
            while p != 0:
                if self._dead[p]:
                    raise ServingError("live node parented to a dead slot")
                p = int(self._parent[p])
                hops += 1
                if hops > self._n_slots:
                    raise ServingError("parent chain cycle")
            if self._bm is not None:
                alloc = self._allocs[s]
                if alloc is None:
                    raise ServingError(f"slot {s} has no block allocation")
                if alloc.released:
                    raise ServingError(f"slot {s} holds a released allocation")
                if alloc.owner != s:
                    raise ServingError(
                        f"allocation owner {alloc.owner} out of sync with slot {s}"
                    )
                if alloc.n_tokens != int(self._elen[s]):
                    raise ServingError(
                        f"slot {s} allocation covers {alloc.n_tokens} tokens "
                        f"for a {int(self._elen[s])}-token edge"
                    )
                pslot = int(self._parent[s])
                if alloc.start_offset and pslot != 0:
                    parent_alloc = self._allocs[pslot]
                    if (
                        parent_alloc is None
                        or parent_alloc.block_ids[-1] != alloc.block_ids[0]
                    ):
                        raise ServingError(
                            f"slot {s} straddle block out of sync with "
                            f"parent allocation"
                        )
        # Store spans of live nodes never overlap (splits divide, eviction
        # strands — nothing duplicates).
        spans = sorted((int(self._estart[s]), int(self._elen[s])) for s in live)
        end = 0
        for st, k in spans:
            if st < end:
                raise ServingError("overlapping edge spans in the token store")
            end = st + k
        # LRU list: doubly linked, strictly sorted by (stamp, id), covering
        # exactly the live non-root slots — the flat analogue of the heap
        # coverage check.
        seen = 0
        prev_slot = -1
        prev_key: Optional[Tuple[int, int]] = None
        cur = self._lru_head
        while cur != -1:
            if self._dead[cur] or cur == 0:
                raise ServingError("dead or root slot in the LRU list")
            if int(self._lru_prev[cur]) != prev_slot:
                raise ServingError("LRU back-link corrupted")
            key = (int(self._stamp[cur]), int(self._nid[cur]))
            if prev_key is not None and key <= prev_key:
                raise ServingError("LRU list out of (stamp, id) order")
            prev_key = key
            prev_slot = cur
            seen += 1
            if seen > len(live):
                raise ServingError("LRU list cycle")
            cur = int(self._lru_next[cur])
        if seen != len(live):
            raise ServingError(
                f"LRU list covers {seen} slots, {len(live)} live nodes"
            )
        if self._lru_tail != prev_slot:
            raise ServingError("LRU tail out of sync")
        if self._bm is not None:
            self._bm.check_invariants()
