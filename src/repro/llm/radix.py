"""RadixAttention-style prefix cache over token sequences.

The cache stores every served prompt as a path in a compressed radix tree.
A new prompt's longest cached prefix can be reused from the KV cache,
skipping its prefill. Mirrors the structure SGLang/vLLM use:

* compressed edges (token spans), split on partial match;
* LRU eviction at leaf granularity, so interior (widely shared) prefixes
  outlive their rarely-used extensions;
* protected paths — the engine passes the prompts of *running* requests to
  :meth:`evict`, and any node on those paths is skipped (vLLM pins blocks
  referenced by scheduled sequences the same way).

Token counts are the currency: the engine charges the tree's
``total_tokens`` against KV memory and asks it to ``evict`` under pressure.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ServingError


class _Node:
    __slots__ = ("edge", "children", "parent", "last_access", "node_id")

    _ids = itertools.count()

    def __init__(self, edge: Tuple[int, ...], parent: Optional["_Node"]):
        self.edge = edge
        self.children: Dict[int, "_Node"] = {}
        self.parent = parent
        self.last_access = 0
        self.node_id = next(_Node._ids)


def _common_prefix_len(a: Sequence[int], b: Sequence[int]) -> int:
    # Compare in place: callers pre-check full edge equality with one
    # C-level tuple compare, so by the time we get here the sequences
    # diverge somewhere — an eager whole-prefix tuple comparison would
    # allocate two copies just to discover that mismatch.
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n


class RadixPrefixCache:
    """Prefix cache with LRU eviction and protected (pinned) paths."""

    def __init__(self):
        self.root = _Node(edge=(), parent=None)
        self.total_tokens = 0
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.evicted_tokens = 0

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def match(self, tokens: Sequence[int]) -> int:
        """Length of the longest cached prefix of ``tokens``.

        Refreshes LRU timestamps along the matched path.
        """
        now = self._tick()
        node = self.root
        node.last_access = now
        pos = 0
        tokens = tuple(tokens)
        while pos < len(tokens):
            child = node.children.get(tokens[pos])
            if child is None:
                break
            edge = child.edge
            k = len(edge)
            if tokens[pos : pos + k] == edge:
                child.last_access = now
                pos += k
                node = child
                continue
            k = _common_prefix_len(edge, tokens[pos:])
            if k == 0:
                break
            child.last_access = now
            pos += k
            break
        if pos > 0:
            self.hits += 1
        else:
            self.misses += 1
        return pos

    def insert(self, tokens: Sequence[int]) -> int:
        """Cache ``tokens``; returns the number of *newly* cached tokens."""
        now = self._tick()
        node = self.root
        node.last_access = now
        pos = 0
        tokens = tuple(tokens)
        while pos < len(tokens):
            child = node.children.get(tokens[pos])
            if child is None:
                leaf = _Node(edge=tokens[pos:], parent=node)
                leaf.last_access = now
                node.children[tokens[pos]] = leaf
                added = len(leaf.edge)
                self.total_tokens += added
                return added
            edge = child.edge
            k = len(edge)
            if tokens[pos : pos + k] == edge:
                child.last_access = now
                pos += k
                node = child
                continue
            k = _common_prefix_len(edge, tokens[pos:])
            child.last_access = now
            # Split the edge at k; the existing tail keeps its subtree.
            head, tail = edge[:k], edge[k:]
            mid = _Node(edge=head, parent=node)
            mid.last_access = now
            node.children[tokens[pos]] = mid
            child.edge = tail
            child.parent = mid
            mid.children[tail[0]] = child
            node = mid
            pos += k
        return 0

    def path_node_ids(self, tokens: Sequence[int]) -> Set[int]:
        """Ids of nodes along the cached path of ``tokens`` (tolerant walk:
        stops wherever the cache diverges). Used to protect running
        requests' prompts from eviction."""
        ids: Set[int] = set()
        node = self.root
        pos = 0
        tokens = tuple(tokens)
        while pos < len(tokens):
            child = node.children.get(tokens[pos])
            if child is None:
                break
            edge = child.edge
            if tokens[pos : pos + len(edge)] == edge:
                k = len(edge)
            else:
                k = _common_prefix_len(edge, tokens[pos:])
            if k == 0:
                break
            ids.add(child.node_id)
            pos += k
            if k < len(edge):
                break
            node = child
        return ids

    def evict(
        self, n_tokens: int, protected: Iterable[Sequence[int]] = ()
    ) -> int:
        """Evict LRU leaves until >= ``n_tokens`` freed or nothing remains.

        ``protected`` are token sequences (running prompts) whose paths must
        survive. Returns tokens actually freed.
        """
        protected_ids: Set[int] = set()
        for seq in protected:
            protected_ids |= self.path_node_ids(seq)
        freed = 0
        while freed < n_tokens:
            victim = self._lru_leaf(protected_ids)
            if victim is None:
                break
            freed += len(victim.edge)
            self.total_tokens -= len(victim.edge)
            self.evicted_tokens += len(victim.edge)
            parent = victim.parent
            assert parent is not None
            del parent.children[victim.edge[0]]
        return freed

    def _lru_leaf(self, protected_ids: Set[int]) -> Optional[_Node]:
        best: Optional[_Node] = None
        stack = [self.root]
        while stack:
            node = stack.pop()
            if (
                node is not self.root
                and not node.children
                and node.node_id not in protected_ids
            ):
                if best is None or node.last_access < best.last_access:
                    best = node
            stack.extend(node.children.values())
        return best

    def check_invariants(self) -> None:
        """Debug/testing: verify token accounting and tree structure."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node is not self.root:
                if not node.edge:
                    raise ServingError("non-root node with empty edge")
                if node.parent is None:
                    raise ServingError("non-root node without parent")
                count += len(node.edge)
            for first, child in node.children.items():
                if child.edge[0] != first:
                    raise ServingError("child keyed by wrong first token")
                if child.parent is not node:
                    raise ServingError("parent pointer corrupted")
                stack.append(child)
        if count != self.total_tokens:
            raise ServingError(
                f"token accounting drift: counted {count}, recorded {self.total_tokens}"
            )
