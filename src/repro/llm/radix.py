"""RadixAttention-style prefix cache over token sequences.

The cache stores every served prompt as a path in a compressed radix tree.
A new prompt's longest cached prefix can be reused from the KV cache,
skipping its prefill. Mirrors the structure SGLang/vLLM use:

* compressed edges (token spans), split on partial match;
* LRU eviction at leaf granularity, so interior (widely shared) prefixes
  outlive their rarely-used extensions;
* pinned paths — the engine :meth:`pin`\\ s a running request's prompt path
  at admission and :meth:`unpin`\\ s it at completion; pinned nodes carry a
  refcount (``lock_ref``) up to the root and are never evicted, exactly like
  vLLM's block refcounts / SGLang's ``lock_ref``.

Two eviction engines share the tree:

``eviction="heap"`` (default)
    Amortized O(log n) eviction: evictable leaves live in a lazy min-heap
    keyed by LRU timestamp. Stale entries (re-touched, pinned, no longer a
    leaf, already evicted) are skipped at pop time. Edge comparison in
    ``match``/``insert`` runs over a packed byte view of the probe
    (``bytes.startswith`` with an offset), so no per-edge tuple slices are
    allocated on the hot path.

``eviction="scan"``
    The original reference implementation: a full-tree scan per evicted
    leaf and tuple-slice edge compares. Kept as the equivalence oracle —
    ``REPRO_SERVING_FASTPATH=0`` selects it (and the stepwise engine loop)
    everywhere.

Both engines make identical eviction decisions: LRU timestamps are unique
per node (a tick touches one root path, which contains at most one leaf),
so "pop the min-stamp evictable leaf" and "scan for the min-stamp evictable
leaf" pick the same victim.

Token counts are the currency: the engine charges the tree's
``total_tokens`` against KV memory and asks it to ``evict`` under pressure.
"""

from __future__ import annotations

import itertools
import os
from array import array
from heapq import heappush, heappop
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ServingError
from repro.llm.blocks import BlockAllocation, BlockManager

#: Packed token width used for offset-based edge comparison ("q" = int64,
#: wide enough for any realistic vocabulary id).
_PACK_CODE = "q"
_PACK_BYTES = 8
#: Edges shorter than this are compared with a plain tuple slice — the
#: allocation is tiny and beats any packed-probe bookkeeping. Long edges
#: (shared headers, whole-prompt leaves) use ``bytes.startswith`` at an
#: offset when the caller supplies a packed probe: zero allocation, one C
#: call. Packing a probe costs O(len) Python-int marshalling, so the cache
#: never packs probes itself — callers that replay the same token
#: sequences repeatedly (the client packs once per distinct prompt, see
#: ``SimulatedLLMClient``) pass ``packed=`` and amortize it to nothing.
_BYTES_MIN_EDGE = 16


def serving_fastpath_enabled() -> bool:
    """Whether the serving-layer fast paths (event-driven engine replay,
    heap-based radix eviction) are enabled. ``REPRO_SERVING_FASTPATH=0``
    forces the stepwise/scan reference oracle, mirroring
    ``REPRO_CORE_FASTPATH`` for the solver layer."""
    flag = os.environ.get("REPRO_SERVING_FASTPATH", "1").strip().lower()
    return flag not in ("0", "false", "off", "no")


class _Node:
    __slots__ = (
        "edge",
        "edge_bytes",
        "children",
        "parent",
        "last_access",
        "node_id",
        "lock_ref",
        "pin_count",
        "dead",
        "heap_entries",
        "alloc",
    )

    _ids = itertools.count()

    def __init__(self, edge: Tuple[int, ...], parent: Optional["_Node"]):
        self.edge = edge
        self.edge_bytes: Optional[bytes] = None
        self.children: Dict[int, "_Node"] = {}
        self.parent = parent
        self.last_access = 0
        self.node_id = next(_Node._ids)
        #: Number of active pins in this node's subtree (self included).
        self.lock_ref = 0
        #: Number of active pins whose path ends exactly at this node.
        self.pin_count = 0
        self.dead = False
        #: Live eviction-heap entries referencing this node (heap mode).
        self.heap_entries = 0
        #: Physical KV blocks backing this edge's tokens (paged accounting
        #: only; None when the cache has no block manager).
        self.alloc: Optional[BlockAllocation] = None


def _common_prefix_len(edge: Sequence[int], tokens: Sequence[int], pos: int) -> int:
    """Length of the common prefix of ``edge`` and ``tokens[pos:]``,
    compared in place — no tail slice is allocated. Callers pre-check full
    edge equality with one C-level compare, so by the time we get here the
    sequences diverge somewhere."""
    n = min(len(edge), len(tokens) - pos)
    for i in range(n):
        if edge[i] != tokens[pos + i]:
            return i
    return n


def pack_tokens(tokens: Sequence[int]) -> Optional[bytes]:
    """Pack token ids into a fixed-width byte string suitable for the
    ``packed=`` argument of :meth:`RadixPrefixCache.match`/``insert``, or
    None if any id does not fit (falls back to tuple compares)."""
    try:
        return array(_PACK_CODE, tokens).tobytes()
    except (OverflowError, TypeError, ValueError):
        return None


class RadixPrefixCache:
    """Prefix cache with LRU eviction and pinned (refcounted) paths."""

    def __init__(
        self,
        *,
        eviction: str = "auto",
        block_manager: Optional[BlockManager] = None,
    ):
        if eviction == "auto":
            eviction = "heap" if serving_fastpath_enabled() else "scan"
        if eviction not in ("heap", "scan"):
            raise ValueError(f"unknown eviction mode {eviction!r}")
        self.eviction = eviction
        #: Optional paged-KV authority: when set, every node owns a block
        #: allocation for its edge tokens — created on insert, divided on
        #: edge splits (the straddling block is ref-shared), released on
        #: eviction. The tree decides *what* is shared; the manager charges
        #: *how many blocks* that sharing actually costs.
        self._bm = block_manager
        self.root = _Node(edge=(), parent=None)
        self.total_tokens = 0
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.evicted_tokens = 0
        #: Lazy min-heap of (last_access, node_id, node) eviction candidates
        #: (heap mode only). Entries are pushed when a node *becomes* an
        #: evictable leaf (creation, unpin, child evicted) — NOT on every
        #: LRU touch, which keeps match/insert walks heap-free. A touched
        #: node's entry goes stale-low; evict() re-pushes it at its current
        #: stamp when popped (lazy increase-key), so pops still come out in
        #: true LRU order.
        self._heap: Optional[List[Tuple[int, int, _Node]]] = (
            [] if eviction == "heap" else None
        )
        self._fast = self._heap is not None
        # One-slot identity memo: the engine probes the same prompt tuple
        # with insert -> pin, so pin() reuses insert()'s end node instead
        # of re-walking the path. (Safe: the token string spelled
        # root->node never changes — splits preserve it and only leaves
        # are evicted — so a live end node stays the deepest full match
        # for its tokens.)
        self._last_end: Optional[Tuple[Tuple[int, ...], _Node]] = None

    # ------------------------------------------------------------- helpers
    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _push_candidate(self, node: _Node) -> None:
        """Register a node that just became an evictable leaf. A node with
        a live entry needs no second one — stale-stamp entries are re-keyed
        at pop time, so one entry always suffices (and repeated pin/unpin
        cycles cannot grow the heap)."""
        if node.heap_entries == 0:
            node.heap_entries = 1
            heappush(self._heap, (node.last_access, node.node_id, node))

    # --------------------------------------------------------------- match
    def match(self, tokens: Sequence[int], packed: Optional[bytes] = None) -> int:
        """Length of the longest cached prefix of ``tokens``.

        Refreshes LRU timestamps along the matched path. ``packed`` is an
        optional pre-packed probe (``array("q", tokens).tobytes()``) that
        turns long-edge compares into allocation-free ``bytes.startswith``
        calls.
        """
        now = self._tick()
        node = self.root
        node.last_access = now
        if not isinstance(tokens, tuple):
            tokens = tuple(tokens)
        pos = 0
        n = len(tokens)
        tb = packed
        while pos < n:
            child = node.children.get(tokens[pos])
            if child is None:
                break
            edge = child.edge
            k = len(edge)
            eb = child.edge_bytes
            if eb is not None and tb is not None:
                full = tb.startswith(eb, pos * _PACK_BYTES)
            else:
                full = tokens[pos : pos + k] == edge
            if full:
                child.last_access = now
                pos += k
                node = child
                continue
            k = _common_prefix_len(edge, tokens, pos)
            if k == 0:
                break
            child.last_access = now
            pos += k
            break
        if pos > 0:
            self.hits += 1
        else:
            self.misses += 1
        return pos

    def match_len(self, tokens: Sequence[int], packed: Optional[bytes] = None) -> int:
        """Length of the longest cached prefix of ``tokens`` WITHOUT any
        side effects: no LRU refresh, no hit/miss counters, no clock tick.

        This is the probe scheduling policies use to rank waiting requests
        by cache affinity — a policy peeking at candidates must not perturb
        the eviction order or the counters the equivalence oracles compare.
        """
        node = self.root
        if not isinstance(tokens, tuple):
            tokens = tuple(tokens)
        pos = 0
        n = len(tokens)
        tb = packed
        while pos < n:
            child = node.children.get(tokens[pos])
            if child is None:
                break
            edge = child.edge
            k = len(edge)
            eb = child.edge_bytes
            if eb is not None and tb is not None:
                full = tb.startswith(eb, pos * _PACK_BYTES)
            else:
                full = tokens[pos : pos + k] == edge
            if full:
                pos += k
                node = child
                continue
            pos += _common_prefix_len(edge, tokens, pos)
            break
        return pos

    # -------------------------------------------------------------- insert
    def insert(self, tokens: Sequence[int], packed: Optional[bytes] = None) -> int:
        """Cache ``tokens``; returns the number of *newly* cached tokens.

        ``packed`` as in :meth:`match`; new long edges inherit their packed
        form from it (a byte-slice, no re-marshalling).
        """
        now = self._tick()
        node = self.root
        node.last_access = now
        if not isinstance(tokens, tuple):
            tokens = tuple(tokens)
        pos = 0
        n = len(tokens)
        fast = self._fast
        tb = packed
        while pos < n:
            child = node.children.get(tokens[pos])
            if child is None:
                leaf = _Node(edge=tokens[pos:], parent=node)
                if fast and tb is not None and n - pos >= _BYTES_MIN_EDGE:
                    leaf.edge_bytes = tb[pos * _PACK_BYTES :]
                leaf.last_access = now
                if self._bm is not None:
                    # The engine pre-checks capacity before inserting, so
                    # this draw from the pool cannot fail mid-admission.
                    leaf.alloc = self._bm.allocate(len(leaf.edge))
                node.children[tokens[pos]] = leaf
                if fast:
                    self._push_candidate(leaf)
                added = len(leaf.edge)
                self.total_tokens += added
                self._last_end = (tokens, leaf)
                return added
            edge = child.edge
            k = len(edge)
            eb = child.edge_bytes
            if eb is not None and tb is not None:
                full = tb.startswith(eb, pos * _PACK_BYTES)
            else:
                full = tokens[pos : pos + k] == edge
            if full:
                child.last_access = now
                pos += k
                node = child
                continue
            k = _common_prefix_len(edge, tokens, pos)
            # Split the edge at k; the existing tail keeps its subtree (and
            # its lock refs: every pin through the tail also pins the head).
            head, tail = edge[:k], edge[k:]
            mid = _Node(edge=head, parent=node)
            mid.last_access = now
            mid.lock_ref = child.lock_ref
            if eb is not None:
                if len(head) >= _BYTES_MIN_EDGE:
                    mid.edge_bytes = eb[: k * _PACK_BYTES]
                if len(tail) >= _BYTES_MIN_EDGE:
                    child.edge_bytes = eb[k * _PACK_BYTES :]
                else:
                    child.edge_bytes = None
            if self._bm is not None:
                # Divide the edge's blocks at the split point; a block the
                # cut falls inside is ref-shared between head and tail.
                mid.alloc, child.alloc = self._bm.split(child.alloc, k)
            node.children[tokens[pos]] = mid
            child.edge = tail
            child.parent = mid
            mid.children[tail[0]] = child
            child.last_access = now
            node = mid
            pos += k
        if node is not self.root:
            self._last_end = (tokens, node)
        return 0

    # ------------------------------------------------------------- pinning
    def _path_end(self, tokens: Tuple[int, ...]) -> Optional[_Node]:
        """Deepest node on the cached path of ``tokens`` (tolerant walk,
        like :meth:`path_node_ids`: a partially-matched child counts)."""
        node = self.root
        pos = 0
        last: Optional[_Node] = None
        n = len(tokens)
        while pos < n:
            child = node.children.get(tokens[pos])
            if child is None:
                break
            edge = child.edge
            if tokens[pos : pos + len(edge)] == edge:
                k = len(edge)
            else:
                k = _common_prefix_len(edge, tokens, pos)
            if k == 0:
                break
            last = child
            pos += k
            if k < len(edge):
                break
            node = child
        return last

    def _resolve_end(self, tokens: Tuple[int, ...]) -> Optional[_Node]:
        """Deepest cached node for ``tokens``, via the one-slot insert memo
        when it matches (identity compare — the engine replays the same
        tuple object through insert/pin/fork_path), else a path walk."""
        memo = self._last_end
        if memo is not None and memo[0] is tokens and not memo[1].dead:
            return memo[1]
        return self._path_end(tokens)

    def pin(self, tokens: Sequence[int]) -> Optional[_Node]:
        """Pin the cached path of ``tokens`` against eviction.

        Returns a ticket (pass to :meth:`unpin`), or None if nothing is
        cached. Does not refresh LRU stamps — pinning is bookkeeping, not a
        use. Pins survive later edge splits: the split head inherits the
        tail's refcount.
        """
        if not isinstance(tokens, tuple):
            tokens = tuple(tokens)
        end = self._resolve_end(tokens)
        if end is None:
            return None
        end.pin_count += 1
        cur: Optional[_Node] = end
        while cur is not None and cur is not self.root:
            cur.lock_ref += 1
            cur = cur.parent
        return end

    def unpin(self, ticket: Optional[_Node]) -> None:
        """Release a pin acquired with :meth:`pin` (None tickets are a
        no-op, matching pin's miss behavior)."""
        if ticket is None:
            return
        if ticket.pin_count <= 0:
            raise ServingError("unpin without a matching pin")
        ticket.pin_count -= 1
        cur: Optional[_Node] = ticket
        while cur is not None and cur is not self.root:
            cur.lock_ref -= 1
            if cur.lock_ref < 0:
                raise ServingError("lock refcount went negative")
            if (
                self._fast
                and cur.lock_ref == 0
                and not cur.children
                and not cur.dead
            ):
                self._push_candidate(cur)
            cur = cur.parent

    # ---------------------------------------------------- block ownership
    def fork_path(self, tokens: Sequence[int]) -> List[BlockAllocation]:
        """Fork (ref-count-bump) the block allocation of every node on the
        cached path of ``tokens`` — the paged-KV counterpart of :meth:`pin`:
        the admitted request holds its own reference to each shared block,
        exactly like a vLLM sequence forked from a cached prefix. Returns
        the forked allocations; the engine releases them at completion.
        No-op (empty list) without a block manager."""
        if self._bm is None:
            return []
        if not isinstance(tokens, tuple):
            tokens = tuple(tokens)
        forks: List[BlockAllocation] = []
        cur: Optional[_Node] = self._resolve_end(tokens)
        while cur is not None and cur is not self.root:
            if cur.alloc is None:
                raise ServingError(
                    f"node {cur.node_id} has no block allocation to fork"
                )
            forks.append(self._bm.fork(cur.alloc))
            cur = cur.parent
        return forks

    def fork_path_bundle(self, tokens: Sequence[int]) -> Optional[BlockAllocation]:
        """Single-allocation variant of :meth:`fork_path` for the
        vectorized engine: the block ids of every node on the cached path
        are concatenated and forked in one refcount pass
        (:meth:`BlockManager.fork_ids`), so admitting a request costs one
        vector operation over ~path-length ids instead of one fork per
        radix node. The ids form a multiset — a block straddling an edge
        split belongs to two adjacent nodes and is referenced once per
        node, exactly as the per-node forks would. Returns None without a
        block manager or when nothing of ``tokens`` is cached; the engine
        releases the bundle at completion."""
        if self._bm is None:
            return None
        if not isinstance(tokens, tuple):
            tokens = tuple(tokens)
        cur: Optional[_Node] = self._resolve_end(tokens)
        if cur is None:
            return None
        bm = self._bm
        extra: List[int] = []
        n_tokens = 0
        root = self.root
        if bm.vector:
            # Per-node id arrays are memoized on the allocations, so the
            # bundle is a concatenate of cached arrays — no per-id work.
            parts: List[object] = []
            while cur is not None and cur is not root:
                alloc = cur.alloc
                if alloc is None:
                    raise ServingError(
                        f"node {cur.node_id} has no block allocation to fork"
                    )
                arr = alloc.ids_arr
                if arr is None:
                    arr = bm.ids_array(alloc)
                parent = cur.parent
                if alloc.start_offset and parent is not None and parent is not root:
                    # A nonzero start offset means this edge begins
                    # mid-block: its first block is the straddle shared
                    # with — and listed last in — the parent edge's
                    # allocation, so it enters the distinct set via the
                    # parent and only its second occurrence is recorded
                    # here.
                    extra.append(alloc.block_ids[0])
                    parts.append(arr[1:])
                else:
                    parts.append(arr)
                n_tokens += alloc.n_tokens
                cur = parent
            return bm.fork_bundle_parts(parts, extra, n_tokens)
        base: List[int] = []
        while cur is not None and cur is not root:
            alloc = cur.alloc
            if alloc is None:
                raise ServingError(
                    f"node {cur.node_id} has no block allocation to fork"
                )
            bids = alloc.block_ids
            parent = cur.parent
            if alloc.start_offset and parent is not None and parent is not root:
                extra.append(bids[0])
                base.extend(bids[1:])
            else:
                base.extend(bids)
            n_tokens += alloc.n_tokens
            cur = parent
        return self._bm.fork_bundle(base, extra, n_tokens)

    # ------------------------------------------------------ legacy walkers
    def path_node_ids(self, tokens: Sequence[int]) -> Set[int]:
        """Ids of nodes along the cached path of ``tokens`` (tolerant walk:
        stops wherever the cache diverges). Used by the scan oracle to
        protect running requests' prompts from eviction."""
        ids: Set[int] = set()
        node = self.root
        pos = 0
        tokens = tuple(tokens)
        while pos < len(tokens):
            child = node.children.get(tokens[pos])
            if child is None:
                break
            edge = child.edge
            if tokens[pos : pos + len(edge)] == edge:
                k = len(edge)
            else:
                k = _common_prefix_len(edge, tokens, pos)
            if k == 0:
                break
            ids.add(child.node_id)
            pos += k
            if k < len(edge):
                break
            node = child
        return ids

    # ------------------------------------------------------------ eviction
    def evict(
        self,
        n_units: int,
        protected: Iterable[Sequence[int]] = (),
        unit: str = "tokens",
    ) -> int:
        """Evict LRU leaves until >= ``n_units`` freed or nothing remains.

        ``unit`` selects the currency: ``"tokens"`` (edge tokens removed
        from the tree — the token-sum oracle's view) or ``"blocks"``
        (physical blocks actually returned to the block manager's free
        pool; requires a block manager). The two differ under paged
        accounting: a victim whose blocks straddle a split boundary frees
        fewer blocks than its token count suggests, so block-denominated
        eviction keeps going until real memory is available.

        ``protected`` are token sequences whose cached paths must survive
        this call (the engine passes the not-yet-admitted request's matched
        prefix; running requests are pinned persistently). Paths pinned via
        :meth:`pin` always survive. Returns units actually freed.

        Victim *selection* is pure LRU either way, so the paged and token
        oracles pick victims in the same order — only the stopping point
        differs.
        """
        if unit not in ("tokens", "blocks"):
            raise ServingError(f"unknown eviction unit {unit!r}")
        if unit == "blocks" and self._bm is None:
            raise ServingError("block-denominated eviction needs a block manager")
        if not self._fast:
            return self._evict_scan(n_units, protected, unit)
        tickets = [self.pin(seq) for seq in protected]
        try:
            freed = 0
            heap = self._heap
            while freed < n_units:
                victim: Optional[_Node] = None
                while heap:
                    stamp, nid, node = heappop(heap)
                    node.heap_entries -= 1
                    if node.dead or node.children or node.lock_ref:
                        continue  # no longer a candidate (re-pushed if it
                        # becomes one again: unpin / child eviction)
                    if node.last_access != stamp:
                        # Touched since it was pushed: lazy increase-key.
                        self._push_candidate(node)
                        continue
                    victim = node
                    break
                if victim is None:
                    break
                freed += self._remove_leaf(victim, unit)
            return freed
        finally:
            for ticket in tickets:
                self.unpin(ticket)

    def _remove_leaf(self, victim: _Node, unit: str = "tokens") -> int:
        k = len(victim.edge)
        self.total_tokens -= k
        self.evicted_tokens += k
        victim.dead = True
        parent = victim.parent
        assert parent is not None
        del parent.children[victim.edge[0]]
        victim.parent = None
        freed_blocks = 0
        if self._bm is not None and victim.alloc is not None:
            before = self._bm.free_blocks
            self._bm.release(victim.alloc)
            victim.alloc = None
            freed_blocks = self._bm.free_blocks - before
        if (
            self._fast
            and parent is not self.root
            and not parent.children
            and parent.lock_ref == 0
        ):
            self._push_candidate(parent)
        return freed_blocks if unit == "blocks" else k

    def _evict_scan(
        self, n_units: int, protected: Iterable[Sequence[int]], unit: str = "tokens"
    ) -> int:
        """Reference eviction: full-tree LRU scan per victim."""
        protected_ids: Set[int] = set()
        for seq in protected:
            protected_ids |= self.path_node_ids(seq)
        freed = 0
        while freed < n_units:
            victim = self._lru_leaf(protected_ids)
            if victim is None:
                break
            freed += self._remove_leaf(victim, unit)
        return freed

    def _lru_leaf(self, protected_ids: Set[int]) -> Optional[_Node]:
        best: Optional[_Node] = None
        stack = [self.root]
        while stack:
            node = stack.pop()
            if (
                node is not self.root
                and not node.children
                and node.lock_ref == 0
                and node.node_id not in protected_ids
            ):
                # Ties happen when one insert both splits an edge and adds
                # a divergent leaf (one tick stamps both); break them by
                # node id — the order the lazy heap uses — instead of
                # traversal order.
                if best is None or (node.last_access, node.node_id) < (
                    best.last_access,
                    best.node_id,
                ):
                    best = node
            stack.extend(node.children.values())
        return best

    # ---------------------------------------------------------- invariants
    def check_invariants(self) -> None:
        """Debug/testing: verify token accounting, tree structure, pin
        refcounts, and (heap mode) eviction-heap coverage."""
        count = 0
        stack = [self.root]
        nodes: List[_Node] = []
        while stack:
            node = stack.pop()
            nodes.append(node)
            if node is not self.root:
                if not node.edge:
                    raise ServingError("non-root node with empty edge")
                if node.parent is None:
                    raise ServingError("non-root node without parent")
                if node.dead:
                    raise ServingError("evicted node still reachable")
                if node.edge_bytes is not None and node.edge_bytes != pack_tokens(node.edge):
                    raise ServingError("packed edge out of sync with edge tokens")
                if self._bm is not None:
                    if node.alloc is None:
                        raise ServingError(
                            f"node {node.node_id} has no block allocation"
                        )
                    if node.alloc.released:
                        raise ServingError(
                            f"node {node.node_id} holds a released allocation"
                        )
                    if node.alloc.n_tokens != len(node.edge):
                        raise ServingError(
                            f"node {node.node_id} allocation covers "
                            f"{node.alloc.n_tokens} tokens for a "
                            f"{len(node.edge)}-token edge"
                        )
                    # The structural fact fork_path_bundle's straddle
                    # detection rests on: an edge starting mid-block shares
                    # that block with its parent edge, where it is last.
                    if node.alloc.start_offset and node.parent is not self.root:
                        parent_alloc = node.parent.alloc
                        if (
                            parent_alloc is None
                            or parent_alloc.block_ids[-1]
                            != node.alloc.block_ids[0]
                        ):
                            raise ServingError(
                                f"node {node.node_id} straddle block out of "
                                f"sync with parent allocation"
                            )
                count += len(node.edge)
            if node.pin_count < 0 or node.lock_ref < 0:
                raise ServingError("negative pin refcount")
            child_locks = 0
            for first, child in node.children.items():
                if child.edge[0] != first:
                    raise ServingError("child keyed by wrong first token")
                if child.parent is not node:
                    raise ServingError("parent pointer corrupted")
                child_locks += child.lock_ref
                stack.append(child)
            if node is not self.root and node.lock_ref != node.pin_count + child_locks:
                raise ServingError(
                    f"lock refcount drift at node {node.node_id}: "
                    f"lock_ref={node.lock_ref}, pins={node.pin_count}, "
                    f"children={child_locks}"
                )
        if count != self.total_tokens:
            raise ServingError(
                f"token accounting drift: counted {count}, recorded {self.total_tokens}"
            )
        if self._fast:
            entry_tally: Dict[int, int] = {}
            for stamp, nid, node in self._heap:
                if nid != node.node_id:
                    raise ServingError("heap entry id out of sync with node")
                if stamp > node.last_access:
                    raise ServingError(
                        "heap entry stamp ahead of node LRU stamp"
                    )
                entry_tally[nid] = entry_tally.get(nid, 0) + 1
            for node in nodes:
                tally = entry_tally.get(node.node_id, 0)
                if tally != node.heap_entries:
                    raise ServingError(
                        f"heap entry counter drift at node {node.node_id}: "
                        f"counted {tally}, recorded {node.heap_entries}"
                    )
                if tally > 1:
                    raise ServingError(
                        f"duplicate heap entries for node {node.node_id}"
                    )
                if (
                    node is self.root
                    or node.children
                    or node.lock_ref
                    or node.dead
                ):
                    continue
                if tally == 0:
                    raise ServingError(
                        f"evictable leaf {node.node_id} missing from eviction heap"
                    )
        if self._bm is not None:
            self._bm.check_invariants()
