"""GPU and cluster specifications used by the cost model.

Numbers are public datasheet values derated to sustained utilization; the
simulator only needs them to be *mutually consistent* (the paper's cited
envelope — ~2 000 tok/s prefill for Llama-3-8B on one L4 — falls out of
these constants, see ``tests/llm/test_costmodel.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServingError


@dataclass(frozen=True)
class GPUSpec:
    """One accelerator.

    Attributes
    ----------
    name: marketing name.
    mem_bytes: usable device memory.
    mem_bandwidth: sustained HBM/GDDR bandwidth, bytes/s.
    flops: dense half-precision FLOP/s (before MFU derating).
    """

    name: str
    mem_bytes: float
    mem_bandwidth: float
    flops: float

    def __post_init__(self):
        if min(self.mem_bytes, self.mem_bandwidth, self.flops) <= 0:
            raise ServingError(f"non-positive GPU spec for {self.name}")


#: NVIDIA L4: 24 GB GDDR6, ~300 GB/s, ~121 TFLOPS FP8 / ~60 TFLOPS dense FP16.
L4 = GPUSpec(name="L4", mem_bytes=24e9, mem_bandwidth=300e9, flops=60e12)

#: NVIDIA A100-80G for what-if studies (not used by the paper's main runs).
A100_80G = GPUSpec(name="A100-80G", mem_bytes=80e9, mem_bandwidth=2.0e12, flops=312e12)


@dataclass(frozen=True)
class Cluster:
    """A tensor-parallel group of identical GPUs.

    ``tp_efficiency`` derates aggregate FLOPs/bandwidth for communication
    overhead; memory capacity adds up without loss.
    """

    gpu: GPUSpec
    n_gpus: int = 1
    tp_efficiency: float = 0.8

    def __post_init__(self):
        if self.n_gpus < 1:
            raise ServingError("cluster needs at least one GPU")
        if not 0 < self.tp_efficiency <= 1:
            raise ServingError("tp_efficiency must be in (0, 1]")

    @property
    def total_mem_bytes(self) -> float:
        return self.gpu.mem_bytes * self.n_gpus

    @property
    def effective_flops(self) -> float:
        scale = 1.0 if self.n_gpus == 1 else self.tp_efficiency
        return self.gpu.flops * self.n_gpus * scale

    @property
    def effective_bandwidth(self) -> float:
        scale = 1.0 if self.n_gpus == 1 else self.tp_efficiency
        return self.gpu.mem_bandwidth * self.n_gpus * scale


#: The paper's two rigs (GCP g2-standard-4 and g2-standard-48).
CLUSTER_1XL4 = Cluster(gpu=L4, n_gpus=1)
CLUSTER_8XL4 = Cluster(gpu=L4, n_gpus=8)
