"""Estimate proprietary-API spend for a reordered batch job (§6.3).

Run:  python examples/cost_planner.py

Given a workload (here: the Products dataset with a classification
prompt), this prices the job under OpenAI GPT-4o-mini and Anthropic
Claude 3.5 Sonnet billing — original order vs GGR order — using the
provider-side cache simulators, and prints the projected savings.
"""

from repro.bench.queries import FILTER_PROMPTS
from repro.core.reorder import reorder
from repro.data import build_dataset
from repro.llm.pricing import (
    APICacheSimulator,
    anthropic_claude35_sonnet,
    cost_of,
    estimated_savings,
    openai_gpt4o_mini,
)
from repro.llm.prompts import build_prompt
from repro.llm.tokenizer import HashTokenizer


def main() -> None:
    ds = build_dataset("products", scale=0.01, seed=5)
    question = FILTER_PROMPTS["products"]
    tok = HashTokenizer()

    # Both providers require a 1024-token minimum prefix before anything is
    # cached; following the paper's §6.3 methodology we duplicate each field
    # value (x6 here) so the shared prefixes clear that bar.
    base = ds.table.to_reorder_table()
    table = type(base)(
        base.fields,
        [tuple(" ".join([v] * 6) for v in row) for row in base.rows],
    )
    schedules = {
        policy: reorder(table, policy=policy, fds=ds.fds)
        for policy in ("original", "ggr")
    }

    for pricing in (openai_gpt4o_mini(), anthropic_claude35_sonnet()):
        print(f"\n=== {pricing.name} ===")
        costs = {}
        for policy, result in schedules.items():
            sim = APICacheSimulator(pricing)
            usages = []
            for row in result.schedule.rows:
                tokens = tok.encode(build_prompt(question, row.cells))
                usages.append(sim.process(tokens, output_tokens=3))
            breakdown = cost_of(usages, pricing)
            costs[policy] = breakdown.total
            cached = sum(u.cached_tokens for u in usages)
            total = sum(u.prompt_tokens for u in usages)
            print(
                f"  {policy:>8}: ${breakdown.total:8.4f}  "
                f"(input ${breakdown.input_side_total:.4f}, "
                f"output ${breakdown.output_cost:.4f}, "
                f"cache hits {cached / total if total else 0:.1%})"
            )
        saved = 1 - costs["ggr"] / costs["original"]
        print(f"  GGR saves {saved:.1%} on this job")

    # The closed-form planner (Table 4 style): what if caching had no
    # minimum-length restriction?
    print("\nClosed-form estimate at the schedules' hit rates:")
    orig_phr = schedules["original"].exact_phr
    ggr_phr = schedules["ggr"].exact_phr
    for pricing in (openai_gpt4o_mini(), anthropic_claude35_sonnet()):
        s = estimated_savings(orig_phr, ggr_phr, pricing)
        print(f"  {pricing.name}: {s:.1%}")


if __name__ == "__main__":
    main()
