"""LLM-in-SQL analytics over the Movies dataset (the paper's §1 use case).

Run:  python examples/sql_llm_analytics.py

Builds the synthetic Rotten Tomatoes dataset, registers it with the SQL
engine, and runs three of the paper's query shapes — a filter, a
projection, and an AVG aggregation — with GGR reordering and the serving
simulator underneath. Prints per-query hit rates and simulated latency.
"""

from repro.accuracy.judge import JUDGES, SimulatedJudge
from repro.bench.queries import AGGREGATION_PROMPTS, FILTER_PROMPTS
from repro.data import build_dataset
from repro.llm.client import SimulatedLLMClient
from repro.relational import Database, LLMRuntime


def main() -> None:
    ds = build_dataset("movies", scale=0.01, seed=7)
    judge = SimulatedJudge(
        JUDGES["llama3-70b"], ds.name, ds.labels, ds.label_domain, ds.key_field
    )
    runtime = LLMRuntime(
        client=SimulatedLLMClient(),
        policy="ggr",
        fds=ds.fds,
        answerer=judge.answerer,
    )
    db = Database(runtime=runtime)
    db.register("movies", ds.table, fds=ds.fds)

    filter_q = FILTER_PROMPTS["movies"].replace("'", "''")
    kids_sql = (
        f"SELECT movietitle FROM movies WHERE reviewtype = 'Fresh' AND "
        f"LLM('{filter_q}', movieinfo, reviewcontent, movietitle) = 'Yes' LIMIT 5"
    )
    print("Optimized plan (LLM-aware rewrites + estimated LLM tokens):")
    print(db.explain(kids_sql))
    print()
    kids = db.sql(kids_sql)
    print(f"First kid-friendly titles ({kids.n_rows} shown):")
    for row in kids.rows():
        print("  -", row["movietitle"])

    agg_q = AGGREGATION_PROMPTS["movies"].replace("'", "''")
    runtime.answerer = lambda q, cells, rid: str(1 + rid % 5)  # numeric scores
    score = db.sql(
        f"SELECT AVG(LLM('{agg_q}', reviewcontent, movieinfo)) AS sentiment FROM movies"
    )
    print(f"\nAverage sentiment score: {score.column('sentiment')[0]:.2f}")

    # Movie-level question over a review-level table: each movie's
    # metadata repeats across its ~12 reviews, so input dedup collapses the
    # call to one model invocation per *movie*.
    runtime.answerer = lambda q, cells, rid: dict(
        (c.field, c.value) for c in cells
    )["movietitle"].split()[0]
    db.sql(
        "SELECT LLM('Describe the movie in one word.', movietitle, movieinfo) "
        "AS vibe FROM movies"
    )

    print("\nLLM operator telemetry:")
    for call in runtime.calls:
        print(
            f"  rows={call.n_rows:4d}  distinct={call.n_distinct:4d}  "
            f"policy={call.policy}  "
            f"PHR={call.measured_phr:6.1%}  engine={call.engine_seconds:7.2f}s  "
            f"solver={call.solver_seconds * 1000:6.1f}ms"
        )
    print(
        f"\nInput dedup saved {runtime.total_dedup_saved_prompt_tokens} prompt "
        f"tokens ({runtime.total_memo_hits} answer-memo hits)"
    )
    print(f"Total simulated serving time: {runtime.total_engine_seconds:.2f}s")


if __name__ == "__main__":
    main()
