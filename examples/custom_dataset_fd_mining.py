"""Bring your own table: mine FDs, pick a policy, measure the win.

Run:  python examples/custom_dataset_fd_mining.py

For a table the catalog knows nothing about, GGR can still discover
single-attribute functional dependencies from the data itself
(paper §4.2.1 notes FDs usually come from the schema; the miner covers
the schemaless case) and exploit them. This example builds a support-
tickets table, mines its FDs, and compares every built-in policy.
"""

import random

from repro import ReorderTable, reorder
from repro.core.fd import mine_fds

TEAMS = {
    "billing": ("Billing & Payments", "Handles invoices, refunds, and plan changes."),
    "infra": ("Infrastructure", "Handles outages, latency, and capacity incidents."),
    "auth": ("Identity & Access", "Handles logins, SSO, and permission escalations."),
}
SEVERITIES = ("low", "medium", "high")


def make_tickets(n: int = 240, seed: int = 11) -> ReorderTable:
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        team_key = rng.choice(list(TEAMS))
        team_name, team_desc = TEAMS[team_key]
        rows.append(
            (
                f"TCK-{i:05d}",
                f"Customer reports issue number {rng.randrange(9999)} with details {rng.random():.6f}",
                team_key,
                team_name,
                team_desc,
                rng.choice(SEVERITIES),
            )
        )
    return ReorderTable(
        fields=("ticket_id", "body", "team", "team_name", "team_description", "severity"),
        rows=rows,
    )


def main() -> None:
    table = make_tickets()

    fds = mine_fds(table, sample_rows=0)
    print("Mined functional dependencies:")
    for a, b in fds.edges():
        print(f"  {a} -> {b}")

    print("\nPolicy comparison (PHC = squared-length prefix hits, Eq. 1):")
    for policy in ("original", "sorted", "fixed_stats", "ggr"):
        result = reorder(table, policy=policy, fds=fds)
        print(
            f"  {policy:>12}: PHC {result.exact_phc:10d}   "
            f"PHR {result.exact_phr:6.1%}   solver {result.solver_seconds * 1000:6.1f} ms"
        )

    ggr = reorder(table, policy="ggr", fds=fds)
    report = ggr.ggr_report
    assert report is not None
    print("\nGGR diagnostics:")
    print(f"  recursion steps : {report.recursion_steps}")
    print(f"  fallback rows   : {report.fallback_rows}")
    print(f"  first groups    : {report.groups_chosen[:3]}")


if __name__ == "__main__":
    main()
