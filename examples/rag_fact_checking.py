"""RAG fact-checking pipeline (the paper's T5 query on FEVER).

Run:  python examples/rag_fact_checking.py

End-to-end: embed a passage corpus, retrieve top-4 evidence per claim,
build the (claim, evidence1..4) table, and compare original vs GGR
orderings through the serving simulator. Multiple claims about the same
topic retrieve the same evidence — GGR turns that into shared prefixes.
"""

from repro.bench.queries import RAG_PROMPTS
from repro.core.reorder import reorder
from repro.data import build_dataset
from repro.llm.client import SimulatedLLMClient
from repro.llm.prompts import build_prompt
from repro.rag import Retriever


def main() -> None:
    # The FEVER builder exposes its corpus + claims so we can drive the
    # retrieval stack explicitly.
    ds = build_dataset("fever", scale=0.01, seed=3)
    assert ds.corpus is not None and ds.questions is not None
    print(f"corpus: {len(ds.corpus)} passages; claims: {len(ds.questions)}")

    retriever = Retriever(ds.corpus)
    table = retriever.retrieve_table(
        ds.questions[:120], k=4, question_field="claim", context_prefix="evidence"
    )
    evidence1 = table.column("evidence1")
    print(f"distinct top-1 evidence passages: {len(set(evidence1))} / {len(evidence1)}")

    question = RAG_PROMPTS["fever"]
    for policy in ("original", "ggr"):
        result = reorder(table.to_reorder_table(), policy=policy)
        client = SimulatedLLMClient()
        prompts = [build_prompt(question, row.cells) for row in result.schedule.rows]
        batch = client.generate(prompts, output_lens=[3] * len(prompts))
        print(
            f"{policy:>8}: schedule PHR {result.exact_phr:6.1%}  "
            f"engine PHR {batch.prefix_hit_rate:6.1%}  "
            f"time {batch.total_seconds:7.2f}s"
        )

    ggr = reorder(table.to_reorder_table(), policy="ggr")
    row = ggr.schedule.rows[1]
    print("\nA GGR-scheduled row (shared evidence first, unique claim last):")
    for cell in row.cells:
        print(f"  {cell.field:10s} {cell.value[:60]}...")


if __name__ == "__main__":
    main()
