"""Quickstart: reorder a small table and watch the prefix cache win.

Run:  python examples/quickstart.py

This walks the core loop of the paper in ~60 lines:
1. build a table whose rows share values (a reviews x products join),
2. reorder it with GGR,
3. replay both orderings through the simulated vLLM engine,
4. compare prefix hit rates and job completion times,
5. serve the same prompts as an *online* two-tenant arrival stream and
   print the per-tenant SLO table (queueing delay / TTFT percentiles),
6. scale the stream out to a 4-replica cluster and compare cache-blind
   round-robin routing with prefix-aware routing.
"""

from repro import ReorderTable, phc, reorder
from repro.core.fd import FunctionalDependencies
from repro.llm.client import SimulatedLLMClient
from repro.llm.cluster import ClusterConfig, ClusterEngine
from repro.llm.engine import EngineConfig
from repro.llm.prompts import build_prompt
from repro.llm.workload import TraceRequest, WorkloadTrace, poisson_arrivals


def make_table() -> ReorderTable:
    """A toy reviews-join: product fields repeat, review text does not."""
    products = {
        "P1": ("Solar Garden Lamp", "A weatherproof lamp that charges by day and glows all night."),
        "P2": ("Cast Iron Skillet", "Pre-seasoned 12-inch skillet for stovetop, oven, and campfire."),
        "P3": ("Trail Running Shoes", "Lightweight shoes with a rock plate and grippy outsole."),
    }
    reviews = [
        ("P1", "Love it, my garden finally has mood lighting."),
        ("P2", "Sears a steak beautifully, heavy but worth it."),
        ("P1", "Stopped working after one rainy week."),
        ("P3", "Great grip on wet rocks, sizing runs small."),
        ("P2", "Arrived rusty, had to re-season twice."),
        ("P1", "Perfect pathway lights, bought three more."),
        ("P3", "My toes went numb after ten miles."),
        ("P2", "The handle gets hot but that's cast iron for you."),
    ]
    rows = [
        (text, asin, products[asin][0], products[asin][1])
        for asin, text in reviews
    ]
    return ReorderTable(
        fields=("review", "asin", "title", "description"),
        rows=rows,
    )


def main() -> None:
    table = make_table()
    fds = FunctionalDependencies.from_groups([["asin", "title", "description"]])

    original = reorder(table, policy="original")
    optimized = reorder(table, policy="ggr", fds=fds)
    print(f"PHC  original={original.exact_phc:6d}   ggr={optimized.exact_phc:6d}")
    print(f"PHR  original={original.exact_phr:6.1%}   ggr={optimized.exact_phr:6.1%}")

    question = "Does this review sound positive? Answer Yes or No."
    for name, result in (("original", original), ("ggr", optimized)):
        client = SimulatedLLMClient()
        prompts = [build_prompt(question, row.cells) for row in result.schedule.rows]
        batch = client.generate(prompts, output_lens=[2] * len(prompts))
        print(
            f"{name:>8}: engine {batch.total_seconds * 1000:7.1f} ms, "
            f"measured hit rate {batch.prefix_hit_rate:6.1%}"
        )

    print("\nFirst three scheduled rows under GGR (note the shared prefix):")
    for row in optimized.schedule.rows[:3]:
        print("  " + " | ".join(f"{c.field}={c.value[:28]}" for c in row.cells))

    # ---- online serving: the same prompts as an arrival-timed stream ----
    # Two tenants replay the job concurrently (one unordered, one GGR-
    # ordered); a prefix-affinity scheduler admits whichever waiting
    # request extends the currently-cached radix paths.
    streams = {
        "adhoc": [build_prompt(question, r.cells) for r in original.schedule.rows],
        "curated": [build_prompt(question, r.cells) for r in optimized.schedule.rows],
    }
    n_rows = len(streams["adhoc"])
    requests = []
    for i, t in enumerate(poisson_arrivals(2 * n_rows, 40.0, seed=7)):
        tenant = ("adhoc", "curated")[i % 2]
        requests.append(
            TraceRequest(
                t, streams[tenant][(i // 2) % n_rows], tenant=tenant, output_len=2
            )
        )
    trace = WorkloadTrace(requests, name="quickstart-online")
    client = SimulatedLLMClient(
        engine_config=EngineConfig(scheduler="prefix-affinity")
    )
    res = client.generate_trace(trace, deadline_s=5.0)
    print(
        f"\nOnline replay ({res.scheduler}): hit rate "
        f"{res.prefix_hit_rate:6.1%} over {trace.n_requests} timed arrivals"
    )
    print(res.slo.render("per-tenant SLO"))

    # ---- cluster serving: the same stream across a 4-replica fleet ----
    # Round-robin sprays each tenant's shared prefix over every replica;
    # prefix-aware routing keeps each working set hot on one replica.
    print("\n4-replica cluster, routing comparison:")
    for routing in ("round-robin", "prefix-aware"):
        cluster = ClusterEngine(
            ClusterConfig(n_replicas=4, routing=routing)
        )
        cres = cluster.run_trace(trace, deadline_s=5.0)
        print(
            f"{routing:>13}: fleet hit rate {cres.prefix_hit_rate:6.1%}, "
            f"goodput {cres.goodput_attainment:6.1%}, "
            f"load skew {cres.load_skew:.2f}, "
            f"makespan {cres.total_seconds * 1000:7.1f} ms"
        )


if __name__ == "__main__":
    main()
