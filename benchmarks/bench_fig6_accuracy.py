"""Benchmark: regenerate Fig 6 (accuracy, original vs GGR, bootstrap)."""

from benchmarks.conftest import run_once
from repro.bench.experiments import fig6


def bench_fig6(benchmark, repro_scale, repro_seed):
    out = run_once(
        benchmark, lambda: fig6.run(scale=repro_scale, seed=repro_seed, n_boot=10_000)
    )
    print("\n" + out.render())
    # Headline claim: GGR is accuracy-neutral (within ~5%) everywhere
    # except FEVER on Llama-3-8B, where it *helps* by >10%.
    assert out.metrics["llama3-8b.fever.delta"] > 0.10
    for judge in ("llama3-70b", "gpt-4o"):
        assert abs(out.metrics[f"{judge}.fever.delta"]) < 0.06, judge
    within = [
        abs(out.metrics[f"{judge}.{ds}.delta"]) <= 0.08
        for judge in ("llama3-8b", "llama3-70b", "gpt-4o")
        for ds in ("movies", "products", "bird", "pdmx", "beer")
    ]
    assert sum(within) >= 13
