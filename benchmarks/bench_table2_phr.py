"""Benchmark: regenerate Table 2 (prefix hit rates, Original vs GGR)."""

from benchmarks.conftest import run_once
from repro.bench.experiments import table2


def bench_table2(benchmark, repro_scale, repro_seed):
    out = run_once(benchmark, lambda: table2.run(scale=repro_scale, seed=repro_seed))
    print("\n" + out.render())
    for ds in ("movies", "products", "bird", "pdmx", "beer", "fever", "squad"):
        assert out.metrics[f"{ds}.ggr_phr"] >= out.metrics[f"{ds}.original_phr"], ds
    # Join-heavy datasets gain tens of points (paper: 30-75 pp).
    for ds in ("movies", "products", "bird", "pdmx"):
        uplift = out.metrics[f"{ds}.ggr_phr"] - out.metrics[f"{ds}.original_phr"]
        assert uplift > 0.25, ds
    # PDMX stays the lowest GGR hit rate (long unique text, paper 57%).
    assert out.metrics["pdmx.ggr_phr"] < out.metrics["movies.ggr_phr"]
