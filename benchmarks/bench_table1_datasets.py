"""Benchmark: regenerate Table 1 (dataset statistics)."""

from benchmarks.conftest import run_once
from repro.bench.experiments import table1


def bench_table1(benchmark, repro_scale, repro_seed):
    out = run_once(benchmark, lambda: table1.run(scale=repro_scale, seed=repro_seed))
    print("\n" + out.render())
    assert out.metrics["movies.fields"] == 8
    assert out.metrics["pdmx.fields"] >= 57
    for name in ("movies", "products", "bird", "pdmx", "beer", "fever", "squad"):
        measured = out.metrics[f"{name}.input_avg"]
        paper = out.metrics[f"{name}.paper_input_avg"]
        assert 0.6 * paper <= measured <= 1.6 * paper, name
