"""Micro-benchmarks of multi-replica cluster serving: one contention
trace swept over replica count x routing policy.

The workload is the adversarial shape for cache-blind routing: eight
tenants whose prompts share long per-tenant headers, arriving in a
*shuffled* order (so no fixed arrival stride lines tenants up with
replicas by accident) at a rate that overloads a single replica. Each
replica's KV pool holds roughly two tenants' working sets: spraying a
tenant across the fleet (round-robin, least-queue) makes every replica
re-prefill every header, while prefix-aware routing keeps each tenant's
header hot on one replica — the paper's prefix-sharing insight lifted
from admission ordering to placement.

Acceptance bars (asserted and perf-recorded when the cluster and online
layers are enabled; the simulation is deterministic, so these are exact
replays, not noisy wall-clock measurements):

* ``cluster_prefix_routing_phr_ratio`` — prefix-aware vs round-robin
  aggregate prefix hit rate at 4 replicas, >= 1.3x (measured ~2.8x).
* ``cluster_goodput_ratio`` — prefix-aware vs round-robin goodput
  (deadline attainment) at 4 replicas, >= 1.1x (measured ~1.28x).
"""

import random

from conftest import perf_record, run_once

from repro.llm.cluster import ClusterConfig, ClusterEngine, serving_cluster_enabled
from repro.llm.engine import EngineConfig
from repro.llm.scheduler import serving_online_enabled
from repro.llm.workload import TraceRequest, WorkloadTrace

#: Per-replica serving point: tight batch and a KV pool that fits ~two of
#: the eight tenants' header subtrees — the same contention shape as
#: ``bench_scheduler_micro``, scaled to a fleet.
_REPLICA_CFG = dict(max_batch_size=2, kv_capacity_tokens=950)

#: E2E deadline (s, arrival-relative) for the goodput comparison.
_DEADLINE_S = 2.0


def _contention_trace(
    n_tenants=8, n_per_tenant=20, header_words=200, mean_gap_s=0.004, seed=3
):
    """Shuffled multi-tenant arrivals with long per-tenant headers."""
    rng = random.Random(seed)
    tenants = [f"t{i}" for i in range(n_tenants)]
    headers = {
        t: " ".join(f"{t}hd{j}" for j in range(header_words)) for t in tenants
    }
    order = [t for t in tenants for _ in range(n_per_tenant)]
    rng.shuffle(order)
    clock = 0.0
    reqs = []
    for i, tenant in enumerate(order):
        clock += rng.expovariate(1.0 / mean_gap_s)
        reqs.append(
            TraceRequest(
                arrival_s=clock,
                prompt=f"{headers[tenant]} row {i} detail {(i * 7) % 101}",
                tenant=tenant,
                output_len=6,
            )
        )
    return WorkloadTrace(reqs, name="cluster-contention")


def _run(trace, routing, n_replicas=4, backend="inline"):
    engine = ClusterEngine(
        ClusterConfig(
            n_replicas=n_replicas,
            routing=routing,
            backend=backend,
            engine=EngineConfig(**_REPLICA_CFG),
        )
    )
    return engine.run_trace(trace, deadline_s=_DEADLINE_S)


def _record(benchmark, res):
    benchmark.extra_info["routing"] = res.routing
    benchmark.extra_info["n_replicas"] = res.n_replicas
    benchmark.extra_info["prefix_hit_rate"] = round(res.prefix_hit_rate, 4)
    benchmark.extra_info["goodput_attainment"] = round(
        res.goodput_attainment, 4
    )
    benchmark.extra_info["load_skew"] = round(res.load_skew, 4)
    benchmark.extra_info["makespan_s"] = round(res.total_seconds, 3)


def _cluster_layers_enabled():
    """The comparison bars only hold with real routing *and* real arrival
    stamps; under either oracle gate the benches still run (smoke), but
    the assertions and perf records are skipped."""
    return serving_cluster_enabled() and serving_online_enabled()


def bench_cluster_round_robin(benchmark):
    """Cache-blind spraying baseline at 4 replicas."""
    trace = _contention_trace()
    res = run_once(benchmark, lambda: _run(trace, "round-robin"))
    assert res.slo.n_requests == trace.n_requests
    _record(benchmark, res)


def bench_cluster_least_queue(benchmark):
    """Join-the-shortest-queue at 4 replicas: balances load perfectly,
    sprays prefixes just like round-robin."""
    trace = _contention_trace()
    res = run_once(benchmark, lambda: _run(trace, "least-queue"))
    _record(benchmark, res)


def bench_cluster_tenant_sharded(benchmark):
    """Static consistent hashing at 4 replicas: perfect per-tenant cache
    locality, no load adaptation (the skew column is the cost)."""
    trace = _contention_trace()
    res = run_once(benchmark, lambda: _run(trace, "tenant-sharded"))
    _record(benchmark, res)
    if _cluster_layers_enabled():
        assert res.load_skew > 0.0


def bench_cluster_prefix_routing(benchmark):
    """Prefix-aware routing at 4 replicas vs the round-robin baseline —
    the headline comparison, with both perf-trajectory records."""
    trace = _contention_trace()
    baseline = _run(trace, "round-robin")
    res = run_once(benchmark, lambda: _run(trace, "prefix-aware"))
    _record(benchmark, res)
    benchmark.extra_info["round_robin_phr"] = round(
        baseline.prefix_hit_rate, 4
    )
    benchmark.extra_info["round_robin_goodput"] = round(
        baseline.goodput_attainment, 4
    )
    if _cluster_layers_enabled():
        phr_ratio = res.prefix_hit_rate / max(baseline.prefix_hit_rate, 1e-9)
        goodput_ratio = res.goodput_attainment / max(
            baseline.goodput_attainment, 1e-9
        )
        assert phr_ratio >= 1.3, (
            f"prefix-aware PHR {res.prefix_hit_rate:.3f} vs round-robin "
            f"{baseline.prefix_hit_rate:.3f}: below the 1.3x bar"
        )
        assert goodput_ratio >= 1.1
        perf_record(
            "cluster", "cluster_prefix_routing_phr_ratio", phr_ratio, ">= 1.3"
        )
        perf_record(
            "cluster", "cluster_goodput_ratio", goodput_ratio, ">= 1.1"
        )


def bench_cluster_replica_scaling(benchmark):
    """Prefix-aware routing as the fleet grows 1 -> 2 -> 4 replicas on
    the fixed trace: makespan must shrink monotonically (the overloaded
    single replica is the bottleneck the fleet exists to remove)."""
    trace = _contention_trace()

    def work():
        return {n: _run(trace, "prefix-aware", n_replicas=n) for n in (1, 2, 4)}

    results = run_once(benchmark, work)
    for n, res in results.items():
        benchmark.extra_info[f"makespan_{n}r_s"] = round(res.total_seconds, 3)
        benchmark.extra_info[f"goodput_{n}r"] = round(
            res.goodput_attainment, 4
        )
    if _cluster_layers_enabled():
        assert (
            results[1].total_seconds
            > results[2].total_seconds
            > results[4].total_seconds
        )


def bench_cluster_spawn_backend(benchmark):
    """The spawn backend on the same sweep point: merged metrics must be
    bit-identical to inline (worker transport recorded; falls back to
    in-process where the sandbox forbids pools)."""
    trace = _contention_trace()
    inline = _run(trace, "prefix-aware")
    res = run_once(benchmark, lambda: _run(trace, "prefix-aware", backend="spawn"))
    _record(benchmark, res)
    benchmark.extra_info["worker_transport"] = res.worker_transport
    assert res.request_metrics == inline.request_metrics
    assert res.total_seconds == inline.total_seconds
