"""Benchmark: regenerate Fig 3b (projection + RAG runtimes)."""

from benchmarks.conftest import run_once
from repro.bench.experiments import fig3


def bench_fig3b(benchmark, repro_scale, repro_seed):
    out = run_once(benchmark, lambda: fig3.run_fig3b(scale=repro_scale, seed=repro_seed))
    print("\n" + out.render())
    for qid in ("movies-T2", "products-T2", "bird-T2", "pdmx-T2", "beer-T2",
                "fever-T5", "squad-T5"):
        assert out.metrics[f"{qid}.speedup_vs_nocache"] > 1.1, qid
        assert out.metrics[f"{qid}.speedup_vs_original"] >= 0.95, qid
    # Longer decodes shrink the relative gain vs the short-output filters
    # (paper: T2 gains < T1 gains on the same datasets).
    assert out.metrics["movies-T2.speedup_vs_original"] > 1.3
