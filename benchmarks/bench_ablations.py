"""Benchmarks: the four design-choice ablations from DESIGN.md §5."""

from benchmarks.conftest import run_once
from repro.bench.experiments import ablations


def bench_ablation_fd(benchmark, repro_scale, repro_seed):
    out = run_once(benchmark, lambda: ablations.run_fd(scale=repro_scale, seed=repro_seed))
    print("\n" + out.render())
    for ds in ("movies", "pdmx", "beer"):
        assert out.metrics[f"{ds}.phc_with"] >= out.metrics[f"{ds}.phc_without"] - 1, ds


def bench_ablation_early_stop(benchmark, repro_scale, repro_seed):
    out = run_once(
        benchmark, lambda: ablations.run_early_stop(scale=repro_scale, seed=repro_seed)
    )
    print("\n" + out.render())
    # The paper's (4,2) must capture the bulk of the deep-recursion PHC.
    deep = out.metrics["pdmx.phc@16,8"]
    assert out.metrics["pdmx.phc@4,2"] >= 0.9 * deep


def bench_ablation_fixed_orders(benchmark, repro_scale, repro_seed):
    out = run_once(
        benchmark, lambda: ablations.run_fixed_orders(scale=repro_scale, seed=repro_seed)
    )
    print("\n" + out.render())
    for ds in ("movies", "products"):
        assert out.metrics[f"{ds}.ggr"] >= out.metrics[f"{ds}.original"], ds
        assert out.metrics[f"{ds}.fixed_stats"] >= out.metrics[f"{ds}.sorted"], ds


def bench_ablation_memory(benchmark, repro_scale, repro_seed):
    out = run_once(
        benchmark, lambda: ablations.run_memory(scale=repro_scale, seed=repro_seed)
    )
    print("\n" + out.render())
    # The unordered baseline's hit rate grows with cache size; GGR's is
    # adjacency-driven and stays put.
    assert out.metrics["orig_phr@4.0"] >= out.metrics["orig_phr@0.25"]
    ggr_spread = abs(out.metrics["ggr_phr@4.0"] - out.metrics["ggr_phr@0.25"])
    orig_spread = out.metrics["orig_phr@4.0"] - out.metrics["orig_phr@0.25"]
    assert ggr_spread <= orig_spread + 0.02
