"""Benchmark: regenerate Fig 3a (filter-query runtimes, 3 policies)."""

from benchmarks.conftest import run_once
from repro.bench.experiments import fig3


def bench_fig3a(benchmark, repro_scale, repro_seed):
    out = run_once(benchmark, lambda: fig3.run_fig3a(scale=repro_scale, seed=repro_seed))
    print("\n" + out.render())
    # Shape claims: GGR fastest everywhere; big gains on join datasets.
    for ds in ("movies", "products", "bird", "pdmx", "beer"):
        assert out.metrics[f"{ds}-T1.speedup_vs_nocache"] > 1.3, ds
        assert out.metrics[f"{ds}-T1.speedup_vs_original"] >= 0.95, ds
    assert out.metrics["movies-T1.speedup_vs_original"] > 1.8
    assert out.metrics["bird-T1.speedup_vs_original"] > 1.5
