"""Micro-benchmarks of continuous batching under overload: a 10x-offered
bursty trace where deadline-aware preemptive scheduling beats one-shot
admit-and-forget policies on goodput-under-deadline.

The workload is the adversarial shape for one-shot admission: a handful of
long-decode "batch" jobs land just after the first interactive burst and
occupy every batch slot for tens of simulated seconds, while bursts of
short interactive requests — offered at ~10x what the engine can serve —
keep arriving with a 2 s SLO. The batch jobs carry *short* prompts (the
decode length is what makes them expensive), so both deadline-blind
orderings fail differently: FCFS admits them by arrival and never gets
the slots back, SJF's shortest-prompt heuristic actively prefers them.
The ``deadline`` EDF policy with ``preemption="recompute"`` reads the
actual SLO instead: it evicts the latest-deadline decoders to serve
urgent arrivals and sheds requests that are already hopeless, recovering
most of the feasible interactive goodput. The acceptance bar is asserted in
``bench_overload_deadline_preempt``: >= 1.3x the FCFS goodput-under-
deadline (measured, not assumed) and strictly better than SJF.
"""

from conftest import perf_record, run_once

from repro.llm.client import SimulatedLLMClient
from repro.llm.engine import EngineConfig
from repro.llm.scheduler import serving_online_enabled, serving_preempt_enabled
from repro.llm.workload import TraceRequest, WorkloadTrace, bursty_arrivals

#: Run-level SLO used for goodput accounting (and the EDF default): every
#: request wants its answer within this many seconds of arriving.
_DEADLINE_S = 2.0

#: Slot-bound serving point: 4 decode slots, KV roomy enough that the
#: pressure is batch slots (the preemption axis), not block memory.
_OVERLOAD_CFG = dict(max_batch_size=4, kv_capacity_tokens=20_000)


def _overload_trace(n_interactive=72, n_batch=8):
    """Interactive bursts at ~10x service capacity, with long-decode batch
    jobs landing early enough to capture every slot.

    Interactive: MMPP bursts, ~35 req/s offered over a ~2 s span against
    a service capacity of ~4 req/s at these decode lengths, sharing a
    long prompt header (the prefix-cache-friendly shape). Batch: short
    prompts but long outputs (~100 decode tokens each, ~9 s of slot time
    apiece) with a loose 120 s deadline of their own — the shape that
    fools a prompt-length heuristic.
    """
    header = " ".join(f"ovhd{j}" for j in range(120))
    arrivals = bursty_arrivals(
        n_interactive,
        on_rate_rps=150.0,
        on_mean_s=0.12,
        off_mean_s=0.25,
        seed=7,
    )
    reqs = [
        TraceRequest(
            arrival_s=t,
            prompt=f"{header} ask {i} q{(i * 13) % 89}",
            tenant="interactive",
            output_len=4,
            deadline_s=_DEADLINE_S,
        )
        for i, t in enumerate(arrivals)
    ]
    batch_header = " ".join(f"bjhd{j}" for j in range(20))
    reqs += [
        TraceRequest(
            arrival_s=0.05 + 0.01 * i,
            prompt=f"{batch_header} report section {i}",
            tenant="batch",
            output_len=100,
            deadline_s=120.0,
        )
        for i in range(n_batch)
    ]
    return WorkloadTrace(reqs, name="10x-overload-bursty")


def _replay(trace, policy, **engine_kwargs):
    client = SimulatedLLMClient(
        engine_config=EngineConfig(
            scheduler=policy, **_OVERLOAD_CFG, **engine_kwargs
        )
    )
    return client.generate_trace(trace, deadline_s=_DEADLINE_S)


def _record(benchmark, res):
    s = res.slo
    er = res.engine_result
    benchmark.extra_info["scheduler"] = res.scheduler
    benchmark.extra_info["preemption"] = er.preemption
    benchmark.extra_info["n_preemptions"] = er.n_preemptions
    benchmark.extra_info["goodput_attainment"] = round(s.attainment, 4)
    benchmark.extra_info["goodput_tokens_per_s"] = round(
        s.goodput_tokens_per_s, 3
    )
    benchmark.extra_info["p95_ttft_s"] = round(s.ttft.p95, 4)
    benchmark.extra_info["makespan_s"] = round(res.total_seconds, 3)


def bench_overload_fcfs(benchmark):
    """FCFS baseline: the batch jobs are admitted in arrival order and
    hold all four slots; the interactive backlog behind them expires."""
    trace = _overload_trace()
    res = run_once(benchmark, lambda: _replay(trace, "fcfs"))
    assert res.slo.n_requests == trace.n_requests
    _record(benchmark, res)


def bench_overload_sjf(benchmark):
    """Shortest-prompt-first: its prompt-length heuristic actively
    prefers the short-prompt batch jobs whose decodes then hold the
    slots — and it cannot evict them once they run."""
    trace = _overload_trace()
    res = run_once(benchmark, lambda: _replay(trace, "sjf"))
    _record(benchmark, res)


def bench_overload_deadline_preempt(benchmark):
    """EDF + recompute preemption on the same trace, with the acceptance
    bar: >= 1.3x the FCFS goodput-under-deadline and at least SJF's
    (only asserted when the continuous-batching layer is enabled — under
    REPRO_SERVING_PREEMPT=0 the deadline policy falls back to fcfs)."""
    trace = _overload_trace()
    fcfs = _replay(trace, "fcfs")
    sjf = _replay(trace, "sjf")
    res = run_once(
        benchmark,
        lambda: _replay(
            trace,
            "deadline",
            preemption="recompute",
            scheduler_deadline_s=_DEADLINE_S,
        ),
    )
    _record(benchmark, res)
    benchmark.extra_info["fcfs_goodput_attainment"] = round(
        fcfs.slo.attainment, 4
    )
    benchmark.extra_info["sjf_goodput_attainment"] = round(
        sjf.slo.attainment, 4
    )
    if serving_online_enabled() and serving_preempt_enabled():
        ratio = res.slo.attainment / max(fcfs.slo.attainment, 1e-9)
        assert ratio >= 1.3, (
            f"deadline+preempt goodput {res.slo.attainment:.3f} vs fcfs "
            f"{fcfs.slo.attainment:.3f}: below the 1.3x bar"
        )
        assert res.slo.attainment >= sjf.slo.attainment, (
            f"deadline+preempt goodput {res.slo.attainment:.3f} below sjf "
            f"{sjf.slo.attainment:.3f}"
        )
        assert res.engine_result.n_preemptions > 0
        perf_record(
            "overload",
            "overload_deadline_preempt_goodput_ratio",
            ratio,
            ">= 1.3",
        )
    else:
        assert res.engine_result.n_preemptions == 0


def bench_overload_swap_vs_recompute(benchmark):
    """Swap preemption on the same trace: parked decode tails restore at
    PCIe cost instead of re-prefilling. Recorded alongside recompute so
    the trajectory shows both modes' goodput under identical pressure."""
    trace = _overload_trace()
    res = run_once(
        benchmark,
        lambda: _replay(
            trace,
            "deadline",
            preemption="swap",
            scheduler_deadline_s=_DEADLINE_S,
        ),
    )
    _record(benchmark, res)
    if serving_online_enabled() and serving_preempt_enabled():
        assert res.engine_result.n_preemptions > 0
        assert res.engine_result.preempted_tokens_swapped > 0
