"""Benchmark: regenerate Table 4 (estimated savings from measured PHR)."""

from benchmarks.conftest import run_once
from repro.bench.experiments import table4


def bench_table4(benchmark, repro_scale, repro_seed):
    out = run_once(benchmark, lambda: table4.run(scale=repro_scale, seed=repro_seed))
    print("\n" + out.render())
    for ds in ("movies", "products", "bird", "pdmx", "fever", "squad"):
        oa = out.metrics[f"{ds}.openai_savings"]
        an = out.metrics[f"{ds}.anthropic_savings"]
        assert 0.0 < oa < 0.5, ds          # paper band: 20-39%
        assert an > oa, ds                 # Anthropic's 10% read rate
    assert out.metrics["bird.openai_savings"] > 0.2
