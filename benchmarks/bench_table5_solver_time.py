"""Benchmark: regenerate Table 5 (GGR solver time per dataset).

This one also times the solver *directly* with pytest-benchmark on the
largest dataset (Beer) so regressions in GGR itself show up in the
benchmark stats, not just in the experiment report.
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import table5
from repro.bench.experiments.base import dataset
from repro.core.reorder import reorder


def bench_table5(benchmark, repro_scale, repro_seed):
    out = run_once(benchmark, lambda: table5.run(scale=repro_scale, seed=repro_seed))
    print("\n" + out.render())
    # The paper's bound: solver stays in seconds even at full scale.
    budget = max(2.0, 20.0 * repro_scale)
    for ds in ("movies", "products", "bird", "pdmx", "beer", "fever", "squad"):
        assert out.metrics[f"{ds}.solver_seconds"] < budget, ds


def bench_ggr_solver_beer(benchmark, repro_scale, repro_seed):
    ds = dataset("beer", repro_scale, repro_seed)
    rt = ds.table.to_reorder_table()
    result = benchmark(lambda: reorder(rt, "ggr", fds=ds.fds))
    assert result.exact_phc > 0
