"""Micro-benchmarks of the serving layer (engine replay, radix cache,
client tokenization) — the counterpart of ``bench_core_micro`` for the
solver layer, so serving regressions are visible in isolation.

The replay benchmarks build a paper-shaped workload: a long shared header,
group-level shared segments (what reordering creates), per-row suffixes,
and varied output lengths (so completions stagger and the event engine
sees many events, not one lucky jump). The event/stepwise pair on the
same >=100k-decode-token workload is the headline: the event engine must
be >=10x faster than the per-token oracle loop.
"""

import random
import time

import pytest
from conftest import perf_record, run_once

from repro.llm.blocks import serving_vector_enabled
from repro.llm.client import SimulatedLLMClient
from repro.llm.engine import EngineConfig, SimulatedLLMEngine
from repro.llm.hardware import CLUSTER_1XL4
from repro.llm.models import LLAMA3_8B
from repro.llm.radix import RadixPrefixCache, pack_tokens
from repro.llm.request import Request


def _replay_requests(
    n_requests=320,
    header_len=200,
    n_groups=12,
    group_len=80,
    suffix_len=30,
    out_lo=550,
    out_hi=1000,
    seed=0,
    n_tenants=0,
):
    rng = random.Random(seed)
    header = tuple(rng.randrange(30_000) for _ in range(header_len))
    groups = [
        tuple(rng.randrange(30_000) for _ in range(group_len))
        for _ in range(n_groups)
    ]
    requests = []
    for i in range(n_requests):
        group = groups[(i * n_groups) // n_requests]  # grouped, like a schedule
        suffix = tuple(rng.randrange(30_000) for _ in range(suffix_len))
        prompt = header + group + suffix
        requests.append(
            Request(
                request_id=i,
                prompt_tokens=prompt,
                output_tokens=rng.randrange(out_lo, out_hi),
                prompt_bytes=pack_tokens(prompt),  # as the client would
                tenant=f"t{i % n_tenants}" if n_tenants else "",
            )
        )
    return requests


def _replay(mode, requests, **cfg_kwargs):
    eng = SimulatedLLMEngine(
        LLAMA3_8B, CLUSTER_1XL4, EngineConfig(mode=mode, **cfg_kwargs)
    )
    eng.submit_all(requests)
    return eng.run()


def _record(benchmark, res):
    benchmark.extra_info["decode_tokens"] = res.decode_tokens
    benchmark.extra_info["decode_steps"] = res.decode_steps
    benchmark.extra_info["prefix_hit_rate"] = round(res.prefix_hit_rate, 4)


def bench_engine_replay_vector_vs_event(benchmark):
    """Headline for this PR: vectorized event replay vs the PR-5 scalar
    event path on a >=1M-decode-token multi-policy trace, required to be
    >=2x with **bit-identical** metrics.

    Measurement notes: the workload is long-output and eviction-free
    (reservations fit KV capacity at max_batch_size=12), the regime where
    replay time is dominated by per-block state updates — exactly what the
    vector path batches. Both modes are timed interleaved and the per-policy
    minimum of 5 runs is used, which is robust to the scheduling noise of
    shared CI runners; the ratio of two same-process minima then cancels
    machine speed. Timing is internal (perf_counter) so the assertion and
    the BENCH_serving.json record also hold under ``--benchmark-disable``.
    """
    if not serving_vector_enabled():
        pytest.skip("vector serving path unavailable (numpy missing or "
                    "REPRO_SERVING_VECTOR=0)")
    requests = _replay_requests(
        n_requests=160,
        header_len=2000,
        out_lo=6000,
        out_hi=8000,
        n_tenants=4,
    )
    policies = ("fcfs", "sjf", "fair-share")

    def work():
        best = {}
        results = {}
        for _ in range(5):
            for policy in policies:
                for mode in ("vector", "event"):
                    t0 = time.perf_counter()
                    res = _replay(
                        mode, requests, max_batch_size=12, scheduler=policy
                    )
                    dt = time.perf_counter() - t0
                    key = (mode, policy)
                    if key not in best or dt < best[key]:
                        best[key] = dt
                    results[key] = res
        return best, results

    best, results = run_once(benchmark, work)
    decode_total = 0
    for policy in policies:
        rv = results[("vector", policy)]
        re_ = results[("event", policy)]
        assert rv.decode_tokens == re_.decode_tokens >= 100_000
        assert rv.cached_tokens == re_.cached_tokens
        assert rv.total_seconds == re_.total_seconds  # bit-identical clocks
        for mv, me in zip(rv.request_metrics, re_.request_metrics):
            assert mv.admitted_at_s == me.admitted_at_s
            assert mv.first_token_at_s == me.first_token_at_s
            assert mv.finished_at_s == me.finished_at_s
        decode_total += rv.decode_tokens
    ratio = sum(best[("event", p)] for p in policies) / sum(
        best[("vector", p)] for p in policies
    )
    benchmark.extra_info["decode_tokens"] = decode_total
    benchmark.extra_info["speedup_vector_over_event"] = round(ratio, 3)
    assert ratio >= 2.0
    perf_record("serving", "engine_replay_vector_speedup", ratio, ">= 2.0")


def bench_engine_replay_event(benchmark):
    """Event-driven replay of a ~135k-decode-token workload (default mode)."""
    requests = _replay_requests()
    res = run_once(benchmark, lambda: _replay("event", requests))
    assert res.decode_tokens >= 100_000
    _record(benchmark, res)


def bench_engine_replay_stepwise_oracle(benchmark):
    """The same workload through the per-token oracle loop — the >=10x
    comparison baseline for bench_engine_replay_event."""
    requests = _replay_requests()
    res = run_once(benchmark, lambda: _replay("stepwise", requests))
    assert res.decode_tokens >= 100_000
    _record(benchmark, res)


def bench_engine_replay_no_cache(benchmark):
    """The paper's No-Cache baseline at scale: full prefills, private KV."""
    requests = _replay_requests(n_requests=600)
    res = run_once(
        benchmark, lambda: _replay("event", requests, enable_prefix_cache=False)
    )
    assert res.cached_tokens == 0
    _record(benchmark, res)


def bench_engine_replay_paged_blocks(benchmark):
    """The same replay under explicit paged-KV admission (block_tokens=16):
    quantifies the block-accounting overhead vs the token-sum oracle twin
    below, and records the fragmentation the oracle cannot see."""
    requests = _replay_requests()
    res = run_once(
        benchmark,
        lambda: _replay(
            "event", requests, kv_accounting="paged", block_tokens=16
        ),
    )
    assert res.kv_accounting == "paged" and res.peak_kv_blocks > 0
    benchmark.extra_info["peak_kv_blocks"] = res.peak_kv_blocks
    benchmark.extra_info["fragmentation_tokens"] = res.fragmentation_tokens
    benchmark.extra_info["fragmentation"] = round(res.fragmentation, 4)
    _record(benchmark, res)


def bench_engine_replay_token_oracle_accounting(benchmark):
    """Token-sum admission oracle (`kv_accounting="tokens"`) on the same
    workload — the baseline for bench_engine_replay_paged_blocks."""
    requests = _replay_requests()
    res = run_once(
        benchmark, lambda: _replay("event", requests, kv_accounting="tokens")
    )
    assert res.kv_accounting == "tokens" and res.peak_kv_blocks == 0
    _record(benchmark, res)


def bench_engine_paged_eviction_pressure(benchmark):
    """Eviction under paged admission: block-denominated eviction keeps
    freeing victims until physical blocks (not just tokens) are available,
    exercising fork/release churn and straddle-shared split blocks."""
    requests = _replay_requests(
        n_requests=800, n_groups=40, suffix_len=60, out_lo=8, out_hi=24
    )

    def work():
        eng = SimulatedLLMEngine(
            LLAMA3_8B,
            CLUSTER_1XL4,
            EngineConfig(
                mode="event",
                kv_accounting="paged",
                block_tokens=16,
                kv_capacity_tokens=4000,
                max_batch_size=8,
            ),
        )
        eng.submit_all(requests)
        return eng.run(), eng.cache.evicted_tokens

    res, evicted = run_once(benchmark, work)
    assert res.decode_tokens > 0 and evicted > 0
    benchmark.extra_info["evicted_tokens"] = evicted
    benchmark.extra_info["peak_kv_blocks"] = res.peak_kv_blocks
    benchmark.extra_info["fragmentation"] = round(res.fragmentation, 4)
    _record(benchmark, res)


def bench_engine_eviction_pressure(benchmark):
    """Replay under a KV capacity that forces continuous eviction (the
    amortized-eviction hot path: pin/unpin churn plus heap pops)."""
    requests = _replay_requests(
        n_requests=800, n_groups=40, suffix_len=60, out_lo=8, out_hi=24
    )

    def work():
        eng = SimulatedLLMEngine(
            LLAMA3_8B,
            CLUSTER_1XL4,
            EngineConfig(
                mode="event", kv_capacity_tokens=4000, max_batch_size=8
            ),
        )
        eng.submit_all(requests)
        return eng.run(), eng.cache.evicted_tokens

    res, evicted = run_once(benchmark, work)
    assert res.decode_tokens > 0 and evicted > 0
    benchmark.extra_info["evicted_tokens"] = evicted
    _record(benchmark, res)


def bench_engine_eviction_pressure_stepwise_oracle(benchmark):
    """Eviction-pressure baseline: stepwise loop + scan-based eviction."""
    requests = _replay_requests(
        n_requests=800, n_groups=40, suffix_len=60, out_lo=8, out_hi=24
    )
    res = run_once(
        benchmark,
        lambda: _replay(
            "stepwise", requests, kv_capacity_tokens=4000, max_batch_size=8
        ),
    )
    assert res.decode_tokens > 0
    _record(benchmark, res)


def _deep_prompts(n_prompts=400, depth=600, seed=0):
    """Prompts sharing deep prefixes at many split points — worst case for
    per-edge compares and tree depth."""
    rng = random.Random(seed)
    base = [rng.randrange(5000) for _ in range(depth)]
    prompts = []
    for _ in range(n_prompts):
        cut = rng.randrange(depth // 4, depth)
        p = tuple(base[:cut]) + tuple(
            rng.randrange(5000) for _ in range(60)
        )
        prompts.append(p)
    return prompts


def bench_radix_match_insert_deep(benchmark):
    """match+insert over deep shared prefixes (heap/packed-bytes cache)."""
    prompts = _deep_prompts()

    def work():
        cache = RadixPrefixCache(eviction="heap")
        hits = 0
        for p in prompts:
            hits += cache.match(p)
            cache.insert(p)
        return hits

    hits = benchmark(work)
    assert hits > 0


def bench_radix_match_insert_deep_scan_oracle(benchmark):
    """Same workload through the reference (scan/tuple-slice) cache."""
    prompts = _deep_prompts()

    def work():
        cache = RadixPrefixCache(eviction="scan")
        hits = 0
        for p in prompts:
            hits += cache.match(p)
            cache.insert(p)
        return hits

    hits = benchmark(work)
    assert hits > 0


def _long_edge_prompts(n_prompts=3000, seed=2):
    """Few distinct prompts, very long shared edges, replayed many times —
    the shape client workloads produce, where packed probes pay off."""
    rng = random.Random(seed)
    header = tuple(rng.randrange(5000) for _ in range(400))
    distinct = [
        header + tuple(rng.randrange(5000) for _ in range(40))
        for _ in range(30)
    ]
    return [distinct[rng.randrange(len(distinct))] for _ in range(n_prompts)]


def bench_radix_long_edges_packed(benchmark):
    """Replayed long-edge probes with pre-packed bytes (startswith path)."""
    prompts = _long_edge_prompts()
    packed = {id(p): pack_tokens(p) for p in set(prompts)}

    def work():
        cache = RadixPrefixCache(eviction="heap")
        hits = 0
        for p in prompts:
            b = packed[id(p)]
            hits += cache.match(p, b)
            cache.insert(p, b)
        return hits

    hits = benchmark(work)
    assert hits > 0


def bench_radix_long_edges_unpacked(benchmark):
    """Same probes without packed bytes (tuple-slice compare path)."""
    prompts = _long_edge_prompts()

    def work():
        cache = RadixPrefixCache(eviction="heap")
        hits = 0
        for p in prompts:
            hits += cache.match(p)
            cache.insert(p)
        return hits

    hits = benchmark(work)
    assert hits > 0


def bench_radix_eviction_churn(benchmark):
    """Insert/evict cycles on a populated tree: amortized heap pops vs the
    oracle's full-tree scan per victim (see the *_scan twin)."""
    prompts = _deep_prompts(n_prompts=300, depth=300, seed=1)

    def work(eviction):
        cache = RadixPrefixCache(eviction=eviction)
        freed = 0
        for i, p in enumerate(prompts):
            cache.insert(p)
            if i % 4 == 3:
                freed += cache.evict(200, protected=[prompts[i - 1]])
        return freed

    freed = benchmark(lambda: work("heap"))
    assert freed > 0


def bench_radix_eviction_churn_scan_oracle(benchmark):
    prompts = _deep_prompts(n_prompts=300, depth=300, seed=1)

    def work():
        cache = RadixPrefixCache(eviction="scan")
        freed = 0
        for i, p in enumerate(prompts):
            cache.insert(p)
            if i % 4 == 3:
                freed += cache.evict(200, protected=[prompts[i - 1]])
        return freed

    freed = benchmark(work)
    assert freed > 0


def bench_client_repeat_prompt_tokenization(benchmark):
    """Client-side replay with heavily repeated prompts: the encode memo
    collapses re-tokenization of repeated rows to dict lookups."""
    rng = random.Random(0)
    distinct = [
        "header question about field values. "
        + " ".join(f"value{rng.randrange(50)}" for _ in range(120))
        for _ in range(40)
    ]
    prompts = [distinct[rng.randrange(len(distinct))] for _ in range(2000)]

    def work():
        client = SimulatedLLMClient()
        res = client.generate(prompts, output_lens=[1] * len(prompts))
        return res.engine_result.prompt_tokens

    total = run_once(benchmark, work)
    assert total > 0
