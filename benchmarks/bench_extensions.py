"""Benchmarks: partition-parallel GGR and local-search refinement."""

from benchmarks.conftest import run_once
from repro.bench.experiments import extensions


def bench_ext_partitioned(benchmark, repro_scale, repro_seed):
    out = run_once(
        benchmark, lambda: extensions.run_partitioned(scale=repro_scale, seed=repro_seed)
    )
    print("\n" + out.render())
    for name in ("movies", "beer"):
        # Clustering must beat round-robin and retain most of the PHC.
        assert out.metrics[f"{name}.clustered@4"] >= out.metrics[f"{name}.round_robin@4"], name
        assert out.metrics[f"{name}.clustered@8"] > 0.7, name


def bench_ext_refine(benchmark, repro_scale, repro_seed):
    out = run_once(
        benchmark, lambda: extensions.run_refine(scale=repro_scale, seed=repro_seed)
    )
    print("\n" + out.render())
    for name in ("movies", "pdmx", "beer"):
        assert out.metrics[f"{name}.gain"] >= 0.0, name
        assert out.metrics[f"{name}.phc_after"] >= out.metrics[f"{name}.phc_before"], name
