"""Micro-benchmarks of the online serving layer: arrival-timed trace
replay under each scheduling policy, on a 3-tenant interleaved workload.

The workload is the adversarial shape for a shared prefix cache: three
tenants whose prompts share a long per-tenant header, arriving
interleaved (round-robin with a small stagger) under a KV capacity that
holds roughly one tenant's working set. FCFS admits in arrival order and
thrashes the cache on every tenant switch; prefix-affinity admits
requests that extend currently-cached radix paths, recovering the
paper's prefix-sharing win under contention. The acceptance bar is
asserted in ``bench_trace_prefix_affinity``: >= 1.2x the FCFS prefix hit
rate (measured, not assumed). Every policy records its p95 TTFT in the
benchmark's extra info.
"""

from conftest import perf_record, run_once

from repro.llm.client import SimulatedLLMClient
from repro.llm.engine import EngineConfig
from repro.llm.scheduler import serving_online_enabled
from repro.llm.workload import TraceRequest, WorkloadTrace

#: Tight-but-feasible serving point for the contention trace below: the
#: KV pool fits ~two tenants' subtrees plus in-flight work (three don't
#: fit), so cross-tenant interleaving forces evictions while same-tenant
#: runs stay cached — FCFS lands ~0.32 PHR, prefix-affinity ~0.97.
_CONTENTION_CFG = dict(max_batch_size=2, kv_capacity_tokens=950)


def _three_tenant_trace(n_per_tenant=40, header_words=300, stagger_s=0.002):
    """Round-robin interleaved arrivals from 3 tenants; each tenant's
    prompts share a long header and differ in a short suffix. Headers
    lead with a tenant-distinct piece so cross-tenant prompts diverge at
    token 0 — each tenant is a separate radix subtree, the clean
    cache-contention shape."""
    headers = {
        t: " ".join(f"{t}hd{j}" for j in range(header_words)) for t in "ABC"
    }
    reqs = []
    for i in range(3 * n_per_tenant):
        tenant = "ABC"[i % 3]
        reqs.append(
            TraceRequest(
                arrival_s=i * stagger_s,
                prompt=f"{headers[tenant]} row {i} detail {(i * 7) % 101}",
                tenant=tenant,
                output_len=6,
            )
        )
    return WorkloadTrace(reqs, name="3-tenant-interleaved")


def _replay(trace, policy, **cfg):
    client = SimulatedLLMClient(
        engine_config=EngineConfig(scheduler=policy, **cfg)
    )
    return client.generate_trace(trace, deadline_s=60.0)


def _record(benchmark, res):
    s = res.slo
    benchmark.extra_info["scheduler"] = res.scheduler
    benchmark.extra_info["prefix_hit_rate"] = round(res.prefix_hit_rate, 4)
    benchmark.extra_info["p50_ttft_s"] = round(s.ttft.p50, 4)
    benchmark.extra_info["p95_ttft_s"] = round(s.ttft.p95, 4)
    benchmark.extra_info["p99_ttft_s"] = round(s.ttft.p99, 4)
    benchmark.extra_info["e2e_p95_s"] = round(s.e2e.p95, 4)
    benchmark.extra_info["goodput_attainment"] = round(s.attainment, 4)
    benchmark.extra_info["makespan_s"] = round(res.total_seconds, 3)


def bench_trace_fcfs(benchmark):
    """FCFS baseline on the interleaved trace: every tenant switch pays a
    cold prefill once the cache is contended."""
    trace = _three_tenant_trace()
    res = run_once(benchmark, lambda: _replay(trace, "fcfs", **_CONTENTION_CFG))
    assert res.slo.n_requests == trace.n_requests
    _record(benchmark, res)


def bench_trace_sjf(benchmark):
    """Shortest-prompt-first on the same trace (prompt lengths are nearly
    uniform here, so this mostly tracks FCFS — recorded for the p95 TTFT
    comparison row)."""
    trace = _three_tenant_trace()
    res = run_once(benchmark, lambda: _replay(trace, "sjf", **_CONTENTION_CFG))
    _record(benchmark, res)


def bench_trace_fair_share(benchmark):
    """Per-tenant deficit round-robin: fairness-bounded interleaving —
    cache behaviour close to FCFS, but no tenant can starve another."""
    trace = _three_tenant_trace()
    res = run_once(
        benchmark, lambda: _replay(trace, "fair-share", **_CONTENTION_CFG)
    )
    _record(benchmark, res)


def bench_trace_prefix_affinity(benchmark):
    """Prefix-affinity on the interleaved trace, with the acceptance bar:
    >= 1.2x the FCFS prefix hit rate (only asserted when the online layer
    is enabled — under REPRO_SERVING_ONLINE=0 every policy is FCFS)."""
    trace = _three_tenant_trace()
    baseline = _replay(trace, "fcfs", **_CONTENTION_CFG)
    res = run_once(
        benchmark, lambda: _replay(trace, "prefix-affinity", **_CONTENTION_CFG)
    )
    _record(benchmark, res)
    benchmark.extra_info["fcfs_prefix_hit_rate"] = round(
        baseline.prefix_hit_rate, 4
    )
    if serving_online_enabled():
        phr_ratio = res.prefix_hit_rate / max(baseline.prefix_hit_rate, 1e-9)
        assert phr_ratio >= 1.2, (
            f"prefix-affinity PHR {res.prefix_hit_rate:.3f} vs fcfs "
            f"{baseline.prefix_hit_rate:.3f}: below the 1.2x bar"
        )
        assert res.slo.ttft.p95 <= baseline.slo.ttft.p95
        perf_record(
            "scheduler",
            "scheduler_prefix_affinity_phr_ratio",
            phr_ratio,
            ">= 1.2",
        )
    else:
        assert res.scheduler == "fcfs"


def bench_trace_offline_gate_overhead(benchmark):
    """The online machinery at its degenerate point — all arrivals at
    t=0, fcfs — costs nothing over the offline batch path (same engine
    loop, one extra no-op arrival release per admission)."""
    trace = _three_tenant_trace(stagger_s=0.0)
    res = run_once(benchmark, lambda: _replay(trace, "fcfs", **_CONTENTION_CFG))
    assert all(
        m.arrival_s == 0.0 for m in res.engine_result.request_metrics
    )
    _record(benchmark, res)


def bench_trace_bursty_fair_share(benchmark):
    """Fair-share under MMPP-style bursts: a bursty foreground tenant
    against a steady background tenant — the DRR quantum bounds how far
    the burst can push the background tenant's p95 TTFT."""
    from repro.llm.workload import bursty_arrivals, poisson_arrivals

    fg = bursty_arrivals(
        60, on_rate_rps=400.0, on_mean_s=0.05, off_mean_s=0.3, seed=11
    )
    bg = poisson_arrivals(40, 25.0, seed=12)
    header_fg = " ".join(f"fghdr{j}" for j in range(150))
    header_bg = " ".join(f"bghdr{j}" for j in range(150))
    reqs = [
        TraceRequest(t, f"{header_fg} burst row {i}", tenant="burst", output_len=4)
        for i, t in enumerate(fg)
    ] + [
        TraceRequest(t, f"{header_bg} steady row {i}", tenant="steady", output_len=4)
        for i, t in enumerate(bg)
    ]
    trace = WorkloadTrace(reqs, name="bursty-vs-steady")
    cfg = dict(max_batch_size=4, kv_capacity_tokens=1600)
    baseline = _replay(trace, "fcfs", **cfg)
    res = run_once(
        benchmark, lambda: _replay(trace, "fair-share", **cfg)
    )
    _record(benchmark, res)
    per_tenant = res.slo.per_tenant
    benchmark.extra_info["steady_p95_ttft_s"] = round(
        per_tenant["steady"].ttft.p95, 4
    )
    benchmark.extra_info["burst_p95_ttft_s"] = round(
        per_tenant["burst"].ttft.p95, 4
    )
    fcfs_steady_p95 = baseline.slo.per_tenant["steady"].ttft.p95
    benchmark.extra_info["fcfs_steady_p95_ttft_s"] = round(fcfs_steady_p95, 4)
    if serving_online_enabled():
        # How much the DRR quantum shields the steady background tenant
        # from the foreground burst, vs letting fcfs drown it.
        ratio = fcfs_steady_p95 / max(
            per_tenant["steady"].ttft.p95, 1e-9
        )
        assert ratio >= 1.2
        perf_record(
            "scheduler",
            "scheduler_fair_share_steady_p95_ttft_ratio",
            ratio,
            ">= 1.2",
        )
