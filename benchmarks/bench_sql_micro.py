"""Micro-benchmarks of the LLM-aware SQL optimizer (PR 4).

Two workload shapes the paper's SQL layer is built around:

* **dedup-heavy**: a projection whose touched fields repeat across rows
  (6x row redundancy here) — with input dedup the engine sees one prompt
  per *distinct* row, so optimizer-on must issue <= 1/3 of the engine
  prompt tokens of optimizer-off while producing bit-identical output
  (the acceptance bar; the measured ratio lands near 1/6 and is recorded
  in ``extra_info``).
* **LLM-filter ordering**: a WHERE mixing a cheap relational predicate
  with two LLM predicates of very different per-row cost — conjunct
  splitting + pushdown + rank ordering cut the answerer invocations.

Both run the full stack: SQL front-end -> optimizer -> GGR reordering ->
serving simulator.
"""

from conftest import run_once

from repro.llm.client import SimulatedLLMClient
from repro.relational import Database, LLMRuntime, OptimizerConfig, Table


def _product_table(n_families=30, per_family=6):
    """6x redundancy on the fields the dedup query touches; ``sku`` keeps
    full rows distinct so only projected-field dedup can collapse them."""
    rows = []
    for f in range(n_families):
        for k in range(per_family):
            rows.append(
                {
                    "sku": f"sku-{f}-{k}",
                    "product_title": f"Widget family {f} deluxe edition",
                    "description": (
                        f"A long shared marketing description of widget family {f} "
                        "covering materials, warranty, and intended audience. " * 2
                    ),
                    "category": f"cat-{f % 4}",
                    "stock": (f * per_family + k) % 7,
                    "review": f"unique review text {f}/{k} with specific opinions",
                }
            )
    return Table.from_records(rows)


def _cells_answerer(query, cells, row_id):
    vals = {c.field: c.value for c in cells}
    if "family" in query:
        return vals.get("product_title", "?").split()[2]
    return "Yes" if hash(tuple(sorted(vals.items()))) % 2 == 0 else "No"


def _make_db(opt: bool):
    runtime = LLMRuntime(
        client=SimulatedLLMClient(),
        policy="ggr",
        answerer=_cells_answerer,
        dedup=opt,
        memo=opt,
    )
    db = Database(runtime=runtime, optimizer_config=OptimizerConfig(enabled=opt))
    db.register("products", _product_table())
    return db


DEDUP_SQL = (
    "SELECT LLM('classify the product family', product_title, description) "
    "AS family FROM products"
)

ORDERING_SQL = (
    "SELECT sku FROM products WHERE "
    "LLM('does this long description read as premium?', description, review) = 'Yes' "
    "AND stock >= 2 "
    "AND LLM('short?', category) = 'Yes'"
)


def _engine_prompt_tokens(db):
    return sum(
        c.engine_result.prompt_tokens
        for c in db.runtime.calls
        if c.engine_result is not None
    )


def bench_sql_dedup_heavy_optimized(benchmark):
    """Dedup-heavy projection with the optimizer on: engine prompt tokens
    must drop to <= 1/3 of the oracle's (6x redundancy -> ~1/6) with
    bit-identical output."""
    ref_db = _make_db(opt=False)
    ref_out = ref_db.sql(DEDUP_SQL)
    ref_tokens = _engine_prompt_tokens(ref_db)

    db = _make_db(opt=True)
    out = run_once(benchmark, lambda: db.sql(DEDUP_SQL))
    opt_tokens = _engine_prompt_tokens(db)

    assert out.fields == ref_out.fields
    assert all(out.column(f) == ref_out.column(f) for f in ref_out.fields)
    ratio = opt_tokens / ref_tokens
    assert ratio <= 1 / 3, f"dedup saved too little: {ratio:.3f} > 1/3"
    call = db.runtime.calls[-1]
    benchmark.extra_info["prompt_token_ratio"] = round(ratio, 4)
    benchmark.extra_info["engine_prompt_tokens"] = opt_tokens
    benchmark.extra_info["oracle_prompt_tokens"] = ref_tokens
    benchmark.extra_info["n_rows"] = call.n_rows
    benchmark.extra_info["n_distinct"] = call.n_distinct
    benchmark.extra_info["dedup_saved_prompt_tokens"] = call.dedup_saved_prompt_tokens


def bench_sql_dedup_heavy_oracle(benchmark):
    """The same query with REPRO_SQL_OPT-off semantics (one model call per
    row) — the comparison baseline."""
    db = _make_db(opt=False)
    run_once(benchmark, lambda: db.sql(DEDUP_SQL))
    benchmark.extra_info["engine_prompt_tokens"] = _engine_prompt_tokens(db)
    assert db.runtime.calls[-1].dedup_saved_prompt_tokens == 0


def bench_sql_llm_filter_ordering(benchmark):
    """Mixed-predicate WHERE: pushdown + rank ordering must cut answerer
    invocations versus the unoptimized conjunction (which evaluates every
    LLM predicate over every row)."""
    counts = {}

    def make_counting_db(opt):
        db = _make_db(opt)
        inner = db.runtime.answerer
        counts[opt] = 0

        def counting(q, cells, rid):
            counts[opt] += 1
            return inner(q, cells, rid)

        db.runtime.answerer = counting
        return db

    ref_db = make_counting_db(False)
    ref_out = ref_db.sql(ORDERING_SQL)

    db = make_counting_db(True)
    out = run_once(benchmark, lambda: db.sql(ORDERING_SQL))

    assert out.column("sku") == ref_out.column("sku")
    assert counts[True] < counts[False]
    benchmark.extra_info["llm_invocations_optimized"] = counts[True]
    benchmark.extra_info["llm_invocations_oracle"] = counts[False]
    explain = db.explain(ORDERING_SQL)
    assert "pushdown_non_llm_filters" in explain
    assert "reorder_llm_predicates" in explain


def bench_sql_answer_memo_replay(benchmark):
    """Re-running the dedup query against a warm runtime: the second pass
    answers every row from the cross-call memo without touching the
    engine."""
    db = _make_db(opt=True)
    first = db.sql(DEDUP_SQL)

    out = run_once(benchmark, lambda: db.sql(DEDUP_SQL))
    assert out.column("family") == first.column("family")
    replay = db.runtime.calls[-1]
    assert replay.memo_hits == replay.n_rows
    assert replay.engine_result is None
    benchmark.extra_info["memo_hits"] = replay.memo_hits
