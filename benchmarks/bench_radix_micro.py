"""Micro-benchmarks of the flat array-backed radix cache against the
node-object tree it replaces.

The shape where the node backend structurally loses is the paper's
"sorted rows" pattern: a run of requests shares one long prompt base
(table header + instruction block + a sorted column prefix), each
request diverges from it midway with a short per-row tail, and groups
retire under eviction pressure as the scan advances to the next base.
Every probe then walks a long edge and diverges inside it — the node
tree resolves that with a per-token Python loop over the edge span,
the flat backend with a single vectorized compare over the contiguous
token store. The two backends are bit-identical by contract —
``tests/llm/test_radix_flat.py`` and ``test_radix_equivalence.py``
enforce it — so the ratio below measures pure implementation speed on
identical work.

Acceptance bar (asserted, then recorded for the perf trajectory):
``radix_flat_speedup >= 2.0`` on the match+insert+evict loop. The
end-to-end replay ratio is recorded as a no-regression guard with a
conservative bar — the cache is one component of replay cost, so its
e2e effect is real but diluted.
"""

import os
import random
import time

from conftest import perf_record, run_once

from repro.llm.client import SimulatedLLMClient
from repro.llm.engine import EngineConfig
from repro.llm.radix import RadixPrefixCache, pack_tokens, serving_radix_enabled
from repro.llm.workload import TraceRequest, WorkloadTrace, bursty_arrivals

#: Token budget the eviction loop holds the tree to — a few bases'
#: worth, so retired groups are evicted as the scan moves on and the
#: LRU engine (lazy re-keyed heap vs intrusive doubly-linked list)
#: stays on the hot path.
_CAP_TOKENS = 64_000


def _sorted_rows_stream(n_requests=2400, base_len=2048, run=6, seed=11):
    """The sorted-rows admission shape: every ``run`` requests share a
    fresh ``base_len``-token base (header + sorted column prefix); the
    followers keep a random prefix of it (the rows are sorted, so each
    shares at least half the base) and diverge into a short per-row
    tail. Probes carry their packed form so both backends skip
    re-packing, as the engine's callers do."""
    rng = random.Random(seed)
    stream = []
    base = None
    for i in range(n_requests):
        if i % run == 0:
            base = tuple(rng.randrange(50_000) for _ in range(base_len))
            toks = base
        else:
            cut = rng.randrange(base_len // 2, base_len)
            tail = tuple(
                rng.randrange(50_000) for _ in range(rng.randrange(8, 17))
            )
            toks = base[:cut] + tail
        stream.append((toks, pack_tokens(toks)))
    return stream


def _drive(cache, stream):
    """The admission loop: probe, insert, evict back under the cap."""
    for toks, packed in stream:
        cache.match_len(toks, packed)
        cache.insert(toks, packed)
        over = cache.total_tokens - _CAP_TOKENS
        if over > 0:
            cache.evict(over)
    return (
        cache.hits,
        cache.misses,
        cache.evicted_tokens,
        cache.evicted_nodes,
        cache.n_nodes,
        cache.total_tokens,
    )


def _time(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_radix_flat_vs_node(benchmark):
    """Headline: flat backend >= 2x the node tree on match+insert+evict.

    Both backends run the identical admission stream; their counters must
    agree exactly (the equivalence contract) before the ratio means
    anything. The node side pins ``eviction="heap"`` — the production
    node configuration, not the O(n log n) scan oracle — so the bar is
    against the strongest incumbent."""
    stream = _sorted_rows_stream()
    node_s, node_counters = _time(
        lambda: _drive(RadixPrefixCache(eviction="heap"), stream)
    )
    if not serving_radix_enabled():
        benchmark.pedantic(
            lambda: _drive(RadixPrefixCache(eviction="heap"), stream),
            rounds=1,
            iterations=1,
        )
        return
    flat_s, flat_counters = _time(
        lambda: _drive(RadixPrefixCache(backend="flat"), stream)
    )
    run_once(benchmark, lambda: _drive(RadixPrefixCache(backend="flat"), stream))
    assert flat_counters == node_counters, (
        "backends diverged on identical work: "
        f"flat {flat_counters} vs node {node_counters}"
    )
    ratio = node_s / max(flat_s, 1e-9)
    benchmark.extra_info["node_seconds"] = round(node_s, 4)
    benchmark.extra_info["flat_seconds"] = round(flat_s, 4)
    benchmark.extra_info["speedup"] = round(ratio, 3)
    assert ratio >= 2.0, (
        f"flat backend {flat_s:.4f}s vs node {node_s:.4f}s: "
        f"{ratio:.2f}x is below the 2x bar"
    )
    perf_record("radix", "radix_flat_speedup", ratio, ">= 2.0")


def _e2e_trace(n_interactive=96, header_tokens=800):
    """Bursty short interactive requests sharing a long prompt header —
    the admission-heavy pattern where radix lookups are a visible slice
    of replay cost. The header is long enough that prefix compares walk
    real edge spans, not two-token stubs."""
    header = " ".join(f"rxhd{j}" for j in range(header_tokens))
    arrivals = bursty_arrivals(
        n_interactive, on_rate_rps=150.0, on_mean_s=0.12, off_mean_s=0.25,
        seed=7,
    )
    reqs = [
        TraceRequest(
            arrival_s=t,
            prompt=f"{header} ask {i} q{(i * 13) % 89}",
            tenant="interactive",
            output_len=4,
            deadline_s=2.0,
        )
        for i, t in enumerate(arrivals)
    ]
    return WorkloadTrace(reqs, name="radix-e2e-admission")


def _replay(trace):
    client = SimulatedLLMClient(
        engine_config=EngineConfig(max_batch_size=4, kv_capacity_tokens=120_000)
    )
    return client.generate_trace(trace, deadline_s=2.0)


def bench_radix_e2e_replay(benchmark):
    """End-to-end vector replay, flat vs node backend, same trace.

    Recorded as a no-regression guard (``>= 0.9``): the flat backend must
    never make whole-trace replay slower. The measured ratio lands just
    above 1 on this shape — the cache is a single-digit share of replay
    cost — and the conservative bar absorbs shared-runner noise on a
    wall-clock ratio of a sub-second replay."""
    trace = _e2e_trace()
    if not serving_radix_enabled():
        run_once(benchmark, lambda: _replay(trace))
        return
    os.environ["REPRO_SERVING_RADIX"] = "0"
    try:
        node_s, node_res = _time(lambda: _replay(trace), repeats=5)
    finally:
        del os.environ["REPRO_SERVING_RADIX"]
    flat_s, flat_res = _time(lambda: _replay(trace), repeats=5)
    res = run_once(benchmark, lambda: _replay(trace))
    assert res.total_seconds == node_res.total_seconds == flat_res.total_seconds
    ratio = node_s / max(flat_s, 1e-9)
    benchmark.extra_info["node_seconds"] = round(node_s, 4)
    benchmark.extra_info["flat_seconds"] = round(flat_s, 4)
    benchmark.extra_info["e2e_speedup"] = round(ratio, 3)
    perf_record("radix", "radix_e2e_replay_ratio", ratio, ">= 0.9")
