"""Benchmark: regenerate Table 6 / Appendix D.1 (GGR vs the OPHR oracle)."""

from benchmarks.conftest import run_once
from repro.bench.experiments import table6


def bench_table6(benchmark, repro_scale, repro_seed):
    out = run_once(benchmark, lambda: table6.run(scale=repro_scale, seed=repro_seed))
    print("\n" + out.render())
    solved = 0
    for ds in ("movies", "products", "bird", "pdmx", "fever", "beer", "squad"):
        if f"{ds}.ophr_phr" not in out.metrics:
            continue
        solved += 1
        # The oracle dominates; GGR lands close (paper: within ~2 pp).
        assert out.metrics[f"{ds}.ophr_phr"] >= out.metrics[f"{ds}.ggr_phr"] - 1e-9
        assert out.metrics[f"{ds}.ggr_seconds"] <= out.metrics[f"{ds}.ophr_seconds"] + 0.05
    assert solved >= 5  # a couple of OPHR timeouts are tolerable
