"""Benchmark: regenerate Fig 5 (Llama-3-70B filter queries on 8xL4)."""

from benchmarks.conftest import run_once
from repro.bench.experiments import fig5


def bench_fig5(benchmark, repro_scale, repro_seed):
    out = run_once(benchmark, lambda: fig5.run(scale=repro_scale, seed=repro_seed))
    print("\n" + out.render())
    for ds in ("movies", "products", "bird", "pdmx", "beer"):
        assert out.metrics[f"{ds}-T1.speedup"] >= 0.95, ds
    assert out.metrics["movies-T1.speedup"] > 1.8
    assert out.metrics["pdmx-T1.speedup"] > 1.3
