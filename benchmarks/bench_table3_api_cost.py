"""Benchmark: regenerate Table 3 (OpenAI/Anthropic API costs on FEVER)."""

from benchmarks.conftest import run_once
from repro.bench.experiments import table3


def bench_table3(benchmark, repro_scale, repro_seed):
    out = run_once(benchmark, lambda: table3.run(scale=repro_scale, seed=repro_seed))
    print("\n" + out.render())
    # Paper: 32% savings on GPT-4o-mini, 21% on Claude 3.5 Sonnet.
    assert 0.15 < out.metrics["openai.savings"] < 0.55
    assert 0.05 < out.metrics["anthropic.savings"] < 0.45
    # Original ordering cannot clear the 1024-token caching minimum.
    assert out.metrics["openai.original_phr"] < 0.05
    assert out.metrics["openai.ggr_phr"] > 0.4
