"""Benchmark: regenerate Fig 4 (multi-LLM invocation + aggregation)."""

from benchmarks.conftest import run_once
from repro.bench.experiments import fig4


def bench_fig4(benchmark, repro_scale, repro_seed):
    out = run_once(benchmark, lambda: fig4.run(scale=repro_scale, seed=repro_seed))
    print("\n" + out.render())
    for qid in ("movies-T3", "products-T3", "movies-T4", "products-T4"):
        assert out.metrics[f"{qid}.speedup_vs_nocache"] > 1.3, qid
        assert out.metrics[f"{qid}.speedup_vs_original"] >= 0.95, qid
    # Aggregation (short outputs) gains more than multi-invocation, whose
    # first stage runs over distinct review text (paper §6.2).
    assert (
        out.metrics["movies-T4.speedup_vs_original"]
        > out.metrics["movies-T3.speedup_vs_original"]
    )
    assert out.metrics["movies-T3.n_llm_calls"] == 2
