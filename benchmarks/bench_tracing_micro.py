"""Micro-benchmark: lifecycle tracing must be (nearly) free.

Tracing is an opt-in observer: with ``EngineConfig.trace="off"`` the
engine holds ``tracer = None`` and every hook site is one attribute
test; with tracing on, the recorder's canonical clock and span
bookkeeping ride along the replay. The guard here is the recorded
``tracing_overhead_ratio`` — best-of-N replay time with tracing OFF over
best-of-N with tracing ON, interleaved to cancel machine drift. 1.0
means tracing is free; the ``>= 0.9`` bar allows at most ~11% overhead
and the committed baseline in ``benchmarks/baselines/BENCH_tracing.json``
makes regressions fail ``python -m repro.bench.perf compare`` in CI.

The workload is the preemption-pressure shape (bursty interactive
arrivals + slot-hogging batch decodes, EDF scheduler, recompute
preemption, chunked prefill) so the replay crosses *every* hook site —
pops, waves, chunk waves, preemptions, evictions, sheds — not just the
cheap steady-state decode path.
"""

import gc
import time

from conftest import perf_record, run_once

from repro.llm.client import SimulatedLLMClient
from repro.llm.engine import EngineConfig
from repro.llm.workload import TraceRequest, WorkloadTrace, bursty_arrivals

_DEADLINE_S = 2.0


def _pressure_trace(n_interactive=64, n_batch=6):
    header = " ".join(f"trhd{j}" for j in range(120))
    arrivals = bursty_arrivals(
        n_interactive,
        on_rate_rps=150.0,
        on_mean_s=0.12,
        off_mean_s=0.25,
        seed=11,
    )
    reqs = [
        TraceRequest(
            arrival_s=t,
            prompt=f"{header} ask {i} q{(i * 17) % 83}",
            tenant=f"tenant-{i % 3}",
            output_len=4,
            deadline_s=_DEADLINE_S,
        )
        for i, t in enumerate(arrivals)
    ]
    batch_header = " ".join(f"trbj{j}" for j in range(20))
    reqs += [
        TraceRequest(
            arrival_s=0.05 + 0.01 * i,
            prompt=f"{batch_header} report {i}",
            tenant="batch",
            output_len=80,
            deadline_s=120.0,
        )
        for i in range(n_batch)
    ]
    return WorkloadTrace(reqs, name="tracing-overhead-pressure")


def _replay(trace, trace_mode):
    client = SimulatedLLMClient(
        engine_config=EngineConfig(
            scheduler="deadline",
            preemption="recompute",
            prefill_chunk_tokens=48,
            scheduler_deadline_s=_DEADLINE_S,
            max_batch_size=4,
            kv_capacity_tokens=6000,
            trace=trace_mode,
        )
    )
    return client.generate_trace(trace, deadline_s=_DEADLINE_S)


def bench_tracing_overhead(benchmark):
    """Replay speed with tracing ON must stay within 10% of OFF, and the
    traced replay's metrics must be bit-identical to the untraced one
    (the ratio is meaningless if the observer perturbs the replay)."""
    trace = _pressure_trace()
    # Warm both paths (tokenizer encode cache, code paths) before timing.
    r_off = _replay(trace, "off")
    r_on = _replay(trace, "on")
    assert r_on.engine_result.total_seconds == r_off.engine_result.total_seconds
    assert r_on.engine_result.decode_steps == r_off.engine_result.decode_steps
    assert r_on.engine_result.trace is not None
    assert r_on.engine_result.trace.spans

    # One measurement block: interleaved best-of-9 (drift hits both sides
    # alike), GC off so gen0 collections over the span lists can't spike
    # individual samples. On a shared box a whole block can still land
    # during sustained CPU contention, so the guard takes the best ratio
    # of up to three blocks: a real overhead regression depresses every
    # block, transient noise doesn't.
    def _block():
        off_best = on_best = float("inf")
        gc.collect()
        gc.disable()
        try:
            for _ in range(9):
                t0 = time.perf_counter()
                _replay(trace, "off")
                off_best = min(off_best, time.perf_counter() - t0)
                t0 = time.perf_counter()
                _replay(trace, "on")
                on_best = min(on_best, time.perf_counter() - t0)
        finally:
            gc.enable()
        return off_best, on_best

    off_best = on_best = float("inf")
    ratio = 0.0
    for _ in range(3):
        off_b, on_b = _block()
        ratio_b = off_b / max(on_b, 1e-9)
        if ratio_b > ratio:
            off_best, on_best, ratio = off_b, on_b, ratio_b
        if ratio >= 0.93:
            break

    res = run_once(benchmark, lambda: _replay(trace, "on"))
    benchmark.extra_info["off_seconds"] = round(off_best, 4)
    benchmark.extra_info["on_seconds"] = round(on_best, 4)
    benchmark.extra_info["overhead_ratio"] = round(ratio, 3)
    benchmark.extra_info["n_spans"] = len(res.engine_result.trace.spans)
    benchmark.extra_info["n_preemptions"] = res.engine_result.n_preemptions
    assert ratio >= 0.9, (
        f"tracing overhead: on {on_best:.4f}s vs off {off_best:.4f}s "
        f"(ratio {ratio:.3f} below the 0.9 bar)"
    )
    perf_record("tracing", "tracing_overhead_ratio", ratio, ">= 0.9")
