"""Benchmark: regenerate Fig 1 (fixed-field-ordering case study)."""

from benchmarks.conftest import run_once
from repro.bench.experiments import fig1


def bench_fig1(benchmark, repro_scale, repro_seed):
    out = run_once(benchmark, lambda: fig1.run(n=32, m=8, x=10))
    print("\n" + out.render())
    assert out.metrics["fig1a.identity"] == 0
    assert out.metrics["fig1a.ggr"] == out.metrics["fig1a.theory"]
    assert abs(out.metrics["fig1b.gap"] - 3.0) < 1e-9  # exactly m-fold
