"""Benchmark: regenerate Table 7 / Appendix D.2 (Llama-3.2-1B filters)."""

from benchmarks.conftest import run_once
from repro.bench.experiments import fig3, table7


def bench_table7(benchmark, repro_scale, repro_seed):
    out = run_once(benchmark, lambda: table7.run(scale=repro_scale, seed=repro_seed))
    print("\n" + out.render())
    out8b = fig3.run_fig3a(scale=repro_scale, seed=repro_seed)
    smaller = 0
    for ds in ("movies", "products", "bird", "pdmx", "beer"):
        assert out.metrics[f"{ds}.ratio"] >= 0.9, ds
        assert out.metrics[f"{ds}.ggr_phr"] >= out.metrics[f"{ds}.orig_phr"], ds
        if out.metrics[f"{ds}.ratio"] <= out8b.metrics[f"{ds}-T1.speedup_vs_original"] + 0.05:
            smaller += 1
    # The paper's D.2 claim: the 1B model sees smaller relative gains than
    # the 8B model at identical hit rates.
    assert smaller >= 4
