"""Micro-benchmarks of the core primitives (solver, PHC, radix cache,
tokenizer) — these are the pieces whose performance the library's users
actually feel, so regressions here matter independent of the experiment
reports."""

import os
import random
import time

import pytest
from conftest import perf_record, run_once

from repro.bench.experiments.base import dataset
from repro.core.compiled import HAVE_NUMPY
from repro.core.ggr import GGRConfig, ggr
from repro.core.partitioned import partitioned_reorder
from repro.core.phc import phc
from repro.core.reorder import reorder
from repro.llm.radix import RadixPrefixCache
from repro.llm.tokenizer import HashTokenizer

#: The "large-scale" cases run at a multiple of the micro scale so the
#: same REPRO_SCALE knob controls both tiers (0.2 -> the paper's full
#: 15k-row movies table).
LARGE_SCALE_FACTOR = 5.0


def bench_ggr_movies(benchmark, repro_scale, repro_seed):
    ds = dataset("movies", repro_scale, repro_seed)
    rt = ds.table.to_reorder_table()
    est, sched, _ = benchmark(lambda: ggr(rt, fds=ds.fds))
    assert phc(sched) > 0


def bench_ggr_pdmx_wide(benchmark, repro_scale, repro_seed):
    ds = dataset("pdmx", repro_scale, repro_seed)
    rt = ds.table.to_reorder_table()
    est, sched, _ = benchmark(lambda: ggr(rt, fds=ds.fds))
    assert phc(sched) > 0


def bench_phc_evaluation(benchmark, repro_scale, repro_seed):
    ds = dataset("products", repro_scale, repro_seed)
    sched = reorder(ds.table.to_reorder_table(), "ggr", fds=ds.fds).schedule
    total = benchmark(lambda: phc(sched))
    assert total > 0


def bench_ggr_fastpath_vs_python_speedup(benchmark, repro_seed):
    """Perf-trajectory record for the core layer: compiled (numpy) GGR vs
    the pure-Python oracle on a fixed-size movies table, asserted to find
    the identical schedule. The workload size is pinned (not REPRO_SCALE)
    so the recorded ratio is comparable across runs; interleaved min-of-5
    timing plus the fast/oracle ratio cancels machine speed (same
    methodology as bench_engine_replay_vector_vs_event)."""
    if not HAVE_NUMPY:
        pytest.skip("compiled fast path unavailable (numpy missing)")
    ds = dataset("movies", 0.1, repro_seed)
    rt = ds.table.to_reorder_table()
    saved = os.environ.get("REPRO_CORE_FASTPATH")

    def solve(flag):
        os.environ["REPRO_CORE_FASTPATH"] = flag
        t0 = time.perf_counter()
        est, sched, _ = ggr(rt, fds=ds.fds)
        return time.perf_counter() - t0, est, phc(sched)

    def work():
        best = {}
        try:
            for _ in range(5):
                for flag in ("1", "0"):
                    got = solve(flag)
                    if flag not in best or got[0] < best[flag][0]:
                        best[flag] = got
        finally:
            if saved is None:
                os.environ.pop("REPRO_CORE_FASTPATH", None)
            else:
                os.environ["REPRO_CORE_FASTPATH"] = saved
        return best

    best = run_once(benchmark, work)
    assert best["1"][1:] == best["0"][1:]  # identical estimate and exact PHC
    ratio = best["0"][0] / best["1"][0]
    benchmark.extra_info["speedup_compiled_over_python"] = round(ratio, 3)
    assert ratio >= 2.5
    perf_record("core", "ggr_fastpath_speedup", ratio, ">= 2.5")


def bench_ggr_movies_large(benchmark, repro_scale, repro_seed):
    """Large-scale GGR: the whole-table solve the partitioned benchmarks
    below split up, for an apples-to-apples wall-clock comparison."""
    ds = dataset("movies", repro_scale * LARGE_SCALE_FACTOR, repro_seed)
    rt = ds.table.to_reorder_table()
    est, sched, _ = benchmark(lambda: ggr(rt, fds=ds.fds))
    assert phc(sched) > 0


def bench_partitioned_sequential(benchmark, repro_scale, repro_seed):
    """8-way partitioned solve, partitions solved one after another."""
    ds = dataset("movies", repro_scale * LARGE_SCALE_FACTOR, repro_seed)
    rt = ds.table.to_reorder_table()
    res = benchmark(
        lambda: partitioned_reorder(rt, n_partitions=8, fds=ds.fds, parallel=False)
    )
    assert res.exact_phc > 0 and res.n_workers == 1


def bench_partitioned_parallel(benchmark, repro_scale, repro_seed):
    """8-way partitioned solve over a process pool (one worker per
    available CPU; on a single-CPU host this honestly degrades to the
    sequential path rather than paying pool overhead for nothing)."""
    ds = dataset("movies", repro_scale * LARGE_SCALE_FACTOR, repro_seed)
    rt = ds.table.to_reorder_table()
    res = benchmark(
        lambda: partitioned_reorder(rt, n_partitions=8, fds=ds.fds, parallel=True)
    )
    assert res.exact_phc > 0
    benchmark.extra_info["n_workers"] = res.n_workers
    benchmark.extra_info["critical_path_seconds"] = res.critical_path_seconds


def bench_radix_insert_match(benchmark):
    rng = random.Random(0)
    base = [rng.randrange(500) for _ in range(400)]
    prompts = []
    for _ in range(200):
        p = list(base[: rng.randrange(100, 400)])
        p.extend(rng.randrange(500) for _ in range(50))
        prompts.append(p)

    def work():
        cache = RadixPrefixCache()
        hits = 0
        for p in prompts:
            hits += cache.match(p)
            cache.insert(p)
        return hits

    hits = benchmark(work)
    assert hits > 0


def bench_tokenizer_throughput(benchmark):
    tok = HashTokenizer()
    text = " ".join(f"word{i % 97} piece" for i in range(5000))

    n = benchmark(lambda: len(tok.encode(text)))
    assert n > 5000
