"""Micro-benchmarks of the core primitives (solver, PHC, radix cache,
tokenizer) — these are the pieces whose performance the library's users
actually feel, so regressions here matter independent of the experiment
reports."""

import random

from repro.bench.experiments.base import dataset
from repro.core.ggr import GGRConfig, ggr
from repro.core.phc import phc
from repro.core.reorder import reorder
from repro.llm.radix import RadixPrefixCache
from repro.llm.tokenizer import HashTokenizer


def bench_ggr_movies(benchmark, repro_scale, repro_seed):
    ds = dataset("movies", repro_scale, repro_seed)
    rt = ds.table.to_reorder_table()
    est, sched, _ = benchmark(lambda: ggr(rt, fds=ds.fds))
    assert phc(sched) > 0


def bench_ggr_pdmx_wide(benchmark, repro_scale, repro_seed):
    ds = dataset("pdmx", repro_scale, repro_seed)
    rt = ds.table.to_reorder_table()
    est, sched, _ = benchmark(lambda: ggr(rt, fds=ds.fds))
    assert phc(sched) > 0


def bench_phc_evaluation(benchmark, repro_scale, repro_seed):
    ds = dataset("products", repro_scale, repro_seed)
    sched = reorder(ds.table.to_reorder_table(), "ggr", fds=ds.fds).schedule
    total = benchmark(lambda: phc(sched))
    assert total > 0


def bench_radix_insert_match(benchmark):
    rng = random.Random(0)
    base = [rng.randrange(500) for _ in range(400)]
    prompts = []
    for _ in range(200):
        p = list(base[: rng.randrange(100, 400)])
        p.extend(rng.randrange(500) for _ in range(50))
        prompts.append(p)

    def work():
        cache = RadixPrefixCache()
        hits = 0
        for p in prompts:
            hits += cache.match(p)
            cache.insert(p)
        return hits

    hits = benchmark(work)
    assert hits > 0


def bench_tokenizer_throughput(benchmark):
    tok = HashTokenizer()
    text = " ".join(f"word{i % 97} piece" for i in range(5000))

    n = benchmark(lambda: len(tok.encode(text)))
    assert n > 5000
