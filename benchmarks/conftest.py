"""Shared fixtures for the benchmark suite.

``REPRO_SCALE`` controls dataset sizes (default 0.02 keeps a full
``pytest benchmarks/ --benchmark-only`` run in minutes; 1.0 reproduces
the paper's sizes). Every benchmark prints the experiment's report table,
so run with ``-s`` to see the paper-vs-measured rows.

Headline benchmarks also emit perf-trajectory records via
:func:`perf_record` into ``BENCH_<area>.json`` (in the directory named by
``REPRO_BENCH_DIR``, default the working directory); CI diffs those files
against the committed baselines in ``benchmarks/baselines/`` with
``python -m repro.bench.perf compare``.
"""

import os

import pytest

from repro.bench.perf import record as perf_record  # noqa: F401  (re-export)


@pytest.fixture(scope="session")
def repro_scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "0.02"))


@pytest.fixture(scope="session")
def repro_seed() -> int:
    return int(os.environ.get("REPRO_SEED", "0"))


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer (the
    experiments are deterministic; repeated rounds only re-measure the
    same arithmetic)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
