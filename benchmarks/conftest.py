"""Shared fixtures for the benchmark suite.

``REPRO_SCALE`` controls dataset sizes (default 0.02 keeps a full
``pytest benchmarks/ --benchmark-only`` run in minutes; 1.0 reproduces
the paper's sizes). Every benchmark prints the experiment's report table,
so run with ``-s`` to see the paper-vs-measured rows.
"""

import os

import pytest


@pytest.fixture(scope="session")
def repro_scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "0.02"))


@pytest.fixture(scope="session")
def repro_seed() -> int:
    return int(os.environ.get("REPRO_SEED", "0"))


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer (the
    experiments are deterministic; repeated rounds only re-measure the
    same arithmetic)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
