"""Tests for the synthetic dataset builders: schemas, FDs, labels, scaling,
and determinism."""

import pytest

from repro.data import DATASET_BUILDERS, build_dataset
from repro.errors import DataGenError

SCALE = 0.004  # tiny but above the 30-row floor for the big datasets

PAPER_FIELD_NAMES = {
    "movies": {
        "genres", "movieinfo", "movietitle", "productioncompany",
        "reviewcontent", "reviewtype", "rottentomatoeslink", "topcritic",
    },
    "products": {
        "description", "id", "parent_asin", "product_title", "rating",
        "review_title", "text", "verified_purchase",
    },
    "bird": {"Body", "PostDate", "PostId", "Text"},
    "beer": {
        "beer/beerId", "beer/name", "beer/style", "review/appearance",
        "review/overall", "review/palate", "review/profileName",
        "review/taste", "review/time",
    },
    "fever": {"claim", "evidence1", "evidence2", "evidence3", "evidence4"},
    "squad": {"question", "context1", "context2", "context3", "context4", "context5"},
}


@pytest.mark.parametrize("name", sorted(DATASET_BUILDERS))
class TestEveryDataset:
    def test_builds_and_labels_align(self, name):
        ds = build_dataset(name, scale=SCALE, seed=3)
        assert ds.n_rows >= 30
        assert len(ds.labels) == ds.n_rows
        assert ds.output_tokens  # at least one query type

    def test_deterministic(self, name):
        a = build_dataset(name, scale=SCALE, seed=7)
        b = build_dataset(name, scale=SCALE, seed=7)
        assert list(a.table.rows()) == list(b.table.rows())
        assert a.labels == b.labels

    def test_seed_changes_data(self, name):
        a = build_dataset(name, scale=SCALE, seed=1)
        b = build_dataset(name, scale=SCALE, seed=2)
        assert list(a.table.rows()) != list(b.table.rows())

    def test_key_field_exists(self, name):
        ds = build_dataset(name, scale=SCALE, seed=3)
        assert ds.key_field in ds.table.fields

    def test_declared_fds_hold_exactly(self, name):
        ds = build_dataset(name, scale=SCALE, seed=3)
        t = ds.table
        for det, dep in ds.fds.edges():
            mapping = {}
            for a, b in zip(t.column(det), t.column(dep)):
                assert mapping.setdefault(a, b) == b, f"FD {det}->{dep} violated"


class TestSchemas:
    @pytest.mark.parametrize("name", sorted(PAPER_FIELD_NAMES))
    def test_field_names_match_appendix_b(self, name):
        ds = build_dataset(name, scale=SCALE, seed=0)
        assert set(ds.table.fields) == PAPER_FIELD_NAMES[name]

    def test_pdmx_field_count(self):
        ds = build_dataset("pdmx", scale=SCALE, seed=0)
        assert len(ds.table.fields) >= 57  # Appendix B's long list

    def test_labels_in_domain(self):
        for name in ("movies", "products", "bird", "pdmx", "beer", "fever"):
            ds = build_dataset(name, scale=SCALE, seed=0)
            assert set(ds.labels) <= set(ds.label_domain)


class TestStructure:
    def test_movies_join_duplication(self):
        ds = build_dataset("movies", scale=0.02, seed=0)
        infos = ds.table.column("movieinfo")
        assert len(set(infos)) < len(infos) / 2  # heavy repetition via join

    def test_movies_reviews_unique(self):
        ds = build_dataset("movies", scale=0.02, seed=0)
        reviews = ds.table.column("reviewcontent")
        assert len(set(reviews)) == len(reviews)

    def test_beer_natural_adjacency(self):
        """Beer's original ordering must already contain adjacent repeats
        (bursty reviews) — the basis of its ~50% original hit rate."""
        ds = build_dataset("beer", scale=0.01, seed=0)
        names = ds.table.column("review/profileName")
        repeats = sum(1 for i in range(1, len(names)) if names[i] == names[i - 1])
        assert repeats > len(names) * 0.3

    def test_rag_contexts_shared_across_questions(self):
        ds = build_dataset("fever", scale=SCALE, seed=0)
        ev1 = ds.table.column("evidence1")
        assert len(set(ev1)) < len(ev1)  # popular passages retrieved repeatedly

    def test_rag_corpus_exposed(self):
        ds = build_dataset("squad", scale=SCALE, seed=0)
        assert ds.corpus and ds.questions
        assert len(ds.questions) == ds.n_rows

    def test_scaling(self):
        small = build_dataset("movies", scale=0.004, seed=0)
        bigger = build_dataset("movies", scale=0.02, seed=0)
        assert bigger.n_rows > small.n_rows

    def test_bad_scale(self):
        with pytest.raises(DataGenError):
            build_dataset("movies", scale=0.0)

    def test_unknown_dataset(self):
        with pytest.raises(DataGenError):
            build_dataset("imaginary")
