"""Tests for the roofline cost model, including calibration against the
paper's cited performance envelope."""

import pytest

from repro.errors import ServingError
from repro.llm.costmodel import CostModel
from repro.llm.hardware import CLUSTER_1XL4, CLUSTER_8XL4, Cluster, GPUSpec, L4
from repro.llm.models import LLAMA3_1B, LLAMA3_8B, LLAMA3_70B


@pytest.fixture
def cm8b():
    return CostModel(LLAMA3_8B, CLUSTER_1XL4)


class TestCalibration:
    def test_paper_prefill_envelope(self, cm8b):
        """Intro: 'an NVIDIA L4 running Llama3-8B can only process 6KB of
        text per second' — about 1.5-2k tokens/s."""
        rate = cm8b.prefill_tokens_per_second(512)
        assert 1200 <= rate <= 3000

    def test_kv_bytes_per_token_gqa(self):
        # 2 * 32 layers * 8 kv heads * 128 dim * 2 bytes = 128 KiB.
        assert LLAMA3_8B.kv_bytes_per_token == 131072

    def test_kv_capacity_positive_and_sane(self, cm8b):
        cap = cm8b.kv_capacity_tokens
        assert 50_000 <= cap <= 200_000

    def test_70b_needs_the_big_rig(self):
        with pytest.raises(ServingError):
            CostModel(LLAMA3_70B, CLUSTER_1XL4)
        cm = CostModel(LLAMA3_70B, CLUSTER_8XL4)
        assert cm.kv_capacity_tokens > 0

    def test_1b_has_plenty_of_memory(self):
        cm1 = CostModel(LLAMA3_1B, CLUSTER_1XL4)
        cm8 = CostModel(LLAMA3_8B, CLUSTER_1XL4)
        assert cm1.kv_capacity_tokens > 3 * cm8.kv_capacity_tokens


class TestPrefill:
    def test_zero_tokens_free(self, cm8b):
        assert cm8b.prefill_time(0) == 0.0

    def test_monotone_in_tokens(self, cm8b):
        assert cm8b.prefill_time(200) < cm8b.prefill_time(400)

    def test_cached_context_still_costs_attention(self, cm8b):
        """Prefilling after a long cached prefix attends to it: positive
        position-dependent cost."""
        assert cm8b.prefill_time(100, context_start=2000) > cm8b.prefill_time(100, 0)

    def test_cache_hit_saves_time(self, cm8b):
        full = cm8b.prefill_time(1000, 0)
        suffix_only = cm8b.prefill_time(200, 800)
        assert suffix_only < full

    def test_quadratic_term_grows(self, cm8b):
        f1 = cm8b.prefill_flops(100, 0)
        f2 = cm8b.prefill_flops(100, 10_000)
        assert f2 > f1


class TestDecode:
    def test_empty_batch(self, cm8b):
        assert cm8b.decode_step_time([]) == 0.0

    def test_batching_amortizes_weights(self, cm8b):
        single = cm8b.decode_tokens_per_second(1)
        batched = cm8b.decode_tokens_per_second(32)
        assert batched > 5 * single

    def test_longer_context_slower(self, cm8b):
        assert cm8b.decode_step_time([4000] * 8) > cm8b.decode_step_time([100] * 8)

    def test_bigger_model_slower(self):
        cm1 = CostModel(LLAMA3_1B, CLUSTER_1XL4)
        cm8 = CostModel(LLAMA3_8B, CLUSTER_1XL4)
        assert cm8.decode_step_time([500] * 8) > cm1.decode_step_time([500] * 8)


class TestValidation:
    def test_bad_utilization(self):
        with pytest.raises(ServingError):
            CostModel(LLAMA3_8B, CLUSTER_1XL4, mfu=0.0)
        with pytest.raises(ServingError):
            CostModel(LLAMA3_8B, CLUSTER_1XL4, bw_util=1.5)

    def test_bad_hardware(self):
        with pytest.raises(ServingError):
            GPUSpec(name="broken", mem_bytes=0, mem_bandwidth=1, flops=1)
        with pytest.raises(ServingError):
            Cluster(gpu=L4, n_gpus=0)
        with pytest.raises(ServingError):
            Cluster(gpu=L4, n_gpus=2, tp_efficiency=0.0)

    def test_cluster_aggregation(self):
        assert CLUSTER_8XL4.total_mem_bytes == 8 * L4.mem_bytes
        assert CLUSTER_8XL4.effective_flops < 8 * L4.flops  # TP tax
        assert CLUSTER_8XL4.effective_flops > L4.flops
