"""Randomized engine-level equivalence: flat radix backend vs node-tree
oracle.

The flat array-backed radix cache (``RadixPrefixCache(backend="flat")``,
the default when numpy is present) must make exactly the same caching
decisions as the node-object tree it replaces: match lengths, eviction
victims and order, hit/miss/eviction counters, block allocations, and
therefore every engine clock — compared with plain ``==``, not approx,
because both backends drive the *same* engine mode and the cache is the
only thing that differs. ``REPRO_SERVING_RADIX=0`` restores the node
path end to end, the convention ``test_vector_equivalence.py``
established for ``REPRO_SERVING_VECTOR``.

Scope: paged x preemption x chunked-prefill shapes, eviction pressure,
multi-wave warm caches, timed arrivals, every scheduler policy.
"""

import random

import pytest

from repro.llm.engine import EngineConfig, SimulatedLLMEngine
from repro.llm.hardware import CLUSTER_1XL4
from repro.llm.models import LLAMA3_8B
from repro.llm.radix import (
    pack_tokens,
    serving_fastpath_enabled,
    serving_radix_enabled,
)
from repro.llm.request import Request

pytestmark = pytest.mark.skipif(
    not (serving_radix_enabled() and serving_fastpath_enabled()),
    reason="flat radix backend unavailable (numpy missing, "
    "REPRO_SERVING_RADIX=0, or REPRO_SERVING_FASTPATH=0)",
)


def random_workload(rng, n_requests=40, vocab=50, max_len=60, max_out=12):
    """Prefix-sharing requests with tenants, deadlines, zero-output rows,
    and mixed packed/unpacked probes (same generator family as the
    sibling equivalence suites)."""
    pool = [
        tuple(rng.randrange(vocab) for _ in range(rng.randrange(5, max_len)))
        for _ in range(5)
    ]
    reqs = []
    for i in range(n_requests):
        if rng.random() < 0.7:
            base = rng.choice(pool)
            base = base[: rng.randrange(1, len(base) + 1)]
        else:
            base = ()
        suffix = tuple(
            rng.randrange(vocab) for _ in range(rng.randrange(0, max_len))
        )
        toks = base + suffix or (rng.randrange(vocab),)
        out = 0 if rng.random() < 0.1 else rng.randrange(1, max_out)
        packed = pack_tokens(toks) if rng.random() < 0.5 else None
        reqs.append(
            Request(
                request_id=i,
                prompt_tokens=toks,
                output_tokens=out,
                prompt_bytes=packed,
                tenant=f"t{i % 3}",
                deadline_s=rng.choice([None, 0.5, 1.5, 4.0]),
            )
        )
    return reqs


def clone(requests):
    """Fresh Request objects (the engine mutates its requests in place)."""
    return [
        Request(
            r.request_id,
            r.prompt_tokens,
            r.output_tokens,
            prompt_bytes=r.prompt_bytes,
            arrival_s=r.arrival_s,
            tenant=r.tenant,
            deadline_s=r.deadline_s,
        )
        for r in requests
    ]


def run_engine(requests, waves=1, **cfg_kwargs):
    eng = SimulatedLLMEngine(LLAMA3_8B, CLUSTER_1XL4, EngineConfig(**cfg_kwargs))
    results = []
    per_wave = max(1, len(requests) // waves)
    for w in range(waves):
        chunk = requests[w * per_wave : (w + 1) * per_wave if w < waves - 1 else None]
        eng.submit_all(chunk)
        results.append(eng.run())
        eng.cache.check_invariants()
    return eng, results


def assert_bit_identical(rf, rn):
    """Flat vs node backend under one engine mode: ``==`` on everything."""
    assert rf.prompt_tokens == rn.prompt_tokens
    assert rf.cached_tokens == rn.cached_tokens
    assert rf.prefill_tokens == rn.prefill_tokens
    assert rf.decode_tokens == rn.decode_tokens
    assert rf.decode_steps == rn.decode_steps
    assert rf.peak_kv_tokens == rn.peak_kv_tokens
    assert rf.max_batch_seen == rn.max_batch_seen
    assert rf.peak_kv_blocks == rn.peak_kv_blocks
    assert rf.fragmentation_tokens == rn.fragmentation_tokens
    assert rf.n_preemptions == rn.n_preemptions
    assert rf.preempted_tokens_recomputed == rn.preempted_tokens_recomputed
    assert rf.preempted_tokens_swapped == rn.preempted_tokens_swapped
    assert rf.n_prefill_chunks == rn.n_prefill_chunks
    assert rf.total_seconds == rn.total_seconds
    assert len(rf.request_metrics) == len(rn.request_metrics)
    for mf, mn in zip(rf.request_metrics, rn.request_metrics):
        assert mf.request_id == mn.request_id
        assert mf.prompt_tokens == mn.prompt_tokens
        assert mf.cached_tokens == mn.cached_tokens
        assert mf.prefill_tokens == mn.prefill_tokens
        assert mf.output_tokens == mn.output_tokens
        assert mf.arrival_s == mn.arrival_s
        assert mf.tenant == mn.tenant
        assert mf.admitted_at_s == mn.admitted_at_s
        assert mf.first_token_at_s == mn.first_token_at_s
        assert mf.finished_at_s == mn.finished_at_s


def assert_flat_matches_node(monkeypatch, requests, waves=1, **cfg_kwargs):
    e_flat, r_flat = run_engine(clone(requests), waves=waves, **cfg_kwargs)
    with monkeypatch.context() as m:
        m.setenv("REPRO_SERVING_RADIX", "0")
        e_node, r_node = run_engine(clone(requests), waves=waves, **cfg_kwargs)
    assert e_flat.cache.backend == "flat"
    assert e_node.cache.backend == "node"
    for rf, rn in zip(r_flat, r_node):
        assert_bit_identical(rf, rn)
    # Cache counters — the signal the backends must agree on directly.
    fs, ns = e_flat.cache.stats(), e_node.cache.stats()
    for key in (
        "nodes",
        "total_tokens",
        "hits",
        "misses",
        "evicted_tokens",
        "evicted_nodes",
    ):
        assert fs[key] == ns[key], key
    return r_flat


class TestFlatVsNode:
    """Bit-identical flat vs node backend across the workload space."""

    @pytest.mark.parametrize("seed", range(6))
    def test_roomy_capacity(self, monkeypatch, seed):
        rng = random.Random(seed)
        assert_flat_matches_node(monkeypatch, random_workload(rng))

    @pytest.mark.parametrize("seed", range(4))
    def test_eviction_pressure(self, monkeypatch, seed):
        """Tight KV capacity: heavy eviction churn exercises the intrusive
        LRU order against the lazy heap's victim sequence."""
        rng = random.Random(1000 + seed)
        reqs = random_workload(rng, n_requests=30, max_len=40, max_out=8)
        need = max(r.prompt_len + r.output_tokens for r in reqs)
        slack = max(r.prompt_len for r in reqs)
        assert_flat_matches_node(
            monkeypatch,
            reqs,
            kv_accounting="tokens",
            kv_capacity_tokens=need + slack,
            max_batch_size=8,
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_paged_splits_mid_block(self, monkeypatch, seed):
        """Small blocks force edge splits inside blocks: straddle-shared
        allocations, owner rebinding, and block-denominated eviction."""
        rng = random.Random(2000 + seed)
        reqs = random_workload(rng, n_requests=30)
        assert_flat_matches_node(
            monkeypatch, reqs, kv_accounting="paged", block_tokens=8
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_paged_eviction_pressure(self, monkeypatch, seed):
        rng = random.Random(3000 + seed)
        reqs = random_workload(rng, n_requests=30, max_len=40, max_out=8)
        need = max(r.prompt_len + r.output_tokens for r in reqs)
        slack = max(r.prompt_len for r in reqs)
        assert_flat_matches_node(
            monkeypatch,
            reqs,
            kv_accounting="paged",
            block_tokens=8,
            kv_capacity_tokens=need + slack,
            max_batch_size=8,
        )

    @pytest.mark.parametrize(
        "policy", ["fcfs", "sjf", "prefix-affinity", "fair-share", "deadline"]
    )
    @pytest.mark.parametrize("seed", range(2))
    def test_online_arrivals_all_policies(self, monkeypatch, policy, seed):
        """Timed arrivals through every admission policy — including the
        bulk match_many path prefix-affinity now takes."""
        rng = random.Random(4000 + seed)
        reqs = random_workload(rng, n_requests=30, max_out=10)
        t = 0.0
        for r in reqs:
            t += rng.expovariate(30.0)
            r.arrival_s = t
        assert_flat_matches_node(
            monkeypatch, reqs, scheduler=policy, max_batch_size=4
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_preemption_and_chunked_prefill(self, monkeypatch, seed):
        """Continuous batching on: preemption recompute/swap plus chunked
        prefill's rolling insert/pin over growing prompt slices."""
        rng = random.Random(5000 + seed)
        reqs = random_workload(rng, n_requests=25, max_len=50, max_out=10)
        t = 0.0
        for r in reqs:
            t += rng.expovariate(40.0)
            r.arrival_s = t
        need = max(r.prompt_len + r.output_tokens for r in reqs)
        slack = max(r.prompt_len for r in reqs)
        assert_flat_matches_node(
            monkeypatch,
            reqs,
            scheduler="deadline",
            preemption="recompute",
            prefill_chunk_tokens=16,
            kv_capacity_tokens=need + slack,
            max_batch_size=4,
        )

    @pytest.mark.parametrize("seed", range(2))
    def test_preemption_paged(self, monkeypatch, seed):
        rng = random.Random(6000 + seed)
        reqs = random_workload(rng, n_requests=25, max_len=50, max_out=10)
        t = 0.0
        for r in reqs:
            t += rng.expovariate(40.0)
            r.arrival_s = t
        need = max(r.prompt_len + r.output_tokens for r in reqs)
        slack = max(r.prompt_len for r in reqs)
        assert_flat_matches_node(
            monkeypatch,
            reqs,
            scheduler="deadline",
            preemption="swap",
            prefill_chunk_tokens=16,
            kv_accounting="paged",
            block_tokens=8,
            kv_capacity_tokens=need + slack,
            max_batch_size=4,
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_multi_wave_warm_cache(self, monkeypatch, seed):
        """Warm prefix cache across runs of one long-lived engine."""
        rng = random.Random(7000 + seed)
        assert_flat_matches_node(
            monkeypatch, random_workload(rng, n_requests=45), waves=3
        )

    def test_zero_output_only(self, monkeypatch):
        reqs = [
            Request(i, tuple(range(10 * i, 10 * i + 5)), 0, tenant=f"t{i % 2}")
            for i in range(6)
        ]
        assert_flat_matches_node(monkeypatch, reqs)

    def test_radix_flag_restores_node_path(self, monkeypatch):
        """REPRO_SERVING_RADIX=0 swaps the backend end to end."""
        with monkeypatch.context() as m:
            m.setenv("REPRO_SERVING_RADIX", "0")
            eng = SimulatedLLMEngine(LLAMA3_8B, CLUSTER_1XL4, EngineConfig())
            assert eng.cache.backend == "node"
            assert eng.cache.eviction == "heap"
        eng = SimulatedLLMEngine(LLAMA3_8B, CLUSTER_1XL4, EngineConfig())
        assert eng.cache.backend == "flat"
        assert eng.cache.eviction == "flat-lru"
