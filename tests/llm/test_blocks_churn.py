"""Randomized churn over the BlockManager: fork/split/grow/release
interleaved with preempt-swap park/unpark and tenant quota
charge/uncharge, with the full invariant check after **every** op.

The engine drives the allocator through exactly these interleavings once
preemption is on — a victim's tail is parked mid-decode while radix
eviction releases shared path blocks and a re-admission forks them back.
This suite removes the engine from the loop and hammers the allocator
directly, on both the scalar and numpy backends, ending every sequence by
draining to a full free pool (nothing leaked, nothing invented).
"""

import random

import pytest

from repro.errors import CapacityError, ServingError
from repro.llm.blocks import BlockManager

try:
    import numpy  # noqa: F401

    BACKENDS = [False, True]
except ImportError:  # pragma: no cover - environment without numpy
    BACKENDS = [False]


class Churner:
    """One randomized op sequence against one BlockManager."""

    def __init__(self, rng, vector, n_blocks=64, block_tokens=16):
        self.rng = rng
        self.bm = BlockManager(
            capacity_tokens=n_blocks * block_tokens,
            block_tokens=block_tokens,
            vector=vector,
        )
        self.live = []  # allocations we own and must eventually release
        self.expected_parked = 0
        self.tenants = ["alpha", "beta"]
        self.bm.set_tenant_quota("alpha", 20)
        self.expected_charge = {t: 0 for t in self.tenants}

    # ------------------------------------------------------------------ ops
    def op_allocate(self):
        n = self.rng.randrange(1, 70)
        if self.bm.can_allocate(n):
            self.live.append(self.bm.allocate(n))
        else:
            with pytest.raises(CapacityError):
                self.bm.allocate(n)

    def op_fork(self):
        if self.live:
            self.live.append(self.bm.fork(self.rng.choice(self.live)))

    def op_split(self):
        candidates = [a for a in self.live if a.n_tokens >= 2]
        if not candidates:
            return
        alloc = self.rng.choice(candidates)
        # Remove by identity: BlockAllocation is a dataclass, so
        # list.remove() would match any field-equal fork instead of the
        # allocation split() actually consumed.
        self.live = [a for a in self.live if a is not alloc]
        cut = self.rng.randrange(1, alloc.n_tokens)
        head, tail = self.bm.split(alloc, cut)
        assert head.n_tokens + tail.n_tokens == cut + tail.n_tokens
        self.live += [head, tail]

    def op_grow(self):
        if not self.live:
            return
        alloc = self.rng.choice(self.live)
        extra = self.rng.randrange(0, 40)
        need = self.bm.blocks_needed(
            alloc.start_offset + alloc.n_tokens + extra
        ) - len(alloc.block_ids)
        if need <= self.bm.free_blocks:
            before = alloc.n_tokens
            self.bm.grow(alloc, extra)
            assert alloc.n_tokens == before + extra
        else:
            with pytest.raises(CapacityError):
                self.bm.grow(alloc, extra)

    def op_release(self):
        if self.live:
            self.bm.release(self.live.pop(self.rng.randrange(len(self.live))))

    def op_park(self):
        """Swap-out: device blocks freed, tokens move to the host ledger."""
        if not self.live:
            return
        alloc = self.live.pop(self.rng.randrange(len(self.live)))
        n = alloc.n_tokens
        assert self.bm.park(alloc) == n
        self.expected_parked += n

    def op_unpark(self):
        """Swap-in: draw parked tokens back onto fresh device blocks."""
        if self.bm.parked_tokens <= 0:
            return
        n = self.rng.randrange(1, self.bm.parked_tokens + 1)
        if self.bm.can_allocate(n):
            self.live.append(self.bm.unpark(n))
            self.expected_parked -= n
        else:
            with pytest.raises(CapacityError):
                self.bm.unpark(n)

    def op_charge(self):
        tenant = self.rng.choice(self.tenants)
        blocks = self.rng.randrange(0, 8)
        quota = self.bm.tenant_quota(tenant)
        if quota is not None and self.expected_charge[tenant] + blocks > quota:
            with pytest.raises(CapacityError):
                self.bm.charge_tenant(tenant, blocks)
        else:
            self.bm.charge_tenant(tenant, blocks)
            self.expected_charge[tenant] += blocks

    def op_uncharge(self):
        tenant = self.rng.choice(self.tenants)
        if self.expected_charge[tenant] > 0:
            blocks = self.rng.randrange(1, self.expected_charge[tenant] + 1)
            self.bm.uncharge_tenant(tenant, blocks)
            self.expected_charge[tenant] -= blocks
        else:
            with pytest.raises(ServingError):
                self.bm.uncharge_tenant(tenant, 1)

    OPS = (
        op_allocate,
        op_fork,
        op_split,
        op_grow,
        op_release,
        op_park,
        op_unpark,
        op_charge,
        op_uncharge,
    )

    # ------------------------------------------------------------------ run
    def run(self, n_ops=150):
        for _ in range(n_ops):
            self.rng.choice(self.OPS)(self)
            self.bm.check_invariants()
            assert self.bm.parked_tokens == self.expected_parked
            for t in self.tenants:
                assert self.bm.tenant_used(t) == self.expected_charge[t]
        self.drain()

    def drain(self):
        """Release everything and verify the pool returns whole."""
        while self.live:
            self.bm.release(self.live.pop())
            self.bm.check_invariants()
        while self.bm.parked_tokens:
            n = min(self.bm.parked_tokens, self.bm.free_tokens)
            assert n > 0, "parked tokens can no longer fit the empty pool"
            self.bm.release(self.bm.unpark(n))
            self.expected_parked -= n
        for t in self.tenants:
            self.bm.uncharge_tenant(t, self.expected_charge[t])
            self.expected_charge[t] = 0
        self.bm.check_invariants()
        assert self.bm.free_blocks == self.bm.n_blocks
        assert self.bm.used_blocks == 0
        assert self.bm.parked_tokens == 0


class TestBlockChurn:
    @pytest.mark.parametrize("vector", BACKENDS)
    @pytest.mark.parametrize("seed", range(10))
    def test_randomized_churn(self, seed, vector):
        Churner(random.Random(seed), vector).run()

    @pytest.mark.parametrize("vector", BACKENDS)
    @pytest.mark.parametrize("seed", range(4))
    def test_churn_tiny_blocks(self, seed, vector):
        """block_tokens=1 (the token-oracle shape): no straddles, every
        split lands on a block edge — the degenerate arithmetic path."""
        Churner(
            random.Random(100 + seed), vector, n_blocks=48, block_tokens=1
        ).run()

    @pytest.mark.parametrize("vector", BACKENDS)
    def test_park_then_total_eviction_then_unpark(self, vector):
        """A parked tail survives the device pool being fully recycled —
        the swap contract: host-side KV owns no device blocks."""
        bm = BlockManager(capacity_tokens=128, block_tokens=16, vector=vector)
        victim = bm.allocate(100)
        assert bm.park(victim) == 100
        bm.check_invariants()
        hog = bm.allocate(bm.free_tokens)
        bm.check_invariants()
        with pytest.raises(CapacityError):
            bm.unpark(100)
        bm.release(hog)
        back = bm.unpark(100)
        assert back.n_tokens == 100
        assert bm.parked_tokens == 0
        bm.release(back)
        bm.check_invariants()
        assert bm.free_blocks == bm.n_blocks
