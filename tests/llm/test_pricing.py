"""Tests for pricing models and the provider-side cache simulators."""

import pytest

from repro.errors import PricingError
from repro.llm.pricing import (
    APICacheSimulator,
    CostBreakdown,
    PricingModel,
    Usage,
    anthropic_claude35_sonnet,
    cost_of,
    estimated_savings,
    input_cost_ratio,
    openai_gpt4o_mini,
)


class TestModels:
    def test_openai_rates_match_paper_footnote(self):
        pm = openai_gpt4o_mini()
        assert pm.input_per_mtok == 0.15
        assert pm.cached_read_per_mtok == 0.075
        assert pm.cached_ratio == 0.5

    def test_anthropic_rates_match_paper_footnote(self):
        pm = anthropic_claude35_sonnet()
        assert pm.input_per_mtok == 3.00
        assert pm.cache_write_per_mtok == 3.75
        assert pm.cached_read_per_mtok == 0.30
        assert pm.cached_ratio == pytest.approx(0.1)

    def test_invalid_provider(self):
        with pytest.raises(PricingError):
            PricingModel("x", "azure", 1, 1, 1)


class TestUsageAndCost:
    def test_usage_validation(self):
        with pytest.raises(PricingError):
            Usage(prompt_tokens=10, cached_tokens=8, cache_write_tokens=5)

    def test_cost_breakdown(self):
        pm = openai_gpt4o_mini()
        us = [Usage(prompt_tokens=1_000_000, cached_tokens=500_000, output_tokens=0)]
        b = cost_of(us, pm)
        assert b.input_cost == pytest.approx(0.5 * 0.15)
        assert b.cached_cost == pytest.approx(0.5 * 0.075)
        assert b.total == pytest.approx(0.075 + 0.0375)

    def test_anthropic_write_premium(self):
        pm = anthropic_claude35_sonnet()
        us = [Usage(prompt_tokens=1_000_000, cache_write_tokens=1_000_000)]
        assert cost_of(us, pm).cache_write_cost == pytest.approx(3.75)

    def test_output_tokens_billed(self):
        pm = openai_gpt4o_mini()
        us = [Usage(prompt_tokens=0, output_tokens=1_000_000)]
        assert cost_of(us, pm).output_cost == pytest.approx(0.60)


class TestOpenAISimulator:
    def test_min_prefix_enforced(self):
        sim = APICacheSimulator(openai_gpt4o_mini())
        short = list(range(500))
        us = sim.run([short, short])
        assert us[1].cached_tokens == 0  # below 1024 minimum (paper Table 3)

    def test_long_prompt_hits_in_increments(self):
        sim = APICacheSimulator(openai_gpt4o_mini())
        long = list(range(2000))
        us = sim.run([long, long])
        assert us[0].cached_tokens == 0
        assert us[1].cached_tokens == 1024 + (2000 - 1024) // 128 * 128

    def test_divergent_suffix_still_hits_prefix(self):
        sim = APICacheSimulator(openai_gpt4o_mini())
        a = list(range(1500))
        b = list(range(1400)) + [9999] * 100
        us = sim.run([a, b])
        assert us[1].cached_tokens == 1024 + (1400 - 1024) // 128 * 128


class TestAnthropicSimulator:
    def test_write_then_read(self):
        sim = APICacheSimulator(anthropic_claude35_sonnet())
        p = list(range(1500))
        us = sim.run([p, p, p])
        assert us[0].cache_write_tokens == 1024 and us[0].cached_tokens == 0
        assert us[1].cached_tokens == 1024 and us[1].cache_write_tokens == 0
        assert us[2].cached_tokens == 1024

    def test_short_prompts_never_cached(self):
        sim = APICacheSimulator(anthropic_claude35_sonnet())
        us = sim.run([list(range(500))] * 2)
        assert all(u.cached_tokens == 0 and u.cache_write_tokens == 0 for u in us)

    def test_different_prefixes_written_separately(self):
        sim = APICacheSimulator(anthropic_claude35_sonnet())
        a = list(range(1500))
        b = list(range(5000, 6500))
        us = sim.run([a, b])
        assert us[0].cache_write_tokens == 1024
        assert us[1].cache_write_tokens == 1024


class TestEstimatedSavings:
    def test_openai_table4_bird(self):
        """Paper Table 4: BIRD 10.4% -> 84.8% PHR gives 39% OpenAI savings."""
        s = estimated_savings(0.104, 0.848, openai_gpt4o_mini())
        assert s == pytest.approx(0.39, abs=0.02)

    def test_openai_table4_movies(self):
        s = estimated_savings(0.346, 0.857, openai_gpt4o_mini())
        assert s == pytest.approx(0.31, abs=0.02)

    def test_anthropic_higher_savings_than_openai(self):
        oa = estimated_savings(0.10, 0.85, openai_gpt4o_mini())
        an = estimated_savings(0.10, 0.85, anthropic_claude35_sonnet())
        assert an > oa

    def test_no_improvement_no_savings(self):
        assert estimated_savings(0.5, 0.5, openai_gpt4o_mini()) == pytest.approx(0.0)

    def test_monotone_in_ggr_phr(self):
        pm = openai_gpt4o_mini()
        prev = -1.0
        for phr in (0.2, 0.4, 0.6, 0.8):
            s = estimated_savings(0.1, phr, pm)
            assert s > prev
            prev = s

    def test_invalid_phr(self):
        with pytest.raises(PricingError):
            input_cost_ratio(1.5, openai_gpt4o_mini())

    def test_write_premium_raises_absolute_cost(self):
        pm = anthropic_claude35_sonnet()
        cheap = input_cost_ratio(0.5, pm, write_fraction=0.0)
        pricey = input_cost_ratio(0.5, pm, write_fraction=1.0)
        assert pricey > cheap
