"""Unit tests for scheduling policies, online admission behaviour, and
SLO accounting."""

import pytest

from repro.errors import ServingError
from repro.llm.client import SimulatedLLMClient
from repro.llm.engine import EngineConfig, SimulatedLLMEngine
from repro.llm.hardware import CLUSTER_1XL4
from repro.llm.models import LLAMA3_8B
from repro.llm.radix import RadixPrefixCache
from repro.llm.request import Request, RequestMetrics
from repro.llm.scheduler import (
    SCHEDULER_POLICIES,
    DeadlinePolicy,
    FairSharePolicy,
    FCFSPolicy,
    LatencySummary,
    PrefixAffinityPolicy,
    SJFPolicy,
    compute_slo,
    make_policy,
)
from repro.llm.workload import TraceRequest, WorkloadTrace


def req(i, toks, out=1, tenant="", arrival=0.0):
    return Request(
        request_id=i,
        prompt_tokens=tuple(toks),
        output_tokens=out,
        tenant=tenant,
        arrival_s=arrival,
    )


class TestRegistry:
    def test_all_policies_constructible(self):
        for name in SCHEDULER_POLICIES:
            assert make_policy(name).name == name

    def test_unknown_policy(self):
        with pytest.raises(ServingError):
            make_policy("lifo")

    def test_engine_rejects_unknown_policy(self):
        with pytest.raises(ServingError):
            SimulatedLLMEngine(
                LLAMA3_8B, CLUSTER_1XL4, EngineConfig(scheduler="lifo")
            )

    def test_auto_is_fcfs(self):
        eng = SimulatedLLMEngine(LLAMA3_8B, CLUSTER_1XL4)
        assert eng.scheduler_name == "fcfs"


class TestFCFS:
    def test_submission_order(self):
        p = FCFSPolicy()
        a, b = req(0, [1]), req(1, [2])
        p.submit(a)
        p.submit(b)
        assert p.select() is a
        p.pop(a)
        assert p.select() is b

    def test_pop_out_of_order_rejected(self):
        p = FCFSPolicy()
        a, b = req(0, [1]), req(1, [2])
        p.submit(a)
        p.submit(b)
        with pytest.raises(ServingError):
            p.pop(b)

    def test_drain(self):
        p = FCFSPolicy()
        rs = [req(i, [i]) for i in range(4)]
        for r in rs:
            p.submit(r)
        assert p.drain() == rs
        assert len(p) == 0 and p.select() is None


class TestSJF:
    def test_shortest_prompt_first(self):
        p = SJFPolicy()
        long_r, short_r = req(0, range(20)), req(1, range(3))
        p.submit(long_r)
        p.submit(short_r)
        assert p.select() is short_r

    def test_fcfs_among_equals(self):
        p = SJFPolicy()
        a, b = req(0, [1, 2, 3]), req(1, [4, 5, 6])
        p.submit(a)
        p.submit(b)
        assert p.select() is a


class TestPrefixAffinity:
    def test_prefers_cached_extension(self):
        cache = RadixPrefixCache(eviction="heap")
        cache.insert((1, 2, 3, 4, 5))
        p = PrefixAffinityPolicy()
        cold = req(0, (9, 9, 9, 9))
        warm = req(1, (1, 2, 3, 4, 5, 6, 7))
        p.submit(cold)
        p.submit(warm)
        assert p.select(cache) is warm
        # Probes are side-effect-free: counters untouched.
        assert cache.hits == 0 and cache.misses == 0

    def test_falls_back_to_fcfs_when_cold(self):
        cache = RadixPrefixCache(eviction="heap")
        p = PrefixAffinityPolicy()
        a, b = req(0, (1, 2)), req(1, (3, 4))
        p.submit(a)
        p.submit(b)
        assert p.select(cache) is a
        assert p.select(None) is a


def dreq(i, arrival, deadline_s=None):
    return Request(
        request_id=i,
        prompt_tokens=(i,),
        output_tokens=1,
        arrival_s=arrival,
        deadline_s=deadline_s,
    )


class TestDeadlinePolicy:
    def test_explicit_late_request_shed_behind_on_time(self):
        p = DeadlinePolicy(deadline_s=10.0)
        late = dreq(0, 0.0, deadline_s=0.5)  # absolute deadline 0.5
        on_time = dreq(1, 0.0, deadline_s=5.0)  # absolute deadline 5.0
        p.submit(late)
        p.submit(on_time)
        assert p.select(now=0.0) is late  # earliest deadline wins
        assert p.select(now=1.0) is on_time  # past its SLO -> shed

    def test_deadline_less_request_never_shed(self):
        p = DeadlinePolicy(deadline_s=1.0)
        r = dreq(0, 0.0)  # synthetic deadline 1.0
        urgent = dreq(1, 5.0, deadline_s=0.3)  # absolute deadline 5.3
        p.submit(r)
        p.submit(urgent)
        # Far past r's synthetic deadline it still out-ranks a fresh
        # urgent arrival whose own deadline is later.
        assert p.select(now=5.0) is r

    def test_next_priority_shift_skips_deadline_less(self):
        p = DeadlinePolicy(deadline_s=1.0)
        p.submit(dreq(0, 0.0))
        # A deadline-less key is time-invariant: no shift to wake for.
        assert p.next_priority_shift(0.0) is None
        p.submit(dreq(1, 0.0, deadline_s=2.0))
        assert p.next_priority_shift(0.0) == 2.0


class TestDeadlineStarvation:
    """Regression: pure EDF with late re-shedding starved deadline-less
    requests — once past its synthetic deadline the request fell behind
    *every* future on-time arrival, forever, under a sustained urgent
    stream. The aging fix keeps its EDF key time-invariant, bounding the
    wait near the policy default deadline."""

    def test_bounded_queueing_under_sustained_urgent_stream(self):
        p = DeadlinePolicy(deadline_s=1.0)
        victim = dreq(0, 0.0)  # synthetic deadline 1.0
        p.submit(victim)
        served_at = None
        # Overload: two urgent arrivals per 0.1 s tick (0.45 s SLO each),
        # one serve slot per tick — the urgent backlog grows without
        # bound, so shedding the victim behind "all on-time work" would
        # starve it forever.
        for step in range(1, 300):
            now = round(0.1 * step, 10)
            p.submit(dreq(2 * step, now, deadline_s=0.45))
            p.submit(dreq(2 * step + 1, now, deadline_s=0.45))
            head = p.select(now=now)
            p.pop(head)
            if head is victim:
                served_at = now
                break
        assert served_at is not None, "deadline-less request starved"
        # Every urgent arrival after t=0.55 carries a deadline later than
        # the victim's synthetic 1.0, so only the finite pre-0.55 backlog
        # can be served ahead of it: worst-case queueing stays within a
        # couple of slots of the default deadline.
        assert served_at <= 1.5


class TestFairShare:
    def test_round_granularity_fairness(self):
        p = FairSharePolicy(quantum_tokens=10)
        reqs = [req(i, range(4), tenant="AB"[i % 2]) for i in range(6)]
        for r in reqs:
            p.submit(r)
        served = []
        while len(p):
            r = p.select()
            p.pop(r)
            served.append((r.tenant, r.request_id))
        # Each DRR round serves floor(quantum/cost)=2 per tenant: after 4
        # pops both tenants have been served equally — neither drains fully
        # before the other starts — and each tenant's queue stays FIFO.
        tenants4 = [t for t, _ in served[:4]]
        assert tenants4.count("A") == 2 and tenants4.count("B") == 2
        for tenant in "AB":
            ids = [i for t, i in served if t == tenant]
            assert ids == sorted(ids)

    def test_strict_alternation_at_cost_quantum(self):
        p = FairSharePolicy(quantum_tokens=4)
        reqs = [req(i, range(4), tenant="AB"[i % 2]) for i in range(6)]
        for r in reqs:
            p.submit(r)
        served = []
        while len(p):
            r = p.select()
            p.pop(r)
            served.append(r.tenant)
        # quantum == cost: one request per visit, perfect alternation.
        assert served == ["A", "B", "A", "B", "A", "B"]

    def test_select_is_stable_without_mutation(self):
        p = FairSharePolicy(quantum_tokens=5)
        a = req(0, range(12), tenant="A")
        b = req(1, range(3), tenant="B")
        p.submit(a)
        p.submit(b)
        first = p.select()
        assert p.select() is first  # repeated peeks do not advance DRR state

    def test_long_prompts_eventually_served(self):
        p = FairSharePolicy(quantum_tokens=2)
        big = req(0, range(50), tenant="A")
        p.submit(big)
        assert p.select() is big  # deficit accumulates until it fits

    def test_tenant_share_bounded_under_contention(self):
        # Tenant A floods with cheap requests; B queues a few. DRR should
        # interleave B steadily instead of starving it behind A's backlog.
        p = FairSharePolicy(quantum_tokens=8)
        for i in range(20):
            p.submit(req(i, range(8), tenant="A"))
        for i in range(20, 24):
            p.submit(req(i, range(8), tenant="B"))
        first_eight = []
        for _ in range(8):
            r = p.select()
            p.pop(r)
            first_eight.append(r.tenant)
        assert first_eight.count("B") >= 3

    def test_quantum_validation(self):
        with pytest.raises(ServingError):
            FairSharePolicy(quantum_tokens=0)


class TestOnlineAdmission:
    def cfg(self, **kw):
        kw.setdefault("kv_accounting", "tokens")
        return EngineConfig(**kw)

    def test_idle_engine_jumps_to_arrival(self):
        eng = SimulatedLLMEngine(LLAMA3_8B, CLUSTER_1XL4, self.cfg())
        eng.submit(req(0, range(10), out=2, arrival=5.0))
        res = eng.run()
        m = res.request_metrics[0]
        assert m.arrival_s == 5.0
        assert m.admitted_at_s >= 5.0
        assert m.queueing_delay_s < 1.0  # admitted promptly on arrival
        assert res.total_seconds >= 5.0

    def test_admission_never_precedes_arrival(self):
        eng = SimulatedLLMEngine(
            LLAMA3_8B, CLUSTER_1XL4, self.cfg(max_batch_size=2)
        )
        reqs = [
            req(i, [i * 100 + j for j in range(20)], out=3, arrival=0.01 * i)
            for i in range(10)
        ]
        eng.submit_all(reqs)
        res = eng.run()
        assert len(res.request_metrics) == 10
        for m in res.request_metrics:
            assert m.admitted_at_s >= m.arrival_s
            assert m.finished_at_s >= m.first_token_at_s or m.output_tokens == 0
            assert m.e2e_s >= m.ttft_s >= 0

    def test_flush_waiting_drops_future_arrivals(self):
        eng = SimulatedLLMEngine(LLAMA3_8B, CLUSTER_1XL4, self.cfg())
        eng.submit(req(0, range(5), arrival=0.0))
        eng.submit(req(1, range(5), arrival=9.0))
        assert eng.flush_waiting() == 2
        res = eng.run()
        assert res.request_metrics == []

    def test_later_arrival_unblocks_admission_sjf(self):
        """A short request arriving while a long head blocks on memory is
        admitted first under SJF once it arrives."""
        eng = SimulatedLLMEngine(
            LLAMA3_8B,
            CLUSTER_1XL4,
            self.cfg(
                scheduler="sjf", kv_capacity_tokens=260, max_batch_size=4
            ),
        )
        eng.submit(req(0, range(100), out=40, arrival=0.0))
        eng.submit(req(1, range(100, 200), out=40, arrival=0.0))
        eng.submit(req(2, range(300, 310), out=2, arrival=0.05))
        res = eng.run()
        by_id = {m.request_id: m for m in res.request_metrics}
        # The tiny late request overtakes whichever long prompt is blocked.
        assert by_id[2].finished_at_s < max(
            by_id[0].finished_at_s, by_id[1].finished_at_s
        )

    def test_tenant_propagates_to_metrics(self):
        eng = SimulatedLLMEngine(LLAMA3_8B, CLUSTER_1XL4, self.cfg())
        eng.submit(req(0, range(5), tenant="acme"))
        res = eng.run()
        assert res.request_metrics[0].tenant == "acme"
        assert res.scheduler == "fcfs"


class TestSLOAccounting:
    def metric(self, rid, arrival, admitted, first, finished, out=4, tenant="t"):
        return RequestMetrics(
            request_id=rid,
            prompt_tokens=10,
            output_tokens=out,
            admitted_at_s=admitted,
            first_token_at_s=first,
            finished_at_s=finished,
            arrival_s=arrival,
            tenant=tenant,
        )

    def test_empty_is_safe(self):
        r = compute_slo([])
        assert r.n_requests == 0
        assert r.ttft.p95 == 0.0
        assert r.attainment == 0.0

    def test_percentiles_and_tenants(self):
        ms = [
            self.metric(i, 0.0, 0.1, 0.1 + i, 1.0 + i, tenant="AB"[i % 2])
            for i in range(10)
        ]
        r = compute_slo(ms)
        assert r.n_requests == 10
        assert r.ttft.p50 == pytest.approx(4.1)  # nearest-rank: 5th of 10
        assert r.ttft.p99 == pytest.approx(9.1)
        assert set(r.per_tenant) == {"A", "B"}
        assert r.per_tenant["A"].n_requests == 5
        assert sum(t.n_requests for t in r.per_tenant.values()) == 10

    def test_goodput_under_deadline(self):
        ms = [self.metric(i, 0.0, 0.1, 0.5, 1.0 + i, out=10) for i in range(4)]
        r = compute_slo(ms, deadline_s=2.5)
        assert r.goodput_requests == 2  # e2e 1.0 and 2.0 make it; 3.0, 4.0 miss
        assert r.attainment == pytest.approx(0.5)
        span = 4.0  # first arrival 0.0 -> last completion 4.0
        assert r.goodput_tokens_per_s == pytest.approx(20 / span)

    def test_deadline_validation(self):
        with pytest.raises(ServingError):
            compute_slo([], deadline_s=0.0)

    def test_zero_output_ttft_is_completion(self):
        m = self.metric(0, 1.0, 1.5, 0.0, 2.0, out=0)
        assert m.ttft_s == pytest.approx(1.0)

    def test_latency_summary_exact(self):
        s = LatencySummary.of([3.0, 1.0, 2.0])
        assert (s.p50, s.p95, s.p99, s.max) == (2.0, 3.0, 3.0, 3.0)
        assert s.mean == pytest.approx(2.0)

    def test_render_mentions_tenants_and_deadline(self):
        ms = [
            self.metric(i, 0.0, 0.1, 0.5, 1.0, tenant=f"T{i%2}")
            for i in range(4)
        ]
        text = compute_slo(ms, deadline_s=3.0).render("demo")
        assert "demo" in text and "T0" in text and "T1" in text
        assert "(all)" in text and "deadline" in text


class TestEngineSLOSurface:
    def test_engine_result_slo(self):
        client = SimulatedLLMClient()
        trace = WorkloadTrace(
            [
                TraceRequest(0.01 * i, f"prompt number {i % 4} body", tenant="x")
                for i in range(8)
            ]
        )
        res = client.generate_trace(trace, deadline_s=100.0)
        assert res.slo.n_requests == 8
        assert res.slo.attainment == 1.0
        again = res.engine_result.slo(deadline_s=100.0)
        assert again.ttft.p95 == res.slo.ttft.p95
