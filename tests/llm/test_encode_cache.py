"""Tests for the shared tokenizer-level encode cache."""

import pytest

from repro.llm.client import SimulatedLLMClient
from repro.llm.encode_cache import DEFAULT_MAX_ENTRIES, EncodeCache, encode_cache_for
from repro.llm.radix import pack_tokens
from repro.llm.tokenizer import HashTokenizer


class TestEncodeCache:
    def test_encode_hit_returns_same_result(self):
        tok = HashTokenizer()
        cache = EncodeCache()
        first = cache.encode(tok, "some prompt text")
        second = cache.encode(tok, "some prompt text")
        assert first == second
        assert first[0] == tuple(tok.encode("some prompt text"))
        assert first[1] == pack_tokens(first[0])
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_count_answers_from_encode_entry(self):
        tok = HashTokenizer()
        cache = EncodeCache()
        ids, _ = cache.encode(tok, "count me")
        before = cache.stats()["misses"]
        assert cache.count(tok, "count me") == len(ids)
        assert cache.stats()["misses"] == before  # no new tokenizer call

    def test_lru_bound_and_eviction_telemetry(self):
        tok = HashTokenizer()
        cache = EncodeCache(max_entries=4)
        for i in range(10):
            cache.encode(tok, f"prompt {i}")
        assert len(cache) <= 4
        assert cache.stats()["evictions"] == 6
        # Oldest entries are gone: re-encoding them is a miss again.
        misses = cache.stats()["misses"]
        cache.encode(tok, "prompt 0")
        assert cache.stats()["misses"] == misses + 1

    def test_lru_recency_order(self):
        tok = HashTokenizer()
        cache = EncodeCache(max_entries=2)
        cache.encode(tok, "a")
        cache.encode(tok, "b")
        cache.encode(tok, "a")  # refresh "a"
        cache.encode(tok, "c")  # evicts "b", not "a"
        hits = cache.stats()["hits"]
        cache.encode(tok, "a")
        assert cache.stats()["hits"] == hits + 1

    def test_default_bound(self):
        assert EncodeCache().max_entries == DEFAULT_MAX_ENTRIES

    def test_clear(self):
        tok = HashTokenizer()
        cache = EncodeCache()
        cache.encode(tok, "x")
        cache.clear()
        assert len(cache) == 0


class TestSharedAttachment:
    def test_attached_once_per_tokenizer(self):
        tok = HashTokenizer()
        assert encode_cache_for(tok) is encode_cache_for(tok)
        assert encode_cache_for(HashTokenizer()) is not encode_cache_for(tok)

    def test_clients_share_cache_via_tokenizer(self):
        tok = HashTokenizer()
        a = SimulatedLLMClient(tokenizer=tok)
        b = SimulatedLLMClient(tokenizer=tok)
        a.generate(["shared prompt one"], output_lens=[1])
        misses = b.encode_cache_stats()["misses"]
        hits = b.encode_cache_stats()["hits"]
        b.generate(["shared prompt one"], output_lens=[1])
        assert b.encode_cache_stats()["misses"] == misses
        assert b.encode_cache_stats()["hits"] > hits

    def test_cache_survives_reset_cache(self):
        client = SimulatedLLMClient()
        client.generate(["persistent prompt"], output_lens=[1])
        stats = client.encode_cache_stats()
        client.reset_cache()
        client.generate(["persistent prompt"], output_lens=[1])
        after = client.encode_cache_stats()
        assert after["misses"] == stats["misses"]
        assert after["hits"] > stats["hits"]

    def test_shared_tokenizer_metrics_match_fresh(self):
        """A warm shared vocabulary changes token *ids*, never metrics:
        the hash split is vocabulary-independent, so counts and prefix
        structure are identical to per-client fresh tokenizers."""
        prompts = [
            "header words alpha beta row %d tail" % (i % 4) for i in range(12)
        ]
        fresh = SimulatedLLMClient().generate(prompts, output_lens=[2] * 12)
        shared_tok = HashTokenizer()
        # Warm the vocabulary with unrelated text first.
        encode_cache_for(shared_tok).encode(shared_tok, "unrelated warmup text")
        warm = SimulatedLLMClient(tokenizer=shared_tok).generate(
            prompts, output_lens=[2] * 12
        )
        fr, wr = fresh.engine_result, warm.engine_result
        assert wr.prompt_tokens == fr.prompt_tokens
        assert wr.cached_tokens == fr.cached_tokens
        assert wr.decode_tokens == fr.decode_tokens
        assert wr.total_seconds == pytest.approx(fr.total_seconds, rel=1e-9)
