"""Tests for the continuous-batching engine: conservation, ordering
effects, memory pressure, and the No-Cache baseline."""

import pytest

from repro.errors import CapacityError
from repro.llm.engine import EngineConfig, SimulatedLLMEngine
from repro.llm.hardware import CLUSTER_1XL4
from repro.llm.models import LLAMA3_8B
from repro.llm.request import Request


def reqs_from(token_lists, output_tokens=4):
    return [
        Request(request_id=i, prompt_tokens=tuple(toks), output_tokens=output_tokens)
        for i, toks in enumerate(token_lists)
    ]


def run_engine(token_lists, output_tokens=4, **cfg_kwargs):
    eng = SimulatedLLMEngine(LLAMA3_8B, CLUSTER_1XL4, EngineConfig(**cfg_kwargs))
    eng.submit_all(reqs_from(token_lists, output_tokens))
    return eng.run()


SHARED = list(range(100))


class TestConservation:
    def test_every_request_completes_once(self):
        res = run_engine([SHARED, SHARED, [7, 8, 9]], output_tokens=3)
        assert [m.request_id for m in res.request_metrics] == [0, 1, 2]
        assert all(m.output_tokens == 3 for m in res.request_metrics)

    def test_token_accounting(self):
        res = run_engine([SHARED, SHARED], output_tokens=2)
        assert res.prompt_tokens == 200
        assert res.cached_tokens + res.prefill_tokens == res.prompt_tokens
        assert res.decode_tokens == 4

    def test_empty_queue(self):
        eng = SimulatedLLMEngine(LLAMA3_8B, CLUSTER_1XL4)
        res = eng.run()
        assert res.total_seconds == 0.0
        assert res.request_metrics == []

    def test_zero_output_request(self):
        res = run_engine([SHARED], output_tokens=0)
        assert res.request_metrics[0].output_tokens == 0
        assert res.decode_steps == 0


class TestPrefixCaching:
    def test_identical_prompts_hit(self):
        res = run_engine([SHARED] * 4, output_tokens=1)
        metrics = res.request_metrics
        assert metrics[0].cached_tokens == 0
        for m in metrics[1:]:
            assert m.cached_tokens == len(SHARED)
        assert res.prefix_hit_rate == pytest.approx(3 / 4)

    def test_partial_prefix_hit(self):
        a = list(range(50)) + [100, 101]
        b = list(range(50)) + [200, 201]
        res = run_engine([a, b], output_tokens=1)
        assert res.request_metrics[1].cached_tokens == 50

    def test_cache_disabled_no_hits(self):
        res = run_engine([SHARED] * 4, output_tokens=1, enable_prefix_cache=False)
        assert res.cached_tokens == 0
        assert res.prefix_hit_rate == 0.0

    def test_caching_speeds_up_shared_workload(self):
        cached = run_engine([SHARED] * 8, output_tokens=2)
        uncached = run_engine([SHARED] * 8, output_tokens=2, enable_prefix_cache=False)
        assert cached.total_seconds < uncached.total_seconds

    def test_ordering_changes_hit_rate(self):
        """The paper's core premise at engine level: grouping identical
        prompts consecutively beats interleaving them under a tight
        cache... here even a persistent cache keeps them equal, but an
        ordering with *no* repeats must get zero hits."""
        distinct = [[i * 100 + j for j in range(30)] for i in range(6)]
        res = run_engine(distinct, output_tokens=1)
        assert res.cached_tokens == 0

    def test_order_matters_under_memory_pressure(self):
        # Interleaved [A,B,A,B,...] with a cache that holds ~one prompt
        # thrashes; grouped [A,A,...,B,B,...] hits.
        a = list(range(0, 600))
        b = list(range(1000, 1600))
        interleaved = [a, b] * 4
        grouped = [a] * 4 + [b] * 4
        # Capacity holds one 600-token prompt but not two: interleaving
        # evicts the other prompt every time; grouping reuses it.
        kw = dict(output_tokens=1, kv_capacity_tokens=1000, max_batch_size=1)
        res_i = run_engine(interleaved, **kw)
        res_g = run_engine(grouped, **kw)
        assert res_g.cached_tokens > res_i.cached_tokens
        assert res_g.total_seconds < res_i.total_seconds


class TestMemoryPressure:
    def test_request_too_big_raises(self):
        with pytest.raises(CapacityError):
            run_engine([list(range(2000))], output_tokens=10, kv_capacity_tokens=500)

    def test_batch_limited_by_memory(self):
        prompts = [[i * 1000 + j for j in range(400)] for i in range(6)]
        res = run_engine(
            prompts, output_tokens=8, kv_capacity_tokens=1000, max_batch_size=64
        )
        assert res.max_batch_seen < 6
        assert len(res.request_metrics) == 6  # all eventually served

    def test_peak_within_capacity(self):
        prompts = [[i * 1000 + j for j in range(300)] for i in range(8)]
        cap = 1200
        res = run_engine(prompts, output_tokens=4, kv_capacity_tokens=cap)
        assert res.peak_kv_tokens <= cap

    def test_no_cache_mode_needs_more_memory(self):
        prompts = [[i * 1000 + j for j in range(300)] for i in range(8)]
        cached = run_engine(prompts, output_tokens=4, kv_capacity_tokens=2000)
        uncached = run_engine(
            prompts, output_tokens=4, kv_capacity_tokens=2000, enable_prefix_cache=False
        )
        assert uncached.max_batch_seen <= cached.max_batch_seen


class TestBatching:
    def test_max_batch_respected(self):
        prompts = [[i, i + 1] for i in range(10)]
        res = run_engine(prompts, output_tokens=3, max_batch_size=4)
        assert res.max_batch_seen <= 4

    def test_longer_outputs_take_longer(self):
        short = run_engine([SHARED] * 4, output_tokens=2)
        long = run_engine([SHARED] * 4, output_tokens=40)
        assert long.total_seconds > short.total_seconds

    def test_clock_monotone_metrics(self):
        res = run_engine([SHARED] * 3, output_tokens=5)
        for m in res.request_metrics:
            assert m.admitted_at_s <= m.first_token_at_s <= m.finished_at_s

    def test_engine_persists_cache_across_runs(self):
        eng = SimulatedLLMEngine(LLAMA3_8B, CLUSTER_1XL4)
        eng.submit_all(reqs_from([SHARED], output_tokens=1))
        first = eng.run()
        eng.submit_all(reqs_from([SHARED], output_tokens=1))
        second = eng.run()
        assert first.cached_tokens == 0
        assert second.cached_tokens == len(SHARED)


class TestEngineConfigValidation:
    """Satellite: bad names fail when the config is built, not at first
    use inside a replay."""

    def test_unknown_scheduler_at_config_time(self):
        from repro.errors import ReproError
        from repro.llm.scheduler import SCHEDULER_POLICIES

        with pytest.raises(ReproError) as exc_info:
            EngineConfig(scheduler="warp")
        msg = str(exc_info.value)
        for name in SCHEDULER_POLICIES:
            assert name in msg

    def test_unknown_mode_at_config_time(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            EngineConfig(mode="warp")

    def test_unknown_accounting_at_config_time(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            EngineConfig(kv_accounting="warp")

    def test_valid_names_still_accepted(self):
        for scheduler in ("auto", "fcfs", "sjf", "prefix-affinity", "fair-share"):
            EngineConfig(scheduler=scheduler)
        for mode in ("auto", "vector", "event", "stepwise"):
            EngineConfig(mode=mode)
        for acc in ("auto", "paged", "tokens"):
            EngineConfig(kv_accounting=acc)
