"""Tests for the paged KV block manager."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CapacityError, ServingError
from repro.llm.blocks import BlockManager


class TestAllocation:
    def test_basic_alloc_free(self):
        bm = BlockManager(capacity_tokens=160, block_tokens=16)
        assert bm.n_blocks == 10
        a = bm.allocate(40)
        assert len(a.block_ids) == 3
        assert bm.used_blocks == 3
        bm.release(a)
        assert bm.used_blocks == 0
        bm.check_invariants()

    def test_rounding_up(self):
        bm = BlockManager(capacity_tokens=160, block_tokens=16)
        assert bm.blocks_needed(1) == 1
        assert bm.blocks_needed(16) == 1
        assert bm.blocks_needed(17) == 2

    def test_capacity_error(self):
        bm = BlockManager(capacity_tokens=32, block_tokens=16)
        with pytest.raises(CapacityError):
            bm.allocate(100)

    def test_can_allocate(self):
        bm = BlockManager(capacity_tokens=32, block_tokens=16)
        assert bm.can_allocate(32)
        assert not bm.can_allocate(33)

    def test_invalid_params(self):
        with pytest.raises(ServingError):
            BlockManager(capacity_tokens=0)
        with pytest.raises(ServingError):
            BlockManager(capacity_tokens=16, block_tokens=0)


class TestForkRelease:
    def test_fork_shares_blocks(self):
        bm = BlockManager(capacity_tokens=160, block_tokens=16)
        a = bm.allocate(32)
        b = bm.fork(a)
        assert b.block_ids == a.block_ids
        assert bm.used_blocks == 2  # shared, not doubled
        bm.release(a)
        assert bm.used_blocks == 2  # still referenced by b
        bm.release(b)
        assert bm.used_blocks == 0
        bm.check_invariants()

    def test_double_free_rejected(self):
        bm = BlockManager(capacity_tokens=160, block_tokens=16)
        a = bm.allocate(16)
        b = bm.fork(a)
        bm.release(a)
        bm.release(b)
        with pytest.raises(ServingError):
            bm.release(b)

    def test_fork_of_freed_rejected(self):
        bm = BlockManager(capacity_tokens=160, block_tokens=16)
        a = bm.allocate(16)
        keep = bm.fork(a)
        bm.release(a)
        bm.release(keep)
        with pytest.raises(ServingError):
            bm.fork(keep)


class TestGrow:
    def test_grow_within_block(self):
        bm = BlockManager(capacity_tokens=160, block_tokens=16)
        a = bm.allocate(10)
        bm.grow(a, 5)
        assert len(a.block_ids) == 1 and a.n_tokens == 15

    def test_grow_across_blocks(self):
        bm = BlockManager(capacity_tokens=160, block_tokens=16)
        a = bm.allocate(10)
        bm.grow(a, 10)
        assert len(a.block_ids) == 2 and a.n_tokens == 20

    def test_grow_capacity_error(self):
        bm = BlockManager(capacity_tokens=32, block_tokens=16)
        a = bm.allocate(32)
        with pytest.raises(CapacityError):
            bm.grow(a, 1)


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=10))
    def test_alloc_release_conserves_blocks(self, sizes):
        bm = BlockManager(capacity_tokens=1600, block_tokens=16)
        allocs = [bm.allocate(s) for s in sizes]
        assert bm.used_blocks == sum(bm.blocks_needed(s) for s in sizes)
        for a in allocs:
            bm.release(a)
        assert bm.used_blocks == 0
        bm.check_invariants()

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=8),
           st.integers(min_value=0, max_value=7))
    def test_fork_refcount_consistency(self, sizes, fork_idx):
        bm = BlockManager(capacity_tokens=3200, block_tokens=16)
        allocs = [bm.allocate(s) for s in sizes]
        idx = fork_idx % len(allocs)
        clone = bm.fork(allocs[idx])
        for a in allocs:
            bm.release(a)
        assert bm.used_blocks == len(clone.block_ids)
        bm.release(clone)
        assert bm.used_blocks == 0
        bm.check_invariants()
